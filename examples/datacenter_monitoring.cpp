// Datacenter monitoring: the paper's motivating scenario end-to-end.
//
// A controller monitors a fleet under a strict telemetry budget and uses
// the forecasts for capacity planning: every "hour" it reports the cluster
// state and predicts which machines will have headroom for new work in 30
// minutes, the way a scheduler would pick placement targets.
//
// Run: ./build/examples/datacenter_monitoring [--nodes 80] [--hours 18]
#include <algorithm>
#include <iomanip>
#include <iostream>
#include <numeric>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "trace/synthetic.hpp"

namespace {

/// Indices of the `count` nodes with the lowest predicted CPU utilization.
std::vector<std::size_t> placement_targets(const resmon::Matrix& forecast,
                                           std::size_t count) {
  std::vector<std::size_t> order(forecast.rows());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return forecast(a, resmon::trace::kCpu) < forecast(b, resmon::trace::kCpu);
  });
  order.resize(std::min(count, order.size()));
  return order;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace resmon;

  const Args args(argc, argv);
  const std::size_t hours = static_cast<std::size_t>(args.get_int("hours", 18));
  constexpr std::size_t kStepsPerHour = 12;  // 5-minute sampling

  trace::SyntheticProfile profile = trace::alibaba_profile();
  profile.num_nodes = static_cast<std::size_t>(args.get_int("nodes", 80));
  profile.num_steps = (hours + 2) * kStepsPerHour + 400;
  profile.diurnal_period = 288.0;
  const trace::InMemoryTrace fleet = trace::generate(profile, 7);

  core::PipelineOptions options;
  options.max_frequency = args.get_double("b", 0.3);
  options.num_clusters = 3;
  options.forecaster = forecast::ForecasterKind::kArima;
  options.schedule = {.initial_steps = 300, .retrain_interval = 288};
  options.num_threads = args.get_threads();
  core::MonitoringPipeline pipeline(fleet, options);

  // Warm up through the initial data-collection phase.
  pipeline.run(400);

  Table report({"hour", "avg CPU", "avg Mem", "RMSE(h=0)", "RMSE(h=6)",
                "top placement targets"});
  for (std::size_t hour = 0; hour < hours; ++hour) {
    pipeline.run(kStepsPerHour);
    const std::size_t t = pipeline.current_step() - 1;

    // Current cluster-wide utilization from the controller's stored view.
    const Matrix z = pipeline.forecast_all(0);
    double cpu = 0.0, mem = 0.0;
    for (std::size_t i = 0; i < fleet.num_nodes(); ++i) {
      cpu += z(i, trace::kCpu);
      mem += z(i, trace::kMemory);
    }
    cpu /= static_cast<double>(fleet.num_nodes());
    mem /= static_cast<double>(fleet.num_nodes());

    // 30-minute-ahead forecast drives placement.
    const Matrix ahead = pipeline.forecast_all(6);
    std::string targets;
    for (const std::size_t node : placement_targets(ahead, 3)) {
      if (!targets.empty()) targets += ", ";
      targets += 'm';  // two appends: GCC 12 -Wrestrict misfires on "m" +
      targets += std::to_string(node);
    }

    const double rmse6 =
        t + 6 < fleet.num_steps() ? pipeline.rmse_at(6) : 0.0;
    report.add_row({static_cast<double>(hour + 1), cpu, mem,
                    pipeline.rmse_at(0), rmse6, targets});
  }

  std::cout << "=== datacenter monitoring report ===\n";
  std::cout << "fleet: " << fleet.num_nodes() << " machines, budget B = "
            << options.max_frequency << " (actual "
            << std::setprecision(3)
            << pipeline.collector().average_actual_frequency() << ")\n\n";
  report.print(std::cout);
  std::cout << "\nA scheduler would place new tasks on the listed machines:"
               " they are forecast to have the most CPU headroom in 30"
               " minutes.\n\n";
  core::make_report(pipeline).print(std::cout);
  return 0;
}
