// Bandwidth planning: choose the telemetry budget B for a deployment.
//
// Sweeps the transmission-frequency constraint and reports the monitoring
// error (h=0) and short-horizon forecast error at each budget, together
// with the bytes each budget puts on the wire. The knee of this curve is
// how an operator would pick B (the paper lands on B = 0.3, Fig. 6).
//
// Run: ./build/examples/bandwidth_planning [--dataset alibaba|bitbrains|google]
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "trace/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace resmon;

  const Args args(argc, argv);
  trace::SyntheticProfile profile =
      trace::profile_by_name(args.get("dataset", "alibaba"));
  profile.num_nodes = static_cast<std::size_t>(args.get_int("nodes", 50));
  profile.num_steps = static_cast<std::size_t>(args.get_int("steps", 1200));
  const trace::InMemoryTrace fleet = trace::generate(profile, 5);

  Table table({"B", "actual freq", "MB sent", "RMSE h=0", "RMSE h=5"});
  for (const double b : {0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.0}) {
    core::PipelineOptions options;
    options.max_frequency = b;
    options.num_clusters = 3;
    options.forecaster = forecast::ForecasterKind::kSampleHold;
    options.schedule = {.initial_steps = 200, .retrain_interval = 288};
    options.num_threads = args.get_threads();
    core::MonitoringPipeline pipeline(fleet, options);

    core::RmseAccumulator now, ahead;
    while (!pipeline.done()) {
      pipeline.step();
      now.add(pipeline.rmse_at(0));
      if (pipeline.current_step() - 1 + 5 < fleet.num_steps()) {
        ahead.add(pipeline.rmse_at(5));
      }
    }
    table.add_row({b, pipeline.collector().average_actual_frequency(),
                   static_cast<double>(
                       pipeline.collector().link().bytes_sent()) /
                       (1024.0 * 1024.0),
                   now.value(), ahead.value()});
  }

  std::cout << "=== telemetry budget sweep (" << profile.name << ", "
            << fleet.num_nodes() << " nodes, " << fleet.num_steps()
            << " steps) ===\n\n";
  table.print(std::cout);
  std::cout << "\nPick the smallest B where the error has flattened; the"
               " paper (and typically this sweep) lands near B = 0.3.\n";
  return 0;
}
