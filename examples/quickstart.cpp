// Quickstart: the smallest useful resmon program.
//
// Generates a synthetic cluster workload, runs the full monitoring pipeline
// (adaptive transmission -> dynamic clustering -> forecasting) and prints
// the achieved bandwidth and forecast accuracy.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [--nodes 60] [--steps 1500] [--b 0.3]
#include <iostream>

#include "common/cli.hpp"
#include "core/pipeline.hpp"
#include "trace/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace resmon;

  const Args args(argc, argv);

  // 1. A workload: 60 machines, ~5 days at 5-minute sampling.
  trace::SyntheticProfile profile = trace::google_profile();
  profile.num_nodes = static_cast<std::size_t>(args.get_int("nodes", 60));
  profile.num_steps = static_cast<std::size_t>(args.get_int("steps", 1500));
  const trace::InMemoryTrace workload =
      trace::generate(profile, /*seed=*/args.get_int("seed", 1));

  // 2. The monitoring pipeline with the paper's defaults: B = 0.3, K = 3,
  //    per-resource scalar clustering, sample-and-hold forecasting.
  core::PipelineOptions options;
  options.max_frequency = args.get_double("b", 0.3);
  options.num_clusters = static_cast<std::size_t>(args.get_int("k", 3));
  options.forecaster = forecast::forecaster_kind_from_string(
      args.get("model", "arima"));
  options.schedule = {.initial_steps = 400, .retrain_interval = 288};
  options.num_threads = args.get_threads();

  core::MonitoringPipeline pipeline(workload, options);

  // 3. Feed the whole trace through the pipeline, accumulating the
  //    time-averaged RMSE (eq. (4)) for a few forecast horizons.
  core::RmseAccumulator now, short_term, long_term;
  while (!pipeline.done()) {
    pipeline.step();
    const std::size_t t = pipeline.current_step() - 1;
    now.add(pipeline.rmse_at(0));
    if (t + 5 < workload.num_steps()) short_term.add(pipeline.rmse_at(5));
    if (t + 50 < workload.num_steps()) long_term.add(pipeline.rmse_at(50));
  }

  // 4. Report.
  std::cout << "nodes: " << workload.num_nodes()
            << ", steps: " << workload.num_steps() << "\n";
  std::cout << "transmission budget B: " << options.max_frequency
            << ", actual frequency: "
            << pipeline.collector().average_actual_frequency() << "\n";
  std::cout << "bytes on the wire: "
            << pipeline.collector().link().bytes_sent() << " ("
            << 100.0 * pipeline.collector().average_actual_frequency()
            << "% of always-send)\n";
  std::cout << "RMSE  h=0  (collection only): " << now.value() << "\n";
  std::cout << "RMSE  h=5  (25 min ahead):    " << short_term.value() << "\n";
  std::cout << "RMSE  h=50 (~4 h ahead):      " << long_term.value() << "\n";
  return 0;
}
