// Forecast-driven task placement — the paper's future-work direction
// ("integration of our approach with resource allocation") simulated end to
// end.
//
// A stream of tasks arrives at a scheduler; each task occupies CPU on its
// host for a fixed duration. Three placement policies are compared on the
// same arrival sequence:
//   * random            — place on a uniformly random machine;
//   * reactive          — place on the machine with the lowest *stored*
//                         utilization (the controller's current view);
//   * forecast (ours)   — place on the machine with the lowest *forecast*
//                         utilization at the task's mid-lifetime.
// The metric is the number of overload step-events (host above the overload
// threshold while running placed tasks) and the average headroom violation.
//
// Run: ./build/examples/scheduler_simulation [--nodes 60] [--tasks 400]
#include <algorithm>
#include <iostream>
#include <numeric>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace resmon;

constexpr double kTaskLoad = 0.12;       // CPU each placed task adds
constexpr std::size_t kTaskLife = 24;    // steps a task stays resident
constexpr double kOverload = 0.95;       // utilization considered overload

struct PolicyState {
  std::string name;
  // Remaining lifetime (in steps) of every task resident on each node.
  std::vector<std::vector<std::size_t>> tasks;  // [node][task]
  std::size_t overload_events = 0;
  double violation_sum = 0.0;

  explicit PolicyState(std::string n, std::size_t nodes)
      : name(std::move(n)), tasks(nodes) {}

  double extra_load(std::size_t node) const {
    return kTaskLoad * static_cast<double>(tasks[node].size());
  }

  void place(std::size_t node) { tasks[node].push_back(kTaskLife); }

  void tick(const trace::Trace& t, std::size_t step) {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (tasks[i].empty()) continue;
      const double total = t.value(i, step, trace::kCpu) + extra_load(i);
      if (total > kOverload) {
        ++overload_events;
        violation_sum += total - kOverload;
      }
      // Age and expire resident tasks.
      for (auto& remaining : tasks[i]) --remaining;
      std::erase(tasks[i], 0u);
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);

  trace::SyntheticProfile profile = trace::alibaba_profile();
  profile.num_nodes = static_cast<std::size_t>(args.get_int("nodes", 60));
  profile.num_steps = 2000;
  const trace::InMemoryTrace fleet = trace::generate(profile, 17);
  const std::size_t total_tasks =
      static_cast<std::size_t>(args.get_int("tasks", 400));

  core::PipelineOptions options;
  options.max_frequency = 0.3;
  options.num_clusters = 3;
  options.forecaster = forecast::ForecasterKind::kArima;
  options.schedule = {.initial_steps = 400, .retrain_interval = 288};
  options.num_threads = args.get_threads();
  core::MonitoringPipeline pipeline(fleet, options);

  Rng arrivals(99);
  PolicyState random_policy("random", fleet.num_nodes());
  PolicyState reactive_policy("reactive (stored z)", fleet.num_nodes());
  PolicyState forecast_policy("forecast (ours)", fleet.num_nodes());

  const std::size_t warmup = 450;
  const double arrival_rate =
      static_cast<double>(total_tasks) /
      static_cast<double>(fleet.num_steps() - warmup);

  std::size_t placed = 0;
  for (std::size_t t = 0; t < fleet.num_steps(); ++t) {
    pipeline.step();
    if (t < warmup) continue;

    if (arrivals.bernoulli(std::min(1.0, arrival_rate)) &&
        placed < total_tasks) {
      ++placed;
      // random
      random_policy.place(arrivals.index(fleet.num_nodes()));

      // reactive: lowest stored CPU + already-placed extra load
      const Matrix z = pipeline.forecast_all(0);
      std::size_t best_reactive = 0;
      double best_reactive_load = 1e9;
      for (std::size_t i = 0; i < fleet.num_nodes(); ++i) {
        const double load =
            z(i, trace::kCpu) + reactive_policy.extra_load(i);
        if (load < best_reactive_load) {
          best_reactive_load = load;
          best_reactive = i;
        }
      }
      reactive_policy.place(best_reactive);

      // forecast: lowest forecast CPU at mid-lifetime + extra load
      const Matrix f = pipeline.forecast_all(kTaskLife / 2);
      std::size_t best_forecast = 0;
      double best_forecast_load = 1e9;
      for (std::size_t i = 0; i < fleet.num_nodes(); ++i) {
        const double load =
            f(i, trace::kCpu) + forecast_policy.extra_load(i);
        if (load < best_forecast_load) {
          best_forecast_load = load;
          best_forecast = i;
        }
      }
      forecast_policy.place(best_forecast);
    }

    random_policy.tick(fleet, t);
    reactive_policy.tick(fleet, t);
    forecast_policy.tick(fleet, t);
  }

  Table table({"placement policy", "overload step-events",
               "total headroom violation"});
  for (const PolicyState* p :
       {&random_policy, &reactive_policy, &forecast_policy}) {
    table.add_row({p->name, static_cast<double>(p->overload_events),
                   p->violation_sum});
  }

  std::cout << "=== forecast-driven scheduling (" << placed
            << " tasks, load " << kTaskLoad << " x " << kTaskLife
            << " steps) ===\n\n";
  table.print(std::cout);
  std::cout << "\nForecast-based placement should overload machines less "
               "often than reactive placement, which in turn beats "
               "random.\n";

  return forecast_policy.overload_events <= reactive_policy.overload_events
             ? 0
             : 1;
}
