// Anomaly detection from the monitoring pipeline's cluster structure.
//
// The paper motivates forecasting with "resource planning/allocation and
// anomaly detection". This example injects utilization anomalies (a machine
// with pegged CPU and a flatlined machine) into a synthetic fleet and flags
// machines that persistently stop fitting the cluster structure: a healthy
// machine sits near its cluster's centroid (that is exactly what makes K
// centroids a good compressed representation of N nodes); a pegged or dead
// machine drifts far from every centroid and stays there.
//
// Run: ./build/examples/anomaly_detection [--nodes 40]
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "trace/synthetic.hpp"

namespace {

constexpr std::size_t kAnomalyStart = 700;

/// Inject anomalies: node `hot` runs away (CPU and memory pegged), node
/// `dead` flatlines, both beginning at kAnomalyStart.
resmon::trace::InMemoryTrace with_anomalies(
    const resmon::trace::SyntheticProfile& profile, std::size_t hot,
    std::size_t dead, std::uint64_t seed) {
  using namespace resmon::trace;
  InMemoryTrace t = generate(profile, seed);
  for (std::size_t step = kAnomalyStart; step < t.num_steps(); ++step) {
    t.set_value(hot, step, kCpu, 0.98);
    t.set_value(hot, step, kMemory, 0.97);
    t.set_value(dead, step, kCpu, 0.02);
    t.set_value(dead, step, kMemory, 0.02);
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace resmon;

  const Args args(argc, argv);
  trace::SyntheticProfile profile = trace::google_profile();
  profile.num_nodes = static_cast<std::size_t>(args.get_int("nodes", 80));
  profile.num_steps = 1100;

  const std::size_t hot = 3;
  const std::size_t dead = 17;
  const trace::InMemoryTrace fleet = with_anomalies(profile, hot, dead, 11);

  core::PipelineOptions options;
  options.max_frequency = 0.3;
  options.num_clusters = 6;
  options.forecaster = forecast::ForecasterKind::kSampleHold;
  options.schedule = {.initial_steps = 300, .retrain_interval = 288};
  options.num_threads = args.get_threads();
  core::MonitoringPipeline pipeline(fleet, options);

  // Detection rule: flag a node when its distance to its own cluster
  // centroid (summed over resources) exceeds a fleet-relative threshold
  // for several consecutive steps. Persistence separates anomalies from
  // ordinary utilization spikes; the fleet-median baseline adapts the
  // threshold to the workload's own noise level.
  constexpr std::size_t kScoreStart = 400;   // after warm-up
  constexpr double kRelativeFactor = 4.0;    // vs fleet median distance
  constexpr double kDistanceFloor = 0.25;
  constexpr std::size_t kPersistence = 6;    // consecutive steps

  const std::size_t n = fleet.num_nodes();
  std::vector<std::size_t> first_flagged(n, 0);
  std::vector<std::size_t> streak(n, 0);
  std::vector<double> distance(n, 0.0);
  std::vector<double> peak_distance(n, 0.0);

  for (std::size_t t = 0; t < fleet.num_steps(); ++t) {
    pipeline.step();
    if (t < kScoreStart) continue;

    // Distance of each node's stored measurement to the nearest centroid,
    // summed over the per-resource views. A singleton cluster containing
    // only the node itself does not count as structure the node fits
    // into, so a runaway machine cannot hide by earning a private
    // centroid.
    const Matrix z = pipeline.forecast_all(0);
    std::fill(distance.begin(), distance.end(), 0.0);
    for (std::size_t r = 0; r < pipeline.num_views(); ++r) {
      const cluster::Clustering& c = pipeline.tracker(r).history(0);
      std::vector<std::size_t> cluster_size(options.num_clusters, 0);
      for (std::size_t i = 0; i < n; ++i) ++cluster_size[c.assignment[i]];
      for (std::size_t i = 0; i < n; ++i) {
        double nearest = 1.0;
        for (std::size_t j = 0; j < options.num_clusters; ++j) {
          // A singleton cluster containing only node i itself does not
          // count as structure it fits into.
          if (c.assignment[i] == j && cluster_size[j] <= 1) continue;
          nearest =
              std::min(nearest, std::fabs(z(i, r) - c.centroids(j, 0)));
        }
        distance[i] += nearest;
      }
    }
    std::vector<double> sorted = distance;
    std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                     sorted.end());
    const double threshold = std::max(
        kDistanceFloor, kRelativeFactor * sorted[sorted.size() / 2]);
    for (std::size_t i = 0; i < n; ++i) {
      peak_distance[i] = std::max(peak_distance[i], distance[i]);
      streak[i] = distance[i] > threshold ? streak[i] + 1 : 0;
      if (streak[i] >= kPersistence && first_flagged[i] == 0) {
        first_flagged[i] = t;
      }
    }
  }

  Table table({"node", "peak centroid distance", "status",
               "flagged at step"});
  for (std::size_t i = 0; i < n; ++i) {
    if (first_flagged[i] == 0) continue;
    std::string status = "anomalous";
    if (i == hot) status += " (injected: runaway, CPU+mem pegged)";
    if (i == dead) status += " (injected: flatlined)";
    std::string label = "m";  // two appends: GCC 12 -Wrestrict misfires
    label += std::to_string(i);
    table.add_row({std::move(label), peak_distance[i], status,
                   static_cast<double>(first_flagged[i])});
  }

  std::cout << "=== cluster-outlier anomaly report ===\n";
  std::cout << "anomalies injected at step " << kAnomalyStart << " into m"
            << hot << " (hot) and m" << dead << " (dead)\n\n";
  if (table.num_rows() == 0) {
    std::cout << "no anomalies detected\n";
  } else {
    table.print(std::cout);
  }

  const bool caught_hot = first_flagged[hot] >= kAnomalyStart;
  const bool caught_dead = first_flagged[dead] >= kAnomalyStart;
  std::size_t false_positives = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (first_flagged[i] != 0 && i != hot && i != dead) ++false_positives;
  }
  std::cout << "\ninjected anomalies detected: "
            << (caught_hot ? 1 : 0) + (caught_dead ? 1 : 0)
            << "/2, false positives: " << false_positives << "\n";
  return caught_hot && caught_dead ? 0 : 1;
}
