// Ablation — the Hungarian re-indexing of eq. (10)/(11).
//
// Without re-indexing, cluster labels are whatever K-means happens to
// return, so each cluster's centroid series jumps between unrelated
// clusters and the per-cluster forecasting models train on garbage.
// Measured: the mean absolute step-to-step change of the centroid series
// (stability) and the forecast RMSE.
//
// Expected shape: with re-indexing the centroid series is far smoother and
// the RMSE is lower.
#include <cmath>

#include "bench_util.hpp"

#include "core/pipeline.hpp"

namespace {

using namespace resmon;

struct Result {
  double centroid_jumpiness = 0.0;  // mean |c_{j,t} - c_{j,t-1}|
  double rmse_h5 = 0.0;
};

Result run_config(const trace::Trace& t, bool reindex,
                  std::size_t threads) {
  core::PipelineOptions o;
  o.num_clusters = 3;
  o.reindex_clusters = reindex;
  o.schedule = {.initial_steps = 100, .retrain_interval = 288};
  o.num_threads = threads;
  core::MonitoringPipeline pipeline(t, o);
  core::RmseAccumulator acc;
  for (std::size_t step = 0; step < t.num_steps(); ++step) {
    pipeline.step();
    if (step < 150 || step % 10 != 0) continue;
    if (step + 5 >= t.num_steps()) continue;
    acc.add(pipeline.rmse_at(5));
  }

  Result r;
  r.rmse_h5 = acc.value();
  double jump = 0.0;
  std::size_t count = 0;
  for (std::size_t v = 0; v < pipeline.num_views(); ++v) {
    for (std::size_t j = 0; j < 3; ++j) {
      const std::vector<double> series =
          pipeline.tracker(v).centroid_series(j, 0);
      for (std::size_t s = 1; s < series.size(); ++s) {
        jump += std::fabs(series[s] - series[s - 1]);
        ++count;
      }
    }
  }
  r.centroid_jumpiness = jump / static_cast<double>(count);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace resmon;
  const Args args(argc, argv);
  bench::banner("Ablation: cluster re-indexing (eq. (10)/(11))",
                "Centroid-series stability and forecast RMSE with and "
                "without the Hungarian matching");

  Table table({"dataset", "reindexing", "centroid step change",
               "RMSE h=5"},
              4);
  for (const std::string& name : bench::datasets_from_args(args)) {
    trace::SyntheticProfile profile = bench::profile_from_args(args, name);
    const trace::InMemoryTrace t =
        trace::generate(profile, args.get_int("seed", 1));
    const Result with = run_config(t, true, args.get_threads());
    const Result without = run_config(t, false, args.get_threads());
    table.add_row({name, std::string("on (paper)"),
                   with.centroid_jumpiness, with.rmse_h5});
    table.add_row({name, std::string("off"), without.centroid_jumpiness,
                   without.rmse_h5});
  }
  bench::emit(table, args);
  std::cout << "\nExpected shape: re-indexing gives a much smaller centroid "
               "step change and a lower RMSE.\n";
  return 0;
}
