// Parallel-step microbenchmark: per-stage wall time of
// MonitoringPipeline::step() (collect / cluster / forecast, via
// StageTimers) at several thread counts on one seeded synthetic trace.
//
// The determinism contract makes the sweep directly comparable: every
// thread count computes bit-identical results (verified here against the
// serial run), so the only thing that changes is speed. The headline
// column is the speedup of the cluster + forecast stages — the two loops
// the paper's central node spends its time in — relative to the serial
// run. On a multi-core machine expect >= 2x at 4 threads for the default
// N = 2000, K = 10, ARIMA configuration.
//
// It also measures the zero-allocation contract: a steady-state window of
// step_external() slots (between two scheduled retrains) must perform ZERO
// heap allocations — counted by this TU's operator new replacement. See
// docs/PERFORMANCE.md for how to read and enforce both properties.
//
// Flags: --nodes --steps --clusters --model --dataset --seed --threads
// (run only {1, <threads>} instead of the default {1, 2, 4, 8} sweep);
// --strict turns the speedup / zero-allocation WARNings into exit 1;
// --json PATH / --json-run LABEL select the JSON sink and append a
// timestamped history entry for this run.
#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"

#include "core/pipeline.hpp"

// -- allocation counter -------------------------------------------------
// Replaces global operator new/delete for this binary so the steady-state
// phase below can assert that the per-slot pipeline path allocates nothing.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded > 0 ? rounded : a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return ::operator new(size, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace resmon;

struct StageRun {
  core::StageTimers timers;
  Matrix forecast;  // h = 1 forecast after the last step, for verification
};

StageRun run_once(const trace::Trace& t, const core::PipelineOptions& base,
                  std::size_t threads, std::size_t steps,
                  obs::MetricsRegistry* metrics,
                  obs::TraceBuffer* trace_events) {
  core::PipelineOptions o = base;
  o.num_threads = threads;
  o.metrics = metrics;
  o.trace_events = trace_events;
  core::MonitoringPipeline p(t, o);
  p.run(steps);
  return {p.stage_timers(), p.forecast_all(1)};
}

struct SteadyStats {
  std::uint64_t total_allocs = 0;
  std::size_t window_steps = 0;
};

/// Drives an external-collection pipeline through the first retrain, then
/// counts heap allocations over the steady slots strictly between retrains
/// (prebuilt messages, serial execution): the contract is zero.
SteadyStats measure_steady_allocs(const trace::Trace& t,
                                  const core::PipelineOptions& base) {
  core::PipelineOptions o = base;
  o.num_threads = 1;
  o.metrics = nullptr;
  o.trace_events = nullptr;
  core::MonitoringPipeline p(t, o, core::ExternalCollection{});

  // Warm through the initial fit plus one post-fit slot (first update()
  // after a fit takes its scratch-slab reservations), then measure up to
  // the slot before the next scheduled retrain.
  const std::size_t warm_until = o.schedule.initial_steps + 2;
  const std::size_t window_end =
      o.schedule.initial_steps + o.schedule.retrain_interval - 1;
  const std::size_t n = t.num_nodes();
  const std::size_t d = t.num_resources();
  std::vector<std::vector<transport::MeasurementMessage>> slots(window_end);
  for (std::size_t s = 0; s < window_end; ++s) {
    slots[s].resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      slots[s][i].node = i;
      slots[s][i].step = s;
      slots[s][i].values.resize(d);
      for (std::size_t r = 0; r < d; ++r) {
        slots[s][i].values[r] = t.value(i, s, r);
      }
    }
  }

  SteadyStats stats;
  for (std::size_t s = 0; s < window_end; ++s) {
    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    p.step_external(slots[s]);
    if (s >= warm_until) {
      stats.total_allocs +=
          g_allocs.load(std::memory_order_relaxed) - before;
      ++stats.window_steps;
    }
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  bench::banner("micro_parallel_step",
                "Per-stage wall time of MonitoringPipeline::step() vs "
                "thread count (bit-identical results at every count)");

  trace::SyntheticProfile profile =
      bench::profile_from_args(args, args.get("dataset", "alibaba"));
  if (!args.has("nodes")) profile.num_nodes = 2000;
  if (!args.has("steps")) profile.num_steps = 48;
  const std::size_t steps = profile.num_steps;
  const trace::InMemoryTrace t =
      trace::generate(profile, args.get_int("seed", 1));

  core::PipelineOptions base;
  base.num_clusters =
      static_cast<std::size_t>(args.get_int("clusters", 10));
  base.forecaster =
      forecast::forecaster_kind_from_string(args.get("model", "arima"));
  // Retrain inside the benchmarked window so the forecast stage does real
  // model fitting, not just transient updates.
  base.schedule = {.initial_steps = 24, .retrain_interval = 12};
  base.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::vector<std::size_t> thread_counts{1, 2, 4, 8};
  if (args.has("threads")) {
    const std::size_t requested = args.get_threads();
    thread_counts = {1};
    if (requested != 1) thread_counts.push_back(requested);
  }

  // Sinks for --metrics-out / --trace-out; series accumulate across the
  // whole thread sweep (stage gauges are per-run: run() resets them).
  obs::MetricsRegistry registry;
  obs::TraceBuffer trace_events;

  Table table({"threads", "collect_s", "cluster_s", "forecast_s",
               "cluster+forecast_s", "speedup", "identical"},
              4);
  bench::BenchJson sink("resmon-micro", "micro_parallel_step");
  StageRun serial;
  double serial_hot = 0.0;
  std::vector<std::pair<std::size_t, double>> speedups;
  for (const std::size_t threads : thread_counts) {
    const StageRun run =
        run_once(t, base, threads, steps, &registry, &trace_events);
    const double hot =
        run.timers.cluster_seconds + run.timers.forecast_seconds;
    bool identical = true;
    if (threads == thread_counts.front()) {
      serial = run;
      serial_hot = hot;
    } else {
      identical = run.forecast.data() == serial.forecast.data();
    }
    table.add_row({static_cast<double>(threads),
                   run.timers.collect_seconds, run.timers.cluster_seconds,
                   run.timers.forecast_seconds, hot,
                   serial_hot > 0.0 ? serial_hot / hot : 1.0,
                   identical ? 1.0 : 0.0});
    const double speedup = serial_hot > 0.0 ? serial_hot / hot : 1.0;
    speedups.emplace_back(threads, speedup);
    sink.add("threads=" + std::to_string(threads),
             {{"collect_s", run.timers.collect_seconds},
              {"cluster_s", run.timers.cluster_seconds},
              {"forecast_s", run.timers.forecast_seconds},
              {"cluster_forecast_speedup", speedup},
              {"identical", identical ? 1.0 : 0.0}});
  }
  bench::emit(table, args);

  // -- steady-state allocation contract ----------------------------------
  // Between retrains, step_external() must not touch the heap at all (see
  // docs/PERFORMANCE.md "Zero-allocation steady state").
  const std::size_t steady_need =
      base.schedule.initial_steps + base.schedule.retrain_interval - 1;
  bool steady_ok = true;
  if (steps >= steady_need) {
    const SteadyStats steady = measure_steady_allocs(t, base);
    const double per_step =
        steady.window_steps > 0
            ? static_cast<double>(steady.total_allocs) /
                  static_cast<double>(steady.window_steps)
            : 0.0;
    sink.add("steady", {{"steady_allocs_per_step", per_step},
                        {"steady_window_steps",
                         static_cast<double>(steady.window_steps)}});
    std::cout << "\nsteady-state window: " << steady.window_steps
              << " steps, " << steady.total_allocs
              << " heap allocations (contract: 0)\n";
    if (steady.total_allocs != 0) {
      steady_ok = false;
      std::cout << "WARNING: steady-state step path allocated "
                << steady.total_allocs << " times; the zero-allocation "
                << "contract is broken (see docs/PERFORMANCE.md)\n";
    }
  } else {
    std::cout << "\nsteady-state allocation check skipped: needs --steps >= "
              << steady_need << "\n";
  }

  // -- anti-scaling guard ------------------------------------------------
  // The sweep must never be slower with more threads; 0.95 absorbs timer
  // jitter on loaded CI hosts (policy in docs/PERFORMANCE.md).
  bool speedup_ok = true;
  for (std::size_t row = 1; row < speedups.size(); ++row) {
    if (speedups[row].second < 0.95) {
      speedup_ok = false;
      std::cout << "WARNING: cluster_forecast_speedup = "
                << speedups[row].second << " at " << speedups[row].first
                << " threads (< 0.95): parallel execution is slower than "
                   "serial (see docs/PERFORMANCE.md)\n";
    }
  }

  sink.write(args.get("json", "BENCH_micro.json"), args.get("json-run", ""));
  bench::emit_observability(args, registry, &trace_events);
  std::cout << "\nspeedup = (cluster_s + forecast_s) at 1 thread / same at "
               "N threads; identical = h=1 forecasts bitwise equal to the "
               "serial run (must always be 1).\n";
  if (args.has("strict") && (!steady_ok || !speedup_ok)) return 1;
  return 0;
}
