// Parallel-step microbenchmark: per-stage wall time of
// MonitoringPipeline::step() (collect / cluster / forecast, via
// StageTimers) at several thread counts on one seeded synthetic trace.
//
// The determinism contract makes the sweep directly comparable: every
// thread count computes bit-identical results (verified here against the
// serial run), so the only thing that changes is speed. The headline
// column is the speedup of the cluster + forecast stages — the two loops
// the paper's central node spends its time in — relative to the serial
// run. On a multi-core machine expect >= 2x at 4 threads for the default
// N = 2000, K = 10, ARIMA configuration.
//
// Flags: --nodes --steps --clusters --model --dataset --seed --threads
// (run only {1, <threads>} instead of the default {1, 2, 4, 8} sweep).
#include <string>
#include <vector>

#include "bench_util.hpp"

#include "core/pipeline.hpp"

namespace {

using namespace resmon;

struct StageRun {
  core::StageTimers timers;
  Matrix forecast;  // h = 1 forecast after the last step, for verification
};

StageRun run_once(const trace::Trace& t, const core::PipelineOptions& base,
                  std::size_t threads, std::size_t steps,
                  obs::MetricsRegistry* metrics,
                  obs::TraceBuffer* trace_events) {
  core::PipelineOptions o = base;
  o.num_threads = threads;
  o.metrics = metrics;
  o.trace_events = trace_events;
  core::MonitoringPipeline p(t, o);
  p.run(steps);
  return {p.stage_timers(), p.forecast_all(1)};
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  bench::banner("micro_parallel_step",
                "Per-stage wall time of MonitoringPipeline::step() vs "
                "thread count (bit-identical results at every count)");

  trace::SyntheticProfile profile =
      bench::profile_from_args(args, args.get("dataset", "alibaba"));
  if (!args.has("nodes")) profile.num_nodes = 2000;
  if (!args.has("steps")) profile.num_steps = 48;
  const std::size_t steps = profile.num_steps;
  const trace::InMemoryTrace t =
      trace::generate(profile, args.get_int("seed", 1));

  core::PipelineOptions base;
  base.num_clusters =
      static_cast<std::size_t>(args.get_int("clusters", 10));
  base.forecaster =
      forecast::forecaster_kind_from_string(args.get("model", "arima"));
  // Retrain inside the benchmarked window so the forecast stage does real
  // model fitting, not just transient updates.
  base.schedule = {.initial_steps = 24, .retrain_interval = 12};
  base.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::vector<std::size_t> thread_counts{1, 2, 4, 8};
  if (args.has("threads")) {
    const std::size_t requested = args.get_threads();
    thread_counts = {1};
    if (requested != 1) thread_counts.push_back(requested);
  }

  // Sinks for --metrics-out / --trace-out; series accumulate across the
  // whole thread sweep (stage gauges are per-run: run() resets them).
  obs::MetricsRegistry registry;
  obs::TraceBuffer trace_events;

  Table table({"threads", "collect_s", "cluster_s", "forecast_s",
               "cluster+forecast_s", "speedup", "identical"},
              4);
  bench::BenchJson sink("resmon-micro", "micro_parallel_step");
  StageRun serial;
  double serial_hot = 0.0;
  for (const std::size_t threads : thread_counts) {
    const StageRun run =
        run_once(t, base, threads, steps, &registry, &trace_events);
    const double hot =
        run.timers.cluster_seconds + run.timers.forecast_seconds;
    bool identical = true;
    if (threads == thread_counts.front()) {
      serial = run;
      serial_hot = hot;
    } else {
      identical = run.forecast.data() == serial.forecast.data();
    }
    table.add_row({static_cast<double>(threads),
                   run.timers.collect_seconds, run.timers.cluster_seconds,
                   run.timers.forecast_seconds, hot,
                   serial_hot > 0.0 ? serial_hot / hot : 1.0,
                   identical ? 1.0 : 0.0});
    sink.add("threads=" + std::to_string(threads),
             {{"collect_s", run.timers.collect_seconds},
              {"cluster_s", run.timers.cluster_seconds},
              {"forecast_s", run.timers.forecast_seconds},
              {"cluster_forecast_speedup",
               serial_hot > 0.0 ? serial_hot / hot : 1.0},
              {"identical", identical ? 1.0 : 0.0}});
  }
  bench::emit(table, args);
  sink.write(args.get("json", "BENCH_micro.json"));
  bench::emit_observability(args, registry, &trace_events);
  std::cout << "\nspeedup = (cluster_s + forecast_s) at 1 thread / same at "
               "N threads; identical = h=1 forecasts bitwise equal to the "
               "serial run (must always be 1).\n";
  return 0;
}
