// Fig. 3 — Behavior of the adaptive transmission algorithm: the actual
// transmission frequency achieved by the drift-plus-penalty rule tracks the
// required frequency B across several orders of magnitude, on all three
// datasets.
//
// Paper parameters: V0 = 1e-12, gamma = 0.65 (overridable via --v0/--gamma).
#include "bench_util.hpp"

#include "collect/fleet_collector.hpp"

int main(int argc, char** argv) {
  using namespace resmon;
  const Args args(argc, argv);
  bench::banner("Fig. 3",
                "Required vs actual transmission frequency of the adaptive "
                "algorithm (drift-plus-penalty, eq. (6)-(9))");

  const double v0 = args.get_double("v0", 1e-12);
  const double gamma = args.get_double("gamma", 0.65);

  // One registry across the whole sweep: the aggregate resmon_collect_*
  // series then cover every (dataset, B) cell (--metrics-out dumps them).
  obs::MetricsRegistry registry;

  Table table({"dataset", "required B", "actual freq"}, 4);
  for (const std::string& name : bench::datasets_from_args(args)) {
    trace::SyntheticProfile profile = bench::profile_from_args(args, name);
    const trace::InMemoryTrace t =
        trace::generate(profile, args.get_int("seed", 1));
    for (const double b :
         {0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5}) {
      collect::FleetCollector fleet(
          t,
          collect::make_policy_factory(collect::PolicyKind::kAdaptive, b, v0,
                                       gamma, /*clamp_queue=*/false,
                                       &registry),
          {}, nullptr, nullptr, &registry);
      for (std::size_t step = 0; step < t.num_steps(); ++step) {
        fleet.step(step);
      }
      table.add_row({name, b, fleet.average_actual_frequency()});
    }
  }
  bench::emit(table, args);
  bench::emit_observability(args, registry);
  std::cout << "\nExpected shape: actual ~= required across the whole range "
               "(the virtual queue enforces the budget with equality).\n";
  return 0;
}
