// Fig. 10 — Time-averaged RMSE vs forecast horizon h using sample-and-hold
// forecasting (K = 3) on top of the different clustering methods: the
// proposed dynamic clustering, the minimum-distance baseline and the
// offline static baseline, plus the stddev bound.
//
// All methods use the same estimation rule (eq. (2)): held centroid of the
// node's modal cluster over the last M'+1 steps, plus the alpha-scaled
// per-node offset of eq. (12).
//
// Expected shape: proposed best at short horizons; static (offline)
// approaches it at long horizons; minimum-distance worst.
#include <cmath>

#include "bench_util.hpp"

#include "cluster/baselines.hpp"
#include "collect/fleet_collector.hpp"
#include "core/estimation.hpp"
#include "core/metrics.hpp"

namespace {

using namespace resmon;

constexpr std::size_t kMPrime = 5;

/// Sample-and-hold estimate for every node from an offset tracker: held
/// centroid of the modal cluster + eq. (12) offset. (Scalar, one resource.)
std::vector<double> estimate_nodes(const core::OffsetTracker& tracker,
                                   const cluster::Clustering& current,
                                   std::size_t n) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = tracker.modal_cluster(i);
    out[i] = current.centroids(j, 0) + tracker.offset(i, j)[0];
  }
  return out;
}

double rmse_against(const trace::Trace& t, std::size_t step,
                    std::size_t resource, const std::vector<double>& est) {
  double se = 0.0;
  for (std::size_t i = 0; i < t.num_nodes(); ++i) {
    const double e = est[i] - t.value(i, step, resource);
    se += e * e;
  }
  return std::sqrt(se / static_cast<double>(t.num_nodes()));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace resmon;
  const Args args(argc, argv);
  bench::banner("Fig. 10",
                "RMSE vs horizon h with sample-and-hold forecasting on "
                "different clustering methods (K = 3, B = 0.3)");

  const std::size_t k = 3;
  const std::vector<std::size_t> hs{1, 5, 10, 25, 50};

  Table table({"dataset", "resource", "h", "Proposed", "Min-distance",
               "Static (offline)"},
              4);
  for (const std::string& name : bench::datasets_from_args(args)) {
    trace::SyntheticProfile profile = bench::profile_from_args(args, name);
    const trace::InMemoryTrace t =
        trace::generate(profile, args.get_int("seed", 1));
    const std::size_t n = t.num_nodes();
    const std::size_t d = t.num_resources();

    collect::FleetCollector fleet(
        t, collect::make_policy_factory(collect::PolicyKind::kAdaptive,
                                        args.get_double("b", 0.3)));

    std::vector<cluster::DynamicClusterTracker> dyn;
    std::vector<cluster::StaticClustering> statik;
    std::vector<cluster::MinimumDistanceClustering> mindist;
    std::vector<core::OffsetTracker> off_dyn, off_stat, off_min;
    for (std::size_t r = 0; r < d; ++r) {
      dyn.emplace_back(cluster::DynamicClusterOptions{.k = k}, 1 + r);
      statik.emplace_back(t, r, k, 100 + r);
      mindist.emplace_back(k, 200 + r);
      off_dyn.emplace_back(kMPrime, k);
      off_stat.emplace_back(kMPrime, k);
      off_min.emplace_back(kMPrime, k);
    }

    // acc[method][resource][h-index]
    std::vector<std::vector<std::vector<core::RmseAccumulator>>> acc(
        3, std::vector<std::vector<core::RmseAccumulator>>(
               d, std::vector<core::RmseAccumulator>(hs.size())));

    // Pending forecasts keyed by (target step, method, resource, h-index):
    // store the estimate made at decision time, score when target arrives.
    struct Pending {
      std::size_t target;
      std::size_t method;
      std::size_t resource;
      std::size_t h_index;
      std::vector<double> estimate;
    };
    std::vector<Pending> pending;

    const std::size_t eval_stride =
        static_cast<std::size_t>(args.get_int("eval-stride", 10));
    std::size_t scored = 0;
    for (std::size_t step = 0; step < t.num_steps(); ++step) {
      fleet.step(step);
      for (std::size_t r = 0; r < d; ++r) {
        Matrix snapshot(n, 1);
        for (std::size_t i = 0; i < n; ++i) {
          snapshot(i, 0) = fleet.store().stored(i)[r];
        }
        const cluster::Clustering& cd = dyn[r].update(snapshot);
        const cluster::Clustering cs = statik[r].at(snapshot);
        const cluster::Clustering cm = mindist[r].at(snapshot);
        off_dyn[r].push(cd, snapshot);
        off_stat[r].push(cs, snapshot);
        off_min[r].push(cm, snapshot);

        if (step % eval_stride != 0 || step < kMPrime + 1) continue;
        for (std::size_t hi = 0; hi < hs.size(); ++hi) {
          if (step + hs[hi] >= t.num_steps()) continue;
          pending.push_back({step + hs[hi], 0, r, hi,
                             estimate_nodes(off_dyn[r], cd, n)});
          pending.push_back({step + hs[hi], 1, r, hi,
                             estimate_nodes(off_min[r], cm, n)});
          pending.push_back({step + hs[hi], 2, r, hi,
                             estimate_nodes(off_stat[r], cs, n)});
        }
      }
      // Score everything whose target step is now.
      for (const Pending& p : pending) {
        if (p.target != step) continue;
        acc[p.method][p.resource][p.h_index].add(
            rmse_against(t, step, p.resource, p.estimate));
        ++scored;
      }
      if (scored > 0 && scored % 4096 == 0) {
        pending.erase(std::remove_if(pending.begin(), pending.end(),
                                     [&](const Pending& p) {
                                       return p.target <= step;
                                     }),
                      pending.end());
      }
    }

    for (std::size_t r = 0; r < d; ++r) {
      for (std::size_t hi = 0; hi < hs.size(); ++hi) {
        table.add_row({name, trace::resource_name(r),
                       static_cast<double>(hs[hi]), acc[0][r][hi].value(),
                       acc[1][r][hi].value(), acc[2][r][hi].value()});
      }
    }
  }
  bench::emit(table, args);
  std::cout << "\nExpected shape: Proposed best at small h; Static closes "
               "the gap at large h; Min-distance worst throughout.\n";
  return 0;
}
