// Micro-benchmarks for the primitives the pipeline leans on: K-means,
// Hungarian matching, ARIMA/LSTM fitting, Gaussian conditional variance and
// one full pipeline step. Engineering hygiene, not a paper artifact.
#include <benchmark/benchmark.h>

#include "cluster/hungarian.hpp"
#include "cluster/kmeans.hpp"
#include "common/kernels.hpp"
#include "core/pipeline.hpp"
#include "forecast/arima.hpp"
#include "forecast/lstm.hpp"
#include "gaussian/gaussian_model.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace resmon;

void BM_KMeansScalar(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Matrix points(n, 1);
  for (std::size_t i = 0; i < n; ++i) points(i, 0) = rng.uniform();
  for (auto _ : state) {
    Rng local(2);
    benchmark::DoNotOptimize(cluster::kmeans(points, 3, local));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KMeansScalar)->Arg(100)->Arg(1000)->Arg(4000);

// Same K-means, forced onto one kernel path (0 = scalar, 1 = SIMD): the
// ratio isolates what the AVX2 kernels buy. Results are bit-identical
// across paths (tests/test_kernels.cpp), so only speed differs.
void BM_KMeansKernelPath(benchmark::State& state) {
  const bool simd = state.range(0) == 1;
  if (simd && !kern::simd_supported()) {
    state.SkipWithError("no AVX2 on this host");
    return;
  }
  const kern::Path saved = kern::active_path();
  kern::set_path(simd ? kern::Path::kSimd : kern::Path::kScalar);
  const std::size_t n = 2000;
  Rng rng(1);
  Matrix points(n, 3);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 3; ++c) points(i, c) = rng.uniform();
  }
  for (auto _ : state) {
    Rng local(2);
    benchmark::DoNotOptimize(cluster::kmeans(points, 10, local));
  }
  state.SetItemsProcessed(state.iterations() * n);
  kern::set_path(saved);
}
BENCHMARK(BM_KMeansKernelPath)->Arg(0)->Arg(1);

void BM_Hungarian(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  Matrix w(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) w(r, c) = rng.uniform();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::max_weight_assignment(w));
  }
}
BENCHMARK(BM_Hungarian)->Arg(3)->Arg(16)->Arg(64)->Arg(128);

void BM_ArimaFit(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  std::vector<double> x(n);
  double s = 0.0;
  for (double& v : x) {
    s = 0.9 * s + rng.normal(0.0, 0.05);
    v = 0.5 + s;
  }
  for (auto _ : state) {
    forecast::ArimaForecaster f(forecast::ArimaOrder{.p = 2, .q = 1});
    f.fit(x);
    benchmark::DoNotOptimize(f.forecast(5));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ArimaFit)->Arg(1000)->Arg(3000)->Unit(benchmark::kMillisecond);

void BM_LstmFit(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> x(600);
  double s = 0.0;
  for (double& v : x) {
    s = 0.95 * s + rng.normal(0.0, 0.03);
    v = 0.5 + s;
  }
  for (auto _ : state) {
    forecast::LstmForecaster f({.hidden_size = 12, .window = 16,
                                .epochs = 2, .stride = 2},
                               1);
    f.fit(x);
    benchmark::DoNotOptimize(f.forecast(1));
  }
}
BENCHMARK(BM_LstmFit)->Unit(benchmark::kMillisecond);

void BM_LstmForecast50(benchmark::State& state) {
  Rng rng(6);
  std::vector<double> x(400);
  for (double& v : x) v = rng.uniform();
  forecast::LstmForecaster f({.hidden_size = 12, .window = 16, .epochs = 1},
                             1);
  f.fit(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.forecast(50));
  }
}
BENCHMARK(BM_LstmForecast50);

void BM_GaussianConditionalVariance(benchmark::State& state) {
  const std::size_t n = 100;
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  Matrix train(500, n);
  for (std::size_t t = 0; t < 500; ++t) {
    for (std::size_t i = 0; i < n; ++i) train(t, i) = rng.uniform();
  }
  const gaussian::GaussianModel model = gaussian::GaussianModel::fit(train);
  std::vector<std::size_t> monitors(k);
  for (std::size_t i = 0; i < k; ++i) monitors[i] = i * (n / k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.conditional_variance(monitors));
  }
}
BENCHMARK(BM_GaussianConditionalVariance)->Arg(5)->Arg(10)->Arg(25);

void BM_PipelineStep(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  trace::SyntheticProfile profile = trace::alibaba_profile();
  profile.num_nodes = n;
  profile.num_steps = 4000;
  const trace::InMemoryTrace t = trace::generate(profile, 1);
  core::PipelineOptions o;
  o.schedule = {.initial_steps = 1000000, .retrain_interval = 1000000};
  auto pipeline = std::make_unique<core::MonitoringPipeline>(t, o);
  for (auto _ : state) {
    if (pipeline->done()) {
      state.PauseTiming();
      pipeline = std::make_unique<core::MonitoringPipeline>(t, o);
      state.ResumeTiming();
    }
    pipeline->step();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PipelineStep)->Arg(100)->Arg(500)->Arg(2000);

}  // namespace

BENCHMARK_MAIN();
