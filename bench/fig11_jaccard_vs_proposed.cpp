// Fig. 11 — The paper's intersection-count similarity measure (eq. (10))
// vs the Jaccard index of [20] for re-indexing clusters over time, under
// sample-and-hold forecasting with per-node offsets.
//
// Expected shape: the proposed (unnormalized) similarity gives equal or
// lower RMSE at every horizon — it weights large clusters by node count,
// matching the RMSE objective.
#include <cmath>

#include "bench_util.hpp"

#include "core/pipeline.hpp"

namespace {

using namespace resmon;

double resource_rmse(const trace::Trace& t, std::size_t step,
                     std::size_t resource, const Matrix& estimate) {
  double se = 0.0;
  for (std::size_t i = 0; i < t.num_nodes(); ++i) {
    const double e = estimate(i, resource) - t.value(i, step, resource);
    se += e * e;
  }
  return std::sqrt(se / static_cast<double>(t.num_nodes()));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace resmon;
  const Args args(argc, argv);
  bench::banner("Fig. 11",
                "RMSE vs horizon: proposed similarity (eq. (10)) vs "
                "Jaccard index, sample-and-hold, K = 3");

  const std::vector<std::size_t> hs{1, 5, 10, 25, 50};
  Table table({"dataset", "resource", "h", "Proposed similarity",
               "Jaccard"},
              4);
  for (const std::string& name : bench::datasets_from_args(args)) {
    trace::SyntheticProfile profile = bench::profile_from_args(args, name);
    const trace::InMemoryTrace t =
        trace::generate(profile, args.get_int("seed", 1));

    auto make_pipeline = [&](cluster::SimilarityKind sim) {
      core::PipelineOptions o;
      o.max_frequency = 0.3;
      o.num_clusters = 3;
      o.similarity = sim;
      o.forecaster = forecast::ForecasterKind::kSampleHold;
      o.schedule = {.initial_steps = 100, .retrain_interval = 288};
      o.seed = 1;
      o.num_threads = args.get_threads();
      return core::MonitoringPipeline(t, o);
    };
    core::MonitoringPipeline proposed =
        make_pipeline(cluster::SimilarityKind::kIntersection);
    core::MonitoringPipeline jaccard =
        make_pipeline(cluster::SimilarityKind::kJaccard);

    const std::size_t d = t.num_resources();
    std::vector<std::vector<core::RmseAccumulator>> acc_p(
        d, std::vector<core::RmseAccumulator>(hs.size()));
    std::vector<std::vector<core::RmseAccumulator>> acc_j = acc_p;

    const std::size_t eval_stride =
        static_cast<std::size_t>(args.get_int("eval-stride", 10));
    for (std::size_t step = 0; step < t.num_steps(); ++step) {
      proposed.step();
      jaccard.step();
      if (step < 100 || step % eval_stride != 0) continue;
      for (std::size_t hi = 0; hi < hs.size(); ++hi) {
        if (step + hs[hi] >= t.num_steps()) continue;
        const Matrix fp = proposed.forecast_all(hs[hi]);
        const Matrix fj = jaccard.forecast_all(hs[hi]);
        for (std::size_t r = 0; r < d; ++r) {
          acc_p[r][hi].add(resource_rmse(t, step + hs[hi], r, fp));
          acc_j[r][hi].add(resource_rmse(t, step + hs[hi], r, fj));
        }
      }
    }

    for (std::size_t r = 0; r < d; ++r) {
      for (std::size_t hi = 0; hi < hs.size(); ++hi) {
        table.add_row({name, trace::resource_name(r),
                       static_cast<double>(hs[hi]), acc_p[r][hi].value(),
                       acc_j[r][hi].value()});
      }
    }
  }
  bench::emit(table, args);
  std::cout << "\nExpected shape: proposed similarity <= Jaccard (better "
               "or similar) on every row.\n";
  return 0;
}
