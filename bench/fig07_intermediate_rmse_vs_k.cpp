// Fig. 7 — Intermediate RMSE vs the number of clusters K (B = 0.3).
//
// Expected shape: the proposed approach is close to its floor already at
// small K (a handful of centroids summarize the whole fleet); the floor is
// above zero even at K = N because B = 0.3 keeps the stored measurements
// stale. Minimum-distance needs much larger K to catch up.
#include "bench_util.hpp"
#include "clustering_methods.hpp"

int main(int argc, char** argv) {
  using namespace resmon;
  const Args args(argc, argv);
  bench::banner("Fig. 7",
                "Intermediate RMSE vs number of clusters K (B = 0.3)");

  const double b = args.get_double("b", 0.3);
  Table table({"dataset", "resource", "K", "Proposed", "Min-distance",
               "Static (offline)"},
              4);
  for (const std::string& name : bench::datasets_from_args(args)) {
    trace::SyntheticProfile profile = bench::profile_from_args(args, name);
    const trace::InMemoryTrace t =
        trace::generate(profile, args.get_int("seed", 1));
    std::vector<std::size_t> ks{1, 2, 3, 5, 10, 20, 50};
    ks.push_back(t.num_nodes());  // K = N endpoint of the paper's sweep
    for (const std::size_t k : ks) {
      if (k > t.num_nodes()) continue;
      const bench::ClusteringSweepResult r =
          bench::clustering_sweep(t, b, k, args.get_int("seed", 1));
      for (std::size_t res = 0; res < t.num_resources(); ++res) {
        table.add_row({name, trace::resource_name(res),
                       static_cast<double>(k), r.proposed[res],
                       r.min_distance[res], r.statik[res]});
      }
    }
  }
  bench::emit(table, args);
  std::cout << "\nExpected shape: Proposed near its floor by K ~ 3-5; floor "
               "> 0 because B = 0.3 leaves stale measurements.\n";
  return 0;
}
