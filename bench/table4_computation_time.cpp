// Table IV — Computation time (monitor selection + model building) of each
// approach in the §VI-E setting: 100 nodes, 500 training steps, K = 10.
//
// Expected shape: Min-distance < Proposed < Top-W < Batch Selection <
// Top-W-Update. Absolute numbers depend on the machine; the ordering is the
// result (Top-W-Update re-evaluates the conditional variance of the whole
// fleet for every candidate at every pick).
//
// Also includes BM_PipelineStep, which times the full monitoring pipeline
// loop at 1/2/4 threads and reports the per-stage wall-time split
// (collect/cluster/forecast) from MonitoringPipeline::stage_timers().
#include <benchmark/benchmark.h>

#include "core/pipeline.hpp"
#include "gaussian/monitor_experiment.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace resmon;

const trace::InMemoryTrace& experiment_trace(const std::string& dataset) {
  static std::map<std::string, trace::InMemoryTrace> cache;
  auto it = cache.find(dataset);
  if (it == cache.end()) {
    trace::SyntheticProfile profile = trace::profile_by_name(dataset);
    profile.num_nodes = 100;
    profile.num_steps = 1000;
    it = cache.emplace(dataset, trace::generate(profile, 1)).first;
  }
  return it->second;
}

void run_method(benchmark::State& state, const std::string& dataset,
                gaussian::MonitorMethod method) {
  const trace::InMemoryTrace& t = experiment_trace(dataset);
  gaussian::MonitorExperimentOptions opts;
  opts.num_monitors = 25;
  opts.train_steps = 500;
  opts.test_steps = 500;
  double selection_seconds = 0.0;
  double rmse = 0.0;
  for (auto _ : state) {
    const gaussian::MonitorExperimentResult r =
        gaussian::run_monitor_experiment(t, method, opts);
    benchmark::DoNotOptimize(r.rmse);
    selection_seconds += r.selection_seconds;
    rmse = r.rmse;
  }
  state.counters["selection_s"] =
      selection_seconds / static_cast<double>(state.iterations());
  state.counters["rmse"] = rmse;
}

#define RESMON_TABLE4(name, dataset, method)                        \
  void name(benchmark::State& s) { run_method(s, dataset, method); } \
  BENCHMARK(name)->Unit(benchmark::kMillisecond)->Iterations(3)

RESMON_TABLE4(BM_Proposed_Alibaba, "alibaba",
              gaussian::MonitorMethod::kProposed);
RESMON_TABLE4(BM_MinDistance_Alibaba, "alibaba",
              gaussian::MonitorMethod::kMinimumDistance);
RESMON_TABLE4(BM_TopW_Alibaba, "alibaba", gaussian::MonitorMethod::kTopW);
RESMON_TABLE4(BM_TopWUpdate_Alibaba, "alibaba",
              gaussian::MonitorMethod::kTopWUpdate);
RESMON_TABLE4(BM_Batch_Alibaba, "alibaba",
              gaussian::MonitorMethod::kBatchSelection);

RESMON_TABLE4(BM_Proposed_Bitbrains, "bitbrains",
              gaussian::MonitorMethod::kProposed);
RESMON_TABLE4(BM_MinDistance_Bitbrains, "bitbrains",
              gaussian::MonitorMethod::kMinimumDistance);
RESMON_TABLE4(BM_TopW_Bitbrains, "bitbrains",
              gaussian::MonitorMethod::kTopW);
RESMON_TABLE4(BM_TopWUpdate_Bitbrains, "bitbrains",
              gaussian::MonitorMethod::kTopWUpdate);
RESMON_TABLE4(BM_Batch_Bitbrains, "bitbrains",
              gaussian::MonitorMethod::kBatchSelection);

RESMON_TABLE4(BM_Proposed_Google, "google",
              gaussian::MonitorMethod::kProposed);
RESMON_TABLE4(BM_MinDistance_Google, "google",
              gaussian::MonitorMethod::kMinimumDistance);
RESMON_TABLE4(BM_TopW_Google, "google", gaussian::MonitorMethod::kTopW);
RESMON_TABLE4(BM_TopWUpdate_Google, "google",
              gaussian::MonitorMethod::kTopWUpdate);
RESMON_TABLE4(BM_Batch_Google, "google",
              gaussian::MonitorMethod::kBatchSelection);

// Full pipeline step loop at several thread counts; counters expose the
// per-stage split so regressions in one stage are visible directly.
void BM_PipelineStep(benchmark::State& state) {
  const trace::InMemoryTrace& t = experiment_trace("alibaba");
  core::PipelineOptions opts;
  opts.num_clusters = 10;
  opts.forecaster = forecast::ForecasterKind::kHoltWinters;
  opts.schedule = {.initial_steps = 48, .retrain_interval = 24};
  opts.seed = 1;
  opts.num_threads = static_cast<std::size_t>(state.range(0));
  const std::size_t steps = 96;
  core::StageTimers timers;
  for (auto _ : state) {
    core::MonitoringPipeline p(t, opts);
    p.run(steps);
    benchmark::DoNotOptimize(p.forecast_all(1));
    timers = p.stage_timers();
  }
  state.counters["collect_s"] = timers.collect_seconds;
  state.counters["cluster_s"] = timers.cluster_seconds;
  state.counters["forecast_s"] = timers.forecast_seconds;
}
BENCHMARK(BM_PipelineStep)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4);

}  // namespace

BENCHMARK_MAIN();
