// Table IV — Computation time (monitor selection + model building) of each
// approach in the §VI-E setting: 100 nodes, 500 training steps, K = 10.
//
// Expected shape: Min-distance < Proposed < Top-W < Batch Selection <
// Top-W-Update. Absolute numbers depend on the machine; the ordering is the
// result (Top-W-Update re-evaluates the conditional variance of the whole
// fleet for every candidate at every pick).
#include <benchmark/benchmark.h>

#include "gaussian/monitor_experiment.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace resmon;

const trace::InMemoryTrace& experiment_trace(const std::string& dataset) {
  static std::map<std::string, trace::InMemoryTrace> cache;
  auto it = cache.find(dataset);
  if (it == cache.end()) {
    trace::SyntheticProfile profile = trace::profile_by_name(dataset);
    profile.num_nodes = 100;
    profile.num_steps = 1000;
    it = cache.emplace(dataset, trace::generate(profile, 1)).first;
  }
  return it->second;
}

void run_method(benchmark::State& state, const std::string& dataset,
                gaussian::MonitorMethod method) {
  const trace::InMemoryTrace& t = experiment_trace(dataset);
  gaussian::MonitorExperimentOptions opts;
  opts.num_monitors = 25;
  opts.train_steps = 500;
  opts.test_steps = 500;
  double selection_seconds = 0.0;
  double rmse = 0.0;
  for (auto _ : state) {
    const gaussian::MonitorExperimentResult r =
        gaussian::run_monitor_experiment(t, method, opts);
    benchmark::DoNotOptimize(r.rmse);
    selection_seconds += r.selection_seconds;
    rmse = r.rmse;
  }
  state.counters["selection_s"] =
      selection_seconds / static_cast<double>(state.iterations());
  state.counters["rmse"] = rmse;
}

#define RESMON_TABLE4(name, dataset, method)                        \
  void name(benchmark::State& s) { run_method(s, dataset, method); } \
  BENCHMARK(name)->Unit(benchmark::kMillisecond)->Iterations(3)

RESMON_TABLE4(BM_Proposed_Alibaba, "alibaba",
              gaussian::MonitorMethod::kProposed);
RESMON_TABLE4(BM_MinDistance_Alibaba, "alibaba",
              gaussian::MonitorMethod::kMinimumDistance);
RESMON_TABLE4(BM_TopW_Alibaba, "alibaba", gaussian::MonitorMethod::kTopW);
RESMON_TABLE4(BM_TopWUpdate_Alibaba, "alibaba",
              gaussian::MonitorMethod::kTopWUpdate);
RESMON_TABLE4(BM_Batch_Alibaba, "alibaba",
              gaussian::MonitorMethod::kBatchSelection);

RESMON_TABLE4(BM_Proposed_Bitbrains, "bitbrains",
              gaussian::MonitorMethod::kProposed);
RESMON_TABLE4(BM_MinDistance_Bitbrains, "bitbrains",
              gaussian::MonitorMethod::kMinimumDistance);
RESMON_TABLE4(BM_TopW_Bitbrains, "bitbrains",
              gaussian::MonitorMethod::kTopW);
RESMON_TABLE4(BM_TopWUpdate_Bitbrains, "bitbrains",
              gaussian::MonitorMethod::kTopWUpdate);
RESMON_TABLE4(BM_Batch_Bitbrains, "bitbrains",
              gaussian::MonitorMethod::kBatchSelection);

RESMON_TABLE4(BM_Proposed_Google, "google",
              gaussian::MonitorMethod::kProposed);
RESMON_TABLE4(BM_MinDistance_Google, "google",
              gaussian::MonitorMethod::kMinimumDistance);
RESMON_TABLE4(BM_TopW_Google, "google", gaussian::MonitorMethod::kTopW);
RESMON_TABLE4(BM_TopWUpdate_Google, "google",
              gaussian::MonitorMethod::kTopWUpdate);
RESMON_TABLE4(BM_Batch_Google, "google",
              gaussian::MonitorMethod::kBatchSelection);

}  // namespace

BENCHMARK_MAIN();
