// Table I — Intermediate RMSE of clustering independent scalars (one
// K-means per resource type) vs clustering full measurement vectors (one
// joint K-means over all resources).
//
// Expected shape: scalar (per-resource) clustering wins on every
// dataset/resource, because CPU and memory are only weakly correlated.
#include "bench_util.hpp"

#include "core/pipeline.hpp"

namespace {

using namespace resmon;

/// Time-averaged per-resource intermediate RMSE for one clustering mode.
std::vector<double> run_mode(const trace::Trace& t, bool per_resource,
                             const Args& args) {
  core::PipelineOptions o;
  o.max_frequency = args.get_double("b", 0.3);
  o.num_clusters = static_cast<std::size_t>(args.get_int("k", 3));
  o.cluster_per_resource = per_resource;
  o.num_threads = args.get_threads();
  core::MonitoringPipeline pipeline(t, o);

  std::vector<core::RmseAccumulator> acc(t.num_resources());
  while (!pipeline.done()) {
    pipeline.step();
    for (std::size_t r = 0; r < t.num_resources(); ++r) {
      // Scalar mode: view = resource, dim = 0. Joint mode: view = 0,
      // dim = resource.
      acc[r].add(per_resource ? pipeline.intermediate_rmse(r, 0)
                              : pipeline.intermediate_rmse(0, r));
    }
  }
  std::vector<double> out;
  for (const auto& a : acc) out.push_back(a.value());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace resmon;
  const Args args(argc, argv);
  bench::banner("Table I",
                "Intermediate RMSE: independent per-resource scalar "
                "clustering vs joint full-vector clustering (B = 0.3, "
                "K = 3)");

  Table table({"resource & dataset", "Scalar", "Full"}, 3);
  for (const std::string& name : bench::datasets_from_args(args)) {
    trace::SyntheticProfile profile = bench::profile_from_args(args, name);
    const trace::InMemoryTrace t =
        trace::generate(profile, args.get_int("seed", 1));
    const std::vector<double> scalar = run_mode(t, true, args);
    const std::vector<double> full = run_mode(t, false, args);
    for (std::size_t r = 0; r < t.num_resources(); ++r) {
      table.add_row({trace::resource_name(r) + " " + name, scalar[r],
                     full[r]});
    }
  }
  bench::emit(table, args);
  std::cout << "\nExpected shape: Scalar < Full on every row (Table I shows "
               "the same ordering on all three real traces).\n";
  return 0;
}
