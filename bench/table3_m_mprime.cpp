// Table III — RMSE for different values of M (similarity look-back,
// eq. (10)) and M' (membership/offset look-back, §V-C) on the Google-
// profile CPU data, for h in {1, 5, 10}.
//
// Expected shape: M = 1 is a good default everywhere; small M' is best at
// h = 1 and its advantage shrinks as the horizon grows (forecast farther
// -> rely on longer-term membership).
#include <cmath>

#include "bench_util.hpp"

#include "core/pipeline.hpp"

namespace {

using namespace resmon;

double resource_rmse(const trace::Trace& t, std::size_t step,
                     std::size_t resource, const Matrix& estimate) {
  double se = 0.0;
  for (std::size_t i = 0; i < t.num_nodes(); ++i) {
    const double e = estimate(i, resource) - t.value(i, step, resource);
    se += e * e;
  }
  return std::sqrt(se / static_cast<double>(t.num_nodes()));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace resmon;
  const Args args(argc, argv);
  bench::banner("Table III",
                "RMSE for different (M, M') look-backs, Google-profile "
                "CPU, sample-and-hold, K = 3");

  trace::SyntheticProfile profile =
      bench::profile_from_args(args, args.get("dataset", "google"));
  profile.num_resources = 1;  // the table uses CPU only
  const trace::InMemoryTrace t =
      trace::generate(profile, args.get_int("seed", 1));

  const std::vector<std::size_t> ms{1, 5, 12, 100};
  const std::vector<std::size_t> mprimes{1, 5, 12, 100};
  const std::vector<std::size_t> hs{1, 5, 10};
  const std::size_t eval_stride =
      static_cast<std::size_t>(args.get_int("eval-stride", 10));

  Table table({"h", "M", "M'", "RMSE"}, 4);
  for (const std::size_t h : hs) {
    for (const std::size_t m : ms) {
      for (const std::size_t mp : mprimes) {
        core::PipelineOptions o;
        o.max_frequency = 0.3;
        o.num_clusters = 3;
        o.similarity_lookback = m;
        o.offset_lookback = mp;
        o.forecaster = forecast::ForecasterKind::kSampleHold;
        o.schedule = {.initial_steps = 100, .retrain_interval = 288};
        o.seed = 1;
        o.num_threads = args.get_threads();
        core::MonitoringPipeline pipeline(t, o);

        core::RmseAccumulator acc;
        for (std::size_t step = 0; step < t.num_steps(); ++step) {
          pipeline.step();
          if (step < 150 || step % eval_stride != 0) continue;
          if (step + h >= t.num_steps()) continue;
          acc.add(resource_rmse(t, step + h, 0, pipeline.forecast_all(h)));
        }
        table.add_row({static_cast<double>(h), static_cast<double>(m),
                       static_cast<double>(mp), acc.value()});
      }
    }
  }
  bench::emit(table, args);
  std::cout << "\nExpected shape: M = 1 is a consistently good choice, "
               "M = 100 clearly worse; the penalty for larger M' shrinks "
               "as h grows (longer-horizon forecasts rely on longer-term "
               "membership).\n";
  return 0;
}
