// Table II — Aggregated training time of the forecasting models on one
// cluster centroid over the entire monitoring duration, following the
// paper's schedule: initial fit after 1000 steps, retrain every 288 steps.
//
// Expected shape: ARIMA trains one to two orders of magnitude faster than
// LSTM; both are small compared to the monitoring duration itself.
// Absolute numbers differ from the paper's i7-6700 testbed; the ordering is
// what the table establishes.
#include <benchmark/benchmark.h>

#include "cluster/dynamic_cluster.hpp"
#include "collect/fleet_collector.hpp"
#include "forecast/arima.hpp"
#include "forecast/lstm.hpp"
#include "forecast/managed.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace resmon;

/// The centroid series of cluster 0 for a dataset profile: collection at
/// B = 0.3 plus dynamic clustering, exactly what the models train on.
std::vector<double> centroid_series(const std::string& dataset,
                                    std::size_t steps) {
  trace::SyntheticProfile profile = trace::profile_by_name(dataset);
  profile.num_nodes = 40;
  profile.num_steps = steps;
  profile.num_resources = 1;
  const trace::InMemoryTrace t = trace::generate(profile, 1);

  collect::FleetCollector fleet(
      t, collect::make_policy_factory(collect::PolicyKind::kAdaptive, 0.3));
  cluster::DynamicClusterTracker tracker({.k = 3}, 1);
  for (std::size_t step = 0; step < steps; ++step) {
    fleet.step(step);
    Matrix snapshot(t.num_nodes(), 1);
    for (std::size_t i = 0; i < t.num_nodes(); ++i) {
      snapshot(i, 0) = fleet.store().stored(i)[0];
    }
    tracker.update(snapshot);
  }
  return tracker.centroid_series(0, 0);
}

/// Replay the paper's observe/retrain schedule and report the total time
/// spent in fit() as the benchmark's metric.
void run_schedule(benchmark::State& state, const std::string& dataset,
                  std::size_t steps, forecast::ForecasterKind kind) {
  const std::vector<double> series = centroid_series(dataset, steps);
  double total_training = 0.0;
  std::size_t fits = 0;
  for (auto _ : state) {
    forecast::ManagedForecaster managed(
        forecast::make_forecaster(kind, 1),
        {.initial_steps = 1000, .retrain_interval = 288});
    for (const double v : series) managed.observe(v);
    benchmark::DoNotOptimize(managed.forecast(1));
    total_training += managed.total_training_seconds();
    fits += managed.fits_completed();
  }
  state.counters["train_s_total"] = total_training /
                                    static_cast<double>(state.iterations());
  state.counters["fits"] =
      static_cast<double>(fits) / static_cast<double>(state.iterations());
  state.counters["series_len"] = static_cast<double>(series.size());
}

void BM_Arima_Alibaba(benchmark::State& s) {
  run_schedule(s, "alibaba", 3000, forecast::ForecasterKind::kArima);
}
void BM_Arima_Bitbrains(benchmark::State& s) {
  run_schedule(s, "bitbrains", 2600, forecast::ForecasterKind::kArima);
}
void BM_Arima_Google(benchmark::State& s) {
  run_schedule(s, "google", 2600, forecast::ForecasterKind::kArima);
}
void BM_AutoArima_Alibaba(benchmark::State& s) {
  run_schedule(s, "alibaba", 3000, forecast::ForecasterKind::kAutoArima);
}
void BM_Lstm_Alibaba(benchmark::State& s) {
  run_schedule(s, "alibaba", 3000, forecast::ForecasterKind::kLstm);
}
void BM_Lstm_Bitbrains(benchmark::State& s) {
  run_schedule(s, "bitbrains", 2600, forecast::ForecasterKind::kLstm);
}
void BM_Lstm_Google(benchmark::State& s) {
  run_schedule(s, "google", 2600, forecast::ForecasterKind::kLstm);
}

}  // namespace

BENCHMARK(BM_Arima_Alibaba)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Arima_Bitbrains)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Arima_Google)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_AutoArima_Alibaba)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Lstm_Alibaba)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Lstm_Bitbrains)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Lstm_Google)->Unit(benchmark::kMillisecond)->Iterations(1);

BENCHMARK_MAIN();
