// Ablation — the V0 control parameter of the adaptive transmission rule.
//
// V_t = V0 * (t+1)^gamma weights the staleness penalty against the virtual
// queue (eq. (7)). Tiny V0 makes the rule behave like uniform sampling
// (budget-driven timing); larger V0 times transmissions by error magnitude,
// improving RMSE at the cost of looser finite-horizon budget compliance.
// This sweep shows that trade-off and why the harnesses default to
// V0 ~ 0.5 on normalized utilizations (see DESIGN.md on the paper's
// V0 = 1e-12).
#include <cmath>

#include "bench_util.hpp"

#include "collect/fleet_collector.hpp"
#include "core/metrics.hpp"

int main(int argc, char** argv) {
  using namespace resmon;
  const Args args(argc, argv);
  bench::banner("Ablation: V0 sweep",
                "RMSE(h=0) and achieved frequency vs V0 at B = 0.3 "
                "(uniform baseline shown for reference)");

  Table table({"dataset", "V0", "RMSE h=0", "actual freq"}, 4);
  const double b = args.get_double("b", 0.3);
  for (const std::string& name : bench::datasets_from_args(args)) {
    trace::SyntheticProfile profile = bench::profile_from_args(args, name);
    const trace::InMemoryTrace t =
        trace::generate(profile, args.get_int("seed", 1));

    auto measure = [&](collect::PolicyKind kind, double v0) {
      collect::FleetCollector fleet(
          t, collect::make_policy_factory(kind, b, v0, 0.65, false));
      core::RmseAccumulator acc;
      for (std::size_t step = 0; step < t.num_steps(); ++step) {
        fleet.step(step);
        double se = 0.0;
        for (std::size_t i = 0; i < t.num_nodes(); ++i) {
          for (std::size_t r = 0; r < t.num_resources(); ++r) {
            const double e =
                fleet.store().stored(i)[r] - t.value(i, step, r);
            se += e * e;
          }
        }
        acc.add(std::sqrt(se / static_cast<double>(t.num_nodes())));
      }
      table.add_row({name,
                     kind == collect::PolicyKind::kUniform
                         ? std::string("(uniform)")
                         : std::string(std::to_string(v0)),
                     acc.value(), fleet.average_actual_frequency()});
    };

    for (const double v0 : {1e-12, 1e-3, 0.05, 0.2, 0.5, 2.0, 10.0}) {
      measure(collect::PolicyKind::kAdaptive, v0);
    }
    measure(collect::PolicyKind::kUniform, 0.0);
  }
  bench::emit(table, args);
  std::cout << "\nExpected shape: V0 -> 0 reproduces uniform sampling; "
               "increasing V0 improves the RMSE while finite-horizon budget "
               "compliance loosens slightly (the queue needs longer to "
               "catch up).\n";
  return 0;
}
