// Ablation — the compressed-sensing baseline family ([6]-[10] in §II).
//
// The paper argues (without running them) that approaches which sample
// random (node, step) measurements and reconstruct the rest by low-rank
// matrix completion underperform its mechanism. This bench runs an actual
// ALS matrix-completion baseline at the same average budget B and compares
// the h = 0 estimation error against (a) last-value hold on the same
// random samples and (b) the proposed adaptive-transmission + dynamic-
// clustering pipeline.
//
// Expected shape: the proposed mechanism (which *chooses* what to send
// and keeps every node's latest value) is the most accurate at every
// budget. The completion baseline is worst: a machine-utilization matrix
// is *not* low-rank over short windows (per-node noise is full-rank), so
// the rank-r reconstruction over-smooths — which is exactly the paper's
// §II argument against this family.
#include <cmath>

#include "bench_util.hpp"

#include "collect/fleet_collector.hpp"
#include "completion/matrix_completion.hpp"
#include "core/metrics.hpp"

namespace {

using namespace resmon;

/// h = 0 error of the proposed collection stage (adaptive transmission),
/// per resource 0 only, matching the completion experiment's scope.
double proposed_h0(const trace::Trace& t, double b) {
  collect::FleetCollector fleet(
      t, collect::make_policy_factory(collect::PolicyKind::kAdaptive, b,
                                      0.5, 0.65, false));
  core::RmseAccumulator acc;
  for (std::size_t step = 0; step < t.num_steps(); ++step) {
    fleet.step(step);
    double se = 0.0;
    for (std::size_t i = 0; i < t.num_nodes(); ++i) {
      const double e = fleet.store().stored(i)[0] - t.value(i, step, 0);
      se += e * e;
    }
    acc.add(std::sqrt(se / static_cast<double>(t.num_nodes())));
  }
  return acc.value();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace resmon;
  const Args args(argc, argv);
  bench::banner("Ablation: compressed sensing ([6]-[10])",
                "Random sampling + rank-r matrix completion vs the "
                "proposed adaptive collection, same budget, CPU");

  const std::size_t window =
      static_cast<std::size_t>(args.get_int("window", 48));
  const std::size_t rank = static_cast<std::size_t>(args.get_int("rank", 4));

  Table table({"dataset", "B", "completion", "random-sample hold",
               "proposed (adaptive)"},
              4);
  for (const std::string& name : bench::datasets_from_args(args)) {
    trace::SyntheticProfile profile = bench::profile_from_args(args, name);
    if (!args.has("steps") && !args.get_bool("full")) {
      profile.num_steps = 1200;  // completion is O(window sweeps) per step
    }
    const trace::InMemoryTrace t =
        trace::generate(profile, args.get_int("seed", 1));
    for (const double b : {0.1, 0.3, 0.5}) {
      const completion::CompletionExperimentResult r =
          completion::run_completion_experiment(
              t, 0, b, window,
              {.rank = rank, .iterations = 8,
               .seed = static_cast<std::uint64_t>(args.get_int("seed", 1))});
      table.add_row({name, b, r.rmse, r.hold_rmse, proposed_h0(t, b)});
    }
  }
  bench::emit(table, args);
  std::cout << "\nExpected shape: proposed best at every budget; "
               "completion worst (the low-rank assumption fails on "
               "utilization data), matching the paper's argument against "
               "this family.\n";
  return 0;
}
