// Scaling benchmark for the two-tier collection topology: slots/sec and
// p99 slot-barrier latency of a single-tier controller vs a root + 4
// aggregators, at several fleet sizes over real loopback TCP.
//
// This is the measurement behind DESIGN.md "Hierarchical collection": the
// root of a two-tier fleet touches one compacted summary per shard per
// slot instead of one frame per agent, so its per-slot work stops growing
// with the agent count. Results persist into BENCH_scaling.json (merged
// by harness, see bench::BenchJson). Engineering hygiene, not a paper
// artifact.
//
// Flags: --nodes N (single size instead of the default 16/48/96 sweep),
// --slots, --shards, --seed, --json PATH, --json-run LABEL (append a
// timestamped history entry for this run to the JSON sink).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "agg/aggregator.hpp"
#include "bench_util.hpp"
#include "collect/fleet_collector.hpp"
#include "net/agent.hpp"
#include "net/controller.hpp"
#include "net/socket.hpp"

namespace {

using namespace resmon;

/// Wall-clock timings of one topology run.
struct RunStats {
  double slots_per_sec = 0.0;
  double mean_barrier_ms = 0.0;
  double p99_barrier_ms = 0.0;
};

std::unique_ptr<net::Agent> make_agent(std::uint16_t port, std::size_t node,
                                       std::size_t num_resources) {
  net::AgentOptions opt;
  opt.port = port;
  opt.node = static_cast<std::uint32_t>(node);
  opt.num_resources = static_cast<std::uint32_t>(num_resources);
  return std::make_unique<net::Agent>(
      opt,
      collect::make_policy_factory(collect::PolicyKind::kAlways, 1.0)());
}

/// Connect `count` agents (nodes [first, first+count)) against `port`,
/// pumping `collector` until every hello completed.
std::vector<std::unique_ptr<net::Agent>> connect_fleet(
    net::Controller& collector, std::uint16_t port, std::size_t first,
    std::size_t count, std::size_t num_resources) {
  std::vector<std::unique_ptr<net::Agent>> agents(count);
  std::vector<std::thread> connectors;
  connectors.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    agents[i] = make_agent(port, first + i, num_resources);
    connectors.emplace_back([&, i] { agents[i]->connect(); });
  }
  if (!collector.wait_for_agents(count, 30000)) {
    throw std::runtime_error("scaling_tiers: fleet handshakes timed out");
  }
  for (std::thread& th : connectors) th.join();
  return agents;
}

RunStats stats_from(const std::vector<double>& barrier_ms, double total_s,
                    std::size_t slots) {
  std::vector<double> sorted = barrier_ms;
  std::sort(sorted.begin(), sorted.end());
  RunStats s;
  s.slots_per_sec = total_s > 0 ? static_cast<double>(slots) / total_s : 0;
  double sum = 0;
  for (const double v : sorted) sum += v;
  s.mean_barrier_ms = sorted.empty() ? 0 : sum / sorted.size();
  s.p99_barrier_ms =
      sorted.empty() ? 0 : sorted[(sorted.size() * 99) / 100];
  return s;
}

/// One fleet of `n` agents feeding a single-tier controller for `slots`
/// lock-step slots; the barrier latency is collect_slot's wall time.
RunStats run_single_tier(const trace::InMemoryTrace& trace,
                         std::size_t slots) {
  const std::size_t n = trace.num_nodes();
  net::ControllerOptions copt;
  copt.num_nodes = n;
  copt.num_resources = trace.num_resources();
  net::Controller controller(net::Socket::listen_tcp("127.0.0.1", 0), copt);
  auto agents = connect_fleet(controller, controller.port(), 0, n,
                              trace.num_resources());

  using clock = std::chrono::steady_clock;
  std::vector<double> barrier_ms;
  barrier_ms.reserve(slots);
  const auto run_start = clock::now();
  for (std::size_t t = 0; t < slots; ++t) {
    for (std::size_t node = 0; node < n; ++node) {
      agents[node]->observe(t, trace.measurement(node, t));
    }
    const auto barrier_start = clock::now();
    auto messages = controller.collect_slot(t, 30000);
    if (!messages.has_value()) {
      throw std::runtime_error("scaling_tiers: single-tier barrier stuck");
    }
    barrier_ms.push_back(
        std::chrono::duration<double, std::milli>(clock::now() -
                                                  barrier_start)
            .count());
  }
  const double total_s =
      std::chrono::duration<double>(clock::now() - run_start).count();
  return stats_from(barrier_ms, total_s, slots);
}

/// The same fleet behind `shards` aggregators forwarding summaries to a
/// root; the barrier latency covers every shard forward plus the root's
/// own collect_slot (the full slot is done only then).
RunStats run_two_tier(const trace::InMemoryTrace& trace, std::size_t slots,
                      std::size_t shards) {
  const std::size_t n = trace.num_nodes();
  net::ControllerOptions copt;
  copt.num_nodes = n;
  copt.num_resources = trace.num_resources();
  copt.num_shards = shards;
  net::Controller root(net::Socket::listen_tcp("127.0.0.1", 0), copt);

  std::vector<std::unique_ptr<agg::Aggregator>> aggs;
  for (std::size_t shard = 0; shard < shards; ++shard) {
    const agg::ShardRange range = agg::shard_range(n, shards, shard);
    agg::AggregatorOptions aopt;
    aopt.shard = shard;
    aopt.first_node = range.first_node;
    aopt.num_nodes = range.num_nodes;
    aopt.num_resources = trace.num_resources();
    aopt.upstream_port = root.port();
    aggs.push_back(std::make_unique<agg::Aggregator>(
        net::Socket::listen_tcp("127.0.0.1", 0), aopt));
    // Pump the root until the connector thread reports the shard hello
    // done (its flag, not the aggregator's own state, which it is writing).
    std::atomic<bool> done{false};
    std::thread connector([&] {
      aggs.back()->connect_upstream();
      done.store(true, std::memory_order_release);
    });
    while (!done.load(std::memory_order_acquire)) root.pump_idle(10);
    connector.join();
  }

  std::vector<std::vector<std::unique_ptr<net::Agent>>> fleets;
  for (std::size_t shard = 0; shard < shards; ++shard) {
    const agg::ShardRange range = agg::shard_range(n, shards, shard);
    fleets.push_back(connect_fleet(aggs[shard]->downstream(),
                                   aggs[shard]->port(), range.first_node,
                                   range.num_nodes, trace.num_resources()));
  }

  using clock = std::chrono::steady_clock;
  std::vector<double> barrier_ms;
  barrier_ms.reserve(slots);
  const auto run_start = clock::now();
  for (std::size_t t = 0; t < slots; ++t) {
    for (std::size_t shard = 0; shard < shards; ++shard) {
      const agg::ShardRange range = agg::shard_range(n, shards, shard);
      for (std::size_t i = 0; i < range.num_nodes; ++i) {
        fleets[shard][i]->observe(
            t, trace.measurement(range.first_node + i, t));
      }
    }
    const auto barrier_start = clock::now();
    for (auto& aggregator : aggs) {
      if (!aggregator->forward_slot(t, 30000)) {
        throw std::runtime_error("scaling_tiers: shard barrier stuck");
      }
    }
    auto messages = root.collect_slot(t, 30000);
    if (!messages.has_value()) {
      throw std::runtime_error("scaling_tiers: root barrier stuck");
    }
    barrier_ms.push_back(
        std::chrono::duration<double, std::milli>(clock::now() -
                                                  barrier_start)
            .count());
  }
  const double total_s =
      std::chrono::duration<double>(clock::now() - run_start).count();
  return stats_from(barrier_ms, total_s, slots);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args(argc, argv);
    bench::banner("scaling_tiers",
                  "slots/sec and p99 slot-barrier latency, single-tier "
                  "controller vs root + aggregators, over loopback TCP");

    const std::size_t slots =
        static_cast<std::size_t>(args.get_int("slots", 40));
    const std::size_t shards =
        static_cast<std::size_t>(args.get_int("shards", 4));
    std::vector<std::size_t> sizes{16, 48, 96};
    if (args.has("nodes")) {
      sizes = {static_cast<std::size_t>(args.get_int("nodes", 16))};
    }

    Table table({"nodes", "tiers", "slots_per_sec", "mean_barrier_ms",
                 "p99_barrier_ms"},
                3);
    bench::BenchJson sink("resmon-scaling", "scaling_tiers");
    for (const std::size_t n : sizes) {
      trace::SyntheticProfile profile = trace::profile_by_name("google");
      profile.num_nodes = n;
      profile.num_steps = slots;
      const trace::InMemoryTrace trace = trace::generate(
          profile, static_cast<std::uint64_t>(args.get_int("seed", 1)));

      const RunStats one = run_single_tier(trace, slots);
      const RunStats two = run_two_tier(trace, slots, shards);
      table.add_row({static_cast<double>(n), 1.0, one.slots_per_sec,
                     one.mean_barrier_ms, one.p99_barrier_ms});
      table.add_row({static_cast<double>(n), 2.0, two.slots_per_sec,
                     two.mean_barrier_ms, two.p99_barrier_ms});
      for (const auto& [tiers, stats] :
           {std::pair<int, const RunStats&>{1, one}, {2, two}}) {
        sink.add("nodes=" + std::to_string(n) +
                     "/tiers=" + std::to_string(tiers),
                 {{"nodes", static_cast<double>(n)},
                  {"tiers", static_cast<double>(tiers)},
                  {"shards", tiers == 2 ? static_cast<double>(shards) : 0.0},
                  {"slots", static_cast<double>(slots)},
                  {"slots_per_sec", stats.slots_per_sec},
                  {"mean_barrier_ms", stats.mean_barrier_ms},
                  {"p99_barrier_ms", stats.p99_barrier_ms}});
      }
    }
    bench::emit(table, args);
    sink.write(args.get("json", "BENCH_scaling.json"),
               args.get("json-run", ""));
    std::cout << "\np99_barrier_ms = 99th percentile wall time from the "
                 "last observe to the slot fully collected at the top "
                 "tier.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "scaling_tiers: " << e.what() << "\n";
    return 1;
  }
}
