// Shared driver for the clustering-method comparisons (Figs. 6, 7, 10, 11):
// runs the collection stage once per configuration and evaluates the
// proposed dynamic clustering against the static-offline and
// minimum-distance baselines on the same stored measurements.
#pragma once

#include <cmath>
#include <vector>

#include "cluster/baselines.hpp"
#include "cluster/dynamic_cluster.hpp"
#include "collect/fleet_collector.hpp"
#include "core/metrics.hpp"
#include "trace/trace.hpp"

namespace resmon::bench {

struct ClusteringSweepResult {
  // Time-averaged intermediate RMSE per resource, per method.
  std::vector<double> proposed;
  std::vector<double> min_distance;
  std::vector<double> statik;
};

/// Per-resource intermediate RMSE (truth vs assigned centroid) at one step.
inline double intermediate_at(const trace::Trace& t, std::size_t step,
                              std::size_t resource,
                              const cluster::Clustering& c) {
  double se = 0.0;
  for (std::size_t i = 0; i < t.num_nodes(); ++i) {
    const double err =
        t.value(i, step, resource) - c.centroids(c.assignment[i], 0);
    se += err * err;
  }
  return std::sqrt(se / static_cast<double>(t.num_nodes()));
}

/// Run the three clustering methods over the whole trace with transmission
/// budget `b` and `k` clusters. All methods see the same B-constrained
/// stored measurements; the static baseline additionally sees the full
/// (offline) series for its one-time clustering, as in the paper.
inline ClusteringSweepResult clustering_sweep(const trace::Trace& t,
                                              double b, std::size_t k,
                                              std::uint64_t seed,
                                              cluster::SimilarityKind sim =
                                                  cluster::SimilarityKind::
                                                      kIntersection) {
  const std::size_t d = t.num_resources();

  collect::FleetCollector fleet(
      t, collect::make_policy_factory(collect::PolicyKind::kAdaptive, b));

  std::vector<cluster::DynamicClusterTracker> trackers;
  std::vector<cluster::StaticClustering> statics;
  std::vector<cluster::MinimumDistanceClustering> mindists;
  for (std::size_t r = 0; r < d; ++r) {
    trackers.emplace_back(
        cluster::DynamicClusterOptions{.k = k, .similarity = sim},
        seed + r);
    statics.emplace_back(t, r, k, seed + 100 + r);
    mindists.emplace_back(k, seed + 200 + r);
  }

  std::vector<core::RmseAccumulator> acc_prop(d), acc_min(d), acc_stat(d);
  for (std::size_t step = 0; step < t.num_steps(); ++step) {
    fleet.step(step);
    for (std::size_t r = 0; r < d; ++r) {
      Matrix snapshot(t.num_nodes(), 1);
      for (std::size_t i = 0; i < t.num_nodes(); ++i) {
        snapshot(i, 0) = fleet.store().stored(i)[r];
      }
      acc_prop[r].add(
          intermediate_at(t, step, r, trackers[r].update(snapshot)));
      acc_min[r].add(
          intermediate_at(t, step, r, mindists[r].at(snapshot)));
      acc_stat[r].add(
          intermediate_at(t, step, r, statics[r].at(snapshot)));
    }
  }

  ClusteringSweepResult out;
  for (std::size_t r = 0; r < d; ++r) {
    out.proposed.push_back(acc_prop[r].value());
    out.min_distance.push_back(acc_min[r].value());
    out.statik.push_back(acc_stat[r].value());
  }
  return out;
}

}  // namespace resmon::bench
