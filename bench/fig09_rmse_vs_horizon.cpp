// Fig. 9 — Time-averaged RMSE vs forecast horizon h for the full pipeline
// (spatial estimation + temporal forecasting, with per-node offsets):
// ARIMA, LSTM and sample-and-hold on K = 3 clusters, sample-and-hold run
// per node (K = N), and the standard-deviation bound of a long-term-
// statistics-only predictor.
//
// Expected shape: all pipeline variants beat the stddev bound for h <= 50;
// LSTM best; K = N sample-and-hold worse than K = 3 (per-node noise hurts).
//
// Default: one dataset (--dataset alibaba) to keep runtime modest; pass
// --dataset bitbrains / google for the other panels.
#include <cmath>

#include "bench_util.hpp"

#include "core/pipeline.hpp"

namespace {

using namespace resmon;

std::vector<std::size_t> horizons() { return {1, 5, 10, 25, 50}; }

/// Per-resource RMSE of an N x d estimate matrix against truth at `step`.
double resource_rmse(const trace::Trace& t, std::size_t step,
                     std::size_t resource, const Matrix& estimate) {
  double se = 0.0;
  for (std::size_t i = 0; i < t.num_nodes(); ++i) {
    const double e = estimate(i, resource) - t.value(i, step, resource);
    se += e * e;
  }
  return std::sqrt(se / static_cast<double>(t.num_nodes()));
}

/// The paper's "standard deviation computed over all resource utilizations
/// over time": the pooled standard deviation of every (node, step) value of
/// one resource — the error of an offline mechanism that forecasts from
/// long-term statistics only.
double stddev_bound(const trace::Trace& t, std::size_t resource) {
  double mean = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < t.num_nodes(); ++i) {
    for (std::size_t s = 0; s < t.num_steps(); ++s) {
      mean += t.value(i, s, resource);
      ++count;
    }
  }
  mean /= static_cast<double>(count);
  double se = 0.0;
  for (std::size_t i = 0; i < t.num_nodes(); ++i) {
    for (std::size_t s = 0; s < t.num_steps(); ++s) {
      const double d = t.value(i, s, resource) - mean;
      se += d * d;
    }
  }
  return std::sqrt(se / static_cast<double>(count));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace resmon;
  const Args args(argc, argv);
  bench::banner("Fig. 9",
                "Time-averaged RMSE vs forecast horizon h, all forecasting "
                "models (K = 3 unless noted)");

  trace::SyntheticProfile profile =
      bench::profile_from_args(args, args.get("dataset", "alibaba"));
  if (!args.has("steps") && !args.get_bool("full")) {
    profile.num_steps = 2400;
  }
  const trace::InMemoryTrace t =
      trace::generate(profile, args.get_int("seed", 1));

  const std::size_t warmup =
      static_cast<std::size_t>(args.get_int("warmup", 1000));
  const std::size_t eval_stride =
      static_cast<std::size_t>(args.get_int("eval-stride", 20));

  auto make_pipeline = [&](forecast::ForecasterKind kind) {
    core::PipelineOptions o;
    o.max_frequency = 0.3;
    o.num_clusters = 3;
    o.forecaster = kind;
    o.schedule = {.initial_steps = warmup, .retrain_interval = 288};
    o.seed = 1;
    o.num_threads = args.get_threads();
    return core::MonitoringPipeline(t, o);
  };
  core::MonitoringPipeline arima =
      make_pipeline(forecast::ForecasterKind::kArima);
  core::MonitoringPipeline lstm =
      make_pipeline(forecast::ForecasterKind::kLstm);
  core::MonitoringPipeline hold =
      make_pipeline(forecast::ForecasterKind::kSampleHold);

  const std::size_t d = t.num_resources();
  const std::vector<std::size_t> hs = horizons();
  // acc[model][resource][h-index]
  std::vector<std::vector<std::vector<core::RmseAccumulator>>> acc(
      4, std::vector<std::vector<core::RmseAccumulator>>(
             d, std::vector<core::RmseAccumulator>(hs.size())));

  for (std::size_t step = 0; step < t.num_steps(); ++step) {
    arima.step();
    lstm.step();
    hold.step();
    if (step < warmup || (step - warmup) % eval_stride != 0) continue;
    for (std::size_t hi = 0; hi < hs.size(); ++hi) {
      const std::size_t h = hs[hi];
      if (step + h >= t.num_steps()) continue;
      const Matrix fa = arima.forecast_all(h);
      const Matrix fl = lstm.forecast_all(h);
      const Matrix fh = hold.forecast_all(h);
      const Matrix fz = hold.forecast_all(0);  // K=N sample-and-hold = z_t
      for (std::size_t r = 0; r < d; ++r) {
        acc[0][r][hi].add(resource_rmse(t, step + h, r, fa));
        acc[1][r][hi].add(resource_rmse(t, step + h, r, fl));
        acc[2][r][hi].add(resource_rmse(t, step + h, r, fh));
        acc[3][r][hi].add(resource_rmse(t, step + h, r, fz));
      }
    }
  }

  Table table({"dataset", "resource", "h", "ARIMA", "LSTM", "Hold K=3",
               "Hold K=N", "Stddev bound"},
              4);
  for (std::size_t r = 0; r < d; ++r) {
    const double bound = stddev_bound(t, r);
    for (std::size_t hi = 0; hi < hs.size(); ++hi) {
      table.add_row({profile.name, trace::resource_name(r),
                     static_cast<double>(hs[hi]), acc[0][r][hi].value(),
                     acc[1][r][hi].value(), acc[2][r][hi].value(),
                     acc[3][r][hi].value(), bound});
    }
  }
  bench::emit(table, args);
  std::cout << "\nExpected shape: models < stddev bound for h <= 50; "
               "K = N sample-and-hold worse than K = 3 at larger h.\n";
  return 0;
}
