// Fig. 6 — Intermediate RMSE vs transmission frequency B (K = 3): the
// proposed dynamic clustering vs the minimum-distance baseline and the
// offline static-clustering baseline.
//
// Expected shape: proposed < minimum-distance everywhere and close to (or
// better than) the offline static baseline; curves flatten around B = 0.3,
// which is why the paper picks that default.
#include "bench_util.hpp"
#include "clustering_methods.hpp"

int main(int argc, char** argv) {
  using namespace resmon;
  const Args args(argc, argv);
  bench::banner("Fig. 6",
                "Intermediate RMSE vs transmission frequency B (K = 3): "
                "proposed vs minimum-distance vs static (offline)");

  const std::size_t k = static_cast<std::size_t>(args.get_int("k", 3));
  Table table({"dataset", "resource", "B", "Proposed", "Min-distance",
               "Static (offline)"},
              4);
  for (const std::string& name : bench::datasets_from_args(args)) {
    trace::SyntheticProfile profile = bench::profile_from_args(args, name);
    const trace::InMemoryTrace t =
        trace::generate(profile, args.get_int("seed", 1));
    for (const double b : {0.05, 0.1, 0.2, 0.3, 0.5, 0.8}) {
      const bench::ClusteringSweepResult r =
          bench::clustering_sweep(t, b, k, args.get_int("seed", 1));
      for (std::size_t res = 0; res < t.num_resources(); ++res) {
        table.add_row({name, trace::resource_name(res), b, r.proposed[res],
                       r.min_distance[res], r.statik[res]});
      }
    }
  }
  bench::emit(table, args);
  std::cout << "\nExpected shape: Proposed < Min-distance at every B; the "
               "curve flattens near B = 0.3.\n";
  return 0;
}
