// Ablation — transmission policies under the same budget.
//
// Compares the collection error (RMSE at h = 0) of the paper's
// drift-plus-penalty rule (unclamped and clamped virtual queue), the
// calibrated send-on-delta deadband of the sensor-network literature
// ([13]-[17]), and uniform sampling, plus each policy's achieved frequency.
//
// Expected shape: the Lyapunov rule and the deadband both beat uniform;
// the Lyapunov rule tracks the budget tightly, while the deadband's
// frequency wanders with the workload (the shortcoming §II points out).
#include <cmath>

#include "bench_util.hpp"

#include "collect/fleet_collector.hpp"
#include "core/metrics.hpp"

namespace {

using namespace resmon;

struct Result {
  double rmse = 0.0;
  double frequency = 0.0;
};

Result run_policy(const trace::Trace& t, collect::PolicyKind kind, double b,
                  double v0, bool clamp) {
  collect::FleetCollector fleet(
      t, collect::make_policy_factory(kind, b, v0, 0.65, clamp));
  core::RmseAccumulator acc;
  for (std::size_t step = 0; step < t.num_steps(); ++step) {
    fleet.step(step);
    double se = 0.0;
    for (std::size_t i = 0; i < t.num_nodes(); ++i) {
      for (std::size_t r = 0; r < t.num_resources(); ++r) {
        const double e = fleet.store().stored(i)[r] - t.value(i, step, r);
        se += e * e;
      }
    }
    acc.add(std::sqrt(se / static_cast<double>(t.num_nodes())));
  }
  return {acc.value(), fleet.average_actual_frequency()};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace resmon;
  const Args args(argc, argv);
  bench::banner("Ablation: transmission policies",
                "Collection error (h = 0) and achieved frequency of each "
                "policy at the same budget");

  const double v0 = args.get_double("v0", 0.5);
  Table table({"dataset", "B", "policy", "RMSE h=0", "actual freq"}, 4);
  for (const std::string& name : bench::datasets_from_args(args)) {
    trace::SyntheticProfile profile = bench::profile_from_args(args, name);
    const trace::InMemoryTrace t =
        trace::generate(profile, args.get_int("seed", 1));
    for (const double b : {0.1, 0.3}) {
      const Result lyapunov =
          run_policy(t, collect::PolicyKind::kAdaptive, b, v0, false);
      const Result clamped =
          run_policy(t, collect::PolicyKind::kAdaptive, b, v0, true);
      const Result deadband =
          run_policy(t, collect::PolicyKind::kDeadband, b, v0, false);
      const Result uniform =
          run_policy(t, collect::PolicyKind::kUniform, b, v0, false);
      table.add_row({name, b, std::string("drift-plus-penalty (paper)"),
                     lyapunov.rmse, lyapunov.frequency});
      table.add_row({name, b, std::string("drift-plus-penalty, clamped Q"),
                     clamped.rmse, clamped.frequency});
      table.add_row({name, b, std::string("calibrated deadband"),
                     deadband.rmse, deadband.frequency});
      table.add_row({name, b, std::string("uniform"), uniform.rmse,
                     uniform.frequency});
    }
  }
  bench::emit(table, args);
  std::cout << "\nExpected shape: adaptive policies beat uniform; the "
               "Lyapunov rule holds the budget exactly, the deadband only "
               "approximately.\n";
  return 0;
}
