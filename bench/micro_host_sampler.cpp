// Host-sampler microbenchmark: samples/sec of HostSampler over a
// realistic FakeProcfs tree (whole-host and watched-process-tree modes)
// plus the raw parse cost of the hot procfs text formats. Runs entirely
// against in-memory fixtures — no live-kernel reads — so the numbers
// measure our parsing and aggregation, not the kernel's seq_file cost.
// Engineering hygiene, not a paper artifact.
#include <benchmark/benchmark.h>

#include <cstring>
#include <sstream>
#include <string>

#include "bench_util.hpp"
#include "host/parsers.hpp"
#include "host/procfs.hpp"
#include "host/sampler.hpp"

namespace {

using namespace resmon;

std::string stat_text(std::size_t cpus, std::uint64_t user) {
  std::ostringstream ss;
  ss << "cpu  " << user << " 120 3400 987654 210 0 340 0 0 0\n";
  for (std::size_t c = 0; c < cpus; ++c) {
    ss << "cpu" << c << " " << user / cpus
       << " 15 425 123456 26 0 42 0 0 0\n";
  }
  ss << "intr 123456789 0 0 0\nctxt 987654321\nbtime 1700000000\n"
     << "processes 54321\nprocs_running 3\nprocs_blocked 0\n";
  return ss.str();
}

std::string meminfo_text() {
  return "MemTotal:       32768000 kB\nMemFree:         4096000 kB\n"
         "MemAvailable:   16384000 kB\nBuffers:          512000 kB\n"
         "Cached:          8192000 kB\nSwapCached:            0 kB\n"
         "Active:         12000000 kB\nInactive:        6000000 kB\n";
}

std::string net_dev_text(std::size_t interfaces, std::uint64_t bytes) {
  std::ostringstream ss;
  ss << "Inter-|   Receive                |  Transmit\n"
     << " face |bytes    packets errs drop fifo frame compressed multicast|"
        "bytes    packets errs drop fifo colls carrier compressed\n"
     << "    lo: 123456 100 0 0 0 0 0 0 123456 100 0 0 0 0 0 0\n";
  for (std::size_t i = 0; i < interfaces; ++i) {
    ss << "  eth" << i << ": " << bytes
       << " 9999 0 0 0 0 0 0 " << bytes << " 9999 0 0 0 0 0 0\n";
  }
  return ss.str();
}

std::string diskstats_text(std::size_t disks, std::uint64_t sectors) {
  std::ostringstream ss;
  ss << "   7       0 loop0 99 0 999 0 99 0 999 0 0 0 0\n";
  for (std::size_t d = 0; d < disks; ++d) {
    ss << "   8      " << d * 16 << " sd" << static_cast<char>('a' + d)
       << " 10000 200 " << sectors << " 30000 5000 100 " << sectors
       << " 20000 0 40000 50000\n";
  }
  return ss.str();
}

std::string pid_stat_text(std::uint64_t pid, std::uint64_t ppid) {
  std::ostringstream ss;
  ss << pid << " (worker-" << pid << ") S " << ppid
     << " 1 1 0 -1 4194304 1000 0 12 0 540 230 0 0 20 0 4 0 12345 "
        "104857600 4096 18446744073709551615 1 1 0 0 0 0 0 0 0 0 0 0 17 "
        "0 0 0 0 0 0\n";
  return ss.str();
}

/// A whole-host fixture shaped like a real mid-size box, with `procs`
/// watchable processes parented under pid 100.
host::FakeProcfs make_fixture(std::size_t procs, std::uint64_t tick) {
  host::FakeProcfs fs;
  fs.set("stat", stat_text(8, 400000 + 100 * tick));
  fs.set("meminfo", meminfo_text());
  fs.set("net/dev", net_dev_text(3, 1000000 + 9000 * tick));
  fs.set("diskstats", diskstats_text(2, 500000 + 800 * tick));
  for (std::size_t i = 0; i < procs; ++i) {
    const std::uint64_t pid = 100 + i;
    fs.set(std::to_string(pid) + "/stat",
           pid_stat_text(pid, i == 0 ? 1 : 100));
    fs.set(std::to_string(pid) + "/statm", "25600 6400 1200 300 0 5100 0\n");
    fs.set(std::to_string(pid) + "/io",
           "rchar: 999\nwchar: 999\nsyscr: 9\nsyscw: 9\n"
           "read_bytes: 1048576\nwrite_bytes: 524288\n"
           "cancelled_write_bytes: 0\n");
  }
  return fs;
}

void BM_HostSampleWholeHost(benchmark::State& state) {
  host::FakeProcfs fs = make_fixture(0, 1);
  host::HostSampler sampler(fs, {});
  std::uint64_t now = 1000;
  for (auto _ : state) {
    now += 100;
    benchmark::DoNotOptimize(sampler.sample(now));
  }
  state.SetItemsProcessed(state.iterations());  // samples/sec
}
BENCHMARK(BM_HostSampleWholeHost);

void BM_HostSampleProcessTree(benchmark::State& state) {
  const std::size_t procs = static_cast<std::size_t>(state.range(0));
  host::FakeProcfs fs = make_fixture(procs, 1);
  host::HostSamplerOptions opts;
  opts.watch_pids = {100};
  host::HostSampler sampler(fs, opts);
  std::uint64_t now = 1000;
  for (auto _ : state) {
    now += 100;
    benchmark::DoNotOptimize(sampler.sample(now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HostSampleProcessTree)->Arg(8)->Arg(64)->Arg(512);

void BM_ParseProcStat(benchmark::State& state) {
  const std::string text =
      stat_text(static_cast<std::size_t>(state.range(0)), 400000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(host::parse_proc_stat(text, "stat"));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_ParseProcStat)->Arg(8)->Arg(128);

void BM_ParsePidStat(benchmark::State& state) {
  const std::string text = pid_stat_text(4242, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(host::parse_pid_stat(text, "4242/stat"));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_ParsePidStat);

void BM_ParseNetDev(benchmark::State& state) {
  const std::string text =
      net_dev_text(static_cast<std::size_t>(state.range(0)), 123456789);
  for (auto _ : state) {
    benchmark::DoNotOptimize(host::parse_net_dev(text, "net/dev"));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_ParseNetDev)->Arg(3)->Arg(32);

void BM_ParseDiskstats(benchmark::State& state) {
  const std::string text =
      diskstats_text(static_cast<std::size_t>(state.range(0)), 500000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(host::parse_diskstats(text, "diskstats"));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_ParseDiskstats)->Arg(2)->Arg(24);

/// Console output as usual, plus every iteration row captured for the
/// persistent BENCH_micro.json sink.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(resmon::bench::BenchJson* sink) : sink_(sink) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      std::vector<std::pair<std::string, double>> fields = {
          {"ns_per_op", run.GetAdjustedRealTime()},
          {"iterations", static_cast<double>(run.iterations)}};
      const auto bytes = run.counters.find("bytes_per_second");
      if (bytes != run.counters.end()) {
        fields.emplace_back("bytes_per_second", bytes->second.value);
      }
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        fields.emplace_back("items_per_second", items->second.value);
      }
      sink_->add(run.benchmark_name(), fields);
    }
  }

 private:
  resmon::bench::BenchJson* sink_;
};

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): identical benchmark runs, but
// the results also persist into BENCH_micro.json (merged with the other
// micro harnesses' rows; --json PATH overrides the destination, and
// --json-run LABEL appends a history entry for this run).
int main(int argc, char** argv) {
  std::string json_path = "BENCH_micro.json";
  std::string json_run;
  for (int i = 1; i + 1 < argc;) {
    std::string* dest = nullptr;
    if (std::strcmp(argv[i], "--json") == 0) dest = &json_path;
    if (std::strcmp(argv[i], "--json-run") == 0) dest = &json_run;
    if (dest == nullptr) {
      ++i;
      continue;
    }
    *dest = argv[i + 1];
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
  }
  benchmark::Initialize(&argc, argv);
  resmon::bench::BenchJson sink("resmon-micro", "micro_host_sampler");
  CapturingReporter reporter(&sink);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  sink.write(json_path, json_run);
  return 0;
}
