// Fig. 1 — Empirical CDF of pairwise spatial correlation values.
//
// The paper's motivation: sensor-network measurements (temperature,
// humidity) are strongly spatially correlated in the long term, while
// CPU/memory utilization across machines is not — which is why
// Gaussian/covariance methods fit sensors but not cluster monitoring.
//
// Expected shape: Temperature/Humidity mass above 0.5; CPU/Memory mass
// concentrated in (-0.5, 0.5).
#include "bench_util.hpp"

#include "common/stats.hpp"

namespace {

using namespace resmon;

std::vector<double> pairwise_correlations(const trace::Trace& t,
                                          std::size_t resource) {
  std::vector<std::vector<double>> series;
  series.reserve(t.num_nodes());
  for (std::size_t i = 0; i < t.num_nodes(); ++i) {
    series.push_back(t.series(i, resource));
  }
  std::vector<double> corrs;
  corrs.reserve(t.num_nodes() * (t.num_nodes() - 1) / 2);
  for (std::size_t i = 0; i < t.num_nodes(); ++i) {
    for (std::size_t j = i + 1; j < t.num_nodes(); ++j) {
      corrs.push_back(stats::pearson(series[i], series[j]));
    }
  }
  return corrs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace resmon;
  const Args args(argc, argv);
  bench::banner("Fig. 1",
                "Empirical CDF of pairwise spatial correlations: sensor "
                "modalities vs machine resources");

  trace::SyntheticProfile sensors = trace::sensors_profile();
  trace::SyntheticProfile machines = bench::profile_from_args(args, "google");
  // Keep the pair count manageable at default scale.
  machines.num_nodes = std::min<std::size_t>(machines.num_nodes, 150);

  const std::uint64_t seed = args.get_int("seed", 1);
  const trace::InMemoryTrace sensor_trace = trace::generate(sensors, seed);
  const trace::InMemoryTrace machine_trace =
      trace::generate(machines, seed + 1);

  const stats::EmpiricalCdf temperature(
      pairwise_correlations(sensor_trace, 0));
  const stats::EmpiricalCdf humidity(pairwise_correlations(sensor_trace, 1));
  const stats::EmpiricalCdf cpu(
      pairwise_correlations(machine_trace, trace::kCpu));
  const stats::EmpiricalCdf memory(
      pairwise_correlations(machine_trace, trace::kMemory));

  Table table({"x", "F(x) Temperature", "F(x) Humidity", "F(x) CPU",
               "F(x) Memory"},
              3);
  for (double x = -1.0; x <= 1.0 + 1e-9; x += 0.1) {
    table.add_row({x, temperature(x), humidity(x), cpu(x), memory(x)});
  }
  bench::emit(table, args);

  // The paper's headline contrast, as single numbers.
  std::cout << "\nfraction of pairs with correlation > 0.5:\n"
            << "  Temperature: " << 1.0 - temperature(0.5) << "\n"
            << "  Humidity:    " << 1.0 - humidity(0.5) << "\n"
            << "  CPU:         " << 1.0 - cpu(0.5) << "\n"
            << "  Memory:      " << 1.0 - memory(0.5) << "\n";
  return 0;
}
