// Fig. 5 — Intermediate RMSE vs the temporal clustering dimension: cluster
// on feature vectors spanning the last w stored snapshots, for
// w in {1, 5, 10, 20, 30}.
//
// Expected shape: w = 1 (clustering the most recent measurements only) is
// best on every dataset — the clustering should adapt to the newest data.
#include "bench_util.hpp"

#include "core/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace resmon;
  const Args args(argc, argv);
  bench::banner("Fig. 5",
                "Intermediate RMSE when clustering on temporal windows of "
                "w snapshots (B = 0.3, K = 3)");

  Table table({"dataset", "resource", "window w", "intermediate RMSE"}, 4);
  for (const std::string& name : bench::datasets_from_args(args)) {
    trace::SyntheticProfile profile = bench::profile_from_args(args, name);
    const trace::InMemoryTrace t =
        trace::generate(profile, args.get_int("seed", 1));
    for (const std::size_t w : {1u, 5u, 10u, 20u, 30u}) {
      core::PipelineOptions o;
      o.max_frequency = args.get_double("b", 0.3);
      o.num_clusters = static_cast<std::size_t>(args.get_int("k", 3));
      o.temporal_window = w;
      o.num_threads = args.get_threads();
      core::MonitoringPipeline pipeline(t, o);

      std::vector<core::RmseAccumulator> acc(t.num_resources());
      while (!pipeline.done()) {
        pipeline.step();
        for (std::size_t r = 0; r < t.num_resources(); ++r) {
          acc[r].add(pipeline.intermediate_rmse(r, 0));
        }
      }
      for (std::size_t r = 0; r < t.num_resources(); ++r) {
        table.add_row({name, trace::resource_name(r),
                       static_cast<double>(w), acc[r].value()});
      }
    }
  }
  bench::emit(table, args);
  std::cout << "\nExpected shape: w = 1 gives the lowest intermediate RMSE "
               "on every dataset/resource.\n";
  return 0;
}
