// Shared helpers for the experiment harnesses in bench/.
//
// Every binary prints the rows/series of the paper table or figure it
// regenerates. Defaults are laptop-scale; `--full` switches the synthetic
// profiles to the paper's node/step counts, and `--dataset`, `--nodes`,
// `--steps`, `--seed` override individual knobs.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "obs/export.hpp"
#include "trace/synthetic.hpp"

namespace resmon::bench {

/// Resolve a synthetic profile from CLI flags.
inline trace::SyntheticProfile profile_from_args(const Args& args,
                                                 const std::string& name) {
  trace::SyntheticProfile p = trace::profile_by_name(name);
  if (args.get_bool("full")) p = trace::scale_to_paper(p);
  if (args.has("nodes")) {
    p.num_nodes = static_cast<std::size_t>(args.get_int("nodes", 0));
  }
  if (args.has("steps")) {
    p.num_steps = static_cast<std::size_t>(args.get_int("steps", 0));
  }
  return p;
}

/// Datasets an experiment sweeps over: either the one named via
/// `--dataset`, or all three evaluation datasets.
inline std::vector<std::string> datasets_from_args(const Args& args) {
  if (args.has("dataset")) return {args.get("dataset", "alibaba")};
  return {"alibaba", "bitbrains", "google"};
}

/// Standard experiment banner.
inline void banner(const std::string& id, const std::string& what) {
  std::cout << "== " << id << " ==\n" << what << "\n\n";
}

/// Print a table plus an optional CSV copy when --csv <path> is given.
inline void emit(const Table& table, const Args& args) {
  table.print(std::cout);
  if (args.has("csv")) {
    const std::string path = args.get("csv", "");
    table.save_csv(path);
    std::cout << "\n(csv written to " << path << ")\n";
  }
}

/// Honor --metrics-out FILE.prom / --trace-out FILE.jsonl: dump the run's
/// observability sinks to disk. `trace_events` may be null when the harness
/// has no trace buffer.
inline void emit_observability(const Args& args,
                               const obs::MetricsRegistry& registry,
                               const obs::TraceBuffer* trace_events = nullptr) {
  if (args.has("metrics-out")) {
    const std::string path = args.get("metrics-out", "");
    obs::write_metrics_file(path, registry);
    std::cout << "(metrics written to " << path << ")\n";
  }
  if (args.has("trace-out") && trace_events != nullptr) {
    const std::string path = args.get("trace-out", "");
    obs::write_trace_file(path, *trace_events);
    std::cout << "(trace events written to " << path << ")\n";
  }
}

}  // namespace resmon::bench
