// Shared helpers for the experiment harnesses in bench/.
//
// Every binary prints the rows/series of the paper table or figure it
// regenerates. Defaults are laptop-scale; `--full` switches the synthetic
// profiles to the paper's node/step counts, and `--dataset`, `--nodes`,
// `--steps`, `--seed` override individual knobs.
#pragma once

#include <ctime>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "obs/export.hpp"
#include "trace/synthetic.hpp"

namespace resmon::bench {

/// Persistent benchmark results: a BENCH_*.json file one row per result,
/// shared by several harnesses. The format is deliberately line-oriented —
/// every row is a single-line JSON object carrying its harness name —
/// so write() can merge without a JSON parser: rows belonging to *other*
/// harnesses are kept verbatim, this harness's previous rows are replaced.
///
/// "results" is the latest snapshot; "history" is an append-only series of
/// per-run entries (one single-line object per harness per labeled run, see
/// write()), so the perf trajectory across PRs is a real series instead of
/// one overwritten snapshot. History lines start with {"run": and are
/// always kept verbatim by the merge.
///
///   {
///     "bench": "resmon-micro",
///     "results": [
///       {"harness": "micro_wire", "name": "encode/8", "ns_per_op": 85.2},
///       {"harness": "micro_parallel_step", "name": "threads=4", ...}
///     ],
///     "history": [
///       {"run": "ci-abc123", "utc": "2026-08-07T12:00:00Z",
///        "harness": "micro_wire", "results": [{...}, {...}]}
///     ]
///   }
class BenchJson {
 public:
  BenchJson(std::string bench_id, std::string harness)
      : bench_id_(std::move(bench_id)), harness_(std::move(harness)) {}

  /// Queue one result row: a name plus numeric fields, emitted in order.
  void add(const std::string& name,
           const std::vector<std::pair<std::string, double>>& fields) {
    std::ostringstream row;
    row << "    {\"harness\": \"" << harness_ << "\", \"name\": \"" << name
        << "\"";
    for (const auto& [key, value] : fields) {
      row << ", \"" << key << "\": ";
      // JSON has no NaN/Inf literals; null marks a failed measurement.
      if (value != value || value > 1e308 || value < -1e308) {
        row << "null";
      } else {
        std::ostringstream num;
        num.precision(12);
        num << value;
        row << num.str();
      }
    }
    row << "}";
    rows_.push_back(row.str());
  }

  /// Merge-write into `path`: keeps rows of other harnesses already in the
  /// file, replaces this harness's rows, rewrites the envelope. History
  /// lines (leading {"run":) are append-only: every existing one is kept
  /// verbatim, and a non-empty `run_label` appends one new entry bundling
  /// this run's rows with the label and a UTC wall-clock stamp (bench/ is
  /// outside the determinism wall; see docs/PERFORMANCE.md).
  void write(const std::string& path, const std::string& run_label = "") const {
    std::vector<std::string> kept;
    std::vector<std::string> history;
    {
      std::ifstream in(path);
      std::string line;
      const std::string ours = "{\"harness\": \"" + harness_ + "\"";
      const std::string run_tag = "{\"run\":";
      while (std::getline(in, line)) {
        const std::size_t brace = line.find('{');
        if (brace == std::string::npos) continue;  // envelope line
        std::string row = line;
        while (!row.empty() && (row.back() == ',' || row.back() == '\r')) {
          row.pop_back();
        }
        if (line.compare(brace, run_tag.size(), run_tag) == 0) {
          history.push_back(row);
          continue;
        }
        if (line.compare(brace, ours.size(), ours) == 0) continue;
        if (row.find("\"harness\"") == std::string::npos) continue;
        kept.push_back(row);
      }
    }
    if (!run_label.empty()) history.push_back(history_entry(run_label));
    std::ofstream out(path, std::ios::trunc);
    out << "{\n  \"bench\": \"" << bench_id_ << "\",\n  \"results\": [\n";
    bool first = true;
    for (const std::vector<std::string>* rows :
         {static_cast<const std::vector<std::string>*>(&kept), &rows_}) {
      for (const std::string& row : *rows) {
        if (!first) out << ",\n";
        first = false;
        out << row;
      }
    }
    out << "\n  ],\n  \"history\": [";
    first = true;
    for (const std::string& entry : history) {
      out << (first ? "\n" : ",\n") << entry;
      first = false;
    }
    out << (history.empty() ? "" : "\n  ") << "]\n}\n";
    std::cout << "(bench results written to " << path << ")\n";
  }

 private:
  /// One single-line history object for this run: label, UTC stamp, and
  /// this harness's rows inlined (leading indentation stripped).
  std::string history_entry(const std::string& run_label) const {
    char stamp[32] = "";
    const std::time_t now = std::time(nullptr);
    std::tm utc{};
    if (gmtime_r(&now, &utc) != nullptr) {
      std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
    }
    std::ostringstream entry;
    entry << "    {\"run\": \"" << run_label << "\", \"utc\": \"" << stamp
          << "\", \"harness\": \"" << harness_ << "\", \"results\": [";
    bool first = true;
    for (const std::string& row : rows_) {
      const std::size_t brace = row.find('{');
      if (!first) entry << ", ";
      first = false;
      entry << row.substr(brace == std::string::npos ? 0 : brace);
    }
    entry << "]}";
    return entry.str();
  }

  std::string bench_id_;
  std::string harness_;
  std::vector<std::string> rows_;
};

/// Resolve a synthetic profile from CLI flags.
inline trace::SyntheticProfile profile_from_args(const Args& args,
                                                 const std::string& name) {
  trace::SyntheticProfile p = trace::profile_by_name(name);
  if (args.get_bool("full")) p = trace::scale_to_paper(p);
  if (args.has("nodes")) {
    p.num_nodes = static_cast<std::size_t>(args.get_int("nodes", 0));
  }
  if (args.has("steps")) {
    p.num_steps = static_cast<std::size_t>(args.get_int("steps", 0));
  }
  return p;
}

/// Datasets an experiment sweeps over: either the one named via
/// `--dataset`, or all three evaluation datasets.
inline std::vector<std::string> datasets_from_args(const Args& args) {
  if (args.has("dataset")) return {args.get("dataset", "alibaba")};
  return {"alibaba", "bitbrains", "google"};
}

/// Standard experiment banner.
inline void banner(const std::string& id, const std::string& what) {
  std::cout << "== " << id << " ==\n" << what << "\n\n";
}

/// Print a table plus an optional CSV copy when --csv <path> is given.
inline void emit(const Table& table, const Args& args) {
  table.print(std::cout);
  if (args.has("csv")) {
    const std::string path = args.get("csv", "");
    table.save_csv(path);
    std::cout << "\n(csv written to " << path << ")\n";
  }
}

/// Honor --metrics-out FILE.prom / --trace-out FILE.jsonl: dump the run's
/// observability sinks to disk. `trace_events` may be null when the harness
/// has no trace buffer.
inline void emit_observability(const Args& args,
                               const obs::MetricsRegistry& registry,
                               const obs::TraceBuffer* trace_events = nullptr) {
  if (args.has("metrics-out")) {
    const std::string path = args.get("metrics-out", "");
    obs::write_metrics_file(path, registry);
    std::cout << "(metrics written to " << path << ")\n";
  }
  if (args.has("trace-out") && trace_events != nullptr) {
    const std::string path = args.get("trace-out", "");
    obs::write_trace_file(path, *trace_events);
    std::cout << "(trace events written to " << path << ")\n";
  }
}

}  // namespace resmon::bench
