// Ablation — the per-node offset of eq. (12).
//
// Compares three forecasting configurations at several horizons:
//   full      — centroid forecast + alpha-scaled offset (the paper),
//   no-alpha  — offset without the alpha clamping,
//   no-offset — bare centroid forecast (x-hat = c-hat).
//
// Expected shape: the offset helps at every horizon (nodes have persistent
// deviations from their centroid). The alpha clamp is a robustness guard
// for deviations that cross into neighbouring clusters; on well-clustered
// traces it can cost a little accuracy versus the unclamped offset.
#include <cmath>

#include "bench_util.hpp"

#include "core/pipeline.hpp"

namespace {

using namespace resmon;

double run_config(const trace::Trace& t, bool use_offset, bool alpha,
                  std::size_t h, std::size_t threads) {
  core::PipelineOptions o;
  o.num_clusters = 3;
  o.use_offset = use_offset;
  o.offset_alpha = alpha;
  o.schedule = {.initial_steps = 100, .retrain_interval = 288};
  o.num_threads = threads;
  core::MonitoringPipeline pipeline(t, o);
  core::RmseAccumulator acc;
  for (std::size_t step = 0; step < t.num_steps(); ++step) {
    pipeline.step();
    if (step < 150 || step % 10 != 0) continue;
    if (step + h >= t.num_steps()) continue;
    acc.add(pipeline.rmse_at(h));
  }
  return acc.value();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace resmon;
  const Args args(argc, argv);
  bench::banner("Ablation: per-node offset (eq. (12))",
                "RMSE with the full offset, offset without alpha clamping, "
                "and no offset at all (sample-and-hold, K = 3, B = 0.3)");

  Table table({"dataset", "h", "full (alpha offset)", "offset, no alpha",
               "no offset"},
              4);
  for (const std::string& name : bench::datasets_from_args(args)) {
    trace::SyntheticProfile profile = bench::profile_from_args(args, name);
    const trace::InMemoryTrace t =
        trace::generate(profile, args.get_int("seed", 1));
    for (const std::size_t h : {1u, 5u, 25u}) {
      table.add_row({name, static_cast<double>(h),
                     run_config(t, true, true, h, args.get_threads()),
                     run_config(t, true, false, h, args.get_threads()),
                     run_config(t, false, false, h, args.get_threads())});
    }
  }
  bench::emit(table, args);
  std::cout << "\nExpected shape: both offset variants < no-offset; the "
               "alpha clamp trades a little accuracy for robustness.\n";
  return 0;
}
