// Fig. 8 — Instantaneous true vs forecasted (h = 5) centroid values of the
// K = 3 clusters on the Alibaba-profile CPU data, t in [1000, 2000].
//
// Expected shape: ARIMA and LSTM trajectories hug the true centroid series;
// sample-and-hold lags it by roughly h steps.
#include <map>

#include "bench_util.hpp"

#include "core/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace resmon;
  const Args args(argc, argv);
  bench::banner("Fig. 8",
                "True vs forecasted (h = 5) centroid trajectories, K = 3, "
                "Alibaba-profile CPU");

  trace::SyntheticProfile profile =
      bench::profile_from_args(args, args.get("dataset", "alibaba"));
  profile.num_resources = 1;  // CPU panel only, as in the figure
  profile.num_steps = std::max<std::size_t>(profile.num_steps, 2100);
  const trace::InMemoryTrace t =
      trace::generate(profile, args.get_int("seed", 1));

  const std::size_t h = static_cast<std::size_t>(args.get_int("h", 5));
  const std::size_t t0 = static_cast<std::size_t>(args.get_int("t0", 1000));
  const std::size_t stride =
      static_cast<std::size_t>(args.get_int("stride", 25));
  const std::size_t k = 3;

  auto make_pipeline = [&](forecast::ForecasterKind kind) {
    core::PipelineOptions o;
    o.max_frequency = 0.3;
    o.num_clusters = k;
    o.forecaster = kind;
    o.schedule = {.initial_steps = t0, .retrain_interval = 288};
    o.seed = 1;  // identical seeds -> identical clustering across pipelines
    o.num_threads = args.get_threads();
    return core::MonitoringPipeline(t, o);
  };
  core::MonitoringPipeline hold = make_pipeline(
      forecast::ForecasterKind::kSampleHold);
  core::MonitoringPipeline arima =
      make_pipeline(forecast::ForecasterKind::kArima);
  core::MonitoringPipeline lstm =
      make_pipeline(forecast::ForecasterKind::kLstm);

  struct Row {
    double arima[3];
    double hold[3];
    double lstm[3];
  };
  std::map<std::size_t, Row> pending;  // keyed by target step t + h

  for (std::size_t step = 0; step < t.num_steps(); ++step) {
    hold.step();
    arima.step();
    lstm.step();
    if (step >= t0 && (step - t0) % stride == 0 &&
        step + h < t.num_steps()) {
      Row row;
      for (std::size_t j = 0; j < k; ++j) {
        row.arima[j] = arima.model(0, j).forecast(h);
        row.hold[j] = hold.model(0, j).forecast(h);
        row.lstm[j] = lstm.model(0, j).forecast(h);
      }
      pending[step + h] = row;
    }
  }

  Table table({"t", "true c1", "ARIMA c1", "Hold c1", "LSTM c1", "true c2",
               "ARIMA c2", "Hold c2", "LSTM c2", "true c3", "ARIMA c3",
               "Hold c3", "LSTM c3"},
              3);
  for (const auto& [target, row] : pending) {
    std::vector<Table::Cell> cells{static_cast<double>(target)};
    for (std::size_t j = 0; j < k; ++j) {
      // True centroid at the target step, from the pipeline's own
      // clustering (all three pipelines share it).
      cells.push_back(hold.tracker(0).centroid_series(j, 0)[target]);
      cells.push_back(row.arima[j]);
      cells.push_back(row.hold[j]);
      cells.push_back(row.lstm[j]);
    }
    table.add_row(std::move(cells));
  }
  bench::emit(table, args);
  std::cout << "\nExpected shape: forecasted trajectories track the true "
               "centroids closely for all three clusters.\n";
  return 0;
}
