// Fig. 12 — Comparison with the Gaussian-based method of [3] under its own
// train/test protocol (§VI-E): 100 nodes, a 500-step training phase with
// full transmission, a 500-step testing phase in which only K monitors
// report.
//
// Expected shape: Proposed (K-means monitors) < Min-distance < the three
// Gaussian selection algorithms — resource-utilization data lacks the
// stable spatial correlation Gaussian inference relies on.
#include "bench_util.hpp"

#include "gaussian/monitor_experiment.hpp"

int main(int argc, char** argv) {
  using namespace resmon;
  const Args args(argc, argv);
  bench::banner("Fig. 12",
                "Estimation RMSE vs number of monitors K in the train/test "
                "protocol of [3] (100 nodes, 500 train / 500 test)");

  const std::size_t nodes =
      static_cast<std::size_t>(args.get_int("nodes", 100));
  const std::vector<std::size_t> ks = [&] {
    std::vector<std::size_t> v{5, 10, 25, 50};
    if (args.has("k")) v = {static_cast<std::size_t>(args.get_int("k", 10))};
    return v;
  }();

  const std::vector<gaussian::MonitorMethod> methods{
      gaussian::MonitorMethod::kProposed,
      gaussian::MonitorMethod::kMinimumDistance,
      gaussian::MonitorMethod::kTopW,
      gaussian::MonitorMethod::kTopWUpdate,
      gaussian::MonitorMethod::kBatchSelection,
  };

  Table table({"dataset", "resource", "K", "Proposed", "Min-distance",
               "Top-W", "Top-W-Update", "Batch Selection"},
              4);
  for (const std::string& name : bench::datasets_from_args(args)) {
    trace::SyntheticProfile profile = bench::profile_from_args(args, name);
    profile.num_nodes = nodes;
    profile.num_steps = std::max<std::size_t>(profile.num_steps, 1000);
    const trace::InMemoryTrace t =
        trace::generate(profile, args.get_int("seed", 1));

    for (std::size_t r = 0; r < t.num_resources(); ++r) {
      for (const std::size_t k : ks) {
        gaussian::MonitorExperimentOptions opts;
        opts.resource = r;
        opts.num_monitors = k;
        opts.train_steps = 500;
        opts.test_steps = 500;
        opts.seed = args.get_int("seed", 1);

        std::vector<Table::Cell> row{name, trace::resource_name(r),
                                     static_cast<double>(k)};
        for (const gaussian::MonitorMethod method : methods) {
          row.push_back(
              gaussian::run_monitor_experiment(t, method, opts).rmse);
        }
        table.add_row(std::move(row));
      }
    }
  }
  bench::emit(table, args);
  std::cout << "\nExpected shape: Proposed lowest at every K; Gaussian "
               "methods trail because long-term spatial correlation is "
               "weak.\n";
  return 0;
}
