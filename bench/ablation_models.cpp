// Ablation — forecasting model family on the centroid series.
//
// Extends the Fig. 9 comparison with Holt-Winters exponential smoothing
// (the model most production monitoring systems use) and AICc-selected
// ARIMA, at a few horizons on one dataset. LSTM is included behind --lstm
// (it dominates the runtime).
//
// Expected shape: everything beats sample-and-hold at larger horizons;
// ARIMA variants and Holt are close; AutoARIMA matches or slightly beats
// the fixed order at the cost of fit time.
#include <cmath>

#include "bench_util.hpp"

#include "core/pipeline.hpp"

namespace {

using namespace resmon;

double run_model(const trace::Trace& t, forecast::ForecasterKind kind,
                 std::size_t h, std::size_t threads) {
  core::PipelineOptions o;
  o.num_clusters = 3;
  o.forecaster = kind;
  o.schedule = {.initial_steps = 400, .retrain_interval = 288};
  o.num_threads = threads;
  core::MonitoringPipeline pipeline(t, o);
  core::RmseAccumulator acc;
  for (std::size_t step = 0; step < t.num_steps(); ++step) {
    pipeline.step();
    if (step < 400 || step % 20 != 0) continue;
    if (step + h >= t.num_steps()) continue;
    acc.add(pipeline.rmse_at(h));
  }
  return acc.value();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace resmon;
  const Args args(argc, argv);
  bench::banner("Ablation: forecasting models",
                "Pipeline RMSE by model family (K = 3, B = 0.3)");

  trace::SyntheticProfile profile =
      bench::profile_from_args(args, args.get("dataset", "alibaba"));
  if (!args.has("steps") && !args.get_bool("full")) profile.num_steps = 2000;
  const trace::InMemoryTrace t =
      trace::generate(profile, args.get_int("seed", 1));

  std::vector<std::pair<std::string, forecast::ForecasterKind>> models{
      {"SampleHold", forecast::ForecasterKind::kSampleHold},
      {"Holt", forecast::ForecasterKind::kHoltWinters},
      {"ARIMA(2,0,1)", forecast::ForecasterKind::kArima},
      {"AutoARIMA", forecast::ForecasterKind::kAutoArima},
  };
  if (args.get_bool("lstm")) {
    models.emplace_back("LSTM", forecast::ForecasterKind::kLstm);
  }

  Table table({"model", "RMSE h=1", "RMSE h=5", "RMSE h=25"}, 4);
  const std::size_t threads = args.get_threads();
  for (const auto& [label, kind] : models) {
    table.add_row({label, run_model(t, kind, 1, threads),
                   run_model(t, kind, 5, threads),
                   run_model(t, kind, 25, threads)});
  }
  bench::emit(table, args);
  std::cout << "\nExpected shape: model-based forecasts beat SampleHold as "
               "h grows; the families are close on smooth centroid "
               "series.\n";
  return 0;
}
