// Fig. 4 — RMSE (h = 0, i.e. error caused only by infrequent transmission)
// of the proposed adaptive transmission method vs the uniform sampling
// baseline, per dataset and resource, sweeping the required frequency B.
//
// Expected shape: adaptive <= uniform at every B, both falling to 0 at
// B = 1.
//
// Note on V0: with utilizations normalized to [0,1] the paper's V0 = 1e-12
// makes the V*F term negligible against the virtual queue, which reproduces
// the budget tracking of Fig. 3 but not the adaptive gain of Fig. 4. This
// harness defaults to V0 = 0.5 (the same qualitative rule, with the penalty
// term rescaled to the data's units); run with --v0 1e-12 for the paper's
// literal constant. See EXPERIMENTS.md.
#include <cmath>

#include "bench_util.hpp"

#include "collect/fleet_collector.hpp"
#include "core/metrics.hpp"

namespace {

using namespace resmon;

/// Time-averaged per-resource RMSE (eq. (4) with h = 0) for one policy.
std::vector<double> h0_rmse(const trace::Trace& t,
                            collect::PolicyKind kind, double b, double v0,
                            double gamma) {
  collect::FleetCollector fleet(
      t, collect::make_policy_factory(kind, b, v0, gamma));
  std::vector<core::RmseAccumulator> acc(t.num_resources());
  for (std::size_t step = 0; step < t.num_steps(); ++step) {
    fleet.step(step);
    for (std::size_t r = 0; r < t.num_resources(); ++r) {
      double se = 0.0;
      for (std::size_t i = 0; i < t.num_nodes(); ++i) {
        const double e =
            fleet.store().stored(i)[r] - t.value(i, step, r);
        se += e * e;
      }
      acc[r].add(std::sqrt(se / static_cast<double>(t.num_nodes())));
    }
  }
  std::vector<double> out;
  out.reserve(acc.size());
  for (const auto& a : acc) out.push_back(a.value());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace resmon;
  const Args args(argc, argv);
  bench::banner("Fig. 4",
                "RMSE(h=0) of adaptive transmission vs uniform sampling");

  const double v0 = args.get_double("v0", 0.5);
  const double gamma = args.get_double("gamma", 0.65);

  Table table({"dataset", "resource", "B", "RMSE adaptive", "RMSE uniform"},
              4);
  for (const std::string& name : bench::datasets_from_args(args)) {
    trace::SyntheticProfile profile = bench::profile_from_args(args, name);
    const trace::InMemoryTrace t =
        trace::generate(profile, args.get_int("seed", 1));
    for (const double b : {0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.0}) {
      const std::vector<double> adaptive =
          h0_rmse(t, collect::PolicyKind::kAdaptive, b, v0, gamma);
      const std::vector<double> uniform =
          h0_rmse(t, collect::PolicyKind::kUniform, b, v0, gamma);
      for (std::size_t r = 0; r < t.num_resources(); ++r) {
        table.add_row({name, trace::resource_name(r), b, adaptive[r],
                       uniform[r]});
      }
    }
  }
  bench::emit(table, args);
  std::cout << "\nExpected shape: adaptive <= uniform for every B; both "
               "reach 0 at B = 1.\n";
  return 0;
}
