// Micro-benchmarks for the wire codec: encode and decode throughput of
// measurement frames at the dimensionalities the experiments use, plus the
// incremental decoder on a long multi-frame stream in socket-sized chunks.
// Engineering hygiene, not a paper artifact.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "net/wire.hpp"

namespace {

using namespace resmon;

transport::MeasurementMessage make_message(std::size_t dim, Rng& rng) {
  transport::MeasurementMessage m;
  m.node = 17;
  m.step = 12345;
  for (std::size_t i = 0; i < dim; ++i) m.values.push_back(rng.uniform());
  return m;
}

void BM_WireEncodeMeasurement(benchmark::State& state) {
  Rng rng(1);
  const transport::MeasurementMessage m =
      make_message(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::wire::encode(m));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * m.wire_size()));
}
BENCHMARK(BM_WireEncodeMeasurement)->Arg(1)->Arg(2)->Arg(8)->Arg(64);

void BM_WireDecodeMeasurement(benchmark::State& state) {
  Rng rng(2);
  const transport::MeasurementMessage m =
      make_message(static_cast<std::size_t>(state.range(0)), rng);
  const std::vector<std::uint8_t> bytes = net::wire::encode(m);
  for (auto _ : state) {
    net::wire::FrameDecoder dec;
    dec.feed(bytes);
    benchmark::DoNotOptimize(dec.next());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * bytes.size()));
}
BENCHMARK(BM_WireDecodeMeasurement)->Arg(1)->Arg(2)->Arg(8)->Arg(64);

// A full agent-uplink's worth of traffic through one incremental decoder,
// fed in read_some-sized chunks like the controller sees it.
void BM_WireDecodeStream(benchmark::State& state) {
  const std::size_t frames = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  std::vector<std::uint8_t> stream;
  for (std::size_t t = 0; t < frames; ++t) {
    transport::MeasurementMessage m = make_message(2, rng);
    m.step = t;
    const std::vector<std::uint8_t> bytes = net::wire::encode(m);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  constexpr std::size_t kChunk = 4096;
  for (auto _ : state) {
    net::wire::FrameDecoder dec;
    std::size_t decoded = 0;
    for (std::size_t off = 0; off < stream.size(); off += kChunk) {
      const std::size_t n = std::min(kChunk, stream.size() - off);
      dec.feed({stream.data() + off, n});
      while (dec.next().has_value()) ++decoded;
    }
    if (decoded != frames) state.SkipWithError("frame loss in decoder");
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * stream.size()));
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * frames));
}
BENCHMARK(BM_WireDecodeStream)->Arg(1000)->Arg(10000);

/// Console output as usual, plus every iteration row captured for the
/// persistent BENCH_micro.json sink.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(resmon::bench::BenchJson* sink) : sink_(sink) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      std::vector<std::pair<std::string, double>> fields = {
          {"ns_per_op", run.GetAdjustedRealTime()},
          {"iterations", static_cast<double>(run.iterations)}};
      const auto bytes = run.counters.find("bytes_per_second");
      if (bytes != run.counters.end()) {
        fields.emplace_back("bytes_per_second", bytes->second.value);
      }
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        fields.emplace_back("items_per_second", items->second.value);
      }
      sink_->add(run.benchmark_name(), fields);
    }
  }

 private:
  resmon::bench::BenchJson* sink_;
};

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): identical benchmark runs, but
// the results also persist into BENCH_micro.json (merged with the other
// micro harnesses' rows; --json PATH overrides the destination, and
// --json-run LABEL appends a history entry for this run).
int main(int argc, char** argv) {
  std::string json_path = "BENCH_micro.json";
  std::string json_run;
  for (int i = 1; i + 1 < argc;) {
    std::string* dest = nullptr;
    if (std::strcmp(argv[i], "--json") == 0) dest = &json_path;
    if (std::strcmp(argv[i], "--json-run") == 0) dest = &json_run;
    if (dest == nullptr) {
      ++i;
      continue;
    }
    *dest = argv[i + 1];
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
  }
  benchmark::Initialize(&argc, argv);
  resmon::bench::BenchJson sink("resmon-micro", "micro_wire");
  CapturingReporter reporter(&sink);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  sink.write(json_path, json_run);
  return 0;
}
