// Micro-benchmarks for the wire codec: encode and decode throughput of
// measurement frames at the dimensionalities the experiments use, plus the
// incremental decoder on a long multi-frame stream in socket-sized chunks.
// Engineering hygiene, not a paper artifact.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "net/wire.hpp"

namespace {

using namespace resmon;

transport::MeasurementMessage make_message(std::size_t dim, Rng& rng) {
  transport::MeasurementMessage m;
  m.node = 17;
  m.step = 12345;
  for (std::size_t i = 0; i < dim; ++i) m.values.push_back(rng.uniform());
  return m;
}

void BM_WireEncodeMeasurement(benchmark::State& state) {
  Rng rng(1);
  const transport::MeasurementMessage m =
      make_message(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::wire::encode(m));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * m.wire_size()));
}
BENCHMARK(BM_WireEncodeMeasurement)->Arg(1)->Arg(2)->Arg(8)->Arg(64);

void BM_WireDecodeMeasurement(benchmark::State& state) {
  Rng rng(2);
  const transport::MeasurementMessage m =
      make_message(static_cast<std::size_t>(state.range(0)), rng);
  const std::vector<std::uint8_t> bytes = net::wire::encode(m);
  for (auto _ : state) {
    net::wire::FrameDecoder dec;
    dec.feed(bytes);
    benchmark::DoNotOptimize(dec.next());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * bytes.size()));
}
BENCHMARK(BM_WireDecodeMeasurement)->Arg(1)->Arg(2)->Arg(8)->Arg(64);

// A full agent-uplink's worth of traffic through one incremental decoder,
// fed in read_some-sized chunks like the controller sees it.
void BM_WireDecodeStream(benchmark::State& state) {
  const std::size_t frames = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  std::vector<std::uint8_t> stream;
  for (std::size_t t = 0; t < frames; ++t) {
    transport::MeasurementMessage m = make_message(2, rng);
    m.step = t;
    const std::vector<std::uint8_t> bytes = net::wire::encode(m);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  constexpr std::size_t kChunk = 4096;
  for (auto _ : state) {
    net::wire::FrameDecoder dec;
    std::size_t decoded = 0;
    for (std::size_t off = 0; off < stream.size(); off += kChunk) {
      const std::size_t n = std::min(kChunk, stream.size() - off);
      dec.feed({stream.data() + off, n});
      while (dec.next().has_value()) ++decoded;
    }
    if (decoded != frames) state.SkipWithError("frame loss in decoder");
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * stream.size()));
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * frames));
}
BENCHMARK(BM_WireDecodeStream)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
