// ProcfsSource: the filesystem seam of the host-collection backend.
//
// The HostSampler never touches the kernel directly — it reads files
// through this interface, addressed by procfs-relative paths ("stat",
// "meminfo", "1234/stat", "net/dev"). Production uses DirProcfs rooted at
// /proc (or a --procfs-root override); every unit test uses FakeProcfs, an
// in-memory tree of checked-in fixture snapshots, so ctest never depends
// on the live kernel (DESIGN.md "Host collection").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace resmon::host {

/// Read-only view of a procfs-like file tree.
class ProcfsSource {
 public:
  virtual ~ProcfsSource() = default;

  /// Full contents of the file at root-relative `path`, or nullopt when it
  /// does not exist / is unreadable (per-pid files routinely vanish when a
  /// process exits between the directory scan and the read).
  virtual std::optional<std::string> read(const std::string& path) const = 0;

  /// Numeric top-level directory names — the process list — sorted
  /// ascending so sampling walks the tree in a deterministic order.
  virtual std::vector<std::uint64_t> pids() const = 0;
};

/// ProcfsSource over a real directory: /proc in production, a fixture
/// directory in integration tests.
class DirProcfs final : public ProcfsSource {
 public:
  explicit DirProcfs(std::string root);

  std::optional<std::string> read(const std::string& path) const override;
  std::vector<std::uint64_t> pids() const override;

  const std::string& root() const { return root_; }

 private:
  std::string root_;
};

/// In-memory ProcfsSource for unit tests: a mutable map of path ->
/// contents. pids() is derived from the "N/..." keys present.
class FakeProcfs final : public ProcfsSource {
 public:
  /// Create or replace one file.
  void set(const std::string& path, std::string contents) {
    files_[path] = std::move(contents);
  }
  /// Remove one file (simulates a process exit race mid-sample).
  void remove(const std::string& path) { files_.erase(path); }

  std::optional<std::string> read(const std::string& path) const override;
  std::vector<std::uint64_t> pids() const override;

 private:
  std::map<std::string, std::string> files_;
};

}  // namespace resmon::host
