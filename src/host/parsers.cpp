#include "host/parsers.hpp"

#include <charconv>
#include <sstream>
#include <vector>

namespace resmon::host {

namespace {

/// Split on runs of spaces/tabs (procfs pads columns with both).
std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::string token;
  std::istringstream ss(line);
  while (ss >> token) out.push_back(token);
  return out;
}

/// Split into lines, dropping a trailing '\r' (defensive; procfs never
/// emits one but recordings may cross filesystems).
std::vector<std::string> split_lines(const std::string& contents) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream ss(contents);
  while (std::getline(ss, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  return lines;
}

}  // namespace

std::uint64_t parse_u64_field(const std::string& file, std::size_t line,
                              const std::string& field,
                              const std::string& token) {
  if (token.empty()) {
    throw HostParseError(file, line, field, "empty counter field");
  }
  std::uint64_t value = 0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec == std::errc::result_out_of_range) {
    throw HostParseError(file, line, field,
                         "counter '" + token + "' overflows 64 bits");
  }
  if (ec != std::errc() || ptr != end) {
    throw HostParseError(file, line, field,
                         "expected an unsigned integer, got '" + token + "'");
  }
  return value;
}

CpuJiffies parse_proc_stat(const std::string& contents,
                           const std::string& file) {
  const std::vector<std::string> lines = split_lines(contents);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::vector<std::string> tok = split_ws(lines[i]);
    if (tok.empty() || tok[0] != "cpu") continue;
    // user nice system idle are mandatory since Linux 2.6; the later
    // columns (iowait irq softirq steal) appear on any kernel this runs
    // on, but tolerate their absence as zero.
    if (tok.size() < 5) {
      throw HostParseError(file, i + 1, "cpu",
                           "aggregate cpu line has " +
                               std::to_string(tok.size() - 1) +
                               " counters, need >= 4");
    }
    static const char* kNames[] = {"user", "nice",    "system", "idle",
                                   "iowait", "irq", "softirq", "steal"};
    std::uint64_t v[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (std::size_t f = 0; f < 8 && f + 1 < tok.size(); ++f) {
      v[f] = parse_u64_field(file, i + 1, kNames[f], tok[f + 1]);
    }
    return CpuJiffies{.user = v[0],
                      .nice = v[1],
                      .system = v[2],
                      .idle = v[3],
                      .iowait = v[4],
                      .irq = v[5],
                      .softirq = v[6],
                      .steal = v[7]};
  }
  throw HostParseError(file, 1, "cpu", "no aggregate 'cpu ' line");
}

MemInfo parse_meminfo(const std::string& contents, const std::string& file) {
  const std::vector<std::string> lines = split_lines(contents);
  MemInfo info;
  bool saw_total = false;
  bool saw_available = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::vector<std::string> tok = split_ws(lines[i]);
    if (tok.size() < 2) continue;
    if (tok[0] == "MemTotal:") {
      info.total_kb = parse_u64_field(file, i + 1, "MemTotal", tok[1]);
      saw_total = true;
    } else if (tok[0] == "MemAvailable:") {
      info.available_kb =
          parse_u64_field(file, i + 1, "MemAvailable", tok[1]);
      saw_available = true;
    }
  }
  if (!saw_total) {
    throw HostParseError(file, lines.size(), "MemTotal", "line missing");
  }
  if (!saw_available) {
    throw HostParseError(file, lines.size(), "MemAvailable", "line missing");
  }
  if (info.total_kb == 0) {
    throw HostParseError(file, 1, "MemTotal", "is zero");
  }
  return info;
}

PidStat parse_pid_stat(const std::string& contents, const std::string& file) {
  // Format: pid (comm) state ppid ... utime(14) stime(15) ...
  // comm may contain ' ' and ')', so the split point is the LAST ')'.
  const std::vector<std::string> lines = split_lines(contents);
  if (lines.empty() || lines[0].empty()) {
    throw HostParseError(file, 1, "pid", "file is empty");
  }
  const std::string& line = lines[0];
  const std::size_t open = line.find('(');
  const std::size_t close = line.rfind(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    throw HostParseError(file, 1, "comm",
                         "no parenthesised comm field");
  }
  PidStat st;
  {
    const std::string pid_text = line.substr(0, open);
    const std::vector<std::string> tok = split_ws(pid_text);
    if (tok.size() != 1) {
      throw HostParseError(file, 1, "pid", "expected 'PID (comm) ...'");
    }
    st.pid = parse_u64_field(file, 1, "pid", tok[0]);
  }
  st.comm = line.substr(open + 1, close - open - 1);
  const std::vector<std::string> tail = split_ws(line.substr(close + 1));
  // tail[0]=state(3) tail[1]=ppid(4) ... tail[11]=utime(14) tail[12]=stime(15)
  if (tail.size() < 13) {
    throw HostParseError(file, 1, "stime",
                         "truncated stat line: " +
                             std::to_string(tail.size()) +
                             " fields after comm, need >= 13");
  }
  if (tail[0].size() != 1) {
    throw HostParseError(file, 1, "state",
                         "expected a single state character, got '" +
                             tail[0] + "'");
  }
  st.state = tail[0][0];
  st.ppid = parse_u64_field(file, 1, "ppid", tail[1]);
  st.utime = parse_u64_field(file, 1, "utime", tail[11]);
  st.stime = parse_u64_field(file, 1, "stime", tail[12]);
  return st;
}

std::uint64_t parse_statm_rss_pages(const std::string& contents,
                                    const std::string& file) {
  const std::vector<std::string> tok = split_ws(contents);
  if (tok.size() < 2) {
    throw HostParseError(file, 1, "resident",
                         "statm has " + std::to_string(tok.size()) +
                             " fields, need >= 2");
  }
  return parse_u64_field(file, 1, "resident", tok[1]);
}

PidIo parse_pid_io(const std::string& contents, const std::string& file) {
  const std::vector<std::string> lines = split_lines(contents);
  PidIo io;
  bool saw_read = false;
  bool saw_write = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::vector<std::string> tok = split_ws(lines[i]);
    if (tok.size() < 2) continue;
    if (tok[0] == "read_bytes:") {
      io.read_bytes = parse_u64_field(file, i + 1, "read_bytes", tok[1]);
      saw_read = true;
    } else if (tok[0] == "write_bytes:") {
      io.write_bytes = parse_u64_field(file, i + 1, "write_bytes", tok[1]);
      saw_write = true;
    }
  }
  if (!saw_read) {
    throw HostParseError(file, lines.size(), "read_bytes", "line missing");
  }
  if (!saw_write) {
    throw HostParseError(file, lines.size(), "write_bytes", "line missing");
  }
  return io;
}

NetDevTotals parse_net_dev(const std::string& contents,
                           const std::string& file) {
  // Two header lines, then "iface: rx_bytes ... (8 rx cols) tx_bytes ...".
  const std::vector<std::string> lines = split_lines(contents);
  NetDevTotals totals;
  bool saw_interface = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::size_t colon = lines[i].find(':');
    if (colon == std::string::npos) continue;  // header lines
    const std::string iface = split_ws(lines[i].substr(0, colon)).empty()
                                  ? std::string()
                                  : split_ws(lines[i].substr(0, colon))[0];
    const std::vector<std::string> tok =
        split_ws(lines[i].substr(colon + 1));
    if (iface.empty()) {
      throw HostParseError(file, i + 1, "interface", "empty interface name");
    }
    if (tok.size() < 16) {
      throw HostParseError(file, i + 1, iface,
                           "interface row has " + std::to_string(tok.size()) +
                               " counters, need 16");
    }
    saw_interface = true;
    if (iface == "lo") continue;  // loopback traffic is not uplink load
    totals.rx_bytes +=
        parse_u64_field(file, i + 1, iface + " rx_bytes", tok[0]);
    totals.tx_bytes +=
        parse_u64_field(file, i + 1, iface + " tx_bytes", tok[8]);
  }
  if (!saw_interface) {
    throw HostParseError(file, lines.size(), "interface",
                         "no interface rows");
  }
  return totals;
}

DiskTotals parse_diskstats(const std::string& contents,
                           const std::string& file) {
  const std::vector<std::string> lines = split_lines(contents);
  DiskTotals totals;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    const std::vector<std::string> tok = split_ws(lines[i]);
    // major minor name reads merged sectors_read ms writes merged
    // sectors_written ...
    if (tok.size() < 10) {
      throw HostParseError(file, i + 1, "sectors_written",
                           "diskstats row has " +
                               std::to_string(tok.size()) +
                               " fields, need >= 10");
    }
    const std::string& name = tok[2];
    if (name.rfind("loop", 0) == 0 || name.rfind("ram", 0) == 0) continue;
    totals.sectors_read +=
        parse_u64_field(file, i + 1, name + " sectors_read", tok[5]);
    totals.sectors_written +=
        parse_u64_field(file, i + 1, name + " sectors_written", tok[9]);
  }
  return totals;
}

std::uint64_t parse_cgroup_cpu_usec(const std::string& contents,
                                    const std::string& file) {
  const std::vector<std::string> lines = split_lines(contents);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::vector<std::string> tok = split_ws(lines[i]);
    if (tok.size() >= 2 && tok[0] == "usage_usec") {
      return parse_u64_field(file, i + 1, "usage_usec", tok[1]);
    }
  }
  throw HostParseError(file, lines.size(), "usage_usec", "line missing");
}

std::uint64_t parse_cgroup_scalar(const std::string& contents,
                                  const std::string& file) {
  const std::vector<std::string> tok = split_ws(contents);
  if (tok.size() != 1) {
    throw HostParseError(file, 1, "value",
                         "expected exactly one value, got " +
                             std::to_string(tok.size()) + " tokens");
  }
  return parse_u64_field(file, 1, "value", tok[0]);
}

}  // namespace resmon::host
