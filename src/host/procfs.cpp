#include "host/procfs.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

namespace resmon::host {

namespace {

/// True when `name` is all digits (a /proc/<pid> directory name). The
/// length bound keeps std::stoull from overflowing on hostile fixtures.
bool all_digits(const std::string& name) {
  if (name.empty() || name.size() > 18) return false;
  return std::all_of(name.begin(), name.end(), [](unsigned char c) {
    return std::isdigit(c) != 0;
  });
}

}  // namespace

DirProcfs::DirProcfs(std::string root) : root_(std::move(root)) {}

std::optional<std::string> DirProcfs::read(const std::string& path) const {
  std::ifstream in(root_ + "/" + path);
  if (!in) return std::nullopt;
  // procfs files report size 0; read by streaming, not by seeking.
  std::ostringstream contents;
  contents << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return contents.str();
}

std::vector<std::uint64_t> DirProcfs::pids() const {
  std::vector<std::uint64_t> out;
  std::error_code ec;
  std::filesystem::directory_iterator it(root_, ec);
  if (ec) return out;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (!all_digits(name)) continue;
    out.push_back(std::stoull(name));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<std::string> FakeProcfs::read(const std::string& path) const {
  const auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::uint64_t> FakeProcfs::pids() const {
  std::vector<std::uint64_t> out;
  for (const auto& [path, contents] : files_) {
    const std::size_t slash = path.find('/');
    if (slash == std::string::npos) continue;
    const std::string dir = path.substr(0, slash);
    if (!all_digits(dir)) continue;
    const std::uint64_t pid = std::stoull(dir);
    if (out.empty() || out.back() != pid) out.push_back(pid);
  }
  // Map order keeps "10/..." before "9/..." lexicographically; re-sort
  // numerically and dedupe.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace resmon::host
