#include "host/sampler.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace resmon::host {

namespace {

constexpr std::size_t kCpu = 0;
constexpr std::size_t kMemory = 1;
constexpr std::size_t kIo = 2;
constexpr std::size_t kNet = 3;

constexpr std::uint64_t kSectorBytes = 512;

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

/// Count the per-core "cpuN" lines of /proc/stat (>= 1 even on degenerate
/// input, so cgroup cpu normalization never divides by zero).
std::size_t count_cpus(const std::string& stat_contents) {
  std::size_t cpus = 0;
  std::size_t pos = 0;
  while (pos < stat_contents.size()) {
    std::size_t eol = stat_contents.find('\n', pos);
    if (eol == std::string::npos) eol = stat_contents.size();
    if (stat_contents.compare(pos, 3, "cpu") == 0 && pos + 3 < eol &&
        stat_contents[pos + 3] >= '0' && stat_contents[pos + 3] <= '9') {
      ++cpus;
    }
    pos = eol + 1;
  }
  return std::max<std::size_t>(cpus, 1);
}

}  // namespace

std::string HostSampler::resource_name(std::size_t resource) {
  switch (resource) {
    case kCpu:
      return "cpu";
    case kMemory:
      return "memory";
    case kIo:
      return "io";
    case kNet:
      return "net";
    default:
      throw InvalidArgument("HostSampler: resource index out of range");
  }
}

HostSampler::HostSampler(const ProcfsSource& procfs,
                         HostSamplerOptions options)
    : procfs_(procfs), options_(std::move(options)) {
  RESMON_REQUIRE(options_.page_size > 0, "page_size must be positive");
  RESMON_REQUIRE(options_.io_full_scale > 0 && options_.net_full_scale > 0,
                 "full-scale rates must be positive");
  if (options_.metrics == nullptr) return;
  obs::MetricsRegistry& m = *options_.metrics;
  samples_total_ = &m.counter("resmon_host_samples_total",
                              "Host measurement vectors produced");
  parse_errors_total_ =
      &m.counter("resmon_host_parse_errors_total",
                 "Samples aborted by malformed or missing procfs content");
  counter_wraps_total_ = &m.counter(
      "resmon_host_counter_wraps_total",
      "Cumulative counters that moved backwards (wrap/reset); the "
      "affected interval reports a zero rate instead of a spike");
  sample_latency_ms_ = &m.histogram(
      "resmon_host_sample_latency_ms",
      "Wall-clock cost of one procfs sampling pass (live sources only)",
      obs::duration_ms_buckets());
  utilization_.reserve(kNumResources);
  for (std::size_t r = 0; r < kNumResources; ++r) {
    utilization_.push_back(
        &m.gauge("resmon_host_utilization",
                 "Most recent normalized utilization per resource",
                 {{"resource", resource_name(r)}}));
  }
  watched_processes_ = &m.gauge(
      "resmon_host_watched_processes",
      "Processes in the watched tree at the last sample (0 = whole host)");
  cgroup_active_ = &m.gauge(
      "resmon_host_cgroup_active",
      "1 when cpu/memory came from cgroup v2 files at the last sample");
}

std::string HostSampler::must_read(const std::string& path) const {
  std::optional<std::string> contents = procfs_.read(path);
  if (!contents.has_value()) {
    throw Error("host sampler: required procfs file missing: " + path);
  }
  return *std::move(contents);
}

std::uint64_t HostSampler::counter_delta(std::uint64_t prev,
                                         std::uint64_t cur) {
  if (cur < prev) {
    if (counter_wraps_total_ != nullptr) counter_wraps_total_->inc();
    return 0;
  }
  return cur - prev;
}

std::vector<double> HostSampler::sample(std::uint64_t now_ms) {
  try {
    std::vector<double> x = sample_impl(now_ms);
    ++samples_taken_;
    if (samples_total_ != nullptr) {
      samples_total_->inc();
      for (std::size_t r = 0; r < kNumResources; ++r) {
        utilization_[r]->set(x[r]);
      }
    }
    return x;
  } catch (const Error&) {
    if (parse_errors_total_ != nullptr) parse_errors_total_->inc();
    throw;
  }
}

void HostSampler::observe_latency_ms(double ms) {
  if (sample_latency_ms_ != nullptr) sample_latency_ms_->observe(ms);
}

std::vector<double> HostSampler::sample_impl(std::uint64_t now_ms) {
  const bool whole_host = options_.watch_pids.empty();

  const std::string stat_contents = must_read("stat");
  const CpuJiffies cpu = parse_proc_stat(stat_contents, "stat");
  const MemInfo mem = parse_meminfo(must_read("meminfo"), "meminfo");
  const NetDevTotals net = parse_net_dev(must_read("net/dev"), "net/dev");

  // Watched process tree: read every /proc/<pid>/stat once, then follow
  // ppid edges from the watch roots. Files that vanish between the
  // directory scan and the read are exit races, not errors.
  std::uint64_t tree_jiffies = 0;
  std::uint64_t tree_rss_bytes = 0;
  std::uint64_t tree_io_bytes = 0;
  std::size_t tree_size = 0;
  if (!whole_host) {
    std::map<std::uint64_t, std::vector<std::uint64_t>> children;
    std::map<std::uint64_t, std::uint64_t> jiffies_of;
    for (const std::uint64_t pid : procfs_.pids()) {
      const std::string path = std::to_string(pid) + "/stat";
      const std::optional<std::string> contents = procfs_.read(path);
      if (!contents.has_value()) continue;
      const PidStat st = parse_pid_stat(*contents, path);
      children[st.ppid].push_back(pid);
      jiffies_of[pid] = st.utime + st.stime;
    }
    std::vector<std::uint64_t> frontier;
    for (const std::uint64_t root : options_.watch_pids) {
      if (jiffies_of.find(root) != jiffies_of.end()) {
        frontier.push_back(root);
      }
    }
    std::vector<std::uint64_t> members;
    while (!frontier.empty()) {
      const std::uint64_t pid = frontier.back();
      frontier.pop_back();
      if (std::find(members.begin(), members.end(), pid) != members.end()) {
        continue;
      }
      members.push_back(pid);
      if (!options_.include_descendants) continue;
      const auto kids = children.find(pid);
      if (kids == children.end()) continue;
      frontier.insert(frontier.end(), kids->second.begin(),
                      kids->second.end());
    }
    tree_size = members.size();
    for (const std::uint64_t pid : members) {
      tree_jiffies += jiffies_of[pid];
      const std::string dir = std::to_string(pid);
      if (const auto statm = procfs_.read(dir + "/statm")) {
        tree_rss_bytes +=
            parse_statm_rss_pages(*statm, dir + "/statm") *
            options_.page_size;
      }
      if (const auto io = procfs_.read(dir + "/io")) {
        const PidIo pio = parse_pid_io(*io, dir + "/io");
        tree_io_bytes += pio.read_bytes + pio.write_bytes;
      }
    }
  }

  // Optional cgroup v2 view (whole-host mode only: a watched tree already
  // has exact per-pid accounting).
  bool cgroup_active = false;
  std::uint64_t cgroup_usec = 0;
  std::uint64_t cgroup_mem_bytes = 0;
  if (whole_host && options_.cgroup != nullptr) {
    const std::optional<std::string> cpu_stat =
        options_.cgroup->read("cpu.stat");
    const std::optional<std::string> mem_current =
        options_.cgroup->read("memory.current");
    if (cpu_stat.has_value() && mem_current.has_value()) {
      cgroup_usec = parse_cgroup_cpu_usec(*cpu_stat, "cpu.stat");
      cgroup_mem_bytes =
          parse_cgroup_scalar(*mem_current, "memory.current");
      cgroup_active = true;
    }
  }

  // Whole-host IO needs diskstats; a watched tree uses per-pid io files.
  std::uint64_t disk_sectors = 0;
  if (whole_host) {
    const DiskTotals disk =
        parse_diskstats(must_read("diskstats"), "diskstats");
    disk_sectors = disk.sectors_read + disk.sectors_written;
  }
  const std::uint64_t net_bytes = net.rx_bytes + net.tx_bytes;
  const std::uint64_t mem_total_bytes = mem.total_kb * 1024;

  std::vector<double> x(kNumResources, 0.0);

  // Memory is a level, not a rate: real from the very first sample.
  if (!whole_host) {
    x[kMemory] = clamp01(static_cast<double>(tree_rss_bytes) /
                         static_cast<double>(mem_total_bytes));
  } else if (cgroup_active) {
    x[kMemory] = clamp01(static_cast<double>(cgroup_mem_bytes) /
                         static_cast<double>(mem_total_bytes));
  } else {
    x[kMemory] = clamp01(
        static_cast<double>(mem.total_kb -
                            std::min(mem.available_kb, mem.total_kb)) /
        static_cast<double>(mem.total_kb));
  }

  if (have_prev_) {
    const std::uint64_t dt_ms = counter_delta(prev_ms_, now_ms);
    const std::uint64_t cpu_total_delta =
        counter_delta(prev_cpu_total_, cpu.total());
    const std::uint64_t cpu_busy_delta =
        counter_delta(prev_cpu_busy_, cpu.busy());
    if (cpu_total_delta > 0) {
      if (!whole_host) {
        const std::uint64_t tree_delta =
            counter_delta(prev_tree_jiffies_, tree_jiffies);
        x[kCpu] = clamp01(static_cast<double>(tree_delta) /
                          static_cast<double>(cpu_total_delta));
      } else if (cgroup_active) {
        const std::uint64_t usec_delta =
            counter_delta(prev_cgroup_usec_, cgroup_usec);
        if (dt_ms > 0) {
          const double cpus =
              static_cast<double>(count_cpus(stat_contents));
          x[kCpu] = clamp01(static_cast<double>(usec_delta) /
                            (static_cast<double>(dt_ms) * 1000.0 * cpus));
        }
      } else {
        x[kCpu] = clamp01(static_cast<double>(cpu_busy_delta) /
                          static_cast<double>(cpu_total_delta));
      }
    }
    if (dt_ms > 0) {
      const double dt_s = static_cast<double>(dt_ms) / 1000.0;
      const std::uint64_t io_delta =
          whole_host
              ? counter_delta(prev_disk_sectors_, disk_sectors) *
                    kSectorBytes
              : counter_delta(prev_io_bytes_, tree_io_bytes);
      x[kIo] = clamp01(static_cast<double>(io_delta) / dt_s /
                       options_.io_full_scale);
      const std::uint64_t net_delta =
          counter_delta(prev_net_bytes_, net_bytes);
      x[kNet] = clamp01(static_cast<double>(net_delta) / dt_s /
                        options_.net_full_scale);
    }
  }

  have_prev_ = true;
  prev_ms_ = now_ms;
  prev_cpu_busy_ = cpu.busy();
  prev_cpu_total_ = cpu.total();
  prev_tree_jiffies_ = tree_jiffies;
  prev_io_bytes_ = tree_io_bytes;
  prev_disk_sectors_ = disk_sectors;
  prev_net_bytes_ = net_bytes;
  prev_cgroup_usec_ = cgroup_usec;

  if (watched_processes_ != nullptr) {
    watched_processes_->set(static_cast<double>(tree_size));
    cgroup_active_->set(cgroup_active ? 1.0 : 0.0);
  }
  return x;
}

}  // namespace resmon::host
