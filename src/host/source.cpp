#include "host/source.hpp"

#include "host/clock.hpp"

namespace resmon::host {

ProcfsSamplerSource::ProcfsSamplerSource(HostSampler& sampler,
                                         Options options)
    : sampler_(sampler), options_(std::move(options)) {
  RESMON_REQUIRE(options_.interval_ms > 0, "interval_ms must be positive");
  if (!options_.now_ms) options_.now_ms = monotonic_ms;
  if (!options_.sleep_ms) options_.sleep_ms = sleep_ms;
}

std::vector<double> ProcfsSamplerSource::measurement(std::size_t t) {
  if (started_) {
    // Pace against the first sample's timestamp, not the previous slot's,
    // so per-slot jitter doesn't accumulate into drift.
    const std::uint64_t deadline =
        first_sample_ms_ + t * options_.interval_ms;
    const std::uint64_t now = options_.now_ms();
    if (now < deadline) options_.sleep_ms(deadline - now);
  }
  const std::uint64_t start = options_.now_ms();
  if (!started_) {
    started_ = true;
    first_sample_ms_ = start;
  }
  std::vector<double> x = sampler_.sample(start);
  sampler_.observe_latency_ms(
      static_cast<double>(options_.now_ms() - start));
  if (options_.recorder != nullptr) options_.recorder->append(x, start);
  return x;
}

}  // namespace resmon::host
