// Strict parsers for the procfs/cgroup file formats the HostSampler reads.
//
// Every parser takes the file's full contents plus its name and throws
// HostParseError naming the file, 1-based line and offending field on any
// malformed input — a truncated /proc/stat or a garbage counter is always
// diagnosed, never silently misread (the hostile-content suite in
// tests/test_host.cpp drives each failure mode under ASan+UBSan).
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace resmon::host {

/// Malformed procfs/cgroup/recording content. The message always reads
/// `<file>:<line>: field '<field>': <detail>`.
class HostParseError final : public Error {
 public:
  HostParseError(const std::string& file, std::size_t line,
                 const std::string& field, const std::string& detail)
      : Error(file + ":" + std::to_string(line) + ": field '" + field +
              "': " + detail),
        file_(file),
        line_(line),
        field_(field) {}

  const std::string& file() const { return file_; }
  std::size_t line() const { return line_; }
  const std::string& field() const { return field_; }

 private:
  std::string file_;
  std::size_t line_;
  std::string field_;
};

/// Parse one unsigned 64-bit counter field (digits only, whole token).
std::uint64_t parse_u64_field(const std::string& file, std::size_t line,
                              const std::string& field,
                              const std::string& token);

/// Aggregate jiffy counters from the first "cpu " line of /proc/stat.
struct CpuJiffies {
  std::uint64_t user = 0;
  std::uint64_t nice = 0;
  std::uint64_t system = 0;
  std::uint64_t idle = 0;
  std::uint64_t iowait = 0;
  std::uint64_t irq = 0;
  std::uint64_t softirq = 0;
  std::uint64_t steal = 0;

  std::uint64_t busy() const {
    return user + nice + system + irq + softirq + steal;
  }
  std::uint64_t total() const { return busy() + idle + iowait; }
};
CpuJiffies parse_proc_stat(const std::string& contents,
                           const std::string& file);

/// MemTotal / MemAvailable out of /proc/meminfo (kB).
struct MemInfo {
  std::uint64_t total_kb = 0;
  std::uint64_t available_kb = 0;
};
MemInfo parse_meminfo(const std::string& contents, const std::string& file);

/// The fields of /proc/<pid>/stat the sampler needs. The comm field is
/// parenthesised and may itself contain spaces and ')' — parsing anchors
/// on the *last* ')' as the kernel format requires.
struct PidStat {
  std::uint64_t pid = 0;
  std::string comm;
  char state = '?';
  std::uint64_t ppid = 0;
  std::uint64_t utime = 0;  ///< jiffies in user mode
  std::uint64_t stime = 0;  ///< jiffies in kernel mode
};
PidStat parse_pid_stat(const std::string& contents, const std::string& file);

/// Resident set size in pages (second field of /proc/<pid>/statm).
std::uint64_t parse_statm_rss_pages(const std::string& contents,
                                    const std::string& file);

/// read_bytes / write_bytes out of /proc/<pid>/io.
struct PidIo {
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
};
PidIo parse_pid_io(const std::string& contents, const std::string& file);

/// Cumulative rx/tx byte counters summed over every interface except the
/// loopback, from /proc/net/dev.
struct NetDevTotals {
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_bytes = 0;
};
NetDevTotals parse_net_dev(const std::string& contents,
                           const std::string& file);

/// Cumulative sectors read/written summed over block devices from
/// /proc/diskstats. loop/ram pseudo-devices are skipped; partitions are
/// counted alongside their disks (the full-scale normalization absorbs the
/// constant factor — see HostSamplerOptions::io_full_scale).
struct DiskTotals {
  std::uint64_t sectors_read = 0;
  std::uint64_t sectors_written = 0;
};
DiskTotals parse_diskstats(const std::string& contents,
                           const std::string& file);

/// usage_usec out of a cgroup v2 cpu.stat file.
std::uint64_t parse_cgroup_cpu_usec(const std::string& contents,
                                    const std::string& file);

/// A single-value cgroup v2 file (memory.current); "max" is rejected —
/// callers only read current-usage files, never limits.
std::uint64_t parse_cgroup_scalar(const std::string& contents,
                                  const std::string& file);

}  // namespace resmon::host
