// Versioned host-recording files: the determinism bridge for live
// sampling.
//
// `resmon_agent --source procfs --record FILE` persists every sampled
// measurement vector plus its monotonic timestamp; `--source replay
// --replay FILE` re-runs the identical series bit-exactly with zero clock
// or procfs reads, so a live run is as replayable as a synthetic one
// (test_host and scenarios/self_soak.scn assert bit-identical forecasts).
//
// Format — a strict superset of the src/trace CSV grammar, so recordings
// double as ordinary traces for trace::load_csv and every offline tool:
//
//   # resmon-host-recording v1            <- magic, line 1 exactly
//   # interval_ms=100 resources=4         <- metadata, line 2
//   node,step,cpu,memory,io,net           <- trace CSV header
//   0,0,0.25,0.41,0,0                     <- one row per sample (node 0,
//   ...                                      consecutive steps, %.17g so
//                                            doubles round-trip bit-exactly)
//   # ts_ms=83211,83311,...               <- per-row monotonic timestamps
//   # end rows=N                          <- trailer; absence = truncation
//
// The reader rejects a missing/garbled magic line, malformed metadata,
// non-consecutive steps, wrong column counts, unparseable values, a
// timestamp list whose length disagrees with the rows, and a missing or
// mismatched end trailer — each with a HostParseError naming file, line
// and field.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "host/parsers.hpp"

namespace resmon::host {

inline constexpr const char* kRecordingMagic = "# resmon-host-recording v1";

/// A fully-loaded recording: one node's sampled series plus timestamps.
struct Recording {
  std::uint64_t interval_ms = 0;
  std::vector<std::vector<double>> rows;        ///< one vector per step
  std::vector<std::uint64_t> timestamps_ms;     ///< parallel to rows

  std::size_t num_resources() const {
    return rows.empty() ? 0 : rows.front().size();
  }
};

/// Streams a recording to `out`. The header is written at construction;
/// call append() once per slot in order and finish() exactly once at the
/// end (a recording without its trailer is diagnosed as truncated on
/// load).
class RecordingWriter {
 public:
  RecordingWriter(std::ostream& out, std::uint64_t interval_ms,
                  std::size_t num_resources);
  ~RecordingWriter() = default;
  RecordingWriter(const RecordingWriter&) = delete;
  RecordingWriter& operator=(const RecordingWriter&) = delete;

  void append(std::span<const double> values, std::uint64_t ts_ms);
  void finish();

  std::size_t rows_written() const { return rows_; }

 private:
  std::ostream& out_;
  std::size_t num_resources_;
  std::size_t rows_ = 0;
  bool finished_ = false;
  std::vector<std::uint64_t> timestamps_ms_;
};

/// Parse a recording; `origin` names the input in diagnostics.
Recording read_recording(std::istream& in, const std::string& origin);
Recording read_recording_file(const std::string& path);

}  // namespace resmon::host
