#include "host/recording.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "host/sampler.hpp"

namespace resmon::host {

namespace {

/// %.17g: the shortest printf format that round-trips every finite double
/// exactly through strtod/from_chars.
std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

double parse_row_double(const std::string& file, std::size_t line,
                        const std::string& field, const std::string& token) {
  if (token.empty()) {
    throw HostParseError(file, line, field, "empty value");
  }
  double value = 0.0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end || !std::isfinite(value)) {
    throw HostParseError(file, line, field,
                         "expected a finite number, got '" + token + "'");
  }
  return value;
}

std::vector<std::string> split_on(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream ss(text);
  while (std::getline(ss, field, sep)) out.push_back(field);
  if (!text.empty() && text.back() == sep) out.emplace_back();
  return out;
}

}  // namespace

RecordingWriter::RecordingWriter(std::ostream& out,
                                 std::uint64_t interval_ms,
                                 std::size_t num_resources)
    : out_(out), num_resources_(num_resources) {
  RESMON_REQUIRE(num_resources > 0, "recording needs >= 1 resource");
  out_ << kRecordingMagic << '\n';
  out_ << "# interval_ms=" << interval_ms << " resources=" << num_resources
       << '\n';
  out_ << "node,step";
  for (std::size_t r = 0; r < num_resources; ++r) {
    // Resource column names follow the sampler's layout for d = 4 and fall
    // back to generic rN headers for other dimensions.
    if (num_resources == HostSampler::kNumResources) {
      out_ << ',' << HostSampler::resource_name(r);
    } else {
      out_ << ",r" << r;
    }
  }
  out_ << '\n';
}

void RecordingWriter::append(std::span<const double> values,
                             std::uint64_t ts_ms) {
  RESMON_REQUIRE(!finished_, "RecordingWriter: append after finish");
  RESMON_REQUIRE(values.size() == num_resources_,
                 "RecordingWriter: wrong measurement dimension");
  out_ << 0 << ',' << rows_;
  for (const double v : values) out_ << ',' << format_double(v);
  out_ << '\n';
  timestamps_ms_.push_back(ts_ms);
  ++rows_;
}

void RecordingWriter::finish() {
  RESMON_REQUIRE(!finished_, "RecordingWriter: finish called twice");
  finished_ = true;
  out_ << "# ts_ms=";
  for (std::size_t i = 0; i < timestamps_ms_.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << timestamps_ms_[i];
  }
  out_ << '\n';
  out_ << "# end rows=" << rows_ << '\n';
  out_.flush();
}

Recording read_recording(std::istream& in, const std::string& origin) {
  std::string line;
  std::size_t line_no = 0;
  const auto next_line = [&]() -> bool {
    if (!std::getline(in, line)) return false;
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    return true;
  };

  if (!next_line() || line != kRecordingMagic) {
    throw HostParseError(origin, 1, "magic",
                         "not a host recording (expected '" +
                             std::string(kRecordingMagic) + "')");
  }
  if (!next_line() || line.rfind("# ", 0) != 0) {
    throw HostParseError(origin, 2, "metadata",
                         "missing '# interval_ms=... resources=...' line");
  }

  Recording rec;
  std::size_t num_resources = 0;
  {
    std::istringstream meta(line.substr(2));
    std::string token;
    bool saw_interval = false;
    bool saw_resources = false;
    while (meta >> token) {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos) {
        throw HostParseError(origin, 2, token,
                             "metadata entries are key=value");
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "interval_ms") {
        rec.interval_ms = parse_u64_field(origin, 2, key, value);
        saw_interval = true;
      } else if (key == "resources") {
        num_resources = parse_u64_field(origin, 2, key, value);
        saw_resources = true;
      } else {
        throw HostParseError(origin, 2, key, "unknown metadata key");
      }
    }
    if (!saw_interval || !saw_resources || num_resources == 0) {
      throw HostParseError(
          origin, 2, saw_interval ? "resources" : "interval_ms",
          "metadata must name interval_ms and a nonzero resources count");
    }
  }

  if (!next_line()) {
    throw HostParseError(origin, 3, "header", "missing CSV header");
  }
  {
    const std::vector<std::string> header = split_on(line, ',');
    if (header.size() != 2 + num_resources || header[0] != "node" ||
        header[1] != "step") {
      throw HostParseError(origin, line_no, "header",
                           "expected 'node,step' plus " +
                               std::to_string(num_resources) +
                               " resource columns, got '" + line + "'");
    }
  }

  bool saw_ts = false;
  bool saw_end = false;
  while (next_line()) {
    if (line.empty()) continue;
    if (line.front() == '#') {
      if (line.rfind("# ts_ms=", 0) == 0) {
        const std::string list = line.substr(std::string("# ts_ms=").size());
        if (!list.empty()) {
          for (const std::string& t : split_on(list, ',')) {
            rec.timestamps_ms.push_back(
                parse_u64_field(origin, line_no, "ts_ms", t));
          }
        }
        saw_ts = true;
      } else if (line.rfind("# end ", 0) == 0) {
        const std::string tail = line.substr(std::string("# end ").size());
        const std::size_t eq = tail.find('=');
        if (eq == std::string::npos || tail.substr(0, eq) != "rows") {
          throw HostParseError(origin, line_no, "end",
                               "trailer must be '# end rows=N'");
        }
        const std::uint64_t rows =
            parse_u64_field(origin, line_no, "rows", tail.substr(eq + 1));
        if (rows != rec.rows.size()) {
          throw HostParseError(
              origin, line_no, "rows",
              "trailer says " + std::to_string(rows) + " rows but " +
                  std::to_string(rec.rows.size()) + " were read "
                  "(recording truncated or corrupted)");
        }
        saw_end = true;
      }
      // Other comment lines are tolerated for forward compatibility.
      continue;
    }
    if (saw_end) {
      throw HostParseError(origin, line_no, "row",
                           "data after the '# end' trailer");
    }
    const std::vector<std::string> fields = split_on(line, ',');
    if (fields.size() != 2 + num_resources) {
      throw HostParseError(origin, line_no, "row",
                           "expected " + std::to_string(2 + num_resources) +
                               " fields, got " +
                               std::to_string(fields.size()));
    }
    const std::uint64_t node =
        parse_u64_field(origin, line_no, "node", fields[0]);
    if (node != 0) {
      throw HostParseError(origin, line_no, "node",
                           "recordings are single-node (node must be 0)");
    }
    const std::uint64_t step =
        parse_u64_field(origin, line_no, "step", fields[1]);
    if (step != rec.rows.size()) {
      throw HostParseError(origin, line_no, "step",
                           "expected consecutive step " +
                               std::to_string(rec.rows.size()) + ", got " +
                               std::to_string(step));
    }
    std::vector<double> row;
    row.reserve(num_resources);
    for (std::size_t r = 0; r < num_resources; ++r) {
      row.push_back(parse_row_double(origin, line_no, "column " + std::to_string(r),
                                     fields[2 + r]));
    }
    rec.rows.push_back(std::move(row));
  }

  if (!saw_end) {
    throw HostParseError(origin, line_no, "end",
                         "missing '# end rows=N' trailer "
                         "(recording truncated?)");
  }
  if (!saw_ts || rec.timestamps_ms.size() != rec.rows.size()) {
    throw HostParseError(origin, line_no, "ts_ms",
                         "timestamp list has " +
                             std::to_string(rec.timestamps_ms.size()) +
                             " entries for " +
                             std::to_string(rec.rows.size()) + " rows");
  }
  if (rec.rows.empty()) {
    throw HostParseError(origin, line_no, "row", "recording has no samples");
  }
  return rec;
}

Recording read_recording_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error("read_recording_file: cannot open " + path);
  }
  return read_recording(in, path);
}

}  // namespace resmon::host
