#include "host/clock.hpp"

#include <chrono>
#include <thread>

namespace resmon::host {

std::uint64_t monotonic_ms() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count());
}

void sleep_ms(std::uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace resmon::host
