// The host-collection backend's only wall-clock surface.
//
// Live sampling needs a monotonic timestamp per sample and a pacing sleep;
// both are confined to these two functions so the lint wall's determinism
// rule has exactly one file to allowlist (tools/lint_allowlist.txt) and the
// rest of src/host stays clock-free. Tests and replay never call them —
// they inject manual timestamps instead.
#pragma once

#include <cstdint>

namespace resmon::host {

/// Milliseconds on the monotonic clock (arbitrary epoch).
std::uint64_t monotonic_ms();

/// Block the calling thread for `ms` milliseconds.
void sleep_ms(std::uint64_t ms);

}  // namespace resmon::host
