// HostSampler: per-interval resource-utilization measurements for a real
// host (or one watched process tree), read from procfs/cgroups.
//
// Each sample() produces the same d = 4 normalized vector the synthetic
// traces produce — [cpu, memory, io, net], every component in [0, 1] — so
// live host data flows through the unchanged adaptive-transmission ->
// clustering -> forecasting pipeline (cctools' resource_monitor is the
// model; see SNIPPETS.md §1-2 and DESIGN.md "Host collection").
//
// Determinism: sample() takes its timestamp as a parameter and reads files
// only through the injected ProcfsSource, so given identical (file
// contents, timestamps) it is a pure function — unit tests drive it from
// FakeProcfs fixtures with manual clocks and never touch the live kernel.
// The only wall-clock reads live in clock.cpp (lint-allowlisted) and in
// the callers that pass `now_ms`.
//
// Counter hygiene: any cumulative counter that moves backwards (jiffy or
// byte-counter wrap, a reset device) yields a zero rate for that interval
// and increments resmon_host_counter_wraps_total — never a huge bogus
// spike. A zero-length interval likewise yields zero rates instead of a
// division by zero.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "host/parsers.hpp"
#include "host/procfs.hpp"
#include "obs/metrics.hpp"

namespace resmon::host {

struct HostSamplerOptions {
  /// Root PIDs to watch; empty = whole-host sampling. With
  /// include_descendants every live descendant of a root is included, so
  /// `--pid self` covers a whole bench fleet forked from one process.
  std::vector<std::uint64_t> watch_pids;
  bool include_descendants = true;

  /// Bytes per page for statm RSS accounting (sysconf(_SC_PAGESIZE) in
  /// production; fixed in tests for determinism).
  std::uint64_t page_size = 4096;

  /// Byte rates map to utilization 1.0 at these full-scale values
  /// (defaults: ~200 MB/s of disk IO, one saturated GbE link). Anything
  /// beyond full scale clamps to 1.
  double io_full_scale = 200e6;
  double net_full_scale = 125e6;

  /// Optional cgroup v2 directory (e.g. /sys/fs/cgroup/<slice>). When the
  /// expected files are present, cpu and memory come from cpu.stat
  /// usage_usec and memory.current instead of the whole-host procfs view;
  /// when absent or unreadable the sampler falls back to procfs and the
  /// resmon_host_cgroup_active gauge reads 0.
  const ProcfsSource* cgroup = nullptr;

  /// Metric families (resmon_host_*) are registered eagerly at
  /// construction. May be nullptr (bench runs without a registry).
  obs::MetricsRegistry* metrics = nullptr;
};

class HostSampler {
 public:
  /// Resource vector layout, matching trace::kCpu / trace::kMemory for the
  /// first two components.
  static constexpr std::size_t kNumResources = 4;
  static std::string resource_name(std::size_t resource);

  HostSampler(const ProcfsSource& procfs, HostSamplerOptions options);

  /// Take one sample at monotonic time `now_ms`. The first call
  /// establishes counter baselines: level resources (memory) are real,
  /// rate resources (cpu, io, net) are 0. Throws HostParseError (naming
  /// file, line and field) on malformed content and resmon::Error when a
  /// required host-level file is missing; both increment
  /// resmon_host_parse_errors_total first. Vanished per-pid files are
  /// skipped silently — processes exit mid-sample all the time.
  std::vector<double> sample(std::uint64_t now_ms);

  /// Record one wall-clock sampling latency into the
  /// resmon_host_sample_latency_ms histogram (called by the live source
  /// wrapper; replay never does).
  void observe_latency_ms(double ms);

  std::uint64_t samples_taken() const { return samples_taken_; }

 private:
  std::vector<double> sample_impl(std::uint64_t now_ms);
  std::string must_read(const std::string& path) const;
  std::uint64_t counter_delta(std::uint64_t prev, std::uint64_t cur);

  const ProcfsSource& procfs_;
  HostSamplerOptions options_;
  std::uint64_t samples_taken_ = 0;

  // Previous-sample counter baselines (valid once have_prev_).
  bool have_prev_ = false;
  std::uint64_t prev_ms_ = 0;
  std::uint64_t prev_cpu_busy_ = 0;
  std::uint64_t prev_cpu_total_ = 0;
  std::uint64_t prev_tree_jiffies_ = 0;
  std::uint64_t prev_io_bytes_ = 0;
  std::uint64_t prev_disk_sectors_ = 0;
  std::uint64_t prev_net_bytes_ = 0;
  std::uint64_t prev_cgroup_usec_ = 0;

  // Metrics (all nullptr when no registry was given).
  obs::Counter* samples_total_ = nullptr;
  obs::Counter* parse_errors_total_ = nullptr;
  obs::Counter* counter_wraps_total_ = nullptr;
  obs::Histogram* sample_latency_ms_ = nullptr;
  std::vector<obs::Gauge*> utilization_;  ///< one per resource
  obs::Gauge* watched_processes_ = nullptr;
  obs::Gauge* cgroup_active_ = nullptr;
};

}  // namespace resmon::host
