// The host-collection MeasurementSources: how HostSampler and recordings
// plug into the unchanged FleetCollector / resmon_agent slot loop.
//
//   ProcfsSamplerSource  live sampling, paced to a fixed interval on the
//                        monotonic clock, optionally teeing every sample
//                        into a RecordingWriter (--record)
//   ReplaySource         a loaded Recording, bit-exact, zero clock or
//                        procfs reads (--replay)
//
// Clock and sleep are injected std::functions (defaulting to the
// lint-allowlisted helpers in clock.hpp), so unit tests pace a
// ProcfsSamplerSource with a hand-advanced fake clock and stay fully
// deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "collect/measurement_source.hpp"
#include "host/recording.hpp"
#include "host/sampler.hpp"

namespace resmon::host {

class ProcfsSamplerSource final : public collect::MeasurementSource {
 public:
  struct Options {
    std::uint64_t interval_ms = 100;
    /// Monotonic clock / sleep hooks; nullptr selects the real ones.
    std::function<std::uint64_t()> now_ms;
    std::function<void(std::uint64_t)> sleep_ms;
    /// Optional record tee (non-owning; caller calls finish()).
    RecordingWriter* recorder = nullptr;
  };

  /// `sampler` is non-owning and must outlive the source.
  ProcfsSamplerSource(HostSampler& sampler, Options options);

  std::size_t num_resources() const override {
    return HostSampler::kNumResources;
  }
  /// Samples the host, pacing slot t to start_time + t * interval_ms.
  std::vector<double> measurement(std::size_t t) override;

 private:
  HostSampler& sampler_;
  Options options_;
  bool started_ = false;
  std::uint64_t first_sample_ms_ = 0;
};

/// Replays a loaded Recording as a bounded source.
class ReplaySource final : public collect::MeasurementSource {
 public:
  explicit ReplaySource(Recording recording)
      : recording_(std::move(recording)) {
    RESMON_REQUIRE(!recording_.rows.empty(),
                   "ReplaySource: recording has no samples");
  }

  std::size_t num_resources() const override {
    return recording_.num_resources();
  }
  std::size_t num_steps() const override { return recording_.rows.size(); }
  std::vector<double> measurement(std::size_t t) override {
    RESMON_REQUIRE(t < recording_.rows.size(),
                   "ReplaySource: step beyond the end of the recording");
    return recording_.rows[t];
  }

  const Recording& recording() const { return recording_; }

 private:
  Recording recording_;
};

}  // namespace resmon::host
