// File export helpers for the --metrics-out / --trace-out CLI paths.
#pragma once

#include <fstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace_log.hpp"

namespace resmon::obs {

/// Write the registry's Prometheus text exposition to `path`.
/// Throws InvalidArgument when the file cannot be opened.
inline void write_metrics_file(const std::string& path,
                               const MetricsRegistry& registry) {
  std::ofstream out(path);
  RESMON_REQUIRE(static_cast<bool>(out),
                 "--metrics-out: cannot open " + path);
  registry.render_text(out);
}

/// Write the trace buffer's retained spans as JSONL to `path`.
inline void write_trace_file(const std::string& path,
                             const TraceBuffer& buffer) {
  std::ofstream out(path);
  RESMON_REQUIRE(static_cast<bool>(out), "--trace-out: cannot open " + path);
  buffer.dump_jsonl(out);
}

}  // namespace resmon::obs
