// resmon::obs — lightweight trace-event layer.
//
// A TraceBuffer is a fixed-capacity ring of begin/end spans with
// steady-clock durations; producers on any thread record finished spans,
// old events are overwritten once the ring is full (the drop count is
// kept), and dump_jsonl() writes one JSON object per line in recording
// order:
//
//   {"name":"pipeline.cluster","ts_us":1234,"dur_us":56,"tid":1}
//
// ts_us is microseconds since the buffer's construction (a steady-clock
// epoch, so traces from one process are mutually comparable), tid is a
// small dense id assigned per recording thread. ScopedSpan is the RAII
// producer: it times its scope and, on destruction, records the event
// and/or accumulates the duration into a Gauge — either sink may be null,
// so instrumented code needs no conditionals.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "obs/metrics.hpp"

namespace resmon::obs {

struct TraceEvent {
  std::string name;
  std::uint64_t ts_us = 0;   ///< span start, microseconds since buffer epoch
  std::uint64_t dur_us = 0;  ///< span duration in microseconds
  std::uint32_t tid = 0;     ///< dense per-thread id (0 = first seen thread)
};

/// Thread-safe fixed-capacity ring of trace events.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = 4096);

  void record(std::string_view name,
              std::chrono::steady_clock::time_point start,
              std::chrono::steady_clock::time_point end);

  std::size_t capacity() const { return capacity_; }
  /// Events currently retained (<= capacity).
  std::size_t size() const;
  /// Events recorded in total, including overwritten ones.
  std::uint64_t recorded() const;
  /// Events lost to ring overwrite (recorded() - size()).
  std::uint64_t dropped() const;

  /// Retained events, oldest first.
  std::vector<TraceEvent> snapshot() const;

  /// One JSON object per line, oldest first (see header comment).
  void dump_jsonl(std::ostream& out) const;

 private:
  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable Mutex mutex_;
  std::vector<TraceEvent> ring_ RESMON_GUARDED_BY(mutex_);
  /// Ring write position.
  std::size_t next_ RESMON_GUARDED_BY(mutex_) = 0;
  std::uint64_t recorded_ RESMON_GUARDED_BY(mutex_) = 0;
  /// Hashed std::thread::id -> dense tid.
  std::vector<std::uint64_t> thread_ids_ RESMON_GUARDED_BY(mutex_);
};

/// RAII span: times construction -> destruction (or stop()), then records
/// into `buffer` and adds the duration in seconds to `seconds`. Both sinks
/// are optional.
class ScopedSpan {
 public:
  ScopedSpan(TraceBuffer* buffer, std::string_view name,
             Gauge* seconds = nullptr)
      : buffer_(buffer),
        seconds_(seconds),
        name_(name),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedSpan() { stop(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// End the span early; idempotent. Returns the measured seconds.
  double stop();

 private:
  TraceBuffer* buffer_;
  Gauge* seconds_;
  std::string_view name_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
  double elapsed_ = 0.0;
};

}  // namespace resmon::obs
