// resmon::obs — lock-cheap metrics for the whole monitoring pipeline.
//
// A MetricsRegistry owns named metric instances; components register the
// series they emit once (under the registry mutex) and then update them on
// the hot path with plain relaxed atomics — safe under the ThreadPool's
// parallel stages without any per-update locking. Three metric types cover
// everything the pipeline produces:
//
//   Counter    monotonically increasing u64 (frames, sends, fits, ...)
//   Gauge      settable double (queue backlog, match weight, RMSE, ...)
//   Histogram  fixed-bucket distribution (slot wait, fit seconds, ...)
//
// Snapshot order is deterministic: render_text() and snapshot() emit
// families sorted by metric name, series within a family sorted by their
// rendered label string — never by registration order — so two registries
// that hold the same series produce byte-identical expositions no matter
// what order components registered them in or how threads interleaved
// (test_obs asserts this byte-for-byte). Two caveats define the contract's
// edges: a family's help text is fixed by its first registration, and label
// keys render in the order the caller listed them, so a series must always
// be registered with one canonical key order. render_text() is the
// Prometheus text exposition format (text/plain; version=0.0.4), served by
// net::Controller's metrics endpoint and written by the --metrics-out CLI
// path.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"

namespace resmon::obs {

/// Label set of one series: (key, value) pairs, e.g. {{"view", "0"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. All operations are wait-free relaxed atomics.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Settable double gauge; add() is a CAS loop (contention is rare — gauges
/// are owned by one stage or labeled per view/model).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d);
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram with cumulative Prometheus semantics: bucket i
/// counts observations <= bounds[i], plus an implicit +Inf bucket.
class Histogram {
 public:
  /// `bounds` must be strictly increasing (checked at registration).
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket `i` alone (0 .. bounds().size(); the last index is
  /// the +Inf overflow bucket). Not cumulative.
  std::uint64_t bucket_count(std::size_t i) const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_+1 slots
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default histogram bounds for durations measured in seconds.
std::vector<double> duration_seconds_buckets();

/// Default histogram bounds for durations measured in milliseconds.
std::vector<double> duration_ms_buckets();

/// Flat view of one series for programmatic consumers (tests, adapters).
struct Sample {
  std::string name;
  std::string labels;  ///< rendered, e.g. `{view="0"}` ("" when unlabeled)
  double value = 0.0;
};

/// Thread-safe registry of named metrics.
///
// Registration is idempotent: asking for an existing (name, labels) series
// returns the same instance, so N components can share one aggregate
// counter simply by registering the same name (the help text of the first
// registration wins). Re-registering a name as a different metric type
// throws InvalidArgument. References returned by
// counter()/gauge()/histogram() stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds, const Labels& labels = {});

  /// Value of a counter or gauge series, if registered (for tests and the
  /// StageTimers adapter). Histograms are not scalar; read them via
  /// snapshot() or render_text().
  std::optional<double> value(const std::string& name,
                              const Labels& labels = {}) const;

  /// All counter/gauge series plus histogram _sum/_count expansions, in
  /// the deterministic exposition order.
  std::vector<Sample> snapshot() const;

  /// Prometheus text exposition (text/plain; version=0.0.4).
  std::string render_text() const;
  void render_text(std::ostream& out) const;

  /// Render `labels` the way the exposition does: `{k="v",...}` with
  /// backslash/quote/newline escaping, "" for an empty set.
  static std::string render_labels(const Labels& labels);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Family {
    Kind kind;
    std::string help;
    // Rendered label string -> instance; map order drives exposition order.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
  };

  Family& family(const std::string& name, const std::string& help, Kind kind)
      RESMON_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::map<std::string, Family> families_ RESMON_GUARDED_BY(mutex_);
};

}  // namespace resmon::obs
