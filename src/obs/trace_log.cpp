#include "obs/trace_log.hpp"

#include <algorithm>
#include <functional>
#include <ostream>
#include <thread>

namespace resmon::obs {

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(capacity), epoch_(std::chrono::steady_clock::now()) {
  RESMON_REQUIRE(capacity >= 1, "trace buffer needs capacity >= 1");
  ring_.reserve(std::min<std::size_t>(capacity, 1024));
}

void TraceBuffer::record(std::string_view name,
                         std::chrono::steady_clock::time_point start,
                         std::chrono::steady_clock::time_point end) {
  const std::uint64_t hashed =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  TraceEvent ev;
  ev.name.assign(name.begin(), name.end());
  ev.ts_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(start - epoch_)
          .count());
  ev.dur_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start)
          .count());

  MutexLock lock(mutex_);
  auto it = std::find(thread_ids_.begin(), thread_ids_.end(), hashed);
  if (it == thread_ids_.end()) {
    thread_ids_.push_back(hashed);
    it = thread_ids_.end() - 1;
  }
  ev.tid = static_cast<std::uint32_t>(it - thread_ids_.begin());
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[next_] = std::move(ev);
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

std::size_t TraceBuffer::size() const {
  MutexLock lock(mutex_);
  return ring_.size();
}

std::uint64_t TraceBuffer::recorded() const {
  MutexLock lock(mutex_);
  return recorded_;
}

std::uint64_t TraceBuffer::dropped() const {
  MutexLock lock(mutex_);
  return recorded_ - ring_.size();
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  MutexLock lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Once full, next_ points at the oldest retained event.
  const std::size_t start = ring_.size() < capacity_ ? 0 : next_;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void TraceBuffer::dump_jsonl(std::ostream& out) const {
  for (const TraceEvent& ev : snapshot()) {
    out << "{\"name\":\"";
    for (char c : ev.name) {
      if (c == '"' || c == '\\') out << '\\';
      out << c;
    }
    out << "\",\"ts_us\":" << ev.ts_us << ",\"dur_us\":" << ev.dur_us
        << ",\"tid\":" << ev.tid << "}\n";
  }
}

double ScopedSpan::stop() {
  if (stopped_) return elapsed_;
  stopped_ = true;
  const auto end = std::chrono::steady_clock::now();
  elapsed_ = std::chrono::duration<double>(end - start_).count();
  if (seconds_ != nullptr) seconds_->add(elapsed_);
  if (buffer_ != nullptr) buffer_->record(name_, start_, end);
  return elapsed_;
}

}  // namespace resmon::obs
