#include "obs/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace resmon::obs {

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  if (!head(name[0])) return false;
  return std::all_of(name.begin() + 1, name.end(), [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c));
  });
}

/// Shortest round-trip decimal rendering of a double ("1" for 1.0, "+Inf"
/// for infinity), so expositions are compact and stable.
std::string format_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the shorter %g form when it round-trips exactly.
  char shorter[64];
  std::snprintf(shorter, sizeof(shorter), "%g", v);
  double back = 0.0;
  std::sscanf(shorter, "%lf", &back);
  return back == v ? std::string(shorter) : std::string(buf);
}

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
}

/// Splice one extra label (e.g. le="...") into an already-rendered set.
std::string labels_with(const std::string& rendered, const std::string& key,
                        const std::string& value) {
  std::string extra = key + "=\"";
  append_escaped(extra, value);
  extra += '"';
  if (rendered.empty()) return "{" + extra + "}";
  std::string out = rendered.substr(0, rendered.size() - 1);  // drop '}'
  out += ",";
  out += extra;
  out += "}";
  return out;
}

}  // namespace

void Gauge::add(double d) {
  double cur = v_.load(std::memory_order_relaxed);
  while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  RESMON_REQUIRE(!bounds_.empty() &&
                     std::is_sorted(bounds_.begin(), bounds_.end()) &&
                     std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                         bounds_.end(),
                 "histogram bounds must be non-empty, strictly increasing");
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  const std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  RESMON_REQUIRE(i <= bounds_.size(), "histogram bucket index out of range");
  return buckets_[i].load(std::memory_order_relaxed);
}

std::vector<double> duration_seconds_buckets() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0};
}

std::vector<double> duration_ms_buckets() {
  return {0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0};
}

std::string MetricsRegistry::render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    append_escaped(out, v);
    out += '"';
  }
  out += "}";
  return out;
}

MetricsRegistry::Family& MetricsRegistry::family(const std::string& name,
                                                 const std::string& help,
                                                 Kind kind) {
  RESMON_REQUIRE(valid_metric_name(name),
                 "metric name must match [a-zA-Z_:][a-zA-Z0-9_:]*");
  auto [it, inserted] =
      families_.try_emplace(name, Family{kind, help, {}, {}, {}});
  if (!inserted && it->second.kind != kind) {
    throw InvalidArgument("metric '" + name +
                          "' already registered as a different type");
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const Labels& labels) {
  MutexLock lock(mutex_);
  Family& fam = family(name, help, Kind::kCounter);
  auto [it, inserted] =
      fam.counters.try_emplace(render_labels(labels), nullptr);
  if (inserted) it->second = std::make_unique<Counter>();
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const Labels& labels) {
  MutexLock lock(mutex_);
  Family& fam = family(name, help, Kind::kGauge);
  auto [it, inserted] = fam.gauges.try_emplace(render_labels(labels), nullptr);
  if (inserted) it->second = std::make_unique<Gauge>();
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> bounds,
                                      const Labels& labels) {
  MutexLock lock(mutex_);
  Family& fam = family(name, help, Kind::kHistogram);
  auto [it, inserted] =
      fam.histograms.try_emplace(render_labels(labels), nullptr);
  if (inserted) it->second = std::make_unique<Histogram>(std::move(bounds));
  return *it->second;
}

std::optional<double> MetricsRegistry::value(const std::string& name,
                                             const Labels& labels) const {
  MutexLock lock(mutex_);
  const auto fam = families_.find(name);
  if (fam == families_.end()) return std::nullopt;
  const std::string key = render_labels(labels);
  if (const auto it = fam->second.counters.find(key);
      it != fam->second.counters.end()) {
    return static_cast<double>(it->second->value());
  }
  if (const auto it = fam->second.gauges.find(key);
      it != fam->second.gauges.end()) {
    return it->second->value();
  }
  return std::nullopt;
}

std::vector<Sample> MetricsRegistry::snapshot() const {
  MutexLock lock(mutex_);
  std::vector<Sample> out;
  for (const auto& [name, fam] : families_) {
    for (const auto& [labels, c] : fam.counters) {
      out.push_back({name, labels, static_cast<double>(c->value())});
    }
    for (const auto& [labels, g] : fam.gauges) {
      out.push_back({name, labels, g->value()});
    }
    for (const auto& [labels, h] : fam.histograms) {
      out.push_back({name + "_sum", labels, h->sum()});
      out.push_back(
          {name + "_count", labels, static_cast<double>(h->count())});
    }
  }
  return out;
}

void MetricsRegistry::render_text(std::ostream& out) const {
  MutexLock lock(mutex_);
  for (const auto& [name, fam] : families_) {
    if (!fam.help.empty()) out << "# HELP " << name << " " << fam.help << "\n";
    const char* type = fam.kind == Kind::kCounter   ? "counter"
                       : fam.kind == Kind::kGauge   ? "gauge"
                                                    : "histogram";
    out << "# TYPE " << name << " " << type << "\n";
    for (const auto& [labels, c] : fam.counters) {
      out << name << labels << " " << c->value() << "\n";
    }
    for (const auto& [labels, g] : fam.gauges) {
      out << name << labels << " " << format_double(g->value()) << "\n";
    }
    for (const auto& [labels, h] : fam.histograms) {
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < h->bounds().size(); ++i) {
        cumulative += h->bucket_count(i);
        out << name << "_bucket"
            << labels_with(labels, "le", format_double(h->bounds()[i])) << " "
            << cumulative << "\n";
      }
      cumulative += h->bucket_count(h->bounds().size());
      out << name << "_bucket" << labels_with(labels, "le", "+Inf") << " "
          << cumulative << "\n";
      out << name << "_sum" << labels << " " << format_double(h->sum())
          << "\n";
      out << name << "_count" << labels << " " << h->count() << "\n";
    }
  }
}

std::string MetricsRegistry::render_text() const {
  std::ostringstream out;
  render_text(out);
  return out.str();
}

}  // namespace resmon::obs
