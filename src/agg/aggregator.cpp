#include "agg/aggregator.hpp"

#include <algorithm>
#include <optional>
#include <thread>

namespace resmon::agg {

namespace wire = net::wire;

namespace {

net::ControllerOptions downstream_options(const AggregatorOptions& o) {
  net::ControllerOptions copt;
  copt.num_nodes = o.num_nodes;
  copt.num_resources = o.num_resources;
  copt.first_node = o.first_node;
  copt.max_payload = o.max_payload;
  copt.metrics = o.net_metrics;
  copt.stale_after_ms = o.stale_after_ms;
  copt.dead_after_ms = o.dead_after_ms;
  copt.staleness_clock = o.staleness_clock;
  copt.block_hook = o.block_hook;
  copt.log_sink = o.log_sink;
  return copt;
}

}  // namespace

ShardRange shard_range(std::size_t num_nodes, std::size_t num_shards,
                       std::size_t shard) {
  RESMON_REQUIRE(num_shards > 0, "shard_range: num_shards must be positive");
  RESMON_REQUIRE(shard < num_shards, "shard_range: shard out of range");
  const std::size_t base = num_nodes / num_shards;
  const std::size_t extra = num_nodes % num_shards;
  ShardRange r;
  r.num_nodes = base + (shard < extra ? 1 : 0);
  r.first_node = shard * base + std::min(shard, extra);
  return r;
}

Aggregator::Aggregator(net::Socket listener, const AggregatorOptions& options)
    : options_(options),
      downstream_(std::move(listener), downstream_options(options)) {
  RESMON_REQUIRE(options_.upstream_port != 0,
                 "Aggregator needs an upstream port");
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    const obs::Labels labels = {{"shard", std::to_string(options_.shard)}};
    m_forwarded_slots_total_ =
        &reg.counter("resmon_agg_forwarded_slots_total",
                     "Slot summaries forwarded to the root", labels);
    m_forwarded_measurements_total_ = &reg.counter(
        "resmon_agg_forwarded_measurements_total",
        "Measurements carried inside forwarded slot summaries", labels);
    m_forwarded_bytes_total_ =
        &reg.counter("resmon_agg_forwarded_bytes_total",
                     "Encoded bytes written to the upstream link", labels);
    m_degraded_slots_total_ = &reg.counter(
        "resmon_agg_degraded_slots_total",
        "Forwarded slots whose shard barrier skipped a non-LIVE node",
        labels);
    m_status_frames_total_ =
        &reg.counter("resmon_agg_status_frames_total",
                     "Shard-status censuses sent upstream", labels);
    m_upstream_reconnects_total_ = &reg.counter(
        "resmon_agg_upstream_reconnects_total",
        "Successful upstream re-handshakes after a connection loss", labels);
    m_upstream_connected_ =
        &reg.gauge("resmon_agg_upstream_connected",
                   "1 while the upstream link is up, else 0", labels);
    m_compaction_ratio_ = &reg.gauge(
        "resmon_agg_compaction_ratio",
        "Agent frames received downstream per frame sent upstream", labels);
    m_shard_nodes_ = &reg.gauge("resmon_agg_shard_nodes",
                                "Nodes this shard fronts", labels);
    m_live_nodes_ = &reg.gauge("resmon_agg_live_nodes",
                               "Owned nodes currently LIVE", labels);
    m_stale_nodes_ = &reg.gauge("resmon_agg_stale_nodes",
                                "Owned nodes currently STALE", labels);
    m_dead_nodes_ = &reg.gauge("resmon_agg_dead_nodes",
                               "Owned nodes currently DEAD", labels);
    m_shard_nodes_->set(static_cast<double>(options_.num_nodes));
    m_live_nodes_->set(static_cast<double>(options_.num_nodes));
  }
}

void Aggregator::log(const std::string& line) const {
  if (options_.log_sink) {
    options_.log_sink("shard " + std::to_string(options_.shard) + ": " + line);
  }
}

bool Aggregator::try_connect_upstream_once() {
  net::Socket sock;
  try {
    sock = net::Socket::connect_tcp(options_.upstream_host,
                                    options_.upstream_port,
                                    options_.io_timeout_ms);
  } catch (const net::SocketError&) {
    return false;  // refused or timed out: the backoff loop retries
  }
  // Reason byte from an explicit root rejection; set before leaving the try
  // block so the terminal throw below cannot be swallowed by the
  // transient-I/O catch (same discipline as Agent::try_connect_once).
  std::optional<std::uint8_t> rejected;
  std::uint8_t rejecter_version = 0;
  try {
    const wire::ShardHelloFrame hello{
        .shard = static_cast<std::uint32_t>(options_.shard),
        .first_node = static_cast<std::uint32_t>(options_.first_node),
        .num_nodes = static_cast<std::uint32_t>(options_.num_nodes),
        .num_resources = static_cast<std::uint32_t>(options_.num_resources)};
    if (!sock.write_all(wire::encode(hello), options_.io_timeout_ms)) {
      return false;
    }
    wire::FrameDecoder decoder;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(options_.io_timeout_ms);
    while (!rejected) {
      if (!sock.wait_readable(50)) {
        if (std::chrono::steady_clock::now() >= deadline) return false;
        continue;
      }
      std::uint8_t buf[256];
      std::size_t n = 0;
      const net::IoStatus status = sock.read_some(buf, n);
      if (status == net::IoStatus::kClosed) return false;
      if (status == net::IoStatus::kOk && !decoder.feed({buf, n})) {
        return false;
      }
      if (std::optional<wire::Frame> frame = decoder.next()) {
        const auto* ack = std::get_if<wire::HelloAckFrame>(&*frame);
        if (ack == nullptr || ack->node != options_.shard) return false;
        if (!ack->accepted) {
          rejected = ack->reason;
          rejecter_version = ack->speaker_version;
          break;
        }
        upstream_ = std::move(sock);
        ever_connected_upstream_ = true;
        if (m_upstream_connected_ != nullptr) m_upstream_connected_->set(1.0);
        return true;
      }
      if (std::chrono::steady_clock::now() >= deadline) return false;
    }
  } catch (const net::SocketError&) {
    return false;  // transient handshake stall: retryable
  }
  // A rejected shard hello is terminal: retrying the same hello cannot
  // succeed, so this propagates out of the backoff loop.
  throw net::SocketError(
      "aggregator shard " + std::to_string(options_.shard) +
      ": root rejected shard hello (" +
      wire::describe_hello_reject(*rejected, rejecter_version) + ")");
}

void Aggregator::reconnect_upstream_with_backoff() {
  int backoff = options_.initial_backoff_ms;
  for (std::size_t attempt = 0; attempt < options_.max_reconnect_attempts;
       ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff = std::min(backoff * 2, options_.max_backoff_ms);
    }
    if (try_connect_upstream_once()) return;
  }
  throw net::SocketError(
      "aggregator shard " + std::to_string(options_.shard) +
      ": could not reach root at " + options_.upstream_host + ":" +
      std::to_string(options_.upstream_port) + " after " +
      std::to_string(options_.max_reconnect_attempts) + " attempts");
}

void Aggregator::connect_upstream() {
  if (upstream_.valid()) return;
  reconnect_upstream_with_backoff();
  log("upstream link established");
}

void Aggregator::deliver_upstream(const std::vector<std::uint8_t>& bytes) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!upstream_.valid()) {
      const bool outage = ever_connected_upstream_;
      reconnect_upstream_with_backoff();
      if (outage) {
        ++upstream_reconnects_;
        if (m_upstream_reconnects_total_ != nullptr) {
          m_upstream_reconnects_total_->inc();
        }
        log("upstream link re-established");
      }
    }
    if (upstream_.write_all(bytes, options_.io_timeout_ms)) {
      forwarded_bytes_ += bytes.size();
      if (m_forwarded_bytes_total_ != nullptr) {
        m_forwarded_bytes_total_->inc(bytes.size());
      }
      return;
    }
    upstream_.close();
    if (m_upstream_connected_ != nullptr) m_upstream_connected_->set(0.0);
  }
  throw net::SocketError("aggregator shard " + std::to_string(options_.shard) +
                         ": upstream connection lost and resend failed");
}

void Aggregator::count_states(std::size_t& live, std::size_t& stale,
                              std::size_t& dead) const {
  live = stale = dead = 0;
  for (std::size_t node = options_.first_node;
       node < options_.first_node + options_.num_nodes; ++node) {
    switch (downstream_.node_state(node)) {
      case net::NodeState::kLive:
        ++live;
        break;
      case net::NodeState::kStale:
        ++stale;
        break;
      case net::NodeState::kDead:
        ++dead;
        break;
    }
  }
}

void Aggregator::update_gauges() {
  if (options_.metrics == nullptr) return;
  std::size_t live = 0, stale = 0, dead = 0;
  count_states(live, stale, dead);
  m_live_nodes_->set(static_cast<double>(live));
  m_stale_nodes_->set(static_cast<double>(stale));
  m_dead_nodes_->set(static_cast<double>(dead));
  // Frames in (agent hellos, measurements, heartbeats) per frame out
  // (summaries + censuses): the tier's fan-in leverage. 0 until the first
  // upstream frame.
  const std::uint64_t out = forwarded_slots_ + status_frames_;
  if (out > 0) {
    m_compaction_ratio_->set(
        static_cast<double>(downstream_.frames_received()) /
        static_cast<double>(out));
  }
}

bool Aggregator::forward_slot(std::size_t t, int timeout_ms) {
  std::optional<std::vector<transport::MeasurementMessage>> slot =
      downstream_.collect_slot(t, timeout_ms);
  if (!slot) {
    update_gauges();  // keep staleness gauges fresh across barrier retries
    return false;
  }
  // The shard's own degradation verdict for exactly this slot: the delta of
  // the downstream counter across the collect_slot call.
  const std::uint64_t degraded =
      downstream_.degraded_slots() - degraded_slots_baseline_;
  degraded_slots_baseline_ = downstream_.degraded_slots();

  wire::SlotSummaryFrame summary{
      .shard = static_cast<std::uint32_t>(options_.shard),
      .step = static_cast<std::uint64_t>(t),
      .degraded = static_cast<std::uint32_t>(degraded),
      .num_resources = static_cast<std::uint32_t>(options_.num_resources),
      .measurements = std::move(*slot)};
  deliver_upstream(wire::encode(summary));
  ++forwarded_slots_;
  forwarded_measurements_ += summary.measurements.size();
  if (degraded > 0) ++degraded_slots_forwarded_;
  if (m_forwarded_slots_total_ != nullptr) {
    m_forwarded_slots_total_->inc();
    m_forwarded_measurements_total_->inc(summary.measurements.size());
    if (degraded > 0) m_degraded_slots_total_->inc();
  }
  if (options_.status_every_slots > 0 &&
      forwarded_slots_ % options_.status_every_slots == 0) {
    send_status();
  }
  update_gauges();
  return true;
}

void Aggregator::send_status() {
  std::size_t live = 0, stale = 0, dead = 0;
  count_states(live, stale, dead);
  const wire::ShardStatusFrame status{
      .shard = static_cast<std::uint32_t>(options_.shard),
      .live = static_cast<std::uint32_t>(live),
      .stale = static_cast<std::uint32_t>(stale),
      .dead = static_cast<std::uint32_t>(dead)};
  deliver_upstream(wire::encode(status));
  ++status_frames_;
  if (m_status_frames_total_ != nullptr) m_status_frames_total_->inc();
  update_gauges();
}

}  // namespace resmon::agg
