// Aggregator: the intermediate tier of a two-tier collection topology.
//
// One Aggregator fronts a contiguous shard of agents [first_node,
// first_node + num_nodes). Downstream it is simply a Controller — agents
// connect with the unchanged wire protocol, the LIVE -> STALE -> DEAD
// staleness machine runs locally (injectable clock), and the slot barrier
// completes per shard. Upstream it speaks three shard frames to the root:
// a kShardHello announcing its node range, one kSlotSummary per completed
// slot (every measurement the shard's agents transmitted for that slot,
// heartbeats compacted away, plus how many owned nodes the barrier skipped
// as non-LIVE), and periodic kShardStatus staleness censuses.
//
// Bit-identity invariant (asserted by test_agg and the two_tier_fleet
// scenario): measurements travel through the summary byte-exactly and in
// node order, and the root applies them exactly as it would direct agent
// frames — so a two-tier run's forecasts and RMSE are byte-identical to a
// single-tier run over the same trace.
//
// The upstream link reuses the Agent's availability discipline: bounded
// exponential backoff on connect, one transparent reconnect-and-resend per
// delivery, and a *terminal* error when the root explicitly rejects the
// shard hello (retrying an invalid hello cannot succeed).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "net/controller.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"

namespace resmon::agg {

/// Contiguous node range of one shard.
struct ShardRange {
  std::size_t first_node = 0;
  std::size_t num_nodes = 0;
};

/// Partition `num_nodes` nodes over `num_shards` contiguous shards: the
/// first (num_nodes % num_shards) shards get one extra node. Every node
/// lands in exactly one shard; shard order is node order.
ShardRange shard_range(std::size_t num_nodes, std::size_t num_shards,
                       std::size_t shard);

struct AggregatorOptions {
  std::size_t shard = 0;          ///< this aggregator's shard id
  std::size_t first_node = 0;     ///< first global node id of the shard
  std::size_t num_nodes = 0;      ///< nodes this shard fronts
  std::size_t num_resources = 0;  ///< d: required hello dimensionality

  std::string upstream_host = "127.0.0.1";  ///< root controller address
  std::uint16_t upstream_port = 0;

  /// Upstream availability knobs (mirrors AgentOptions).
  std::size_t max_reconnect_attempts = 8;
  int initial_backoff_ms = 20;
  int max_backoff_ms = 1000;
  int io_timeout_ms = 5000;

  /// Downstream staleness policy + clock, handed to the internal
  /// Controller verbatim (see ControllerOptions).
  int stale_after_ms = 0;
  int dead_after_ms = 0;
  std::function<std::chrono::steady_clock::time_point()> staleness_clock;

  /// Inbound-frame gate for the downstream side (fault injection).
  net::BlockHook block_hook;

  /// Send a kShardStatus census after every Nth forwarded slot
  /// (0 = only on explicit send_status calls).
  std::size_t status_every_slots = 8;

  /// Per-connection payload cap for downstream decoders.
  std::size_t max_payload = net::wire::kMaxPayloadSize;

  /// Sink for the resmon_agg_* families (nullptr = no instrumentation).
  obs::MetricsRegistry* metrics = nullptr;
  /// Registry for the internal Controller's resmon_net_* families and the
  /// metrics endpoint. Binaries pass the same registry as `metrics`; tests
  /// running several aggregators in one process keep them separate so the
  /// per-node series of different shards cannot collide.
  obs::MetricsRegistry* net_metrics = nullptr;

  /// Optional operator log sink (one line per noteworthy event), shared
  /// with the internal Controller. Empty = silent.
  std::function<void(const std::string&)> log_sink;
};

class Aggregator {
 public:
  /// Takes ownership of the downstream listening socket (agents connect
  /// here) from Socket::listen_tcp.
  Aggregator(net::Socket listener, const AggregatorOptions& options);

  /// Downstream port agents should connect to.
  std::uint16_t port() const { return downstream_.port(); }

  /// Attach a metrics endpoint (see Controller::serve_metrics). Requires
  /// AggregatorOptions::net_metrics; the exposition renders that registry,
  /// so binaries that want resmon_agg_* visible pass one registry as both
  /// `metrics` and `net_metrics`.
  void serve_metrics(net::Socket listener) {
    downstream_.serve_metrics(std::move(listener));
  }
  std::uint16_t metrics_port() const { return downstream_.metrics_port(); }

  /// Connect-and-handshake upstream with bounded exponential backoff.
  /// Throws net::SocketError if the root stays unreachable past the
  /// attempt budget, or immediately if it rejects the shard hello
  /// (terminal: the rejection reason is named in the message).
  void connect_upstream();

  bool upstream_connected() const { return upstream_.valid(); }

  /// Pump the downstream event loop until `count` distinct shard nodes
  /// completed a hello, or `timeout_ms` elapses.
  bool wait_for_agents(std::size_t count, int timeout_ms) {
    return downstream_.wait_for_agents(count, timeout_ms);
  }

  /// Complete the shard's slot-t barrier (Controller::collect_slot
  /// semantics, including staleness-based degradation) and forward the
  /// compacted summary upstream. Returns false if the barrier timed out —
  /// nothing is sent and the caller may retry after advancing the
  /// staleness clock, exactly like a root-side collect_slot retry loop.
  /// Throws net::SocketError if the upstream link is lost beyond repair.
  bool forward_slot(std::size_t t, int timeout_ms);

  /// Send a kShardStatus census (LIVE/STALE/DEAD counts of owned nodes)
  /// upstream now. forward_slot does this automatically every
  /// status_every_slots slots.
  void send_status();

  /// Pump the downstream loop without waiting on a slot (metrics scrapes,
  /// late frames). See Controller::pump_idle.
  void pump_idle(int duration_ms, std::uint64_t until_scrapes = 0) {
    downstream_.pump_idle(duration_ms, until_scrapes);
  }

  /// Staleness verdict for one owned node (global node id).
  net::NodeState node_state(std::size_t node) const {
    return downstream_.node_state(node);
  }

  /// The shard-local Controller (staleness counters, frame totals, ...).
  const net::Controller& downstream() const { return downstream_; }
  net::Controller& downstream() { return downstream_; }

  std::uint64_t forwarded_slots() const { return forwarded_slots_; }
  std::uint64_t forwarded_measurements() const {
    return forwarded_measurements_;
  }
  std::uint64_t forwarded_bytes() const { return forwarded_bytes_; }
  /// Successful upstream re-handshakes after a connection loss.
  std::uint64_t upstream_reconnects() const { return upstream_reconnects_; }
  /// Forwarded slots whose shard barrier skipped >= 1 non-LIVE node.
  std::uint64_t degraded_slots_forwarded() const {
    return degraded_slots_forwarded_;
  }
  /// kShardStatus frames sent upstream.
  std::uint64_t status_frames() const { return status_frames_; }

 private:
  /// One upstream connect + shard-hello handshake attempt. Returns false
  /// on transient failure (caller retries with backoff); throws on an
  /// explicit rejection.
  bool try_connect_upstream_once();
  void reconnect_upstream_with_backoff();
  /// Write one encoded frame upstream, transparently reconnecting (and
  /// re-handshaking) once if the connection is gone. Throws when both
  /// attempts fail.
  void deliver_upstream(const std::vector<std::uint8_t>& bytes);
  /// Census of owned-node staleness verdicts.
  void count_states(std::size_t& live, std::size_t& stale,
                    std::size_t& dead) const;
  /// Refresh the resmon_agg_* gauges that mirror downstream state.
  void update_gauges();
  void log(const std::string& line) const;

  AggregatorOptions options_;
  net::Controller downstream_;
  net::Socket upstream_;
  bool ever_connected_upstream_ = false;
  std::uint64_t forwarded_slots_ = 0;
  std::uint64_t forwarded_measurements_ = 0;
  std::uint64_t forwarded_bytes_ = 0;
  std::uint64_t upstream_reconnects_ = 0;
  std::uint64_t degraded_slots_forwarded_ = 0;
  std::uint64_t status_frames_ = 0;
  /// downstream_.degraded_slots() at the last forward, so each slot's
  /// degraded verdict is the delta (0 or 1) across its collect_slot call.
  std::uint64_t degraded_slots_baseline_ = 0;
  // Optional metrics (all nullptr when options_.metrics is null).
  obs::Counter* m_forwarded_slots_total_ = nullptr;
  obs::Counter* m_forwarded_measurements_total_ = nullptr;
  obs::Counter* m_forwarded_bytes_total_ = nullptr;
  obs::Counter* m_degraded_slots_total_ = nullptr;
  obs::Counter* m_status_frames_total_ = nullptr;
  obs::Counter* m_upstream_reconnects_total_ = nullptr;
  obs::Gauge* m_upstream_connected_ = nullptr;
  obs::Gauge* m_compaction_ratio_ = nullptr;
  obs::Gauge* m_shard_nodes_ = nullptr;
  obs::Gauge* m_live_nodes_ = nullptr;
  obs::Gauge* m_stale_nodes_ = nullptr;
  obs::Gauge* m_dead_nodes_ = nullptr;
};

}  // namespace resmon::agg
