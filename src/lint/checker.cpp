#include "lint/checker.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <sstream>

#include "lint/lexer.hpp"

namespace resmon::lint {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

bool entry_matches(const AllowEntry& e, const Finding& f) {
  if (e.rule != "*" && e.rule != f.rule) return false;
  if (!e.path.empty() && e.path.back() == '/') {
    return f.path.compare(0, e.path.size(), e.path) == 0;
  }
  return f.path == e.path;
}

}  // namespace

Allowlist parse_allowlist(const std::string& content) {
  Allowlist out;
  std::istringstream in(content);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const auto hash = line.find('#');
    const std::string entry_part =
        trim(hash == std::string::npos ? line : line.substr(0, hash));
    const std::string reason =
        hash == std::string::npos ? "" : trim(line.substr(hash + 1));
    std::istringstream fields(entry_part);
    AllowEntry e;
    std::string extra;
    fields >> e.rule >> e.path >> extra;
    if (e.rule.empty() || e.path.empty() || !extra.empty()) {
      out.errors.push_back("allowlist line " + std::to_string(lineno) +
                           ": expected '<rule> <path> # <reason>'");
      continue;
    }
    if (reason.empty()) {
      out.errors.push_back("allowlist line " + std::to_string(lineno) +
                           ": entry for '" + e.path +
                           "' has no '# <reason>' comment");
      continue;
    }
    const auto& names = rule_names();
    if (e.rule != "*" &&
        std::find(names.begin(), names.end(), e.rule) == names.end()) {
      out.errors.push_back("allowlist line " + std::to_string(lineno) +
                           ": unknown rule '" + e.rule + "'");
      continue;
    }
    e.reason = reason;
    out.entries.push_back(std::move(e));
  }
  return out;
}

std::vector<Finding> check_source(const std::string& path,
                                  const std::string& content,
                                  const Allowlist& allow,
                                  std::vector<bool>* used,
                                  const LayerGraph* layers) {
  if (used != nullptr) used->assign(allow.entries.size(), false);
  std::vector<Finding> kept;
  for (auto& f : run_rules(path, lex(content), layers)) {
    bool suppressed = false;
    for (std::size_t i = 0; i < allow.entries.size(); ++i) {
      if (entry_matches(allow.entries[i], f)) {
        suppressed = true;
        if (used != nullptr) (*used)[i] = true;
      }
    }
    if (!suppressed) kept.push_back(std::move(f));
  }
  return kept;
}

std::vector<Finding> check_include_cycles(
    const std::vector<std::pair<std::string, std::string>>& sources) {
  // Include edge: file -> (resolved include path, line of the directive).
  struct Edge {
    std::string to;
    int line;
  };
  std::map<std::string, std::vector<Edge>> graph;
  for (const auto& [path, content] : sources) {
    std::vector<Edge>& edges = graph[path];
    for (const Token& t : lex(content).tokens) {
      if (t.kind != TokKind::Directive) continue;
      const std::string target = quoted_include_target(t.text);
      if (target.empty()) continue;
      const std::string resolved = "src/" + target;
      if (std::any_of(sources.begin(), sources.end(), [&](const auto& s) {
            return s.first == resolved;
          })) {
        edges.push_back({resolved, t.line});
      }
    }
  }

  std::vector<Finding> findings;
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> stack;
  std::function<void(const std::string&)> visit =
      [&](const std::string& node) {
        color[node] = 1;
        stack.push_back(node);
        for (const Edge& e : graph[node]) {
          if (color[e.to] == 2) continue;
          if (color[e.to] == 1) {
            // Back edge node -> e.to closes a cycle through the gray stack.
            std::string cycle;
            for (auto it = std::find(stack.begin(), stack.end(), e.to);
                 it != stack.end(); ++it) {
              cycle += *it + " -> ";
            }
            cycle += e.to;
            findings.push_back(
                {node, e.line, "layering", "include cycle: " + cycle});
            continue;
          }
          visit(e.to);
        }
        stack.pop_back();
        color[node] = 2;
      };
  for (const auto& [path, content] : sources) {
    if (color[path] == 0) visit(path);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              return a.line < b.line;
            });
  return findings;
}

}  // namespace resmon::lint
