#include "lint/checker.hpp"

#include <algorithm>
#include <sstream>

#include "lint/lexer.hpp"

namespace resmon::lint {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

bool entry_matches(const AllowEntry& e, const Finding& f) {
  if (e.rule != "*" && e.rule != f.rule) return false;
  if (!e.path.empty() && e.path.back() == '/') {
    return f.path.compare(0, e.path.size(), e.path) == 0;
  }
  return f.path == e.path;
}

}  // namespace

Allowlist parse_allowlist(const std::string& content) {
  Allowlist out;
  std::istringstream in(content);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const auto hash = line.find('#');
    const std::string entry_part =
        trim(hash == std::string::npos ? line : line.substr(0, hash));
    const std::string reason =
        hash == std::string::npos ? "" : trim(line.substr(hash + 1));
    std::istringstream fields(entry_part);
    AllowEntry e;
    std::string extra;
    fields >> e.rule >> e.path >> extra;
    if (e.rule.empty() || e.path.empty() || !extra.empty()) {
      out.errors.push_back("allowlist line " + std::to_string(lineno) +
                           ": expected '<rule> <path> # <reason>'");
      continue;
    }
    if (reason.empty()) {
      out.errors.push_back("allowlist line " + std::to_string(lineno) +
                           ": entry for '" + e.path +
                           "' has no '# <reason>' comment");
      continue;
    }
    const auto& names = rule_names();
    if (e.rule != "*" &&
        std::find(names.begin(), names.end(), e.rule) == names.end()) {
      out.errors.push_back("allowlist line " + std::to_string(lineno) +
                           ": unknown rule '" + e.rule + "'");
      continue;
    }
    e.reason = reason;
    out.entries.push_back(std::move(e));
  }
  return out;
}

std::vector<Finding> check_source(const std::string& path,
                                  const std::string& content,
                                  const Allowlist& allow,
                                  std::vector<bool>* used) {
  if (used != nullptr) used->assign(allow.entries.size(), false);
  std::vector<Finding> kept;
  for (auto& f : run_rules(path, lex(content))) {
    bool suppressed = false;
    for (std::size_t i = 0; i < allow.entries.size(); ++i) {
      if (entry_matches(allow.entries[i], f)) {
        suppressed = true;
        if (used != nullptr) (*used)[i] = true;
      }
    }
    if (!suppressed) kept.push_back(std::move(f));
  }
  return kept;
}

}  // namespace resmon::lint
