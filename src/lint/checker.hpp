// Checker: runs the rule catalogue over (path, content) pairs and applies the
// path-based allowlist. The library is filesystem-free so the tests can feed
// crafted snippets through it; directory walking lives in tools/resmon_lint.
#pragma once

#include <string>
#include <vector>

#include "lint/rules.hpp"

namespace resmon::lint {

/// One allowlist entry: suppress `rule` ("*" for all) for `path` — an exact
/// repo-relative file or, when it ends with '/', a directory prefix. Every
/// entry must carry a reason; the parser rejects uncommented entries so the
/// allowlist stays an auditable review record.
struct AllowEntry {
  std::string rule;
  std::string path;
  std::string reason;
};

struct Allowlist {
  std::vector<AllowEntry> entries;
  std::vector<std::string> errors;  // malformed lines, with line numbers
};

/// Parse allowlist text. Format, one entry per line:
///   <rule> <path> # <reason>
/// Blank lines and lines starting with '#' are comments.
Allowlist parse_allowlist(const std::string& content);

/// Lex + run every rule over one file. Inline suppressions are applied by
/// run_rules; this additionally applies the allowlist. When `used` is
/// non-null it is resized to entries.size() and used[i] is set when entry i
/// suppressed at least one finding (stale-entry detection).
std::vector<Finding> check_source(const std::string& path,
                                  const std::string& content,
                                  const Allowlist& allow,
                                  std::vector<bool>* used = nullptr);

}  // namespace resmon::lint
