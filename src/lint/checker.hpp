// Checker: runs the rule catalogue over (path, content) pairs and applies the
// path-based allowlist. The library is filesystem-free so the tests can feed
// crafted snippets through it; directory walking lives in tools/resmon_lint.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "lint/rules.hpp"

namespace resmon::lint {

/// One allowlist entry: suppress `rule` ("*" for all) for `path` — an exact
/// repo-relative file or, when it ends with '/', a directory prefix. Every
/// entry must carry a reason; the parser rejects uncommented entries so the
/// allowlist stays an auditable review record.
struct AllowEntry {
  std::string rule;
  std::string path;
  std::string reason;
};

struct Allowlist {
  std::vector<AllowEntry> entries;
  std::vector<std::string> errors;  // malformed lines, with line numbers
};

/// Parse allowlist text. Format, one entry per line:
///   <rule> <path> # <reason>
/// Blank lines and lines starting with '#' are comments.
Allowlist parse_allowlist(const std::string& content);

/// Lex + run every rule over one file. Inline suppressions are applied by
/// run_rules; this additionally applies the allowlist. When `used` is
/// non-null it is resized to entries.size() and used[i] is set when entry i
/// suppressed at least one finding (stale-entry detection). `layers` drives
/// the layering rule (null leaves it inert, matching run_rules).
std::vector<Finding> check_source(const std::string& path,
                                  const std::string& content,
                                  const Allowlist& allow,
                                  std::vector<bool>* used = nullptr,
                                  const LayerGraph* layers = nullptr);

/// Detect `#include` cycles among the given (repo-relative path, content)
/// pairs using the real include graph: a quoted include "a/b.hpp" resolves
/// to "src/a/b.hpp" when that file is in the set. The module DAG in
/// tools/lint_layers.txt forbids cross-module cycles by construction; this
/// additionally catches header cycles *within* one module. Emits one
/// `layering` finding per cycle, anchored at the back-edge include line.
/// Cycles are never allowlistable — an include cycle is always a bug.
std::vector<Finding> check_include_cycles(
    const std::vector<std::pair<std::string, std::string>>& sources);

}  // namespace resmon::lint
