#include "lint/lexer.hpp"

#include <cctype>
#include <cstddef>

namespace resmon::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// True for the identifier prefixes that may introduce a raw string literal.
bool raw_string_prefix(std::string_view id) {
  return id == "R" || id == "LR" || id == "uR" || id == "UR" || id == "u8R";
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

// Record every resmon-lint-allow(rule, ...) directive found in a comment.
// `line` is the line the comment ends on; the suppression also covers the
// next line so the comment can sit above the flagged statement.
void collect_suppressions(std::string_view comment, int line, LexResult* out) {
  constexpr std::string_view kTag = "resmon-lint-allow(";
  std::size_t pos = 0;
  while ((pos = comment.find(kTag, pos)) != std::string_view::npos) {
    pos += kTag.size();
    const std::size_t close = comment.find(')', pos);
    if (close == std::string_view::npos) return;
    std::string_view list = comment.substr(pos, close - pos);
    while (!list.empty()) {
      const std::size_t comma = list.find(',');
      std::string_view rule = trim(list.substr(0, comma));
      if (!rule.empty()) {
        out->suppressions[line].emplace(rule);
        out->suppressions[line + 1].emplace(rule);
      }
      if (comma == std::string_view::npos) break;
      list.remove_prefix(comma + 1);
    }
    pos = close + 1;
  }
}

}  // namespace

LexResult lex(std::string_view src) {
  LexResult out;
  std::size_t i = 0;
  const std::size_t n = src.size();
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      at_line_start = true;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }

    // Preprocessor directive: swallow the whole (continued) line.
    if (c == '#' && at_line_start) {
      const int directive_line = line;
      std::string text;
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          i += 2;
          ++line;
          text += ' ';
          continue;
        }
        if (src[i] == '\n') break;
        text += src[i++];
      }
      out.tokens.push_back({TokKind::Directive, text, directive_line});
      continue;
    }
    at_line_start = false;

    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t eol = src.find('\n', i);
      const std::size_t end = (eol == std::string_view::npos) ? n : eol;
      collect_suppressions(src.substr(i, end - i), line, &out);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t j = i + 2;
      int end_line = line;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') ++end_line;
        ++j;
      }
      const std::size_t end = (j + 1 < n) ? j + 2 : n;
      collect_suppressions(src.substr(i, end - i), end_line, &out);
      line = end_line;
      i = end;
      continue;
    }

    // String literal (escaped quotes respected).
    if (c == '"') {
      const int start_line = line;
      std::size_t j = i + 1;
      while (j < n && src[j] != '"') {
        if (src[j] == '\\' && j + 1 < n) {
          ++j;
        } else if (src[j] == '\n') {
          ++line;  // ill-formed but keep line counts sane
        }
        ++j;
      }
      out.tokens.push_back({TokKind::String, "\"\"", start_line});
      i = (j < n) ? j + 1 : n;
      continue;
    }
    // Character literal.
    if (c == '\'') {
      std::size_t j = i + 1;
      while (j < n && src[j] != '\'') {
        if (src[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      out.tokens.push_back({TokKind::CharLit, "''", line});
      i = (j < n) ? j + 1 : n;
      continue;
    }

    // Number (loose: covers hex, separators, exponents well enough).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i;
      while (j < n &&
             (ident_char(src[j]) || src[j] == '.' ||
              (src[j] == '\'' && j + 1 < n && ident_char(src[j + 1])))) {
        ++j;
      }
      out.tokens.push_back(
          {TokKind::Number, std::string(src.substr(i, j - i)), line});
      i = j;
      continue;
    }

    // Identifier — possibly a raw-string prefix.
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      const std::string_view id = src.substr(i, j - i);
      if (j < n && src[j] == '"' && raw_string_prefix(id)) {
        // Raw string: R"delim( ... )delim"
        const int start_line = line;
        std::size_t k = j + 1;
        std::string delim;
        while (k < n && src[k] != '(') delim += src[k++];
        const std::string close = ")" + delim + "\"";
        const std::size_t endpos = src.find(close, k);
        const std::size_t end =
            (endpos == std::string_view::npos) ? n : endpos + close.size();
        for (std::size_t p = j; p < end; ++p) {
          if (src[p] == '\n') ++line;
        }
        out.tokens.push_back({TokKind::String, "\"\"", start_line});
        i = end;
        continue;
      }
      out.tokens.push_back({TokKind::Identifier, std::string(id), line});
      i = j;
      continue;
    }

    // Everything else: single-character punctuation.
    out.tokens.push_back({TokKind::Punct, std::string(1, c), line});
    ++i;
  }
  return out;
}

}  // namespace resmon::lint
