// Minimal C++ lexer for resmon_lint (see DESIGN.md "Static analysis &
// invariants").
//
// This is not a compiler front end: it splits a translation unit into
// identifiers, literals, punctuation, and preprocessor directives, which is
// exactly enough signal for the project-invariant rules in rules.hpp.
// Comments and string/char literal *contents* never reach the rules, so a
// mention of rand() in prose cannot trip the determinism check. Inline
// suppression comments of the form
//
//   // resmon-lint-allow(rule-a, rule-b): reason
//
// are collected during lexing; a suppression applies to the line the comment
// ends on and to the following line (comment-above style).
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace resmon::lint {

enum class TokKind {
  Identifier,  // foo, rand, virtual, ...
  Number,      // 42, 1'000, 0x1f, 1.5e-3
  String,      // "..." including raw strings; text holds a placeholder
  CharLit,     // 'x'
  Punct,       // single punctuation character
  Directive,   // whole preprocessor line, continuations folded
};

struct Token {
  TokKind kind;
  std::string text;
  int line;  // 1-based line of the token's first character
};

struct LexResult {
  std::vector<Token> tokens;
  // line -> rule names suppressed on that line (from resmon-lint-allow
  // comments). "*" suppresses every rule.
  std::map<int, std::set<std::string>> suppressions;
};

LexResult lex(std::string_view source);

}  // namespace resmon::lint
