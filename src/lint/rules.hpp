// Project-invariant rules for resmon_lint (see DESIGN.md "Static analysis &
// invariants" for the catalogue and the rationale behind each rule).
//
// Every rule is scoped by repo-relative path, so callers hand in paths like
// "src/core/pipeline.cpp" and the rule decides whether it applies:
//
//   determinism            src/                banned clock & randomness APIs
//   pragma-once            any *.hpp           #pragma once present
//   using-namespace-header any *.hpp           no `using namespace` at
//                                              namespace scope
//   std-endl               src/, tools/        no std::endl (flush) on paths
//                                              that may be hot
//   catch-all-swallow      src/net, src/agg,   catch (...) must rethrow or
//                          src/faultnet,       log
//                          src/scenario
//   explicit-ctor          src/                single-argument constructors
//                                              must be explicit
//   virtual-dtor           src/                polymorphic bases need a
//                                              virtual (or non-public) dtor
//   mutex-annotation       src/                raw std::mutex/
//                                              std::condition_variable
//                                              declarations must carry a
//                                              RESMON_* thread-safety
//                                              annotation (use the wrappers
//                                              in common/thread_annotations)
//   layering               src/                #includes must follow the
//                                              module DAG declared in
//                                              tools/lint_layers.txt
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.hpp"

namespace resmon::lint {

struct Finding {
  std::string path;  // repo-relative, forward slashes
  int line = 0;
  std::string rule;
  std::string message;
};

/// Module dependency DAG for the `layering` rule, parsed from
/// tools/lint_layers.txt. A module is a top-level directory under src/
/// ("common", "net", ...); deps[m] is the exact set of modules m may
/// #include from (itself is always allowed).
struct LayerGraph {
  std::map<std::string, std::set<std::string>> deps;
  std::vector<std::string> errors;  // malformed lines / cycles, line-numbered
};

/// Parse layer-graph text. Format, one module per line:
///   <module> -> {<dep>, <dep>, ...}     ("{}" for no dependencies)
/// Blank lines and lines starting with '#' are comments. Errors include
/// malformed lines, duplicate modules, deps on undeclared modules,
/// self-deps, and dependency cycles (the DAG property is checked here, so a
/// parse-clean graph is guaranteed acyclic).
LayerGraph parse_layers(const std::string& content);

/// Target of a quoted `#include "..."` directive, "" for anything else
/// (angle includes, other directives). `directive` is a Directive token's
/// text. Shared by the layering rule and the include-cycle checker.
std::string quoted_include_target(const std::string& directive);

/// All rule names, in reporting order (for --list-rules and the tests).
const std::vector<std::string>& rule_names();

/// Run every rule over one lexed file. Inline resmon-lint-allow suppressions
/// are already applied; the path-based allowlist is applied by the checker.
/// `layers` drives the `layering` rule; when null (or parse-errored) that
/// rule is inert, so snippet-feeding callers without a DAG are unaffected.
std::vector<Finding> run_rules(const std::string& path, const LexResult& lex,
                               const LayerGraph* layers = nullptr);

}  // namespace resmon::lint
