// Project-invariant rules for resmon_lint (see DESIGN.md "Static analysis &
// invariants" for the catalogue and the rationale behind each rule).
//
// Every rule is scoped by repo-relative path, so callers hand in paths like
// "src/core/pipeline.cpp" and the rule decides whether it applies:
//
//   determinism            src/                banned clock & randomness APIs
//   pragma-once            any *.hpp           #pragma once present
//   using-namespace-header any *.hpp           no `using namespace` at
//                                              namespace scope
//   std-endl               src/, tools/        no std::endl (flush) on paths
//                                              that may be hot
//   catch-all-swallow      src/net, src/agg,   catch (...) must rethrow or
//                          src/faultnet,       log
//                          src/scenario
//   explicit-ctor          src/                single-argument constructors
//                                              must be explicit
//   virtual-dtor           src/                polymorphic bases need a
//                                              virtual (or non-public) dtor
#pragma once

#include <string>
#include <vector>

#include "lint/lexer.hpp"

namespace resmon::lint {

struct Finding {
  std::string path;  // repo-relative, forward slashes
  int line = 0;
  std::string rule;
  std::string message;
};

/// All rule names, in reporting order (for --list-rules and the tests).
const std::vector<std::string>& rule_names();

/// Run every rule over one lexed file. Inline resmon-lint-allow suppressions
/// are already applied; the path-based allowlist is applied by the checker.
std::vector<Finding> run_rules(const std::string& path, const LexResult& lex);

}  // namespace resmon::lint
