#include "lint/rules.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <functional>
#include <optional>
#include <sstream>
#include <string_view>

namespace resmon::lint {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool is_punct(const Token& t, char c) {
  return t.kind == TokKind::Punct && t.text.size() == 1 && t.text[0] == c;
}

bool is_ident(const Token& t, std::string_view name) {
  return t.kind == TokKind::Identifier && t.text == name;
}

struct Ctx {
  const std::string& path;
  const std::vector<Token>& toks;
  bool is_header;
  const LayerGraph* layers;  // may be null: the layering rule is inert then
  std::vector<Finding>* out;

  void emit(int line, std::string rule, std::string message) const {
    out->push_back({path, line, std::move(rule), std::move(message)});
  }
};

// ---------------------------------------------------------------- determinism

// Library code must be replayable from a seed: wall clocks and unseeded
// randomness are banned in src/. steady_clock is banned too — the timing
// code that legitimately reads it (net staleness, span timestamps, fit-time
// gauges) is enumerated in the allowlist so every new clock read is a
// reviewed decision.
void rule_determinism(const Ctx& ctx) {
  if (!starts_with(ctx.path, "src/")) return;
  static constexpr std::array<std::string_view, 5> kBannedIds = {
      "random_device", "system_clock", "steady_clock", "high_resolution_clock",
      "gettimeofday"};
  const auto& t = ctx.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::Identifier) continue;
    const std::string& id = t[i].text;
    if (std::find(kBannedIds.begin(), kBannedIds.end(), id) !=
        kBannedIds.end()) {
      ctx.emit(t[i].line, "determinism",
               "'" + id +
                   "' is nondeterministic; route randomness through "
                   "common/rng.hpp and clocks through an allowlisted file");
      continue;
    }
    const bool call = i + 1 < t.size() && is_punct(t[i + 1], '(');
    if ((id == "rand" || id == "srand") && call) {
      ctx.emit(t[i].line, "determinism",
               "'" + id + "()' breaks seeded reproducibility; use resmon::Rng");
      continue;
    }
    if (id == "time" && call && i + 2 < t.size()) {
      // Argless time() / time(0) / time(NULL) / time(nullptr): a wall-clock
      // read. Any other argument list is some unrelated function.
      const Token& a = t[i + 2];
      const bool wall_read =
          is_punct(a, ')') ||
          ((a.text == "0" || a.text == "NULL" || a.text == "nullptr") &&
           i + 3 < t.size() && is_punct(t[i + 3], ')'));
      if (wall_read) {
        ctx.emit(t[i].line, "determinism",
                 "'time()' reads the wall clock; library code must be "
                 "replayable from a seed");
      }
    }
  }
}

// ---------------------------------------------------------------- pragma-once

void rule_pragma_once(const Ctx& ctx) {
  if (!ctx.is_header) return;
  for (const Token& t : ctx.toks) {
    if (t.kind != TokKind::Directive) continue;
    const std::string_view text = t.text;
    if (text.find("pragma") != std::string_view::npos &&
        text.find("once") != std::string_view::npos) {
      return;
    }
  }
  ctx.emit(1, "pragma-once", "header is missing '#pragma once'");
}

// --------------------------------------------------- using-namespace-header

// A `{` opens a function body if, walking left, a `)` appears before any
// statement/scope terminator. Good enough to tell `void f() {` and control
// flow apart from namespace/class/aggregate braces.
bool looks_like_function_brace(const std::vector<Token>& t, std::size_t brace) {
  std::size_t steps = 0;
  for (std::size_t j = brace; j-- > 0 && steps < 48; ++steps) {
    const Token& p = t[j];
    if (p.kind == TokKind::Directive) continue;
    if (is_punct(p, ')')) return true;
    if (is_punct(p, ';') || is_punct(p, '{') || is_punct(p, '}') ||
        is_punct(p, '=') || is_ident(p, "class") || is_ident(p, "struct") ||
        is_ident(p, "namespace") || is_ident(p, "enum")) {
      return false;
    }
  }
  return false;
}

void rule_using_namespace(const Ctx& ctx) {
  if (!ctx.is_header) return;
  const auto& t = ctx.toks;
  std::vector<bool> body_stack;  // true: inside a function body
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (is_punct(t[i], '{')) {
      const bool already = !body_stack.empty() && body_stack.back();
      body_stack.push_back(already || looks_like_function_brace(t, i));
      continue;
    }
    if (is_punct(t[i], '}')) {
      if (!body_stack.empty()) body_stack.pop_back();
      continue;
    }
    const bool in_function = !body_stack.empty() && body_stack.back();
    if (!in_function && is_ident(t[i], "using") && i + 1 < t.size() &&
        is_ident(t[i + 1], "namespace")) {
      ctx.emit(t[i].line, "using-namespace-header",
               "'using namespace' at namespace scope in a header leaks into "
               "every includer");
    }
  }
}

// ------------------------------------------------------------------ std-endl

void rule_std_endl(const Ctx& ctx) {
  if (!starts_with(ctx.path, "src/") && !starts_with(ctx.path, "tools/")) {
    return;
  }
  for (const Token& t : ctx.toks) {
    if (is_ident(t, "endl")) {
      ctx.emit(t.line, "std-endl",
               "std::endl forces a flush; write '\\n' and flush explicitly "
               "where needed (std::flush)");
    }
  }
}

// --------------------------------------------------------- catch-all-swallow

// In the runtime (src/net, src/agg, src/faultnet), the scenario runner —
// which drives that runtime and turns its failures into pass/fail verdicts —
// and the host sampler (src/host) — whose hostile-procfs diagnostics must
// surface, never vanish — a catch (...) that neither rethrows nor logs turns
// protocol violations and I/O failures into silent hangs or bogus green
// results.
void rule_catch_all(const Ctx& ctx) {
  if (!starts_with(ctx.path, "src/net/") &&
      !starts_with(ctx.path, "src/agg/") &&
      !starts_with(ctx.path, "src/faultnet/") &&
      !starts_with(ctx.path, "src/scenario/") &&
      !starts_with(ctx.path, "src/host/")) {
    return;
  }
  const auto& t = ctx.toks;
  for (std::size_t i = 0; i + 5 < t.size(); ++i) {
    if (!(is_ident(t[i], "catch") && is_punct(t[i + 1], '(') &&
          is_punct(t[i + 2], '.') && is_punct(t[i + 3], '.') &&
          is_punct(t[i + 4], '.') && is_punct(t[i + 5], ')'))) {
      continue;
    }
    std::size_t j = i + 6;
    while (j < t.size() && !is_punct(t[j], '{')) ++j;
    if (j >= t.size()) continue;
    int depth = 1;
    bool handled = false;
    for (++j; j < t.size() && depth > 0; ++j) {
      if (is_punct(t[j], '{')) ++depth;
      if (is_punct(t[j], '}')) --depth;
      if (t[j].kind != TokKind::Identifier) continue;
      const std::string& id = t[j].text;
      if (id == "throw" || id == "cerr" || id == "clog" || id == "fprintf" ||
          id == "perror" || id == "syslog" ||
          id.find("log") != std::string::npos ||
          id.find("Log") != std::string::npos) {
        handled = true;
      }
    }
    if (!handled) {
      ctx.emit(t[i].line, "catch-all-swallow",
               "catch (...) swallows the error; rethrow, log, or catch a "
               "concrete exception type");
    }
  }
}

// ------------------------------------------- explicit-ctor and virtual-dtor

struct ClassScope {
  std::string name;
  int body_depth = 0;
  int line = 0;
  bool has_virtual = false;
  bool dtor_ok = false;
  bool has_base = false;
  bool is_final = false;
  bool in_public = false;
};

struct PendingClass {
  std::string name;
  int line = 0;
  bool has_base = false;
  bool is_final = false;
  bool is_struct = false;
};

// Parse the parameter list starting at the '(' at index `open`. Returns the
// index one past the matching ')' or npos on imbalance.
struct ParamScan {
  std::size_t end = 0;        // one past ')'
  int total = 0;              // parameter count
  int first_default = -1;     // index of first '=' param, -1 if none
  bool exempt = false;        // copy/move/initializer_list/variadic/void
};

std::optional<ParamScan> scan_params(const std::vector<Token>& t,
                                     std::size_t open,
                                     const std::string& class_name) {
  ParamScan r;
  int paren = 1;
  int angle = 0;
  bool any_tokens = false;
  bool only_void = true;
  int param_index = 0;
  bool current_has_default = false;
  std::size_t j = open + 1;
  for (; j < t.size() && paren > 0; ++j) {
    const Token& u = t[j];
    if (is_punct(u, '(')) ++paren;
    else if (is_punct(u, ')')) {
      --paren;
      if (paren == 0) break;
    } else if (is_punct(u, '<')) {
      ++angle;
    } else if (is_punct(u, '>')) {
      angle = std::max(0, angle - 1);
    } else if (is_punct(u, ',') && paren == 1 && angle == 0) {
      ++param_index;
      current_has_default = false;
      continue;
    } else if (is_punct(u, '=') && paren == 1 && angle == 0) {
      if (!current_has_default && r.first_default < 0) {
        r.first_default = param_index;
      }
      current_has_default = true;
    } else if (is_punct(u, '.')) {
      r.exempt = true;  // variadic / parameter pack
    }
    if (u.kind == TokKind::Identifier) {
      if (u.text == class_name || u.text == "initializer_list") {
        r.exempt = true;
      }
      if (u.text != "void") only_void = false;
      any_tokens = true;
    } else if (!is_punct(u, ')')) {
      if (u.kind != TokKind::Directive) {
        if (!(is_punct(u, '('))) only_void = false;
      }
      any_tokens = true;
    }
  }
  if (j >= t.size()) return std::nullopt;
  r.end = j + 1;
  r.total = any_tokens ? param_index + 1 : 0;
  if (any_tokens && only_void && r.total == 1) {
    r.total = 0;  // Foo(void)
  }
  return r;
}

void rule_class_checks(const Ctx& ctx) {
  if (!starts_with(ctx.path, "src/")) return;
  const auto& t = ctx.toks;
  std::vector<ClassScope> stack;
  std::optional<PendingClass> pending;
  int depth = 0;

  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t[i];
    if (tok.kind == TokKind::Directive) continue;

    if (is_ident(tok, "class") || is_ident(tok, "struct")) {
      if (i > 0) {
        const Token& p = t[i - 1];
        // Not a definition: enum class, template parameters, friend decls.
        if (is_ident(p, "enum") || is_ident(p, "friend") ||
            is_ident(p, "typename") || is_punct(p, '<') || is_punct(p, ',')) {
          continue;
        }
      }
      std::string name;
      bool is_final = false;
      std::size_t j = i + 1;
      while (j < t.size()) {
        const Token& u = t[j];
        if (u.kind == TokKind::Identifier) {
          if (u.text == "final") {
            is_final = true;
          } else {
            name = u.text;
          }
          ++j;
          continue;
        }
        if (is_punct(u, '[') || is_punct(u, ']')) {  // [[attributes]]
          ++j;
          continue;
        }
        break;
      }
      if (name.empty() || j >= t.size()) continue;
      const Token& next = t[j];
      if (is_punct(next, ';') || is_punct(next, '<')) continue;
      if (!is_punct(next, '{') && !is_punct(next, ':')) continue;
      pending = PendingClass{name, tok.line, is_punct(next, ':'), is_final,
                             is_ident(tok, "struct")};
      continue;
    }

    if (is_punct(tok, '{')) {
      ++depth;
      if (pending) {
        ClassScope cs;
        cs.name = pending->name;
        cs.body_depth = depth;
        cs.line = pending->line;
        cs.has_base = pending->has_base;
        cs.is_final = pending->is_final;
        cs.in_public = pending->is_struct;
        stack.push_back(cs);
        pending.reset();
      }
      continue;
    }
    if (is_punct(tok, '}')) {
      if (!stack.empty() && stack.back().body_depth == depth) {
        const ClassScope& cs = stack.back();
        // A class that introduces virtual members is a polymorphic base; it
        // needs a virtual destructor (or a non-public one, which forbids
        // deletion through the base). Classes with bases inherit virtuality;
        // final classes cannot be deleted through a derived handle.
        if (cs.has_virtual && !cs.dtor_ok && !cs.has_base && !cs.is_final) {
          ctx.emit(cs.line, "virtual-dtor",
                   "'" + cs.name +
                       "' declares virtual members but no virtual (or "
                       "non-public) destructor");
        }
        stack.pop_back();
      }
      --depth;
      continue;
    }

    if (stack.empty() || depth != stack.back().body_depth) continue;
    ClassScope& cs = stack.back();

    if (tok.kind == TokKind::Identifier) {
      if (tok.text == "virtual") {
        cs.has_virtual = true;
        continue;
      }
      if ((tok.text == "public" || tok.text == "protected" ||
           tok.text == "private") &&
          i + 1 < t.size() && is_punct(t[i + 1], ':')) {
        cs.in_public = tok.text == "public";
        continue;
      }
    }

    if (is_punct(tok, '~') && i + 1 < t.size() && is_ident(t[i + 1], cs.name)) {
      const bool virt = i > 0 && is_ident(t[i - 1], "virtual");
      if (virt || !cs.in_public) cs.dtor_ok = true;
      continue;
    }

    // Constructor: ClassName '(' at class-body depth.
    if (is_ident(tok, cs.name) && i + 1 < t.size() && is_punct(t[i + 1], '(')) {
      if (i > 0) {
        const Token& p = t[i - 1];
        // Not a declaration: destructors, member access, expression contexts
        // (in-class initializers, default arguments), conversion operators.
        if (is_punct(p, '~') || is_punct(p, '.') || is_punct(p, '=') ||
            is_punct(p, '(') || is_punct(p, ',') || is_punct(p, '<') ||
            is_ident(p, "return") || is_ident(p, "new") ||
            is_ident(p, "operator")) {
          continue;
        }
        // A ':' directly before the name is fine only when it closes an
        // access label (`public: Foo(...)`); otherwise it is a qualified
        // name or a delegating-constructor call.
        if (is_punct(p, ':')) {
          const bool access_label =
              i >= 2 && (is_ident(t[i - 2], "public") ||
                         is_ident(t[i - 2], "protected") ||
                         is_ident(t[i - 2], "private"));
          if (!access_label) continue;
        }
      }
      // `Foo (*fn)(...)`: a member function pointer returning Foo.
      if (i + 2 < t.size() && is_punct(t[i + 2], '*')) continue;
      bool is_explicit = false;
      for (std::size_t k = 1; k <= 3 && k <= i; ++k) {
        const Token& p = t[i - k];
        if (is_ident(p, "explicit")) {
          is_explicit = true;
          break;
        }
        if (!(is_ident(p, "constexpr") || is_ident(p, "inline"))) break;
      }
      const auto params = scan_params(t, i + 1, cs.name);
      if (!params) continue;
      // `Foo(...) = delete` cannot convert anything.
      if (params->end + 1 < t.size() && is_punct(t[params->end], '=') &&
          is_ident(t[params->end + 1], "delete")) {
        continue;
      }
      const int min_arity =
          params->first_default >= 0 ? params->first_default : params->total;
      const bool callable_with_one = params->total >= 1 && min_arity <= 1;
      if (callable_with_one && !params->exempt && !is_explicit) {
        ctx.emit(tok.line, "explicit-ctor",
                 "constructor of '" + cs.name +
                     "' is callable with one argument and not marked "
                     "explicit (implicit conversion hazard)");
      }
    }
  }
}

// ---------------------------------------------------------- mutex-annotation

// Raw std:: synchronization primitives are invisible to Clang's thread
// safety analysis, so a bare declaration silently opts its guarded state
// out of the compile-time race wall. Declarations must go through the
// annotated wrappers in common/thread_annotations.hpp (Mutex / MutexLock /
// CondVar); the wrappers' own raw members carry inline allows.
void rule_mutex_annotation(const Ctx& ctx) {
  if (!starts_with(ctx.path, "src/")) return;
  static constexpr std::array<std::string_view, 6> kBareTypes = {
      "mutex",        "timed_mutex",        "recursive_mutex",
      "shared_mutex", "condition_variable", "condition_variable_any"};
  const auto& t = ctx.toks;
  for (std::size_t i = 0; i + 4 < t.size(); ++i) {
    if (!is_ident(t[i], "std") || !is_punct(t[i + 1], ':') ||
        !is_punct(t[i + 2], ':')) {
      continue;
    }
    const Token& type = t[i + 3];
    if (type.kind != TokKind::Identifier ||
        std::find(kBareTypes.begin(), kBareTypes.end(), type.text) ==
            kBareTypes.end()) {
      continue;
    }
    // Only declarations fire: `std::mutex name`. References, pointers, and
    // template arguments (`std::lock_guard<std::mutex>`, `std::mutex&`) are
    // uses of an existing — hopefully annotated — primitive.
    const Token& name = t[i + 4];
    if (name.kind != TokKind::Identifier) continue;
    bool annotated = false;
    for (std::size_t j = i + 4; j < t.size() && !is_punct(t[j], ';'); ++j) {
      if (t[j].kind == TokKind::Identifier &&
          starts_with(t[j].text, "RESMON_")) {
        annotated = true;
        break;
      }
    }
    if (!annotated) {
      ctx.emit(type.line, "mutex-annotation",
               "raw 'std::" + type.text + " " + name.text +
                   "' is invisible to thread-safety analysis; use the "
                   "annotated wrappers in common/thread_annotations.hpp "
                   "(Mutex/MutexLock/CondVar) or attach a RESMON_* "
                   "annotation");
    }
  }
}

// ------------------------------------------------------------------ layering

void rule_layering(const Ctx& ctx) {
  if (ctx.layers == nullptr || !ctx.layers->errors.empty()) return;
  if (!starts_with(ctx.path, "src/")) return;
  const std::string_view rest = std::string_view(ctx.path).substr(4);
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return;  // no module directory
  const std::string self(rest.substr(0, slash));
  const auto self_it = ctx.layers->deps.find(self);
  if (self_it == ctx.layers->deps.end()) {
    ctx.emit(1, "layering",
             "module '" + self +
                 "' is not declared in the layer graph; add it to "
                 "tools/lint_layers.txt");
    return;
  }
  for (const Token& t : ctx.toks) {
    if (t.kind != TokKind::Directive) continue;
    const std::string target = quoted_include_target(t.text);
    const std::size_t s = target.find('/');
    if (s == std::string::npos) continue;
    const std::string mod = target.substr(0, s);
    if (ctx.layers->deps.find(mod) == ctx.layers->deps.end()) continue;
    if (mod == self || self_it->second.count(mod) != 0) continue;
    ctx.emit(t.line, "layering",
             "module '" + self + "' may not include \"" + target + "\": '" +
                 mod +
                 "' is not among its declared dependencies in "
                 "tools/lint_layers.txt");
  }
}

}  // namespace

std::string quoted_include_target(const std::string& directive) {
  // Directive text looks like `#include "net/wire.hpp"` (possibly with
  // space between '#' and 'include'). Angle includes and every other
  // directive return "".
  const std::size_t inc = directive.find("include");
  if (inc == std::string::npos) return "";
  for (std::size_t i = 1; i < inc; ++i) {
    const char c = directive[i];
    if (c != ' ' && c != '\t') return "";  // e.g. #define FOO include
  }
  const std::size_t open = directive.find('"', inc);
  if (open == std::string::npos) return "";
  const std::size_t close = directive.find('"', open + 1);
  if (close == std::string::npos) return "";
  return directive.substr(open + 1, close - open - 1);
}

LayerGraph parse_layers(const std::string& content) {
  LayerGraph out;
  auto trim = [](const std::string& s) {
    const auto b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos) return std::string();
    const auto e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
  };
  auto valid_name = [](const std::string& s) {
    return !s.empty() && std::all_of(s.begin(), s.end(), [](char c) {
      return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    });
  };
  auto error_at = [&](int lineno, const std::string& what) {
    out.errors.push_back("layers line " + std::to_string(lineno) + ": " +
                         what);
  };

  std::map<std::string, int> decl_line;
  std::istringstream in(content);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const std::size_t arrow = line.find("->");
    const std::size_t open = line.find('{');
    const std::size_t close = line.find('}');
    if (arrow == std::string::npos || open == std::string::npos ||
        close == std::string::npos || open < arrow || close < open ||
        !trim(line.substr(close + 1)).empty()) {
      error_at(lineno, "expected '<module> -> {dep, dep, ...}'");
      continue;
    }
    const std::string module = trim(line.substr(0, arrow));
    if (!valid_name(module)) {
      error_at(lineno, "bad module name '" + module + "'");
      continue;
    }
    if (!decl_line.emplace(module, lineno).second) {
      error_at(lineno, "module '" + module + "' declared twice");
      continue;
    }
    std::set<std::string> deps;
    std::string list = line.substr(open + 1, close - open - 1);
    std::size_t pos = 0;
    bool ok = true;
    while (pos <= list.size()) {
      const std::size_t comma = list.find(',', pos);
      const std::string dep =
          trim(list.substr(pos, comma == std::string::npos ? std::string::npos
                                                           : comma - pos));
      if (!dep.empty()) {
        if (!valid_name(dep)) {
          error_at(lineno, "bad dependency name '" + dep + "'");
          ok = false;
        } else if (dep == module) {
          error_at(lineno, "module '" + module + "' depends on itself");
          ok = false;
        } else {
          deps.insert(dep);
        }
      } else if (comma != std::string::npos || !trim(list).empty()) {
        // `{a,,b}` or a stray comma — but a fully empty `{}` list is fine.
        error_at(lineno, "empty dependency name in list");
        ok = false;
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    if (ok) out.deps.emplace(module, std::move(deps));
  }

  // Every dependency must itself be a declared module.
  for (const auto& [module, deps] : out.deps) {
    for (const std::string& dep : deps) {
      if (out.deps.find(dep) == out.deps.end()) {
        error_at(decl_line[module], "module '" + module +
                                        "' depends on undeclared module '" +
                                        dep + "'");
      }
    }
  }
  if (!out.errors.empty()) return out;

  // The graph must be a DAG: DFS with a gray stack, reporting one cycle.
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> stack;
  std::function<bool(const std::string&)> visit =
      [&](const std::string& node) -> bool {
    color[node] = 1;
    stack.push_back(node);
    for (const std::string& dep : out.deps.at(node)) {
      if (color[dep] == 2) continue;
      if (color[dep] == 1) {
        std::string cycle;
        const auto begin =
            std::find(stack.begin(), stack.end(), dep);
        for (auto it = begin; it != stack.end(); ++it) cycle += *it + " -> ";
        cycle += dep;
        out.errors.push_back("layers line " +
                             std::to_string(decl_line[dep]) +
                             ": dependency cycle: " + cycle);
        return false;
      }
      if (!visit(dep)) return false;
    }
    stack.pop_back();
    color[node] = 2;
    return true;
  };
  for (const auto& [module, deps] : out.deps) {
    if (color[module] == 0 && !visit(module)) break;
  }
  return out;
}

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = {
      "determinism",       "pragma-once",   "using-namespace-header",
      "std-endl",          "catch-all-swallow",
      "explicit-ctor",     "virtual-dtor",  "mutex-annotation",
      "layering"};
  return kNames;
}

std::vector<Finding> run_rules(const std::string& path, const LexResult& lex,
                               const LayerGraph* layers) {
  std::vector<Finding> findings;
  Ctx ctx{path, lex.tokens, ends_with(path, ".hpp") || ends_with(path, ".h"),
          layers, &findings};
  rule_determinism(ctx);
  rule_pragma_once(ctx);
  rule_using_namespace(ctx);
  rule_std_endl(ctx);
  rule_catch_all(ctx);
  rule_class_checks(ctx);
  rule_mutex_annotation(ctx);
  rule_layering(ctx);

  // Apply inline suppressions: a resmon-lint-allow comment on the finding's
  // line or the line above silences it.
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (auto& f : findings) {
    bool suppressed = false;
    for (int l : {f.line, f.line - 1}) {
      const auto it = lex.suppressions.find(l);
      if (it != lex.suppressions.end() &&
          (it->second.count(f.rule) != 0 || it->second.count("*") != 0)) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(std::move(f));
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return kept;
}

}  // namespace resmon::lint
