#include "lint/rules.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <optional>
#include <string_view>

namespace resmon::lint {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool is_punct(const Token& t, char c) {
  return t.kind == TokKind::Punct && t.text.size() == 1 && t.text[0] == c;
}

bool is_ident(const Token& t, std::string_view name) {
  return t.kind == TokKind::Identifier && t.text == name;
}

struct Ctx {
  const std::string& path;
  const std::vector<Token>& toks;
  bool is_header;
  std::vector<Finding>* out;

  void emit(int line, std::string rule, std::string message) const {
    out->push_back({path, line, std::move(rule), std::move(message)});
  }
};

// ---------------------------------------------------------------- determinism

// Library code must be replayable from a seed: wall clocks and unseeded
// randomness are banned in src/. steady_clock is banned too — the timing
// code that legitimately reads it (net staleness, span timestamps, fit-time
// gauges) is enumerated in the allowlist so every new clock read is a
// reviewed decision.
void rule_determinism(const Ctx& ctx) {
  if (!starts_with(ctx.path, "src/")) return;
  static constexpr std::array<std::string_view, 5> kBannedIds = {
      "random_device", "system_clock", "steady_clock", "high_resolution_clock",
      "gettimeofday"};
  const auto& t = ctx.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::Identifier) continue;
    const std::string& id = t[i].text;
    if (std::find(kBannedIds.begin(), kBannedIds.end(), id) !=
        kBannedIds.end()) {
      ctx.emit(t[i].line, "determinism",
               "'" + id +
                   "' is nondeterministic; route randomness through "
                   "common/rng.hpp and clocks through an allowlisted file");
      continue;
    }
    const bool call = i + 1 < t.size() && is_punct(t[i + 1], '(');
    if ((id == "rand" || id == "srand") && call) {
      ctx.emit(t[i].line, "determinism",
               "'" + id + "()' breaks seeded reproducibility; use resmon::Rng");
      continue;
    }
    if (id == "time" && call && i + 2 < t.size()) {
      // Argless time() / time(0) / time(NULL) / time(nullptr): a wall-clock
      // read. Any other argument list is some unrelated function.
      const Token& a = t[i + 2];
      const bool wall_read =
          is_punct(a, ')') ||
          ((a.text == "0" || a.text == "NULL" || a.text == "nullptr") &&
           i + 3 < t.size() && is_punct(t[i + 3], ')'));
      if (wall_read) {
        ctx.emit(t[i].line, "determinism",
                 "'time()' reads the wall clock; library code must be "
                 "replayable from a seed");
      }
    }
  }
}

// ---------------------------------------------------------------- pragma-once

void rule_pragma_once(const Ctx& ctx) {
  if (!ctx.is_header) return;
  for (const Token& t : ctx.toks) {
    if (t.kind != TokKind::Directive) continue;
    const std::string_view text = t.text;
    if (text.find("pragma") != std::string_view::npos &&
        text.find("once") != std::string_view::npos) {
      return;
    }
  }
  ctx.emit(1, "pragma-once", "header is missing '#pragma once'");
}

// --------------------------------------------------- using-namespace-header

// A `{` opens a function body if, walking left, a `)` appears before any
// statement/scope terminator. Good enough to tell `void f() {` and control
// flow apart from namespace/class/aggregate braces.
bool looks_like_function_brace(const std::vector<Token>& t, std::size_t brace) {
  std::size_t steps = 0;
  for (std::size_t j = brace; j-- > 0 && steps < 48; ++steps) {
    const Token& p = t[j];
    if (p.kind == TokKind::Directive) continue;
    if (is_punct(p, ')')) return true;
    if (is_punct(p, ';') || is_punct(p, '{') || is_punct(p, '}') ||
        is_punct(p, '=') || is_ident(p, "class") || is_ident(p, "struct") ||
        is_ident(p, "namespace") || is_ident(p, "enum")) {
      return false;
    }
  }
  return false;
}

void rule_using_namespace(const Ctx& ctx) {
  if (!ctx.is_header) return;
  const auto& t = ctx.toks;
  std::vector<bool> body_stack;  // true: inside a function body
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (is_punct(t[i], '{')) {
      const bool already = !body_stack.empty() && body_stack.back();
      body_stack.push_back(already || looks_like_function_brace(t, i));
      continue;
    }
    if (is_punct(t[i], '}')) {
      if (!body_stack.empty()) body_stack.pop_back();
      continue;
    }
    const bool in_function = !body_stack.empty() && body_stack.back();
    if (!in_function && is_ident(t[i], "using") && i + 1 < t.size() &&
        is_ident(t[i + 1], "namespace")) {
      ctx.emit(t[i].line, "using-namespace-header",
               "'using namespace' at namespace scope in a header leaks into "
               "every includer");
    }
  }
}

// ------------------------------------------------------------------ std-endl

void rule_std_endl(const Ctx& ctx) {
  if (!starts_with(ctx.path, "src/") && !starts_with(ctx.path, "tools/")) {
    return;
  }
  for (const Token& t : ctx.toks) {
    if (is_ident(t, "endl")) {
      ctx.emit(t.line, "std-endl",
               "std::endl forces a flush; write '\\n' and flush explicitly "
               "where needed (std::flush)");
    }
  }
}

// --------------------------------------------------------- catch-all-swallow

// In the runtime (src/net, src/agg, src/faultnet), the scenario runner —
// which drives that runtime and turns its failures into pass/fail verdicts —
// and the host sampler (src/host) — whose hostile-procfs diagnostics must
// surface, never vanish — a catch (...) that neither rethrows nor logs turns
// protocol violations and I/O failures into silent hangs or bogus green
// results.
void rule_catch_all(const Ctx& ctx) {
  if (!starts_with(ctx.path, "src/net/") &&
      !starts_with(ctx.path, "src/agg/") &&
      !starts_with(ctx.path, "src/faultnet/") &&
      !starts_with(ctx.path, "src/scenario/") &&
      !starts_with(ctx.path, "src/host/")) {
    return;
  }
  const auto& t = ctx.toks;
  for (std::size_t i = 0; i + 5 < t.size(); ++i) {
    if (!(is_ident(t[i], "catch") && is_punct(t[i + 1], '(') &&
          is_punct(t[i + 2], '.') && is_punct(t[i + 3], '.') &&
          is_punct(t[i + 4], '.') && is_punct(t[i + 5], ')'))) {
      continue;
    }
    std::size_t j = i + 6;
    while (j < t.size() && !is_punct(t[j], '{')) ++j;
    if (j >= t.size()) continue;
    int depth = 1;
    bool handled = false;
    for (++j; j < t.size() && depth > 0; ++j) {
      if (is_punct(t[j], '{')) ++depth;
      if (is_punct(t[j], '}')) --depth;
      if (t[j].kind != TokKind::Identifier) continue;
      const std::string& id = t[j].text;
      if (id == "throw" || id == "cerr" || id == "clog" || id == "fprintf" ||
          id == "perror" || id == "syslog" ||
          id.find("log") != std::string::npos ||
          id.find("Log") != std::string::npos) {
        handled = true;
      }
    }
    if (!handled) {
      ctx.emit(t[i].line, "catch-all-swallow",
               "catch (...) swallows the error; rethrow, log, or catch a "
               "concrete exception type");
    }
  }
}

// ------------------------------------------- explicit-ctor and virtual-dtor

struct ClassScope {
  std::string name;
  int body_depth = 0;
  int line = 0;
  bool has_virtual = false;
  bool dtor_ok = false;
  bool has_base = false;
  bool is_final = false;
  bool in_public = false;
};

struct PendingClass {
  std::string name;
  int line = 0;
  bool has_base = false;
  bool is_final = false;
  bool is_struct = false;
};

// Parse the parameter list starting at the '(' at index `open`. Returns the
// index one past the matching ')' or npos on imbalance.
struct ParamScan {
  std::size_t end = 0;        // one past ')'
  int total = 0;              // parameter count
  int first_default = -1;     // index of first '=' param, -1 if none
  bool exempt = false;        // copy/move/initializer_list/variadic/void
};

std::optional<ParamScan> scan_params(const std::vector<Token>& t,
                                     std::size_t open,
                                     const std::string& class_name) {
  ParamScan r;
  int paren = 1;
  int angle = 0;
  bool any_tokens = false;
  bool only_void = true;
  int param_index = 0;
  bool current_has_default = false;
  std::size_t j = open + 1;
  for (; j < t.size() && paren > 0; ++j) {
    const Token& u = t[j];
    if (is_punct(u, '(')) ++paren;
    else if (is_punct(u, ')')) {
      --paren;
      if (paren == 0) break;
    } else if (is_punct(u, '<')) {
      ++angle;
    } else if (is_punct(u, '>')) {
      angle = std::max(0, angle - 1);
    } else if (is_punct(u, ',') && paren == 1 && angle == 0) {
      ++param_index;
      current_has_default = false;
      continue;
    } else if (is_punct(u, '=') && paren == 1 && angle == 0) {
      if (!current_has_default && r.first_default < 0) {
        r.first_default = param_index;
      }
      current_has_default = true;
    } else if (is_punct(u, '.')) {
      r.exempt = true;  // variadic / parameter pack
    }
    if (u.kind == TokKind::Identifier) {
      if (u.text == class_name || u.text == "initializer_list") {
        r.exempt = true;
      }
      if (u.text != "void") only_void = false;
      any_tokens = true;
    } else if (!is_punct(u, ')')) {
      if (u.kind != TokKind::Directive) {
        if (!(is_punct(u, '('))) only_void = false;
      }
      any_tokens = true;
    }
  }
  if (j >= t.size()) return std::nullopt;
  r.end = j + 1;
  r.total = any_tokens ? param_index + 1 : 0;
  if (any_tokens && only_void && r.total == 1) {
    r.total = 0;  // Foo(void)
  }
  return r;
}

void rule_class_checks(const Ctx& ctx) {
  if (!starts_with(ctx.path, "src/")) return;
  const auto& t = ctx.toks;
  std::vector<ClassScope> stack;
  std::optional<PendingClass> pending;
  int depth = 0;

  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t[i];
    if (tok.kind == TokKind::Directive) continue;

    if (is_ident(tok, "class") || is_ident(tok, "struct")) {
      if (i > 0) {
        const Token& p = t[i - 1];
        // Not a definition: enum class, template parameters, friend decls.
        if (is_ident(p, "enum") || is_ident(p, "friend") ||
            is_ident(p, "typename") || is_punct(p, '<') || is_punct(p, ',')) {
          continue;
        }
      }
      std::string name;
      bool is_final = false;
      std::size_t j = i + 1;
      while (j < t.size()) {
        const Token& u = t[j];
        if (u.kind == TokKind::Identifier) {
          if (u.text == "final") {
            is_final = true;
          } else {
            name = u.text;
          }
          ++j;
          continue;
        }
        if (is_punct(u, '[') || is_punct(u, ']')) {  // [[attributes]]
          ++j;
          continue;
        }
        break;
      }
      if (name.empty() || j >= t.size()) continue;
      const Token& next = t[j];
      if (is_punct(next, ';') || is_punct(next, '<')) continue;
      if (!is_punct(next, '{') && !is_punct(next, ':')) continue;
      pending = PendingClass{name, tok.line, is_punct(next, ':'), is_final,
                             is_ident(tok, "struct")};
      continue;
    }

    if (is_punct(tok, '{')) {
      ++depth;
      if (pending) {
        ClassScope cs;
        cs.name = pending->name;
        cs.body_depth = depth;
        cs.line = pending->line;
        cs.has_base = pending->has_base;
        cs.is_final = pending->is_final;
        cs.in_public = pending->is_struct;
        stack.push_back(cs);
        pending.reset();
      }
      continue;
    }
    if (is_punct(tok, '}')) {
      if (!stack.empty() && stack.back().body_depth == depth) {
        const ClassScope& cs = stack.back();
        // A class that introduces virtual members is a polymorphic base; it
        // needs a virtual destructor (or a non-public one, which forbids
        // deletion through the base). Classes with bases inherit virtuality;
        // final classes cannot be deleted through a derived handle.
        if (cs.has_virtual && !cs.dtor_ok && !cs.has_base && !cs.is_final) {
          ctx.emit(cs.line, "virtual-dtor",
                   "'" + cs.name +
                       "' declares virtual members but no virtual (or "
                       "non-public) destructor");
        }
        stack.pop_back();
      }
      --depth;
      continue;
    }

    if (stack.empty() || depth != stack.back().body_depth) continue;
    ClassScope& cs = stack.back();

    if (tok.kind == TokKind::Identifier) {
      if (tok.text == "virtual") {
        cs.has_virtual = true;
        continue;
      }
      if ((tok.text == "public" || tok.text == "protected" ||
           tok.text == "private") &&
          i + 1 < t.size() && is_punct(t[i + 1], ':')) {
        cs.in_public = tok.text == "public";
        continue;
      }
    }

    if (is_punct(tok, '~') && i + 1 < t.size() && is_ident(t[i + 1], cs.name)) {
      const bool virt = i > 0 && is_ident(t[i - 1], "virtual");
      if (virt || !cs.in_public) cs.dtor_ok = true;
      continue;
    }

    // Constructor: ClassName '(' at class-body depth.
    if (is_ident(tok, cs.name) && i + 1 < t.size() && is_punct(t[i + 1], '(')) {
      if (i > 0) {
        const Token& p = t[i - 1];
        // Not a declaration: destructors, member access, expression contexts
        // (in-class initializers, default arguments), conversion operators.
        if (is_punct(p, '~') || is_punct(p, '.') || is_punct(p, '=') ||
            is_punct(p, '(') || is_punct(p, ',') || is_punct(p, '<') ||
            is_ident(p, "return") || is_ident(p, "new") ||
            is_ident(p, "operator")) {
          continue;
        }
        // A ':' directly before the name is fine only when it closes an
        // access label (`public: Foo(...)`); otherwise it is a qualified
        // name or a delegating-constructor call.
        if (is_punct(p, ':')) {
          const bool access_label =
              i >= 2 && (is_ident(t[i - 2], "public") ||
                         is_ident(t[i - 2], "protected") ||
                         is_ident(t[i - 2], "private"));
          if (!access_label) continue;
        }
      }
      // `Foo (*fn)(...)`: a member function pointer returning Foo.
      if (i + 2 < t.size() && is_punct(t[i + 2], '*')) continue;
      bool is_explicit = false;
      for (std::size_t k = 1; k <= 3 && k <= i; ++k) {
        const Token& p = t[i - k];
        if (is_ident(p, "explicit")) {
          is_explicit = true;
          break;
        }
        if (!(is_ident(p, "constexpr") || is_ident(p, "inline"))) break;
      }
      const auto params = scan_params(t, i + 1, cs.name);
      if (!params) continue;
      // `Foo(...) = delete` cannot convert anything.
      if (params->end + 1 < t.size() && is_punct(t[params->end], '=') &&
          is_ident(t[params->end + 1], "delete")) {
        continue;
      }
      const int min_arity =
          params->first_default >= 0 ? params->first_default : params->total;
      const bool callable_with_one = params->total >= 1 && min_arity <= 1;
      if (callable_with_one && !params->exempt && !is_explicit) {
        ctx.emit(tok.line, "explicit-ctor",
                 "constructor of '" + cs.name +
                     "' is callable with one argument and not marked "
                     "explicit (implicit conversion hazard)");
      }
    }
  }
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = {
      "determinism",       "pragma-once", "using-namespace-header",
      "std-endl",          "catch-all-swallow",
      "explicit-ctor",     "virtual-dtor"};
  return kNames;
}

std::vector<Finding> run_rules(const std::string& path, const LexResult& lex) {
  std::vector<Finding> findings;
  Ctx ctx{path, lex.tokens, ends_with(path, ".hpp") || ends_with(path, ".h"),
          &findings};
  rule_determinism(ctx);
  rule_pragma_once(ctx);
  rule_using_namespace(ctx);
  rule_std_endl(ctx);
  rule_catch_all(ctx);
  rule_class_checks(ctx);

  // Apply inline suppressions: a resmon-lint-allow comment on the finding's
  // line or the line above silences it.
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (auto& f : findings) {
    bool suppressed = false;
    for (int l : {f.line, f.line - 1}) {
      const auto it = lex.suppressions.find(l);
      if (it != lex.suppressions.end() &&
          (it->second.count(f.rule) != 0 || it->second.count("*") != 0)) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(std::move(f));
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return kept;
}

}  // namespace resmon::lint
