#include "core/metrics.hpp"

#include <cmath>

#include "common/error.hpp"

namespace resmon::core {

double rmse_step(const Matrix& truth, const Matrix& estimate) {
  RESMON_REQUIRE(truth.rows() == estimate.rows() &&
                     truth.cols() == estimate.cols(),
                 "rmse_step shape mismatch");
  RESMON_REQUIRE(truth.rows() > 0, "rmse_step on empty matrices");
  double s = 0.0;
  for (std::size_t i = 0; i < truth.rows(); ++i) {
    s += squared_distance(truth.row(i), estimate.row(i));
  }
  return std::sqrt(s / static_cast<double>(truth.rows()));
}

double RmseAccumulator::value() const {
  if (count_ == 0) return 0.0;
  return std::sqrt(sum_squares_ / static_cast<double>(count_));
}

double intermediate_rmse_step(const Matrix& truth,
                              const cluster::Clustering& clustering) {
  RESMON_REQUIRE(truth.rows() == clustering.assignment.size(),
                 "intermediate_rmse_step node count mismatch");
  RESMON_REQUIRE(truth.cols() == clustering.centroids.cols(),
                 "intermediate_rmse_step dimension mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < truth.rows(); ++i) {
    s += squared_distance(
        truth.row(i), clustering.centroids.row(clustering.assignment[i]));
  }
  return std::sqrt(s / static_cast<double>(truth.rows()));
}

double mae_step(const Matrix& truth, const Matrix& estimate) {
  RESMON_REQUIRE(truth.rows() == estimate.rows() &&
                     truth.cols() == estimate.cols(),
                 "mae_step shape mismatch");
  RESMON_REQUIRE(truth.rows() > 0, "mae_step on empty matrices");
  double s = 0.0;
  for (std::size_t i = 0; i < truth.rows(); ++i) {
    for (std::size_t c = 0; c < truth.cols(); ++c) {
      s += std::fabs(estimate(i, c) - truth(i, c));
    }
  }
  return s / static_cast<double>(truth.rows() * truth.cols());
}

std::vector<double> per_node_error(const Matrix& truth,
                                   const Matrix& estimate) {
  RESMON_REQUIRE(truth.rows() == estimate.rows() &&
                     truth.cols() == estimate.cols(),
                 "per_node_error shape mismatch");
  std::vector<double> out(truth.rows());
  for (std::size_t i = 0; i < truth.rows(); ++i) {
    out[i] = std::sqrt(squared_distance(truth.row(i), estimate.row(i)));
  }
  return out;
}

}  // namespace resmon::core
