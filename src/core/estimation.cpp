#include "core/estimation.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace resmon::core {

double alpha_scale(std::span<const double> delta, const Matrix& centroids,
                   std::size_t j) {
  RESMON_REQUIRE(j < centroids.rows(), "alpha_scale: cluster out of range");
  RESMON_REQUIRE(delta.size() == centroids.cols(),
                 "alpha_scale: dimension mismatch");
  double alpha = 1.0;
  for (std::size_t l = 0; l < centroids.rows(); ++l) {
    if (l == j) continue;
    double dir_dot = 0.0;  // delta . (c_l - c_j)
    double gap2 = 0.0;     // ||c_l - c_j||^2
    for (std::size_t c = 0; c < delta.size(); ++c) {
      const double g = centroids(l, c) - centroids(j, c);
      dir_dot += delta[c] * g;
      gap2 += g * g;
    }
    if (dir_dot > 0.0 && gap2 > 0.0) {
      alpha = std::min(alpha, gap2 / (2.0 * dir_dot));
    }
  }
  return std::clamp(alpha, 0.0, 1.0);
}

OffsetTracker::OffsetTracker(std::size_t m_prime, std::size_t k,
                             bool use_alpha)
    : m_prime_(m_prime), k_(k), use_alpha_(use_alpha), ring_(m_prime + 1) {
  RESMON_REQUIRE(k >= 1, "OffsetTracker needs at least one cluster");
}

void OffsetTracker::push(const cluster::Clustering& clustering,
                         const Matrix& snapshot) {
  RESMON_REQUIRE(clustering.centroids.rows() == k_,
                 "OffsetTracker: cluster count mismatch");
  RESMON_REQUIRE(snapshot.rows() == clustering.assignment.size(),
                 "OffsetTracker: snapshot/assignment size mismatch");
  RESMON_REQUIRE(snapshot.cols() == clustering.centroids.cols(),
                 "OffsetTracker: snapshot/centroid dimension mismatch");
  if (ring_size_ > 0) {
    RESMON_REQUIRE(snapshot.rows() == entry(0).snapshot.rows(),
                   "OffsetTracker: node count changed between steps");
  }
  // Rotate the ring backward and copy-assign into the evicted slot, so the
  // entry's vectors/matrices recycle their capacity (no steady-state
  // allocations).
  const std::size_t cap = ring_.size();
  ring_head_ = (ring_head_ + cap - 1) % cap;
  if (ring_size_ < cap) ++ring_size_;
  Entry& slot = ring_[ring_head_];
  slot.clustering.assignment = clustering.assignment;
  slot.clustering.centroids = clustering.centroids;
  slot.snapshot = snapshot;
}

std::size_t OffsetTracker::modal_cluster(std::size_t node) const {
  if (ring_size_ == 0) {
    throw InvalidState("OffsetTracker: no steps recorded");
  }
  std::vector<std::size_t> counts(k_, 0);
  for (std::size_t age = 0; age < ring_size_; ++age) {
    const Entry& e = entry(age);
    RESMON_REQUIRE(node < e.clustering.assignment.size(),
                   "OffsetTracker: node out of range");
    ++counts[e.clustering.assignment[node]];
  }
  std::size_t best = 0;
  for (std::size_t j = 1; j < k_; ++j) {
    if (counts[j] > counts[best]) best = j;
  }
  return best;
}

std::vector<double> OffsetTracker::offset(std::size_t node,
                                          std::size_t j) const {
  if (ring_size_ == 0) {
    throw InvalidState("OffsetTracker: no steps recorded");
  }
  RESMON_REQUIRE(j < k_, "OffsetTracker: cluster out of range");
  const std::size_t dims = entry(0).snapshot.cols();
  std::vector<double> out(dims, 0.0);
  std::vector<double> delta(dims);
  // Newest-first, matching the push order of the former deque exactly.
  for (std::size_t age = 0; age < ring_size_; ++age) {
    const Entry& e = entry(age);
    for (std::size_t c = 0; c < dims; ++c) {
      delta[c] = e.snapshot(node, c) - e.clustering.centroids(j, c);
    }
    const double alpha =
        use_alpha_ ? alpha_scale(delta, e.clustering.centroids, j) : 1.0;
    for (std::size_t c = 0; c < dims; ++c) {
      out[c] += alpha * delta[c];
    }
  }
  for (double& v : out) v /= static_cast<double>(ring_size_);
  return out;
}

}  // namespace resmon::core
