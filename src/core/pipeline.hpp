// MonitoringPipeline: the paper's complete system (Fig. 2).
//
// Per time step:
//   1. every local node's transmission policy decides whether to push its
//      measurement (§V-A); the central store holds z_t;
//   2. the central node clusters z_t with the dynamic cluster tracker
//      (§V-B) — by default one tracker per resource on scalar values;
//   3. each cluster's centroid extends that cluster's time series and is
//      fed to the cluster's managed forecaster (§V-C), which retrains on
//      the paper's schedule.
//
// Forecasts x-hat_{i,t+h} (eq. (2)) combine the forecasted centroid of the
// cluster node i is predicted to belong to (modal membership over the last
// M' steps) with the alpha-scaled per-node offset of eq. (12).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "cluster/dynamic_cluster.hpp"
#include "collect/fleet_collector.hpp"
#include "faultnet/fault_spec.hpp"
#include "common/matrix.hpp"
#include "common/thread_pool.hpp"
#include "core/estimation.hpp"
#include "core/metrics.hpp"
#include "forecast/managed.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_log.hpp"
#include "trace/trace.hpp"

namespace resmon::core {

struct PipelineOptions {
  // -- collection (§V-A) ----------------------------------------------------
  collect::PolicyKind policy = collect::PolicyKind::kAdaptive;
  double max_frequency = 0.3;  ///< B (paper default 0.3)
  double v0 = 1e-12;           ///< V_0 of eq. (8)
  double gamma = 0.65;         ///< gamma of eq. (8)
  bool clamp_queue = false;    ///< see AdaptiveOptions::clamp_queue
  /// Uplink failure injection (drops/delays); default = reliable link.
  transport::ChannelOptions channel;
  /// Chaos-harness fault schedule layered over the uplink: when non-empty,
  /// the in-process LoopbackLink is wrapped in a faultnet::FaultyLink
  /// applying this spec (drop/dup/corrupt/delay/reorder/stall/partition).
  /// Unused in external-collection mode — the remote agents own their
  /// fault hooks.
  faultnet::FaultSpec faults;

  // -- clustering (§V-B) ----------------------------------------------------
  std::size_t num_clusters = 3;        ///< K (paper default 3)
  std::size_t similarity_lookback = 1;  ///< M (paper default 1)
  cluster::SimilarityKind similarity =
      cluster::SimilarityKind::kIntersection;
  /// Cluster each resource independently on scalar values (paper default;
  /// Table I shows this beats joint full-vector clustering).
  bool cluster_per_resource = true;
  /// Temporal clustering dimension (Fig. 5): cluster on the concatenation
  /// of the last `temporal_window` stored snapshots. 1 = no windowing.
  std::size_t temporal_window = 1;

  // -- forecasting (§V-C) ---------------------------------------------------
  forecast::ForecasterKind forecaster =
      forecast::ForecasterKind::kSampleHold;
  forecast::RetrainSchedule schedule{.initial_steps = 1000,
                                     .retrain_interval = 288};
  std::size_t offset_lookback = 5;  ///< M' (paper default 5)
  /// Apply the per-node offset s-hat of eq. (12) (disable for ablation).
  bool use_offset = true;
  /// Apply the alpha scaling inside eq. (12) (disable for ablation).
  bool offset_alpha = true;
  /// Re-index clusters against history (eq. (10)/(11)); disable for
  /// ablation.
  bool reindex_clusters = true;

  std::uint64_t seed = 1;

  // -- observability ---------------------------------------------------------
  /// Optional metrics sink (non-owning): every component's series land
  /// here (resmon_collect_*, resmon_cluster_*, resmon_forecast_*,
  /// resmon_pipeline_*). When null the pipeline owns a private registry so
  /// stage_timers() and metrics() always work.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional trace-event sink (non-owning): per-step pipeline.collect /
  /// pipeline.cluster / pipeline.forecast spans. nullptr = no tracing.
  obs::TraceBuffer* trace_events = nullptr;

  // -- execution -------------------------------------------------------------
  /// Worker threads for the hot stages of step() (policy stepping, K-means,
  /// forecaster retraining). 0 = hardware concurrency, 1 = the exact serial
  /// path (no pool). Results are bit-identical at every value — see the
  /// "Threading model" section of DESIGN.md.
  std::size_t num_threads = 1;
};

/// Wall-clock seconds spent in each stage of step() since the last run()
/// began (the breakdown bench/micro_parallel_step and
/// table4_computation_time report). A value-type adapter over the
/// resmon_pipeline_stage_seconds{stage=...} gauges in the registry.
struct StageTimers {
  double collect_seconds = 0.0;   ///< policy stepping + channel + store
  double cluster_seconds = 0.0;   ///< snapshots, K-means, re-indexing, offsets
  double forecast_seconds = 0.0;  ///< feeding/retraining managed forecasters
  double total_seconds() const {
    return collect_seconds + cluster_seconds + forecast_seconds;
  }
};

/// Tag selecting external collection: measurements arrive from outside the
/// process (e.g. a net::Controller draining TCP agents) via
/// step_external() instead of from an in-process FleetCollector.
struct ExternalCollection {};

class MonitoringPipeline {
 public:
  MonitoringPipeline(const trace::Trace& trace,
                     const PipelineOptions& options);

  /// External-collection variant: no FleetCollector is built; the caller
  /// feeds each slot's received measurements through step_external().
  /// PipelineOptions' collection knobs (policy, channel) are unused — the
  /// remote agents own them.
  MonitoringPipeline(const trace::Trace& trace,
                     const PipelineOptions& options, ExternalCollection);

  /// Advance one time step (collection + clustering + model feeding).
  void step();

  /// Advance one time step in external-collection mode: apply the
  /// measurements received for this slot to the central store, then run
  /// the clustering + forecasting stages. Slots must be fed in order.
  void step_external(
      std::span<const transport::MeasurementMessage> messages);

  /// Run `count` steps (convenience). Resets the per-stage timers first so
  /// each run() reports its own breakdown rather than silently accumulating
  /// across repeated runs on one pipeline object.
  void run(std::size_t count);

  /// Steps processed so far; the last processed step index is
  /// current_step() - 1.
  std::size_t current_step() const { return step_count_; }
  bool done() const { return step_count_ >= trace_.num_steps(); }

  /// x-hat_{i,t+h} for all nodes (N x d). h = 0 returns the stored z_t
  /// (matching the paper's convention in eq. (3)); h >= 1 combines centroid
  /// forecasts with per-node offsets. Requires at least one step().
  Matrix forecast_all(std::size_t h) const;

  /// RMSE(t, h) of eq. (3) against the trace's ground truth at step
  /// t + h, where t is the last processed step. Requires t + h to lie
  /// within the trace.
  double rmse_at(std::size_t h) const;

  /// Intermediate RMSE of the current clustering against the ground truth
  /// at the last processed step (aggregated over all views/dimensions).
  double intermediate_rmse() const;

  /// Intermediate RMSE restricted to one dimension of one view. With the
  /// default per-resource clustering, `view` selects the resource and `dim`
  /// must be 0; with joint clustering, `view` is 0 and `dim` selects the
  /// resource. This is what the per-resource panels of Figs. 5-7 report.
  double intermediate_rmse(std::size_t view, std::size_t dim) const;

  // -- component access -------------------------------------------------
  /// Number of clustering views: num_resources when clustering per
  /// resource, otherwise 1.
  std::size_t num_views() const { return trackers_.size(); }
  const cluster::DynamicClusterTracker& tracker(std::size_t view) const;
  /// The in-process collector. Throws InvalidState in external-collection
  /// mode (there is none; the agents live in other processes).
  const collect::FleetCollector& collector() const;
  /// The central node's current view z_t, in either collection mode.
  const transport::CentralStore& central_store() const { return store(); }
  /// Managed forecaster of cluster j, dimension `dim` within `view`.
  const forecast::ManagedForecaster& model(std::size_t view, std::size_t j,
                                           std::size_t dim = 0) const;
  const PipelineOptions& options() const { return options_; }
  const trace::Trace& trace() const { return trace_; }

  /// Per-stage wall-clock breakdown accumulated across step() calls since
  /// the last run() started (reads the stage gauges in metrics()).
  StageTimers stage_timers() const;

  /// The registry all pipeline series are registered in: the one from
  /// PipelineOptions::metrics, else the pipeline-owned fallback.
  obs::MetricsRegistry& metrics() const { return *registry_; }

  /// Clustering features of a view: the concatenation of the last
  /// `temporal_window` stored snapshots, N x (view_dims * temporal_window),
  /// with warm-up slots padded by the oldest available snapshot (Fig. 5).
  /// Requires at least one clustered step.
  Matrix view_features(std::size_t view) const;

 private:
  MonitoringPipeline(const trace::Trace& trace,
                     const PipelineOptions& options, bool external);

  std::size_t view_dims() const {
    return options_.cluster_per_resource ? 1 : trace_.num_resources();
  }
  /// The central store backing this pipeline: the collector's in normal
  /// mode, the pipeline-owned one in external-collection mode.
  const transport::CentralStore& store() const {
    return collector_ != nullptr ? collector_->store() : *external_store_;
  }
  /// Stored-measurement snapshot for a view, written into `snap`
  /// (N x view_dims(), capacity reused across steps).
  void view_snapshot_into(std::size_t view, Matrix& snap) const;
  /// Allocation-free core of view_features().
  void view_features_into(std::size_t view, Matrix& features) const;
  /// Retained snapshot of a view, `age` steps back (0 = most recent).
  const Matrix& snapshot(std::size_t view, std::size_t age) const {
    return snapshot_ring_[view][(snap_head_ + age) % snapshot_capacity_];
  }
  /// Ground-truth snapshot for a view at a given step.
  Matrix view_truth(std::size_t view, std::size_t t) const;
  /// One view's share of a step: push the snapshot, cluster, track offsets.
  void update_view(std::size_t view);
  /// Clustering + forecasting stages shared by step() and step_external();
  /// returns after bumping step_count_.
  void finish_step();

  const trace::Trace& trace_;
  PipelineOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // present only when num_threads > 1
  std::unique_ptr<collect::FleetCollector> collector_;
  /// Store owned by the pipeline in external-collection mode only.
  std::unique_ptr<transport::CentralStore> external_store_;
  std::vector<cluster::DynamicClusterTracker> trackers_;
  // Membership forecasting and eq. (12) offsets, one per view.
  std::vector<OffsetTracker> offsets_;
  // models_[view][j * view_dims + dim]
  std::vector<std::vector<std::unique_ptr<forecast::ManagedForecaster>>>
      models_;
  // Per-view ring of the last `temporal_window` stored snapshots, newest at
  // snap_head_. All views advance in lockstep, so the head/size indices are
  // shared; Matrix slots recycle their capacity, keeping the per-step path
  // allocation-free (see docs/PERFORMANCE.md).
  std::vector<std::vector<Matrix>> snapshot_ring_;
  std::size_t snapshot_capacity_;
  std::size_t snap_head_ = 0;
  std::size_t snap_size_ = 0;
  // Per-view clustering-feature scratch for the temporal window path.
  mutable std::vector<Matrix> features_scratch_;
  std::size_t step_count_ = 0;
  /// Fallback registry, owned only when PipelineOptions::metrics is null.
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_ = nullptr;  ///< always valid
  obs::Gauge* stage_collect_ = nullptr;
  obs::Gauge* stage_cluster_ = nullptr;
  obs::Gauge* stage_forecast_ = nullptr;
  obs::Counter* steps_total_ = nullptr;
  obs::Counter* warmup_total_ = nullptr;
};

}  // namespace resmon::core
