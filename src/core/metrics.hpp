// Error metrics of §IV: per-step RMSE (eq. (3)), time-averaged RMSE
// (eq. (4)) and the intermediate RMSE used to evaluate clustering quality
// (§VI-C).
#pragma once

#include <cstddef>

#include "cluster/dynamic_cluster.hpp"
#include "common/matrix.hpp"

namespace resmon::core {

/// RMSE(t, h) of eq. (3): truth and estimate are N x d matrices; the norm
/// runs over the d resource dimensions and the mean over the N nodes.
double rmse_step(const Matrix& truth, const Matrix& estimate);

/// Time-averaged RMSE of eq. (4): accumulate per-step RMSEs, average the
/// squares, and take the square root at the end.
class RmseAccumulator {
 public:
  void add(double rmse_t) {
    sum_squares_ += rmse_t * rmse_t;
    ++count_;
  }

  std::size_t count() const { return count_; }

  /// RMSE-bar(T, h) over everything added so far; 0 when empty.
  double value() const;

 private:
  double sum_squares_ = 0.0;
  std::size_t count_ = 0;
};

/// Intermediate RMSE at one step (§VI-C): distance between the *true*
/// measurements and the centroid of the cluster each node belongs to.
/// `truth` is N x d in the clustering's measurement space.
double intermediate_rmse_step(const Matrix& truth,
                              const cluster::Clustering& clustering);

/// Mean absolute error at one step: mean over nodes and resource
/// dimensions of |estimate - truth|. More robust than RMSE to the
/// occasional utilization spike; useful for operator-facing reports.
double mae_step(const Matrix& truth, const Matrix& estimate);

/// Per-node error magnitudes ||estimate_i - truth_i|| (the Euclidean norm
/// over resource dimensions), for hot-spot analysis: which machines does
/// the monitoring system track worst?
std::vector<double> per_node_error(const Matrix& truth,
                                   const Matrix& estimate);

}  // namespace resmon::core
