// Operator-facing snapshot of a running MonitoringPipeline: what the
// controller currently believes about the fleet, what it costs, and how
// its models are doing. This is the structure a dashboard or an alerting
// rule would consume.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace resmon::core {

/// State of one cluster in one clustering view.
struct ClusterSummary {
  std::size_t view = 0;     ///< resource index (per-resource clustering)
  std::size_t cluster = 0;  ///< j
  std::size_t size = 0;     ///< |C_{j,t}|
  double centroid = 0.0;    ///< c_{j,t} (first dimension of the view)
  double forecast_h1 = 0.0; ///< model's 1-step-ahead centroid forecast
  std::string model;        ///< forecaster name
  std::size_t fits = 0;     ///< retrainings completed
};

/// Full snapshot of the monitoring system.
struct MonitoringReport {
  std::size_t step = 0;           ///< last processed time step
  std::size_t num_nodes = 0;
  double average_frequency = 0.0; ///< fleet-average transmission frequency
  std::uint64_t bytes_sent = 0;   ///< uplink bytes so far
  std::uint64_t messages_dropped = 0;
  std::vector<ClusterSummary> clusters;

  /// Render as an aligned text block.
  void print(std::ostream& os) const;
};

/// Build a report from the pipeline's current state. Requires at least one
/// completed step (clustering available).
MonitoringReport make_report(const MonitoringPipeline& pipeline);

}  // namespace resmon::core
