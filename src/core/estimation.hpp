// Per-node spatial estimation pieces of §V-C, shared between the
// MonitoringPipeline and the clustering-baseline experiments:
//
//  * forecasted cluster membership — the cluster a node belonged to most
//    often within the last M'+1 steps;
//  * the per-node offset s-hat of eq. (12), with the alpha scaling that
//    keeps "centroid + offset" inside the node's own cluster.
#pragma once

#include <span>
#include <vector>

#include "cluster/dynamic_cluster.hpp"
#include "common/matrix.hpp"

namespace resmon::core {

/// Largest alpha in [0, 1] such that c_j + alpha * delta is still closest
/// to centroid j among all centroids. For each other centroid c_l the
/// boundary is the perpendicular bisector between c_j and c_l, giving
/// alpha <= ||c_l - c_j||^2 / (2 delta . (c_l - c_j)) whenever delta points
/// toward c_l.
double alpha_scale(std::span<const double> delta, const Matrix& centroids,
                   std::size_t j);

/// Rolling window of (clustering, stored-snapshot) pairs that answers the
/// two per-node questions above. Push once per time step, newest first.
class OffsetTracker {
 public:
  /// `m_prime` is M' (the paper's look-back, default 5); `k` the number of
  /// clusters. `use_alpha` applies the eq. (12) alpha scaling (disable for
  /// the ablation in bench/ablation_offset).
  OffsetTracker(std::size_t m_prime, std::size_t k, bool use_alpha = true);

  /// Record this step's clustering and the snapshot it was computed from
  /// (snapshot rows must be in the same measurement space as the
  /// clustering's centroids).
  void push(const cluster::Clustering& clustering, const Matrix& snapshot);

  std::size_t steps() const { return ring_size_; }
  bool empty() const { return ring_size_ == 0; }

  /// C-hat membership: the cluster `node` belonged to most often over the
  /// last min(M'+1, steps()) steps (ties break to the smaller index).
  std::size_t modal_cluster(std::size_t node) const;

  /// s-hat of eq. (12) for `node` relative to cluster `j`.
  std::vector<double> offset(std::size_t node, std::size_t j) const;

 private:
  struct Entry {
    cluster::Clustering clustering;
    Matrix snapshot;
  };

  /// Entry `age` steps back (0 = most recent). Requires age < steps().
  const Entry& entry(std::size_t age) const {
    return ring_[(ring_head_ + age) % ring_.size()];
  }

  std::size_t m_prime_;
  std::size_t k_;
  bool use_alpha_;
  // Fixed ring of the last M'+1 entries, newest at ring_head_; buffers are
  // recycled in place so push() allocates nothing at steady state.
  std::vector<Entry> ring_;
  std::size_t ring_head_ = 0;
  std::size_t ring_size_ = 0;
};

}  // namespace resmon::core
