#include "core/report.hpp"

#include <ostream>

#include "common/table.hpp"
#include "trace/trace.hpp"

namespace resmon::core {

MonitoringReport make_report(const MonitoringPipeline& pipeline) {
  RESMON_REQUIRE(pipeline.current_step() >= 1,
                 "make_report before any pipeline step");
  MonitoringReport report;
  report.step = pipeline.current_step() - 1;
  report.num_nodes = pipeline.trace().num_nodes();
  report.average_frequency =
      pipeline.collector().average_actual_frequency();
  report.bytes_sent = pipeline.collector().link().bytes_sent();
  report.messages_dropped =
      pipeline.collector().link().messages_dropped();

  const std::size_t k = pipeline.options().num_clusters;
  for (std::size_t v = 0; v < pipeline.num_views(); ++v) {
    const cluster::Clustering& clustering = pipeline.tracker(v).history(0);
    std::vector<std::size_t> sizes(k, 0);
    for (const std::size_t a : clustering.assignment) ++sizes[a];
    for (std::size_t j = 0; j < k; ++j) {
      ClusterSummary summary;
      summary.view = v;
      summary.cluster = j;
      summary.size = sizes[j];
      summary.centroid = clustering.centroids(j, 0);
      const forecast::ManagedForecaster& model = pipeline.model(v, j);
      summary.forecast_h1 = model.forecast(1);
      summary.model =
          model.ready() ? model.model().name() : "(collecting)";
      summary.fits = model.fits_completed();
      report.clusters.push_back(std::move(summary));
    }
  }
  return report;
}

void MonitoringReport::print(std::ostream& os) const {
  os << "monitoring report @ step " << step << ": " << num_nodes
     << " nodes, avg transmission frequency " << average_frequency << ", "
     << bytes_sent << " bytes on the wire";
  if (messages_dropped > 0) {
    os << " (" << messages_dropped << " messages lost)";
  }
  os << "\n";
  Table table({"resource", "cluster", "nodes", "centroid", "forecast h+1",
               "model", "fits"});
  for (const ClusterSummary& c : clusters) {
    table.add_row({trace::resource_name(c.view),
                   static_cast<double>(c.cluster + 1),
                   static_cast<double>(c.size), c.centroid, c.forecast_h1,
                   c.model, static_cast<double>(c.fits)});
  }
  table.print(os);
}

}  // namespace resmon::core
