#include "core/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "faultnet/faulty_link.hpp"
#include "net/loopback.hpp"

namespace resmon::core {

MonitoringPipeline::MonitoringPipeline(const trace::Trace& trace,
                                       const PipelineOptions& options)
    : MonitoringPipeline(trace, options, /*external=*/false) {}

MonitoringPipeline::MonitoringPipeline(const trace::Trace& trace,
                                       const PipelineOptions& options,
                                       ExternalCollection)
    : MonitoringPipeline(trace, options, /*external=*/true) {}

MonitoringPipeline::MonitoringPipeline(const trace::Trace& trace,
                                       const PipelineOptions& options,
                                       bool external)
    : trace_(trace), options_(options) {
  RESMON_REQUIRE(options.num_clusters >= 1 &&
                     options.num_clusters <= trace.num_nodes(),
                 "K must be in [1, N]");
  RESMON_REQUIRE(options.temporal_window >= 1,
                 "temporal window must be >= 1");
  RESMON_REQUIRE(options.similarity_lookback >= 1, "M must be >= 1");

  // A channel seed of 0 means "unset": derive it from the pipeline seed so
  // two pipelines with different seeds do not share identical drop/delay
  // realizations (see ChannelOptions::seed in transport/channel.hpp).
  if (options_.channel.seed == 0) {
    options_.channel.seed =
        options_.seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL;
  }

  const std::size_t threads =
      options_.num_threads == 0
          ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
          : options_.num_threads;
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);

  if (options_.metrics != nullptr) {
    registry_ = options_.metrics;
  } else {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry_ = owned_registry_.get();
  }
  const char* stage_help =
      "Wall-clock seconds spent in this stage since the last run() began";
  stage_collect_ = &registry_->gauge("resmon_pipeline_stage_seconds",
                                     stage_help, {{"stage", "collect"}});
  stage_cluster_ = &registry_->gauge("resmon_pipeline_stage_seconds",
                                     stage_help, {{"stage", "cluster"}});
  stage_forecast_ = &registry_->gauge("resmon_pipeline_stage_seconds",
                                      stage_help, {{"stage", "forecast"}});
  steps_total_ = &registry_->counter("resmon_pipeline_steps_total",
                                     "Time slots processed (incl. warm-up)");
  warmup_total_ = &registry_->counter(
      "resmon_pipeline_warmup_slots_total",
      "Slots skipped because the central store was still incomplete");

  if (external) {
    // Measurements arrive from other processes via step_external(); the
    // pipeline only owns the central node's view of them.
    external_store_ = std::make_unique<transport::CentralStore>(
        trace.num_nodes(), trace.num_resources());
  } else {
    // The in-process uplink runs the real wire codec (LoopbackLink), so
    // every deterministic run exercises the exact encode/decode path the
    // TCP runtime uses and bandwidth counts real frame bytes. A non-empty
    // fault schedule layers the chaos harness on top of it.
    std::unique_ptr<transport::Link> link =
        std::make_unique<net::LoopbackLink>(options_.channel);
    if (!options_.faults.empty()) {
      link = std::make_unique<faultnet::FaultyLink>(
          options_.faults, std::move(link), registry_);
    }
    collector_ = std::make_unique<collect::FleetCollector>(
        trace,
        collect::make_policy_factory(options.policy, options.max_frequency,
                                     options.v0, options.gamma,
                                     options.clamp_queue, registry_),
        options_.channel, pool_.get(), std::move(link), registry_);
  }

  const std::size_t views =
      options.cluster_per_resource ? trace.num_resources() : 1;
  snapshot_capacity_ = options.temporal_window;

  cluster::DynamicClusterOptions copts;
  copts.k = options.num_clusters;
  copts.history_m = options.similarity_lookback;
  copts.similarity = options.similarity;
  copts.reindex = options.reindex_clusters;
  copts.history_capacity = std::max(
      {options.similarity_lookback, options.offset_lookback + 1,
       std::size_t{16}});
  copts.kmeans.pool = pool_.get();
  copts.metrics = registry_;

  trackers_.reserve(views);
  offsets_.reserve(views);
  models_.resize(views);
  snapshot_ring_.resize(views);
  for (std::size_t v = 0; v < views; ++v) {
    snapshot_ring_[v].resize(snapshot_capacity_);
  }
  if (options.temporal_window > 1) features_scratch_.resize(views);
  for (std::size_t v = 0; v < views; ++v) {
    cluster::DynamicClusterOptions vopts = copts;
    vopts.metrics_view = std::to_string(v);
    trackers_.emplace_back(vopts, options.seed + 1000 * (v + 1));
    offsets_.emplace_back(options.offset_lookback, options.num_clusters,
                          options.offset_alpha);
    const std::size_t dims = view_dims();
    models_[v].reserve(options.num_clusters * dims);
    for (std::size_t j = 0; j < options.num_clusters; ++j) {
      for (std::size_t dim = 0; dim < dims; ++dim) {
        models_[v].push_back(std::make_unique<forecast::ManagedForecaster>(
            forecast::make_forecaster(
                options.forecaster,
                options.seed + 7919 * (v + 1) + 31 * j + dim),
            options.schedule, registry_,
            "v" + std::to_string(v) + ".c" + std::to_string(j) + ".d" +
                std::to_string(dim)));
      }
    }
  }
}

StageTimers MonitoringPipeline::stage_timers() const {
  return StageTimers{.collect_seconds = stage_collect_->value(),
                     .cluster_seconds = stage_cluster_->value(),
                     .forecast_seconds = stage_forecast_->value()};
}

void MonitoringPipeline::view_snapshot_into(std::size_t view,
                                            Matrix& snap) const {
  const transport::CentralStore& store = this->store();
  const std::size_t n = trace_.num_nodes();
  if (options_.cluster_per_resource) {
    snap.resize(n, 1);
    for (std::size_t i = 0; i < n; ++i) snap(i, 0) = store.stored(i)[view];
    return;
  }
  snap.resize(n, trace_.num_resources());
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<double>& z = store.stored(i);
    for (std::size_t r = 0; r < z.size(); ++r) snap(i, r) = z[r];
  }
}

Matrix MonitoringPipeline::view_truth(std::size_t view, std::size_t t) const {
  const std::size_t n = trace_.num_nodes();
  if (options_.cluster_per_resource) {
    Matrix truth(n, 1);
    for (std::size_t i = 0; i < n; ++i) {
      truth(i, 0) = trace_.value(i, t, view);
    }
    return truth;
  }
  Matrix truth(n, trace_.num_resources());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t r = 0; r < trace_.num_resources(); ++r) {
      truth(i, r) = trace_.value(i, t, r);
    }
  }
  return truth;
}

void MonitoringPipeline::view_features_into(std::size_t view,
                                            Matrix& features) const {
  const std::size_t w = options_.temporal_window;
  const std::size_t n = trace_.num_nodes();
  const std::size_t vd = view_dims();
  features.resize(n, vd * w);
  for (std::size_t slot = 0; slot < w; ++slot) {
    // slot 0 = most recent snapshot; pad older slots with the oldest
    // available snapshot during warm-up.
    const Matrix& snap = snapshot(view, std::min(slot, snap_size_ - 1));
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t c = 0; c < vd; ++c) {
        features(i, slot * vd + c) = snap(i, c);
      }
    }
  }
}

Matrix MonitoringPipeline::view_features(std::size_t view) const {
  Matrix features;
  view_features_into(view, features);
  return features;
}

void MonitoringPipeline::update_view(std::size_t view) {
  // The ring indices were advanced in finish_step(); fill this view's slot.
  Matrix& values = snapshot_ring_[view][snap_head_];
  view_snapshot_into(view, values);

  const cluster::Clustering* clustering = nullptr;
  if (options_.temporal_window == 1) {
    clustering = &trackers_[view].update(values);
  } else {
    Matrix& features = features_scratch_[view];
    view_features_into(view, features);
    clustering = &trackers_[view].update(features, values);
  }
  offsets_[view].push(*clustering, values);
}

void MonitoringPipeline::step() {
  RESMON_REQUIRE(collector_ != nullptr,
                 "step() needs in-process collection; use step_external()");
  RESMON_REQUIRE(!done(), "pipeline already consumed the whole trace");
  const std::size_t t = step_count_;

  {
    obs::ScopedSpan span(options_.trace_events, "pipeline.collect",
                         stage_collect_);
    collector_->step(t);
  }
  finish_step();
}

void MonitoringPipeline::step_external(
    std::span<const transport::MeasurementMessage> messages) {
  RESMON_REQUIRE(external_store_ != nullptr,
                 "step_external() requires the ExternalCollection mode");
  RESMON_REQUIRE(!done(), "pipeline already consumed the whole trace");
  {
    obs::ScopedSpan span(options_.trace_events, "pipeline.collect",
                         stage_collect_);
    for (const transport::MeasurementMessage& m : messages) {
      external_store_->apply(m);
    }
  }
  finish_step();
}

void MonitoringPipeline::finish_step() {
  if (!store().complete()) {
    // Warm-up: with a lossy/delayed uplink the central node may not have
    // heard from every machine yet; keep collecting until it has. (Every
    // built-in policy transmits at t = 0, so on a reliable link this never
    // lasts beyond the first step.)
    warmup_total_->inc();
    steps_total_->inc();
    ++step_count_;
    return;
  }

  // Each view owns its tracker, offset window and snapshot history (and its
  // own RNG inside the tracker), so views update in parallel; a view's
  // nested K-means parallel loops fall through to the same pool. Chunk
  // grain 1 = one task per view.
  {
    obs::ScopedSpan span(options_.trace_events, "pipeline.cluster",
                         stage_cluster_);
    // Advance the shared snapshot ring once; update_view fills the slots.
    snap_head_ = (snap_head_ + snapshot_capacity_ - 1) % snapshot_capacity_;
    if (snap_size_ < snapshot_capacity_) ++snap_size_;
    run_chunked(pool_.get(), trackers_.size(), 1,
                [&](std::size_t, std::size_t begin, std::size_t end) {
                  for (std::size_t v = begin; v < end; ++v) update_view(v);
                });
  }

  // Every (view, cluster, dim) forecaster is an independent model fed from
  // the clustering finished above; retrains run in parallel, one task per
  // model. All models share one schedule and history length, so steps where
  // nothing retrains (the overwhelming majority) skip the pool entirely —
  // observe() is then just a push + transient update, far cheaper than a
  // parallel-region launch.
  {
    obs::ScopedSpan span(options_.trace_events, "pipeline.forecast",
                         stage_forecast_);
    const std::size_t dims = view_dims();
    const std::size_t per_view = options_.num_clusters * dims;
    ThreadPool* pool =
        models_[0][0]->next_observe_retrains() ? pool_.get() : nullptr;
    run_chunked(pool, trackers_.size() * per_view, 1,
                [&](std::size_t, std::size_t begin, std::size_t end) {
                  for (std::size_t m = begin; m < end; ++m) {
                    const std::size_t v = m / per_view;
                    const std::size_t idx = m % per_view;
                    const cluster::Clustering& clustering =
                        trackers_[v].history(0);
                    models_[v][idx]->observe(
                        clustering.centroids(idx / dims, idx % dims));
                  }
                });
  }
  steps_total_->inc();
  ++step_count_;
}

void MonitoringPipeline::run(std::size_t count) {
  stage_collect_->set(0.0);
  stage_cluster_->set(0.0);
  stage_forecast_->set(0.0);
  for (std::size_t i = 0; i < count && !done(); ++i) step();
}

Matrix MonitoringPipeline::forecast_all(std::size_t h) const {
  RESMON_REQUIRE(step_count_ >= 1, "forecast_all before any step");
  const std::size_t n = trace_.num_nodes();
  const std::size_t d = trace_.num_resources();
  Matrix out(n, d);

  if (h == 0) {
    const transport::CentralStore& store = this->store();
    for (std::size_t i = 0; i < n; ++i) {
      const std::vector<double>& z = store.stored(i);
      for (std::size_t r = 0; r < d; ++r) out(i, r) = z[r];
    }
    return out;
  }

  const std::size_t dims = view_dims();
  for (std::size_t v = 0; v < trackers_.size(); ++v) {
    // Forecasted centroids for every cluster of this view.
    Matrix c_hat(options_.num_clusters, dims);
    for (std::size_t j = 0; j < options_.num_clusters; ++j) {
      for (std::size_t dim = 0; dim < dims; ++dim) {
        c_hat(j, dim) = models_[v][j * dims + dim]->forecast(h);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j = offsets_[v].modal_cluster(i);
      const std::vector<double> offset =
          options_.use_offset ? offsets_[v].offset(i, j)
                              : std::vector<double>(dims, 0.0);
      for (std::size_t dim = 0; dim < dims; ++dim) {
        const double value = c_hat(j, dim) + offset[dim];
        const std::size_t r = options_.cluster_per_resource ? v : dim;
        out(i, r) = value;
      }
    }
  }
  return out;
}

double MonitoringPipeline::rmse_at(std::size_t h) const {
  RESMON_REQUIRE(step_count_ >= 1, "rmse_at before any step");
  const std::size_t t_last = step_count_ - 1;
  RESMON_REQUIRE(t_last + h < trace_.num_steps(),
                 "rmse_at: t + h beyond end of trace");
  const std::size_t n = trace_.num_nodes();
  const std::size_t d = trace_.num_resources();
  Matrix truth(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t r = 0; r < d; ++r) {
      truth(i, r) = trace_.value(i, t_last + h, r);
    }
  }
  return rmse_step(truth, forecast_all(h));
}

double MonitoringPipeline::intermediate_rmse() const {
  RESMON_REQUIRE(step_count_ >= 1, "intermediate_rmse before any step");
  const std::size_t t_last = step_count_ - 1;
  const std::size_t n = trace_.num_nodes();
  double total = 0.0;
  for (std::size_t v = 0; v < trackers_.size(); ++v) {
    const Matrix truth = view_truth(v, t_last);
    const cluster::Clustering& clustering = trackers_[v].history(0);
    for (std::size_t i = 0; i < n; ++i) {
      total += squared_distance(
          truth.row(i), clustering.centroids.row(clustering.assignment[i]));
    }
  }
  return std::sqrt(total / static_cast<double>(n));
}

double MonitoringPipeline::intermediate_rmse(std::size_t view,
                                             std::size_t dim) const {
  RESMON_REQUIRE(step_count_ >= 1, "intermediate_rmse before any step");
  RESMON_REQUIRE(view < trackers_.size(), "view index out of range");
  RESMON_REQUIRE(dim < view_dims(), "dimension index out of range");
  const std::size_t t_last = step_count_ - 1;
  const std::size_t n = trace_.num_nodes();
  const cluster::Clustering& clustering = trackers_[view].history(0);
  const std::size_t resource = options_.cluster_per_resource ? view : dim;
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double err =
        trace_.value(i, t_last, resource) -
        clustering.centroids(clustering.assignment[i], dim);
    total += err * err;
  }
  return std::sqrt(total / static_cast<double>(n));
}

const collect::FleetCollector& MonitoringPipeline::collector() const {
  if (collector_ == nullptr) {
    throw InvalidState(
        "MonitoringPipeline: no in-process collector in "
        "external-collection mode");
  }
  return *collector_;
}

const cluster::DynamicClusterTracker& MonitoringPipeline::tracker(
    std::size_t view) const {
  RESMON_REQUIRE(view < trackers_.size(), "view index out of range");
  return trackers_[view];
}

const forecast::ManagedForecaster& MonitoringPipeline::model(
    std::size_t view, std::size_t j, std::size_t dim) const {
  RESMON_REQUIRE(view < models_.size(), "view index out of range");
  const std::size_t dims = view_dims();
  RESMON_REQUIRE(j < options_.num_clusters && dim < dims,
                 "model index out of range");
  return *models_[view][j * dims + dim];
}

}  // namespace resmon::core
