// Frame layout constants and size arithmetic of the resmon wire protocol.
//
// This header is self-contained (no dependencies beyond <cstdint>) so that
// lower layers — notably transport::MeasurementMessage::wire_size() — can
// share the exact byte counts of the real protocol without linking against
// resmon_net. That is also why it lives in transport/ rather than net/:
// net depends on transport, and the lint layering DAG
// (tools/lint_layers.txt) forbids the reverse include. The declarations
// keep the resmon::net::wire namespace because they describe the wire
// protocol; the encoder/decoder live in net/wire.hpp.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   ------  ----  -----------------------------------------------
//        0     4  magic        "RMON" (0x52 0x4D 0x4F 0x4E on the wire)
//        4     1  version      protocol version (currently 1)
//        5     1  type         FrameType
//        6     2  reserved     must be zero
//        8     4  payload_len  bytes of payload that follow the header
//       12     4  crc32        CRC-32 (IEEE) of the payload bytes
//       16     -  payload      type-specific, payload_len bytes
//
// Versioning rules: the header layout itself never changes. A decoder
// accepts exactly the versions it knows (currently only 1) and rejects
// frames from the future with WireError::kUnsupportedVersion; adding fields
// to a payload requires a version bump, while new frame types may be added
// within a version (old decoders reject them as kUnknownFrameType and drop
// the connection rather than misparse).
#pragma once

#include <cstddef>
#include <cstdint>

namespace resmon::net::wire {

/// First four bytes of every frame: 'R' 'M' 'O' 'N'.
inline constexpr std::uint32_t kMagic = 0x4E4F4D52u;  // "RMON" little-endian

/// Protocol version this build speaks.
inline constexpr std::uint8_t kProtocolVersion = 1;

/// Fixed frame header size in bytes.
inline constexpr std::size_t kHeaderSize = 16;

/// Upper bound a decoder enforces on payload_len before buffering anything.
/// Generous for measurement frames (a 1 MiB payload holds a ~131k-resource
/// measurement) while keeping a malicious length field from driving
/// allocation.
inline constexpr std::size_t kMaxPayloadSize = std::size_t{1} << 20;

/// Frame types of protocol version 1. The shard frames (5-7) were added
/// within the version per the rules above: a pre-aggregator decoder rejects
/// them as kUnknownFrameType instead of misparsing.
enum class FrameType : std::uint8_t {
  kHello = 1,        ///< agent -> collector: node id + dimensionality
  kHelloAck = 2,     ///< collector -> peer: accept/reject a hello
  kMeasurement = 3,  ///< agent -> collector: one MeasurementMessage
  kHeartbeat = 4,    ///< agent -> collector: liveness + slot progress
  kShardHello = 5,   ///< aggregator -> root: shard id + owned node range
  kSlotSummary = 6,  ///< aggregator -> root: one compacted slot of a shard
  kShardStatus = 7,  ///< aggregator -> root: shard staleness census
};

/// Total frame size for a given payload size.
constexpr std::size_t frame_size(std::size_t payload_size) {
  return kHeaderSize + payload_size;
}

/// Payload of a measurement frame: node (u32) + step (u64) + value count
/// (u32) + count IEEE-754 doubles.
constexpr std::size_t measurement_payload_size(std::size_t num_values) {
  return 4 + 8 + 4 + 8 * num_values;
}

/// Encoded size of a whole measurement frame — the single source of truth
/// for bandwidth accounting (transport::MeasurementMessage::wire_size()
/// delegates here, and net/wire.cpp's encoder produces exactly this many
/// bytes).
constexpr std::size_t measurement_frame_size(std::size_t num_values) {
  return frame_size(measurement_payload_size(num_values));
}

/// Payload of a hello frame: node (u32) + num_resources (u32).
inline constexpr std::size_t kHelloPayloadSize = 8;

/// Payload of a hello-ack frame: node (u32) + accepted (u8) + reason (u8) +
/// speaker_version (u8) + reserved (u8). speaker_version carries the acking
/// peer's kProtocolVersion so rejection logs can name both sides; it
/// occupies a formerly reserved-zero byte, so acks from older builds decode
/// as speaker_version 0 ("unreported") rather than misparse.
inline constexpr std::size_t kHelloAckPayloadSize = 8;

/// Payload of a heartbeat frame: node (u32) + step (u64).
inline constexpr std::size_t kHeartbeatPayloadSize = 12;

/// Payload of a shard hello: shard (u32) + first_node (u32) + num_nodes
/// (u32) + num_resources (u32) + protocol (u32). The explicit protocol
/// field lets the root reject a version skew with a named HelloAck reason
/// instead of a bare decoder drop.
inline constexpr std::size_t kShardHelloPayloadSize = 20;

/// Fixed prefix of a slot-summary payload: shard (u32) + step (u64) +
/// degraded (u32) + num_resources (u32) + count (u32); `count` entries of
/// (node u32 + num_resources IEEE-754 doubles) follow.
inline constexpr std::size_t kSlotSummaryHeaderSize = 24;

/// Total slot-summary payload for `count` measurements of dimension d.
constexpr std::size_t slot_summary_payload_size(std::size_t count,
                                                std::size_t num_resources) {
  return kSlotSummaryHeaderSize + count * (4 + 8 * num_resources);
}

/// Payload of a shard status frame: shard (u32) + live (u32) + stale (u32)
/// + dead (u32).
inline constexpr std::size_t kShardStatusPayloadSize = 16;

}  // namespace resmon::net::wire
