// In-process transport between local nodes and the central controller.
//
// The paper's system is a star topology: every machine may push its latest
// measurement to the controller each slot. Channel simulates that link and
// accounts for messages/bytes so experiments can report the communication
// cost a transmission policy actually incurs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "transport/wire_format.hpp"
#include "transport/link.hpp"

namespace resmon::transport {

/// One uplink message: node i's measurement x_{i,t}.
struct MeasurementMessage {
  std::size_t node = 0;
  std::size_t step = 0;
  std::vector<double> values;

  /// Serialized size used for bandwidth accounting: the exact byte count of
  /// this message as one wire-protocol frame (header + payload; layout in
  /// transport/wire_format.hpp). net::wire::encode() produces exactly this many
  /// bytes, so simulated and real transports report identical bandwidth.
  std::size_t wire_size() const {
    return net::wire::measurement_frame_size(values.size());
  }
};

/// Failure-injection knobs for the uplink. Defaults model a reliable
/// in-order link; drops/delays simulate a congested or flaky network.
struct ChannelOptions {
  /// Probability that a sent message is lost. Lost messages still consume
  /// uplink bandwidth (the sender paid for the transmission).
  double drop_probability = 0.0;
  /// Maximum extra delivery delay, in drain() slots; each message gets a
  /// uniform delay in [0, max_delay_slots], so messages can arrive out of
  /// order.
  std::size_t max_delay_slots = 0;
  /// Seed of the drop/delay RNG. 0 means "unset": a Channel constructed
  /// directly uses it literally, but MonitoringPipeline replaces an unset
  /// seed with one derived from PipelineOptions::seed, so two pipelines
  /// with different seeds never share identical drop/delay realizations.
  /// Set any nonzero value to pin the channel RNG independently of the
  /// pipeline seed.
  std::uint64_t seed = 0;
};

/// In-process message channel with traffic accounting and optional
/// drop/delay failure injection.
class Channel final : public Link {
 public:
  Channel() = default;
  explicit Channel(const ChannelOptions& options);

  /// Enqueue a message for delivery to the central node.
  void send(MeasurementMessage message) override;

  /// Deliver the messages due this slot (the central node drains the
  /// channel once per time slot; delayed messages surface later).
  std::vector<MeasurementMessage> drain() override;

  std::size_t pending() const override { return queue_.size(); }
  std::uint64_t messages_sent() const override { return messages_sent_; }
  std::uint64_t bytes_sent() const override { return bytes_sent_; }
  std::uint64_t messages_dropped() const override {
    return messages_dropped_;
  }

 private:
  struct InFlight {
    MeasurementMessage message;
    std::size_t slots_remaining = 0;
  };

  ChannelOptions options_;
  Rng rng_;
  std::deque<InFlight> queue_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t messages_dropped_ = 0;
};

/// The central node's view of the system: z_t of §IV — the most recent
/// measurement received from each node, with its age.
class CentralStore {
 public:
  CentralStore(std::size_t num_nodes, std::size_t num_resources);

  /// Record a received measurement. Messages may arrive out of order after
  /// delays; stale messages (older than what is stored) are ignored.
  void apply(const MeasurementMessage& message);

  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t num_resources() const { return num_resources_; }

  /// True once at least one measurement has been received from `node`.
  bool has(std::size_t node) const { return last_step_[node] >= 0; }

  /// True once every node has reported at least once.
  bool complete() const;

  /// z_{i,t}: the stored measurement for `node`. Requires has(node).
  const std::vector<double>& stored(std::size_t node) const;

  /// Time step of the stored measurement. Requires has(node).
  std::size_t last_update_step(std::size_t node) const;

  /// Age of the stored measurement at `current_step` (p in §IV).
  std::size_t staleness(std::size_t node, std::size_t current_step) const;

  /// Scalar view: stored value of one resource for every node (the
  /// clustering input when clustering per-resource scalars).
  std::vector<double> resource_snapshot(std::size_t resource) const;

 private:
  std::size_t num_nodes_;
  std::size_t num_resources_;
  std::vector<std::vector<double>> values_;
  std::vector<long long> last_step_;  // -1 = nothing received yet
};

}  // namespace resmon::transport
