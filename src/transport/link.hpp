// Link: the uplink abstraction between local nodes and the controller.
//
// A Link carries MeasurementMessages from the fleet to the central node and
// accounts for the traffic it moved. Implementations:
//   - transport::Channel      — in-process deque with drop/delay injection
//                               (the deterministic simulation default);
//   - net::LoopbackLink       — Channel wrapped in the real wire codec, so
//                               deterministic runs exercise encode/decode;
//   - real sockets            — net::Agent / net::Controller move the same
//                               frames over TCP (they sit outside this
//                               interface because one controller serves many
//                               connections).
#pragma once

#include <cstdint>
#include <vector>

namespace resmon::transport {

struct MeasurementMessage;

/// Uplink seen from the simulation driver: nodes send, the central node
/// drains once per slot, and the link reports what the fleet paid for.
class Link {
 public:
  virtual ~Link() = default;

  /// Enqueue a message for delivery to the central node.
  virtual void send(MeasurementMessage message) = 0;

  /// Deliver the messages due this slot.
  virtual std::vector<MeasurementMessage> drain() = 0;

  /// Messages accepted but not yet delivered.
  virtual std::size_t pending() const = 0;

  /// Traffic accounting. bytes_sent() counts real encoded frame bytes
  /// (senders pay for dropped messages too).
  virtual std::uint64_t messages_sent() const = 0;
  virtual std::uint64_t bytes_sent() const = 0;
  virtual std::uint64_t messages_dropped() const = 0;
};

}  // namespace resmon::transport
