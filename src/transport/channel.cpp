#include "transport/channel.hpp"

namespace resmon::transport {

Channel::Channel(const ChannelOptions& options)
    : options_(options), rng_(options.seed) {
  RESMON_REQUIRE(options.drop_probability >= 0.0 &&
                     options.drop_probability <= 1.0,
                 "drop probability must be in [0,1]");
}

void Channel::send(MeasurementMessage message) {
  ++messages_sent_;
  bytes_sent_ += message.wire_size();
  if (options_.drop_probability > 0.0 &&
      rng_.bernoulli(options_.drop_probability)) {
    ++messages_dropped_;
    return;
  }
  std::size_t delay = 0;
  if (options_.max_delay_slots > 0) {
    delay = rng_.index(options_.max_delay_slots + 1);
  }
  queue_.push_back({std::move(message), delay});
}

std::vector<MeasurementMessage> Channel::drain() {
  std::vector<MeasurementMessage> out;
  std::deque<InFlight> still_in_flight;
  for (InFlight& entry : queue_) {
    if (entry.slots_remaining == 0) {
      out.push_back(std::move(entry.message));
    } else {
      --entry.slots_remaining;
      still_in_flight.push_back(std::move(entry));
    }
  }
  queue_ = std::move(still_in_flight);
  return out;
}

CentralStore::CentralStore(std::size_t num_nodes, std::size_t num_resources)
    : num_nodes_(num_nodes),
      num_resources_(num_resources),
      values_(num_nodes),
      last_step_(num_nodes, -1) {
  RESMON_REQUIRE(num_nodes > 0, "CentralStore needs at least one node");
  RESMON_REQUIRE(num_resources > 0,
                 "CentralStore needs at least one resource");
}

void CentralStore::apply(const MeasurementMessage& message) {
  RESMON_REQUIRE(message.node < num_nodes_,
                 "CentralStore: node index out of range");
  RESMON_REQUIRE(message.values.size() == num_resources_,
                 "CentralStore: measurement dimension mismatch");
  if (static_cast<long long>(message.step) <= last_step_[message.node] &&
      has(message.node)) {
    return;  // out-of-order duplicate; keep the fresher measurement
  }
  values_[message.node] = message.values;
  last_step_[message.node] = static_cast<long long>(message.step);
}

bool CentralStore::complete() const {
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    if (!has(i)) return false;
  }
  return true;
}

const std::vector<double>& CentralStore::stored(std::size_t node) const {
  RESMON_REQUIRE(node < num_nodes_, "CentralStore: node index out of range");
  if (!has(node)) {
    throw InvalidState("CentralStore: no measurement received from node " +
                       std::to_string(node));
  }
  return values_[node];
}

std::size_t CentralStore::last_update_step(std::size_t node) const {
  RESMON_REQUIRE(node < num_nodes_, "CentralStore: node index out of range");
  if (!has(node)) {
    throw InvalidState("CentralStore: no measurement received from node " +
                       std::to_string(node));
  }
  return static_cast<std::size_t>(last_step_[node]);
}

std::size_t CentralStore::staleness(std::size_t node,
                                    std::size_t current_step) const {
  const std::size_t last = last_update_step(node);
  RESMON_REQUIRE(current_step >= last,
                 "CentralStore: staleness query before last update");
  return current_step - last;
}

std::vector<double> CentralStore::resource_snapshot(
    std::size_t resource) const {
  RESMON_REQUIRE(resource < num_resources_,
                 "CentralStore: resource index out of range");
  std::vector<double> snap(num_nodes_);
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    snap[i] = stored(i)[resource];
  }
  return snap;
}

}  // namespace resmon::transport
