// K-means clustering (Lloyd's algorithm with k-means++ seeding).
//
// The paper's central node runs K-means on the stored measurements z_t at
// every time step (§V-B); this implementation supports arbitrary point
// dimension so the same code serves per-resource scalar clustering, joint
// full-vector clustering, temporal-window clustering (Fig. 5) and the
// offline whole-series baseline.
#pragma once

#include <cstddef>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace resmon {
class ThreadPool;
}

namespace resmon::cluster {

struct KMeansOptions {
  std::size_t max_iterations = 100;
  std::size_t restarts = 2;    ///< independent k-means++ restarts; best kept.
  double tolerance = 1e-10;    ///< stop when inertia improvement is below.
  /// Optional worker pool for the assignment and centroid-update loops.
  /// Results are bit-identical with and without a pool: the loops use a
  /// fixed chunk partition and merge per-chunk partials in chunk order
  /// (see common/thread_pool.hpp), and all RNG draws (seeding) stay on the
  /// calling thread. Non-owning; nullptr = serial.
  ThreadPool* pool = nullptr;
};

struct KMeansResult {
  std::vector<std::size_t> assignment;  ///< point index -> cluster in [0,k)
  Matrix centroids;                     ///< k x d
  double inertia = 0.0;                 ///< sum of squared distances
  std::size_t iterations = 0;           ///< Lloyd iterations of best restart
};

/// Cluster the rows of `points` (n x d) into k groups. Requires 1 <= k <= n.
/// Deterministic given the Rng state. Empty clusters are repaired by
/// stealing the point farthest from its centroid.
KMeansResult kmeans(const Matrix& points, std::size_t k, Rng& rng,
                    const KMeansOptions& options = {});

/// Mean of each cluster's member rows for an externally supplied assignment
/// (used to recompute centroids of baseline clusterings on fresh data).
/// Clusters with no members get a row of zeros and are reported in
/// `empty_out` when non-null.
Matrix centroids_of(const Matrix& points,
                    const std::vector<std::size_t>& assignment, std::size_t k,
                    std::vector<bool>* empty_out = nullptr);

/// Sum of squared distances from each row to its assigned centroid.
double inertia_of(const Matrix& points,
                  const std::vector<std::size_t>& assignment,
                  const Matrix& centroids);

}  // namespace resmon::cluster
