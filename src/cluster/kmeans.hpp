// K-means clustering (Lloyd's algorithm with k-means++ seeding).
//
// The paper's central node runs K-means on the stored measurements z_t at
// every time step (§V-B); this implementation supports arbitrary point
// dimension so the same code serves per-resource scalar clustering, joint
// full-vector clustering, temporal-window clustering (Fig. 5) and the
// offline whole-series baseline.
//
// The assignment and seeding scans run on the dispatchable SIMD kernels of
// common/kernels.hpp over a dimension-major (SoA) copy of the points; the
// scalar and SIMD paths are bit-identical (DESIGN.md "Memory layout & SIMD
// kernels"). Callers on the per-slot hot path pass a KMeansScratch via
// kmeans_into() so repeated runs perform no steady-state allocations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/soa.hpp"

namespace resmon {
class ThreadPool;
}

namespace resmon::cluster {

struct KMeansOptions {
  std::size_t max_iterations = 100;
  std::size_t restarts = 2;    ///< independent k-means++ restarts; best kept.
  double tolerance = 1e-10;    ///< stop when inertia improvement is below.
  /// Optional worker pool for the assignment and centroid-update loops.
  /// Results are bit-identical with and without a pool: the loops use a
  /// fixed chunk partition and merge per-chunk partials in chunk order
  /// (see common/thread_pool.hpp), and all RNG draws (seeding) stay on the
  /// calling thread. Non-owning; nullptr = serial. Regions smaller than an
  /// internal work threshold run serially even with a pool (identical
  /// results — only the execution venue changes).
  ThreadPool* pool = nullptr;
};

struct KMeansResult {
  std::vector<std::size_t> assignment;  ///< point index -> cluster in [0,k)
  Matrix centroids;                     ///< k x d
  double inertia = 0.0;                 ///< sum of squared distances
  std::size_t iterations = 0;           ///< Lloyd iterations of best restart
};

/// Reusable buffers for kmeans_into(): the SoA mirror of the points, the
/// per-point nearest-centroid scratch the kernels fill, per-chunk reduction
/// slots, and the runner-up restart result. Owned by long-lived callers
/// (DynamicClusterTracker) so the per-step path allocates nothing once
/// warm.
struct KMeansScratch {
  SoaMatrix soa;
  std::vector<double> best_d2;
  std::vector<std::uint32_t> best_j;
  std::vector<double> dist2;  ///< k-means++ seeding distances
  /// Per-chunk inertia partials, cache-line padded: adjacent chunks are
  /// reduced by different workers, and unpadded doubles false-share.
  struct alignas(64) PaddedDouble {
    double value = 0.0;
  };
  std::vector<PaddedDouble> chunk_inertia;
  std::vector<Matrix> chunk_sums;
  Matrix sums;  ///< chunk_sums merged in chunk order
  std::vector<std::vector<std::size_t>> chunk_counts;
  std::vector<std::size_t> counts;
  KMeansResult candidate;  ///< losing restart, kept for buffer reuse
};

/// Cluster the rows of `points` (n x d) into k groups. Requires 1 <= k <= n.
/// Deterministic given the Rng state. Empty clusters are repaired by
/// stealing the point farthest from its centroid.
KMeansResult kmeans(const Matrix& points, std::size_t k, Rng& rng,
                    const KMeansOptions& options = {});

/// Allocation-free variant: result buffers in `out` and every internal
/// buffer in `scratch` are reused across calls. Identical results to
/// kmeans().
void kmeans_into(const Matrix& points, std::size_t k, Rng& rng,
                 const KMeansOptions& options, KMeansScratch& scratch,
                 KMeansResult& out);

/// Mean of each cluster's member rows for an externally supplied assignment
/// (used to recompute centroids of baseline clusterings on fresh data).
/// Clusters with no members get a row of zeros and are reported in
/// `empty_out` when non-null.
Matrix centroids_of(const Matrix& points,
                    const std::vector<std::size_t>& assignment, std::size_t k,
                    std::vector<bool>* empty_out = nullptr);

/// In-place variant of centroids_of reusing the caller's buffers.
void centroids_of_into(const Matrix& points,
                       const std::vector<std::size_t>& assignment,
                       std::size_t k, std::vector<std::size_t>& counts,
                       Matrix& centroids, std::vector<bool>* empty_out);

/// Sum of squared distances from each row to its assigned centroid.
double inertia_of(const Matrix& points,
                  const std::vector<std::size_t>& assignment,
                  const Matrix& centroids);

}  // namespace resmon::cluster
