// Clustering quality metrics and cluster-count selection.
//
// The paper fixes K = 3 after the sweep of Fig. 7; a deployment needs to
// pick K without ground truth. This module provides the standard internal
// quality metrics (mean silhouette, Davies-Bouldin) and an elbow-style
// chooser over the K-means inertia curve, so operators can size the number
// of forecasting models from data.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/kmeans.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace resmon::cluster {

/// Mean silhouette coefficient of a clustering in [-1, 1]; higher is
/// better. Points in singleton clusters contribute 0, as is conventional.
/// Requires at least 2 clusters with members.
double silhouette(const Matrix& points,
                  const std::vector<std::size_t>& assignment, std::size_t k);

/// Davies-Bouldin index (>= 0); lower is better. Average over clusters of
/// the worst-case ratio (scatter_i + scatter_j) / centroid_distance_ij.
double davies_bouldin(const Matrix& points,
                      const std::vector<std::size_t>& assignment,
                      std::size_t k);

/// Result of a K sweep.
struct KSelection {
  std::size_t best_k = 1;
  std::vector<std::size_t> ks;        ///< candidate K values evaluated
  std::vector<double> inertias;       ///< K-means inertia per candidate
  std::vector<double> silhouettes;    ///< mean silhouette per candidate
};

/// Sweep K over [k_min, k_max] and pick the K with the best (largest) mean
/// silhouette; inertias are reported for elbow inspection. Deterministic
/// given the Rng state.
KSelection choose_k(const Matrix& points, std::size_t k_min,
                    std::size_t k_max, Rng& rng,
                    const KMeansOptions& options = {});

}  // namespace resmon::cluster
