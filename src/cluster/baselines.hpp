// Clustering baselines used in the paper's evaluation (§VI-C2, §VI-D2).
//
// * StaticClustering — an *offline* baseline: K-means over each node's
//   entire time series (assumed known in advance), yielding one fixed
//   cluster assignment for all time steps.
// * MinimumDistanceClustering — at each time step, K randomly selected
//   nodes act as "centroids" and the remaining nodes are mapped to the
//   nearest one; represents random-monitor approaches [6]-[10].
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/dynamic_cluster.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "trace/trace.hpp"

namespace resmon::cluster {

/// Offline baseline: nodes grouped once by K-means over their full series
/// of one resource. `at()` re-derives the measurement-space centroids for a
/// given snapshot while keeping the assignment fixed.
class StaticClustering {
 public:
  /// Cluster the full `resource` series of every node in `trace`.
  StaticClustering(const trace::Trace& trace, std::size_t resource,
                   std::size_t k, std::uint64_t seed);

  std::size_t k() const { return k_; }
  const std::vector<std::size_t>& assignment() const { return assignment_; }

  /// Clustering for the given snapshot (n x d): fixed assignment, centroids
  /// recomputed as the member means of the snapshot rows. Clusters that are
  /// empty in the static assignment keep a zero centroid.
  Clustering at(const Matrix& snapshot) const;

 private:
  std::size_t k_;
  std::vector<std::size_t> assignment_;
};

/// Random-monitor baseline: each call to at() picks K distinct random nodes,
/// uses their snapshot rows as centroids, and assigns every node to the
/// nearest selected node.
class MinimumDistanceClustering {
 public:
  MinimumDistanceClustering(std::size_t k, std::uint64_t seed);

  std::size_t k() const { return k_; }

  /// Produce this step's random-monitor clustering of the snapshot rows.
  Clustering at(const Matrix& snapshot);

 private:
  std::size_t k_;
  Rng rng_;
};

}  // namespace resmon::cluster
