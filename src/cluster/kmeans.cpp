#include "cluster/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/thread_pool.hpp"

namespace resmon::cluster {

namespace {

/// Fixed chunk grain of the parallel point loops. Determinism requires the
/// chunk partition to depend only on the point count, never on the thread
/// count, so this is a constant — do not derive it from pool size.
constexpr std::size_t kPointGrain = 256;

/// k-means++ seeding: first centroid uniform, then proportional to squared
/// distance from the nearest chosen centroid.
Matrix seed_centroids(const Matrix& points, std::size_t k, Rng& rng) {
  const std::size_t n = points.rows();
  const std::size_t d = points.cols();
  Matrix centroids(k, d);

  std::vector<double> dist2(n, std::numeric_limits<double>::max());
  std::size_t first = rng.index(n);
  for (std::size_t c = 0; c < d; ++c) centroids(0, c) = points(first, c);

  for (std::size_t j = 1; j < k; ++j) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d2 =
          squared_distance(points.row(i), centroids.row(j - 1));
      dist2[i] = std::min(dist2[i], d2);
      total += dist2[i];
    }
    std::size_t chosen = 0;
    if (total > 0.0) {
      double r = rng.uniform() * total;
      for (std::size_t i = 0; i < n; ++i) {
        r -= dist2[i];
        if (r <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng.index(n);  // all points coincide with chosen centroids
    }
    for (std::size_t c = 0; c < d; ++c) centroids(j, c) = points(chosen, c);
  }
  return centroids;
}

std::size_t nearest_centroid(const Matrix& centroids,
                             std::span<const double> point) {
  std::size_t best = 0;
  double best_d2 = std::numeric_limits<double>::max();
  for (std::size_t j = 0; j < centroids.rows(); ++j) {
    const double d2 = squared_distance(centroids.row(j), point);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = j;
    }
  }
  return best;
}

KMeansResult run_once(const Matrix& points, std::size_t k, Rng& rng,
                      const KMeansOptions& options) {
  const std::size_t n = points.rows();
  const std::size_t d = points.cols();

  KMeansResult result;
  result.centroids = seed_centroids(points, k, rng);
  result.assignment.assign(n, 0);

  double prev_inertia = std::numeric_limits<double>::max();
  std::vector<std::size_t> counts(k);

  // Per-chunk partial reductions of the two point loops. The partition is
  // fixed by kPointGrain, each chunk accumulates its slice in index order,
  // and the merges below walk chunks in order — so the floating-point
  // operation sequence is identical at every thread count.
  const std::size_t chunks = ThreadPool::num_chunks(n, kPointGrain);
  std::vector<double> chunk_inertia(chunks, 0.0);
  std::vector<Matrix> chunk_sums(chunks, Matrix(k, d));
  std::vector<std::vector<std::size_t>> chunk_counts(
      chunks, std::vector<std::size_t>(k, 0));

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Assignment step.
    run_chunked(options.pool, n, kPointGrain,
                [&](std::size_t c, std::size_t begin, std::size_t end) {
                  double local = 0.0;
                  for (std::size_t i = begin; i < end; ++i) {
                    const std::size_t j =
                        nearest_centroid(result.centroids, points.row(i));
                    result.assignment[i] = j;
                    local += squared_distance(result.centroids.row(j),
                                              points.row(i));
                  }
                  chunk_inertia[c] = local;
                });
    double inertia = 0.0;
    for (std::size_t c = 0; c < chunks; ++c) inertia += chunk_inertia[c];

    // Update step.
    run_chunked(options.pool, n, kPointGrain,
                [&](std::size_t c, std::size_t begin, std::size_t end) {
                  Matrix& local_sums = chunk_sums[c];
                  std::fill(local_sums.data().begin(),
                            local_sums.data().end(), 0.0);
                  std::vector<std::size_t>& local_counts = chunk_counts[c];
                  std::fill(local_counts.begin(), local_counts.end(), 0);
                  for (std::size_t i = begin; i < end; ++i) {
                    const std::size_t j = result.assignment[i];
                    ++local_counts[j];
                    axpy(1.0, points.row(i), local_sums.row(j));
                  }
                });
    Matrix sums(k, d);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t c = 0; c < chunks; ++c) {
      sums += chunk_sums[c];
      for (std::size_t j = 0; j < k; ++j) counts[j] += chunk_counts[c][j];
    }
    for (std::size_t j = 0; j < k; ++j) {
      if (counts[j] == 0) {
        // Empty cluster: seize the point farthest from its own centroid.
        std::size_t worst = 0;
        double worst_d2 = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double d2 = squared_distance(
              result.centroids.row(result.assignment[i]), points.row(i));
          if (d2 > worst_d2) {
            worst_d2 = d2;
            worst = i;
          }
        }
        result.assignment[worst] = j;
        for (std::size_t c = 0; c < d; ++c) {
          result.centroids(j, c) = points(worst, c);
        }
        continue;
      }
      for (std::size_t c = 0; c < d; ++c) {
        result.centroids(j, c) =
            sums(j, c) / static_cast<double>(counts[j]);
      }
    }

    if (prev_inertia - inertia < options.tolerance) {
      result.inertia = inertia;
      break;
    }
    prev_inertia = inertia;
    result.inertia = inertia;
  }
  return result;
}

}  // namespace

KMeansResult kmeans(const Matrix& points, std::size_t k, Rng& rng,
                    const KMeansOptions& options) {
  RESMON_REQUIRE(points.rows() > 0, "kmeans: no points");
  RESMON_REQUIRE(k >= 1 && k <= points.rows(),
                 "kmeans: k must be in [1, #points]");

  KMeansResult best;
  best.inertia = std::numeric_limits<double>::max();
  const std::size_t restarts = std::max<std::size_t>(1, options.restarts);
  for (std::size_t r = 0; r < restarts; ++r) {
    KMeansResult candidate = run_once(points, k, rng, options);
    if (candidate.inertia < best.inertia) best = std::move(candidate);
  }
  return best;
}

Matrix centroids_of(const Matrix& points,
                    const std::vector<std::size_t>& assignment, std::size_t k,
                    std::vector<bool>* empty_out) {
  RESMON_REQUIRE(assignment.size() == points.rows(),
                 "centroids_of: assignment size mismatch");
  Matrix centroids(k, points.cols());
  std::vector<std::size_t> counts(k, 0);
  for (std::size_t i = 0; i < points.rows(); ++i) {
    RESMON_REQUIRE(assignment[i] < k, "centroids_of: cluster out of range");
    ++counts[assignment[i]];
    axpy(1.0, points.row(i), centroids.row(assignment[i]));
  }
  if (empty_out != nullptr) empty_out->assign(k, false);
  for (std::size_t j = 0; j < k; ++j) {
    if (counts[j] == 0) {
      if (empty_out != nullptr) (*empty_out)[j] = true;
      continue;
    }
    for (std::size_t c = 0; c < points.cols(); ++c) {
      centroids(j, c) /= static_cast<double>(counts[j]);
    }
  }
  return centroids;
}

double inertia_of(const Matrix& points,
                  const std::vector<std::size_t>& assignment,
                  const Matrix& centroids) {
  RESMON_REQUIRE(assignment.size() == points.rows(),
                 "inertia_of: assignment size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < points.rows(); ++i) {
    s += squared_distance(centroids.row(assignment[i]), points.row(i));
  }
  return s;
}

}  // namespace resmon::cluster
