#include "cluster/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/kernels.hpp"
#include "common/thread_pool.hpp"

namespace resmon::cluster {

namespace {

/// Fixed chunk grain of the parallel point loops. Determinism requires the
/// chunk partition to depend only on the point count, never on the thread
/// count, so this is a constant — do not derive it from pool size.
constexpr std::size_t kPointGrain = 256;

/// Minimum n*k*d work per parallel region before a pool is worth waking:
/// below this, dispatch overhead exceeds the loop body and threads hurt
/// (the cluster_forecast_speedup < 1 anti-scaling documented in
/// docs/PERFORMANCE.md). The chunk partition is unchanged — only the
/// execution venue — so results stay bit-identical.
constexpr std::size_t kMinParallelWork = std::size_t{1} << 19;

ThreadPool* effective_pool(const KMeansOptions& options, std::size_t n,
                           std::size_t k, std::size_t d) {
  if (options.pool == nullptr) return nullptr;
  return n * k * d >= kMinParallelWork ? options.pool : nullptr;
}

/// k-means++ seeding: first centroid uniform, then proportional to squared
/// distance from the nearest chosen centroid. Distances run on the SoA
/// kernel; the RNG scan stays sequential on the calling thread.
void seed_centroids_into(const SoaMatrix& soa, std::size_t k, Rng& rng,
                         std::vector<double>& dist2, Matrix& centroids) {
  const std::size_t n = soa.rows();
  const std::size_t d = soa.cols();
  centroids.resize(k, d);

  dist2.assign(n, std::numeric_limits<double>::max());
  std::size_t first = rng.index(n);
  for (std::size_t c = 0; c < d; ++c) centroids(0, c) = soa(first, c);

  for (std::size_t j = 1; j < k; ++j) {
    kern::min_distance_update(soa.col_ptrs(), d, centroids.row(j - 1).data(),
                              0, n, dist2.data());
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) total += dist2[i];
    std::size_t chosen = 0;
    if (total > 0.0) {
      double r = rng.uniform() * total;
      for (std::size_t i = 0; i < n; ++i) {
        r -= dist2[i];
        if (r <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng.index(n);  // all points coincide with chosen centroids
    }
    for (std::size_t c = 0; c < d; ++c) centroids(j, c) = soa(chosen, c);
  }
}

void run_once_into(const Matrix& points, std::size_t k, Rng& rng,
                   const KMeansOptions& options, KMeansScratch& scratch,
                   KMeansResult& result) {
  const std::size_t n = points.rows();
  const std::size_t d = points.cols();
  ThreadPool* pool = effective_pool(options, n, k, d);
  const SoaMatrix& soa = scratch.soa;

  result.iterations = 0;
  seed_centroids_into(soa, k, rng, scratch.dist2, result.centroids);
  result.assignment.assign(n, 0);
  scratch.best_d2.resize(n);
  scratch.best_j.resize(n);

  double prev_inertia = std::numeric_limits<double>::max();
  scratch.counts.assign(k, 0);

  // Per-chunk partial reductions of the two point loops. The partition is
  // fixed by kPointGrain, each chunk accumulates its slice in index order,
  // and the merges below walk chunks in order — so the floating-point
  // operation sequence is identical at every thread count.
  const std::size_t chunks = ThreadPool::num_chunks(n, kPointGrain);
  scratch.chunk_inertia.resize(chunks);
  scratch.chunk_sums.resize(chunks);
  scratch.chunk_counts.resize(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    scratch.chunk_sums[c].resize(k, d);
    scratch.chunk_counts[c].assign(k, 0);
  }

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Assignment step: the kernel scans centroids in index order with a
    // strict `<`, so each point's winner and squared distance match the
    // scalar argmin bit for bit; the per-chunk inertia then sums the
    // already-computed best_d2 in point order (the same values the old
    // code recomputed with squared_distance).
    run_chunked(pool, n, kPointGrain,
                [&](std::size_t c, std::size_t begin, std::size_t end) {
                  kern::nearest_centroids(
                      soa.col_ptrs(), d, result.centroids.data().data(), k,
                      begin, end, scratch.best_j.data(),
                      scratch.best_d2.data());
                  double local = 0.0;
                  for (std::size_t i = begin; i < end; ++i) {
                    result.assignment[i] = scratch.best_j[i];
                    local += scratch.best_d2[i];
                  }
                  scratch.chunk_inertia[c].value = local;
                });
    double inertia = 0.0;
    for (std::size_t c = 0; c < chunks; ++c) {
      inertia += scratch.chunk_inertia[c].value;
    }

    // Update step: accumulation stays in point order (row-major reads are
    // already contiguous here), merged chunk by chunk.
    run_chunked(pool, n, kPointGrain,
                [&](std::size_t c, std::size_t begin, std::size_t end) {
                  Matrix& local_sums = scratch.chunk_sums[c];
                  std::fill(local_sums.data().begin(),
                            local_sums.data().end(), 0.0);
                  std::vector<std::size_t>& local_counts =
                      scratch.chunk_counts[c];
                  std::fill(local_counts.begin(), local_counts.end(), 0);
                  for (std::size_t i = begin; i < end; ++i) {
                    const std::size_t j = result.assignment[i];
                    ++local_counts[j];
                    axpy(1.0, points.row(i), local_sums.row(j));
                  }
                });
    Matrix& sums = scratch.sums;
    sums.resize(k, d);
    std::vector<std::size_t>& counts = scratch.counts;
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t c = 0; c < chunks; ++c) {
      sums += scratch.chunk_sums[c];
      for (std::size_t j = 0; j < k; ++j) {
        counts[j] += scratch.chunk_counts[c][j];
      }
    }
    for (std::size_t j = 0; j < k; ++j) {
      if (counts[j] == 0) {
        // Empty cluster: seize the point farthest from its own centroid.
        std::size_t worst = 0;
        double worst_d2 = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double d2 = squared_distance(
              result.centroids.row(result.assignment[i]), points.row(i));
          if (d2 > worst_d2) {
            worst_d2 = d2;
            worst = i;
          }
        }
        result.assignment[worst] = j;
        for (std::size_t c = 0; c < d; ++c) {
          result.centroids(j, c) = points(worst, c);
        }
        continue;
      }
      for (std::size_t c = 0; c < d; ++c) {
        result.centroids(j, c) =
            sums(j, c) / static_cast<double>(counts[j]);
      }
    }

    if (prev_inertia - inertia < options.tolerance) {
      result.inertia = inertia;
      break;
    }
    prev_inertia = inertia;
    result.inertia = inertia;
  }
}

}  // namespace

void kmeans_into(const Matrix& points, std::size_t k, Rng& rng,
                 const KMeansOptions& options, KMeansScratch& scratch,
                 KMeansResult& out) {
  RESMON_REQUIRE(points.rows() > 0, "kmeans: no points");
  RESMON_REQUIRE(k >= 1 && k <= points.rows(),
                 "kmeans: k must be in [1, #points]");

  scratch.soa.assign_from(points);
  const std::size_t restarts = std::max<std::size_t>(1, options.restarts);
  run_once_into(points, k, rng, options, scratch, out);
  for (std::size_t r = 1; r < restarts; ++r) {
    KMeansResult& candidate = scratch.candidate;
    run_once_into(points, k, rng, options, scratch, candidate);
    // Same winner the old `candidate.inertia < best.inertia` pick kept;
    // swapping (not copying) recycles the loser's buffers.
    if (candidate.inertia < out.inertia) std::swap(out, candidate);
  }
}

KMeansResult kmeans(const Matrix& points, std::size_t k, Rng& rng,
                    const KMeansOptions& options) {
  KMeansScratch scratch;
  KMeansResult out;
  kmeans_into(points, k, rng, options, scratch, out);
  return out;
}

void centroids_of_into(const Matrix& points,
                       const std::vector<std::size_t>& assignment,
                       std::size_t k, std::vector<std::size_t>& counts,
                       Matrix& centroids, std::vector<bool>* empty_out) {
  RESMON_REQUIRE(assignment.size() == points.rows(),
                 "centroids_of: assignment size mismatch");
  centroids.resize(k, points.cols());
  counts.assign(k, 0);
  for (std::size_t i = 0; i < points.rows(); ++i) {
    RESMON_REQUIRE(assignment[i] < k, "centroids_of: cluster out of range");
    ++counts[assignment[i]];
    axpy(1.0, points.row(i), centroids.row(assignment[i]));
  }
  if (empty_out != nullptr) empty_out->assign(k, false);
  for (std::size_t j = 0; j < k; ++j) {
    if (counts[j] == 0) {
      if (empty_out != nullptr) (*empty_out)[j] = true;
      continue;
    }
    for (std::size_t c = 0; c < points.cols(); ++c) {
      centroids(j, c) /= static_cast<double>(counts[j]);
    }
  }
}

Matrix centroids_of(const Matrix& points,
                    const std::vector<std::size_t>& assignment, std::size_t k,
                    std::vector<bool>* empty_out) {
  Matrix centroids;
  std::vector<std::size_t> counts;
  centroids_of_into(points, assignment, k, counts, centroids, empty_out);
  return centroids;
}

double inertia_of(const Matrix& points,
                  const std::vector<std::size_t>& assignment,
                  const Matrix& centroids) {
  RESMON_REQUIRE(assignment.size() == points.rows(),
                 "inertia_of: assignment size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < points.rows(); ++i) {
    s += squared_distance(centroids.row(assignment[i]), points.row(i));
  }
  return s;
}

}  // namespace resmon::cluster
