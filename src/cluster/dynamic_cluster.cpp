#include "cluster/dynamic_cluster.hpp"

#include <algorithm>

#include "cluster/hungarian.hpp"
#include "common/error.hpp"

namespace resmon::cluster {

DynamicClusterTracker::DynamicClusterTracker(
    const DynamicClusterOptions& options, std::uint64_t seed)
    : options_(options), rng_(seed), centroid_series_(options.k) {
  RESMON_REQUIRE(options.k >= 1, "tracker needs at least one cluster");
  RESMON_REQUIRE(options.history_m >= 1, "M must be at least 1");
  RESMON_REQUIRE(options.history_capacity >= options.history_m,
                 "history capacity must cover M");
  if (options_.metrics != nullptr) {
    const obs::Labels labels = {{"view", options_.metrics_view}};
    obs::MetricsRegistry& reg = *options_.metrics;
    updates_total_ = &reg.counter("resmon_cluster_updates_total",
                                  "Clustering steps processed", labels);
    kmeans_iterations_total_ =
        &reg.counter("resmon_cluster_kmeans_iterations_total",
                     "Lloyd iterations of the best K-means restart", labels);
    reassignments_total_ = &reg.counter(
        "resmon_cluster_reassignments_total",
        "Nodes whose stable cluster index changed vs. the previous step",
        labels);
    match_weight_ = &reg.gauge(
        "resmon_cluster_match_weight",
        "Total Hungarian matching weight of the last re-index, eq. (11)",
        labels);
    empty_clusters_ = &reg.gauge(
        "resmon_cluster_empty_clusters",
        "Clusters with no members after the last update (0 unless the "
        "K-means empty-cluster repair is defeated)",
        labels);
  }
}

Matrix DynamicClusterTracker::similarity_matrix(
    const std::vector<std::size_t>& fresh_assignment, std::size_t n) const {
  const std::size_t k = options_.k;
  // Nodes that stayed in cluster j throughout the last min(M, t-1) steps:
  // the intersection term of eq. (10).
  const std::size_t lookback = std::min(options_.history_m, history_.size());
  std::vector<bool> in_all(n * k, true);
  for (std::size_t m = 0; m < lookback; ++m) {
    const Clustering& past = history_[m];
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        if (past.assignment[i] != j) in_all[i * k + j] = false;
      }
    }
  }

  Matrix w(k, k);
  if (options_.similarity == SimilarityKind::kIntersection) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t kk = fresh_assignment[i];
      for (std::size_t j = 0; j < k; ++j) {
        if (in_all[i * k + j]) w(kk, j) += 1.0;
      }
    }
  } else {
    // Jaccard: |C'_k intersect I_j| / |C'_k union I_j|.
    Matrix inter(k, k);
    std::vector<double> fresh_size(k, 0.0);
    std::vector<double> hist_size(k, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t kk = fresh_assignment[i];
      fresh_size[kk] += 1.0;
      for (std::size_t j = 0; j < k; ++j) {
        if (in_all[i * k + j]) {
          hist_size[j] += 1.0;
          inter(kk, j) += 1.0;
        }
      }
    }
    for (std::size_t kk = 0; kk < k; ++kk) {
      for (std::size_t j = 0; j < k; ++j) {
        const double uni = fresh_size[kk] + hist_size[j] - inter(kk, j);
        w(kk, j) = uni > 0.0 ? inter(kk, j) / uni : 0.0;
      }
    }
  }
  return w;
}

const Clustering& DynamicClusterTracker::update(const Matrix& points) {
  return update(points, points);
}

const Clustering& DynamicClusterTracker::update(const Matrix& features,
                                                const Matrix& values) {
  RESMON_REQUIRE(features.rows() >= options_.k,
                 "need at least k points to cluster");
  RESMON_REQUIRE(features.rows() == values.rows(),
                 "features/values row count mismatch");
  if (!history_.empty()) {
    RESMON_REQUIRE(features.rows() == history_.front().assignment.size(),
                   "node count changed between updates");
  }

  const KMeansResult raw =
      kmeans(features, options_.k, rng_, options_.kmeans);

  Clustering final_clustering;
  final_clustering.assignment.resize(features.rows());

  // phi maps the raw K-means index k to the stable index j (eq. (11)).
  std::vector<std::size_t> phi(options_.k);
  if (history_.empty() || !options_.reindex) {
    for (std::size_t j = 0; j < options_.k; ++j) phi[j] = j;
    if (match_weight_ != nullptr) match_weight_->set(0.0);
  } else {
    const Matrix w = similarity_matrix(raw.assignment, features.rows());
    phi = max_weight_assignment(w);
    if (match_weight_ != nullptr) {
      match_weight_->set(assignment_value(w, phi));
    }
  }

  for (std::size_t i = 0; i < features.rows(); ++i) {
    final_clustering.assignment[i] = phi[raw.assignment[i]];
  }
  // Report centroids in measurement space (eq. (1)); K-means' empty-cluster
  // repair guarantees every cluster has at least one member.
  std::vector<bool> empty;
  final_clustering.centroids =
      centroids_of(values, final_clustering.assignment, options_.k, &empty);

  for (std::size_t j = 0; j < options_.k; ++j) {
    const auto row = final_clustering.centroids.row(j);
    centroid_series_[j].emplace_back(row.begin(), row.end());
  }

  if (updates_total_ != nullptr) {
    updates_total_->inc();
    kmeans_iterations_total_->inc(raw.iterations);
    empty_clusters_->set(static_cast<double>(
        std::count(empty.begin(), empty.end(), true)));
    if (!history_.empty()) {
      std::uint64_t moved = 0;
      const Clustering& prev = history_.front();
      for (std::size_t i = 0; i < final_clustering.assignment.size(); ++i) {
        if (final_clustering.assignment[i] != prev.assignment[i]) ++moved;
      }
      reassignments_total_->inc(moved);
    }
  }

  history_.push_front(std::move(final_clustering));
  if (history_.size() > options_.history_capacity) history_.pop_back();
  ++steps_;
  return history_.front();
}

const Clustering& DynamicClusterTracker::history(std::size_t age) const {
  RESMON_REQUIRE(age < history_.size(), "history age out of range");
  return history_[age];
}

const std::vector<std::vector<double>>& DynamicClusterTracker::centroid_series(
    std::size_t j) const {
  RESMON_REQUIRE(j < options_.k, "cluster index out of range");
  return centroid_series_[j];
}

std::vector<double> DynamicClusterTracker::centroid_series(
    std::size_t j, std::size_t dim) const {
  const auto& full = centroid_series(j);
  std::vector<double> out;
  out.reserve(full.size());
  for (const auto& v : full) {
    RESMON_REQUIRE(dim < v.size(), "centroid dimension out of range");
    out.push_back(v[dim]);
  }
  return out;
}

}  // namespace resmon::cluster
