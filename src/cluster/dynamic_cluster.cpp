#include "cluster/dynamic_cluster.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/kernels.hpp"

namespace resmon::cluster {

namespace {

/// Initial reservation (in steps) of each flat centroid series; growth
/// beyond it doubles, so allocations on the unbounded series are amortized
/// and absent from any bounded steady-state window.
constexpr std::size_t kSeriesReserveSteps = 1024;

}  // namespace

DynamicClusterTracker::DynamicClusterTracker(
    const DynamicClusterOptions& options, std::uint64_t seed)
    : options_(options),
      rng_(seed),
      ring_(options.history_capacity),
      series_(options.k) {
  RESMON_REQUIRE(options.k >= 1, "tracker needs at least one cluster");
  RESMON_REQUIRE(options.history_m >= 1, "M must be at least 1");
  RESMON_REQUIRE(options.history_capacity >= options.history_m,
                 "history capacity must cover M");
  if (options_.metrics != nullptr) {
    const obs::Labels labels = {{"view", options_.metrics_view}};
    obs::MetricsRegistry& reg = *options_.metrics;
    updates_total_ = &reg.counter("resmon_cluster_updates_total",
                                  "Clustering steps processed", labels);
    kmeans_iterations_total_ =
        &reg.counter("resmon_cluster_kmeans_iterations_total",
                     "Lloyd iterations of the best K-means restart", labels);
    reassignments_total_ = &reg.counter(
        "resmon_cluster_reassignments_total",
        "Nodes whose stable cluster index changed vs. the previous step",
        labels);
    match_weight_ = &reg.gauge(
        "resmon_cluster_match_weight",
        "Total Hungarian matching weight of the last re-index, eq. (11)",
        labels);
    empty_clusters_ = &reg.gauge(
        "resmon_cluster_empty_clusters",
        "Clusters with no members after the last update (0 unless the "
        "K-means empty-cluster repair is defeated)",
        labels);
  }
}

void DynamicClusterTracker::similarity_into(
    const std::vector<std::size_t>& fresh_assignment, std::size_t n) {
  const std::size_t k = options_.k;
  // Nodes that stayed in cluster j throughout the last min(M, t-1) steps:
  // the intersection term of eq. (10).
  const std::size_t lookback = std::min(options_.history_m, ring_size_);
  in_all_.assign(n * k, 1);
  for (std::size_t m = 0; m < lookback; ++m) {
    const Clustering& past = history(m);
    kern::history_mask(past.assignment.data(), k, 0, n, in_all_.data());
  }

  w_.resize(k, k);
  if (options_.similarity == SimilarityKind::kIntersection) {
    // Adds mask-as-0.0/1.0 unconditionally; bitwise identical to the old
    // branchy `if (in_all_[...]) w_ += 1.0` because counts + 0.0 == counts.
    kern::similarity_accumulate(fresh_assignment.data(), in_all_.data(), k, 0,
                                n, w_.data().data());
  } else {
    // Jaccard: |C'_k intersect I_j| / |C'_k union I_j|.
    Matrix& inter = jaccard_inter_;
    inter.resize(k, k);
    jaccard_fresh_size_.assign(k, 0.0);
    jaccard_hist_size_.assign(k, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t kk = fresh_assignment[i];
      jaccard_fresh_size_[kk] += 1.0;
      for (std::size_t j = 0; j < k; ++j) {
        if (in_all_[i * k + j]) {
          jaccard_hist_size_[j] += 1.0;
          inter(kk, j) += 1.0;
        }
      }
    }
    for (std::size_t kk = 0; kk < k; ++kk) {
      for (std::size_t j = 0; j < k; ++j) {
        const double uni =
            jaccard_fresh_size_[kk] + jaccard_hist_size_[j] - inter(kk, j);
        w_(kk, j) = uni > 0.0 ? inter(kk, j) / uni : 0.0;
      }
    }
  }
}

Clustering& DynamicClusterTracker::claim_slot() {
  const std::size_t cap = ring_.size();
  ring_head_ = (ring_head_ + cap - 1) % cap;
  if (ring_size_ < cap) ++ring_size_;
  return ring_[ring_head_];
}

const Clustering& DynamicClusterTracker::update(const Matrix& points) {
  return update(points, points);
}

const Clustering& DynamicClusterTracker::update(const Matrix& features,
                                                const Matrix& values) {
  RESMON_REQUIRE(features.rows() >= options_.k,
                 "need at least k points to cluster");
  RESMON_REQUIRE(features.rows() == values.rows(),
                 "features/values row count mismatch");
  const std::size_t n = features.rows();
  const std::size_t k = options_.k;
  if (ring_size_ > 0) {
    RESMON_REQUIRE(n == history(0).assignment.size(),
                   "node count changed between updates");
  }

  kmeans_into(features, k, rng_, options_.kmeans, kmeans_scratch_, raw_);

  // phi maps the raw K-means index k to the stable index j (eq. (11)).
  phi_.resize(k);
  if (ring_size_ == 0 || !options_.reindex) {
    for (std::size_t j = 0; j < k; ++j) phi_[j] = j;
    if (match_weight_ != nullptr) match_weight_->set(0.0);
  } else {
    similarity_into(raw_.assignment, n);
    max_weight_assignment_into(w_, assign_scratch_, phi_);
    if (match_weight_ != nullptr) {
      match_weight_->set(assignment_value(w_, phi_));
    }
  }

  // The slot claimed here is the oldest retained clustering; everything the
  // similarity pass needed was read above, so its buffers recycle safely.
  Clustering& fresh = claim_slot();
  fresh.assignment.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    fresh.assignment[i] = phi_[raw_.assignment[i]];
  }
  // Report centroids in measurement space (eq. (1)); K-means' empty-cluster
  // repair guarantees every cluster has at least one member.
  centroids_of_into(values, fresh.assignment, k, counts_scratch_,
                    fresh.centroids, &empty_scratch_);

  dims_ = values.cols();
  for (std::size_t j = 0; j < k; ++j) {
    std::vector<double>& series = series_[j];
    if (series.capacity() < series.size() + dims_) {
      series.reserve(std::max(series.size() * 2, kSeriesReserveSteps * dims_));
    }
    const auto row = fresh.centroids.row(j);
    series.insert(series.end(), row.begin(), row.end());
  }

  if (updates_total_ != nullptr) {
    updates_total_->inc();
    kmeans_iterations_total_->inc(raw_.iterations);
    empty_clusters_->set(static_cast<double>(std::count(
        empty_scratch_.begin(), empty_scratch_.end(), true)));
    if (ring_size_ > 1) {
      std::uint64_t moved = 0;
      const Clustering& prev = history(1);
      for (std::size_t i = 0; i < n; ++i) {
        if (fresh.assignment[i] != prev.assignment[i]) ++moved;
      }
      reassignments_total_->inc(moved);
    }
  }

  ++steps_;
  return fresh;
}

const Clustering& DynamicClusterTracker::history(std::size_t age) const {
  RESMON_REQUIRE(age < ring_size_, "history age out of range");
  return ring_[(ring_head_ + age) % ring_.size()];
}

std::span<const double> DynamicClusterTracker::centroid_series_flat(
    std::size_t j) const {
  RESMON_REQUIRE(j < options_.k, "cluster index out of range");
  return series_[j];
}

std::vector<double> DynamicClusterTracker::centroid_series(
    std::size_t j, std::size_t dim) const {
  const std::span<const double> flat = centroid_series_flat(j);
  RESMON_REQUIRE(dim < dims_ || steps_ == 0,
                 "centroid dimension out of range");
  std::vector<double> out;
  out.reserve(steps_);
  for (std::size_t t = 0; t < steps_; ++t) {
    out.push_back(flat[t * dims_ + dim]);
  }
  return out;
}

}  // namespace resmon::cluster
