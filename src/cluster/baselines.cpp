#include "cluster/baselines.hpp"

#include <limits>

namespace resmon::cluster {

StaticClustering::StaticClustering(const trace::Trace& trace,
                                   std::size_t resource, std::size_t k,
                                   std::uint64_t seed)
    : k_(k) {
  RESMON_REQUIRE(resource < trace.num_resources(),
                 "StaticClustering: resource out of range");
  RESMON_REQUIRE(k >= 1 && k <= trace.num_nodes(),
                 "StaticClustering: k out of range");
  // Each node becomes one point whose coordinates are its entire series.
  Matrix points(trace.num_nodes(), trace.num_steps());
  for (std::size_t i = 0; i < trace.num_nodes(); ++i) {
    for (std::size_t t = 0; t < trace.num_steps(); ++t) {
      points(i, t) = trace.value(i, t, resource);
    }
  }
  Rng rng(seed);
  assignment_ = kmeans(points, k, rng).assignment;
}

Clustering StaticClustering::at(const Matrix& snapshot) const {
  RESMON_REQUIRE(snapshot.rows() == assignment_.size(),
                 "StaticClustering: snapshot node count mismatch");
  Clustering c;
  c.assignment = assignment_;
  c.centroids = centroids_of(snapshot, assignment_, k_);
  return c;
}

MinimumDistanceClustering::MinimumDistanceClustering(std::size_t k,
                                                     std::uint64_t seed)
    : k_(k), rng_(seed) {
  RESMON_REQUIRE(k >= 1, "MinimumDistanceClustering: k must be positive");
}

Clustering MinimumDistanceClustering::at(const Matrix& snapshot) {
  const std::size_t n = snapshot.rows();
  RESMON_REQUIRE(k_ <= n, "MinimumDistanceClustering: k exceeds node count");

  // Sample K distinct nodes (partial Fisher-Yates over indices).
  std::vector<std::size_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = i;
  for (std::size_t j = 0; j < k_; ++j) {
    std::swap(ids[j], ids[j + rng_.index(n - j)]);
  }

  Clustering c;
  c.centroids = Matrix(k_, snapshot.cols());
  for (std::size_t j = 0; j < k_; ++j) {
    for (std::size_t col = 0; col < snapshot.cols(); ++col) {
      c.centroids(j, col) = snapshot(ids[j], col);
    }
  }
  c.assignment.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t best = 0;
    double best_d2 = std::numeric_limits<double>::max();
    for (std::size_t j = 0; j < k_; ++j) {
      const double d2 = squared_distance(c.centroids.row(j), snapshot.row(i));
      if (d2 < best_d2) {
        best_d2 = d2;
        best = j;
      }
    }
    c.assignment[i] = best;
  }
  return c;
}

}  // namespace resmon::cluster
