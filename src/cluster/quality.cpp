#include "cluster/quality.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace resmon::cluster {

double silhouette(const Matrix& points,
                  const std::vector<std::size_t>& assignment,
                  std::size_t k) {
  RESMON_REQUIRE(assignment.size() == points.rows(),
                 "silhouette: assignment size mismatch");
  RESMON_REQUIRE(k >= 2, "silhouette needs at least 2 clusters");
  const std::size_t n = points.rows();

  std::vector<std::size_t> counts(k, 0);
  for (const std::size_t a : assignment) {
    RESMON_REQUIRE(a < k, "silhouette: cluster index out of range");
    ++counts[a];
  }

  double total = 0.0;
  std::vector<double> dist_sum(k);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t own = assignment[i];
    if (counts[own] <= 1) continue;  // singleton contributes 0

    std::fill(dist_sum.begin(), dist_sum.end(), 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      dist_sum[assignment[j]] +=
          std::sqrt(squared_distance(points.row(i), points.row(j)));
    }
    const double a =
        dist_sum[own] / static_cast<double>(counts[own] - 1);
    double b = std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < k; ++c) {
      if (c == own || counts[c] == 0) continue;
      b = std::min(b, dist_sum[c] / static_cast<double>(counts[c]));
    }
    const double denom = std::max(a, b);
    total += denom > 0.0 ? (b - a) / denom : 0.0;
  }
  return total / static_cast<double>(n);
}

double davies_bouldin(const Matrix& points,
                      const std::vector<std::size_t>& assignment,
                      std::size_t k) {
  RESMON_REQUIRE(assignment.size() == points.rows(),
                 "davies_bouldin: assignment size mismatch");
  RESMON_REQUIRE(k >= 2, "davies_bouldin needs at least 2 clusters");

  const Matrix centroids = centroids_of(points, assignment, k);
  std::vector<double> scatter(k, 0.0);
  std::vector<std::size_t> counts(k, 0);
  for (std::size_t i = 0; i < points.rows(); ++i) {
    const std::size_t j = assignment[i];
    scatter[j] +=
        std::sqrt(squared_distance(points.row(i), centroids.row(j)));
    ++counts[j];
  }
  std::size_t populated = 0;
  for (std::size_t j = 0; j < k; ++j) {
    if (counts[j] > 0) {
      scatter[j] /= static_cast<double>(counts[j]);
      ++populated;
    }
  }
  RESMON_REQUIRE(populated >= 2,
                 "davies_bouldin needs at least 2 populated clusters");

  double total = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    if (counts[i] == 0) continue;
    double worst = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      if (j == i || counts[j] == 0) continue;
      const double gap =
          std::sqrt(squared_distance(centroids.row(i), centroids.row(j)));
      if (gap > 0.0) {
        worst = std::max(worst, (scatter[i] + scatter[j]) / gap);
      }
    }
    total += worst;
  }
  return total / static_cast<double>(populated);
}

KSelection choose_k(const Matrix& points, std::size_t k_min,
                    std::size_t k_max, Rng& rng,
                    const KMeansOptions& options) {
  RESMON_REQUIRE(k_min >= 2, "choose_k: k_min must be >= 2");
  RESMON_REQUIRE(k_max >= k_min, "choose_k: k_max must be >= k_min");
  RESMON_REQUIRE(k_max <= points.rows(), "choose_k: k_max exceeds points");

  KSelection out;
  double best_score = -2.0;
  for (std::size_t k = k_min; k <= k_max; ++k) {
    const KMeansResult r = kmeans(points, k, rng, options);
    const double score = silhouette(points, r.assignment, k);
    out.ks.push_back(k);
    out.inertias.push_back(r.inertia);
    out.silhouettes.push_back(score);
    if (score > best_score) {
      best_score = score;
      out.best_k = k;
    }
  }
  return out;
}

}  // namespace resmon::cluster
