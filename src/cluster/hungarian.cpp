#include "cluster/hungarian.hpp"

#include <algorithm>
#include <limits>

namespace resmon::cluster {

void min_cost_assignment_into(const Matrix& cost, AssignmentScratch& scratch,
                              std::vector<std::size_t>& assign) {
  RESMON_REQUIRE(cost.rows() == cost.cols(),
                 "assignment requires a square matrix");
  RESMON_REQUIRE(cost.rows() > 0, "assignment on empty matrix");
  const std::size_t n = cost.rows();

  // Jonker-Volgenant style shortest augmenting path formulation of the
  // Hungarian algorithm with 1-based sentinel row/column 0.
  constexpr double kInf = std::numeric_limits<double>::max();
  std::vector<double>& u = scratch.u;    // row potentials
  std::vector<double>& v = scratch.v;    // column potentials
  std::vector<std::size_t>& p = scratch.p;  // p[col] = row matched to col
  std::vector<std::size_t>& way = scratch.way;
  u.assign(n + 1, 0.0);
  v.assign(n + 1, 0.0);
  p.assign(n + 1, 0);
  way.assign(n + 1, 0);

  for (std::size_t i = 1; i <= n; ++i) {
    p[0] = i;
    std::size_t j0 = 0;
    std::vector<double>& minv = scratch.minv;
    std::vector<bool>& used = scratch.used;
    minv.assign(n + 1, kInf);
    used.assign(n + 1, false);
    do {
      used[j0] = true;
      const std::size_t i0 = p[j0];
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    // Augment along the alternating path back to the sentinel.
    do {
      const std::size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  assign.resize(n);
  for (std::size_t j = 1; j <= n; ++j) {
    assign[p[j] - 1] = j - 1;
  }
}

std::vector<std::size_t> min_cost_assignment(const Matrix& cost) {
  AssignmentScratch scratch;
  std::vector<std::size_t> assign;
  min_cost_assignment_into(cost, scratch, assign);
  return assign;
}

void max_weight_assignment_into(const Matrix& weight,
                                AssignmentScratch& scratch,
                                std::vector<std::size_t>& assign) {
  Matrix& cost = scratch.cost;
  cost.resize(weight.rows(), weight.cols());
  for (std::size_t r = 0; r < weight.rows(); ++r) {
    for (std::size_t c = 0; c < weight.cols(); ++c) {
      cost(r, c) = -weight(r, c);
    }
  }
  min_cost_assignment_into(cost, scratch, assign);
}

std::vector<std::size_t> max_weight_assignment(const Matrix& weight) {
  AssignmentScratch scratch;
  std::vector<std::size_t> assign;
  max_weight_assignment_into(weight, scratch, assign);
  return assign;
}

double assignment_value(const Matrix& m,
                        const std::vector<std::size_t>& assign) {
  RESMON_REQUIRE(assign.size() == m.rows(), "assignment size mismatch");
  double s = 0.0;
  for (std::size_t r = 0; r < assign.size(); ++r) s += m(r, assign[r]);
  return s;
}

}  // namespace resmon::cluster
