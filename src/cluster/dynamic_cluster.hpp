// Dynamic cluster construction over time (§V-B).
//
// Each time step the tracker runs K-means on the current central-store
// snapshot, then re-indexes the resulting clusters so they align with the
// clusters of the previous M steps: similarity w_{k,j} (eq. (10)) counts the
// nodes present both in the new cluster k and in cluster j throughout the
// last M steps, and the best one-to-one re-indexing (eq. (11)) is found with
// the Hungarian algorithm. The centroid of each (re-indexed) cluster then
// traces out the time series that the forecasting models are trained on.
//
// The tracker owns every scratch buffer its per-step work needs (K-means,
// similarity, Hungarian, the clustering ring) so steady-state updates
// perform no heap allocations; the only amortized exception is the
// unbounded centroid series, which grows geometrically in reserved slabs
// (see docs/PERFORMANCE.md "Zero-allocation steady state").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/hungarian.hpp"
#include "cluster/kmeans.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"

namespace resmon::cluster {

/// One time step's clustering: per-node cluster index plus the centroids.
struct Clustering {
  std::vector<std::size_t> assignment;  ///< node index -> cluster j in [0,k)
  Matrix centroids;                     ///< k x d, eq. (1)
};

/// Similarity between a fresh K-means cluster and historical clusters.
enum class SimilarityKind {
  kIntersection,  ///< |C'_k  intersect  (AND over m of C_{j,t-m})|, eq. (10)
  kJaccard,       ///< normalized variant used in [20] (Fig. 11 baseline)
};

struct DynamicClusterOptions {
  std::size_t k = 3;          ///< number of clusters / forecasting models
  std::size_t history_m = 1;  ///< M: how far back the similarity looks
  SimilarityKind similarity = SimilarityKind::kIntersection;
  /// Disable the eq. (10)/(11) re-indexing (ablation): cluster labels are
  /// then whatever K-means returns, so centroid series lose identity.
  bool reindex = true;
  /// How many past clusterings to retain for consumers (must cover both M
  /// and the forecaster's M'); centroid series are kept in full regardless.
  std::size_t history_capacity = 128;
  KMeansOptions kmeans;

  /// Optional metrics sink (non-owning). Series are labeled
  /// {view="metrics_view"} so the per-resource trackers of one pipeline
  /// stay distinguishable. nullptr = no instrumentation.
  obs::MetricsRegistry* metrics = nullptr;
  std::string metrics_view;
};

/// Online evolutionary clustering: call update() once per time step with the
/// central store's snapshot; read the re-indexed clustering and the
/// accumulated centroid series.
class DynamicClusterTracker {
 public:
  DynamicClusterTracker(const DynamicClusterOptions& options,
                        std::uint64_t seed);

  /// Cluster the rows of `points` (n x d) and re-index against history.
  /// Returns the final clustering for this step (also kept in history).
  const Clustering& update(const Matrix& points);

  /// Cluster on `features` (n x f) but compute the reported centroids from
  /// `values` (n x d). Used when clustering on extended temporal-window
  /// feature vectors (Fig. 5) while forecasting needs measurement-space
  /// centroids of the current snapshot.
  const Clustering& update(const Matrix& features, const Matrix& values);

  std::size_t k() const { return options_.k; }
  std::size_t steps() const { return steps_; }

  /// Number of past clusterings currently retained (<= history_capacity).
  std::size_t history_size() const { return ring_size_; }

  /// Clustering `age` steps ago: history(0) is the most recent update.
  const Clustering& history(std::size_t age) const;

  /// Full centroid time series of cluster j, flattened time-major: element
  /// t * d + dim is dimension `dim` of c_{j,t}, oldest step first. This is
  /// {c_{j,tau} : tau <= t}; the number of steps recorded is steps().
  std::span<const double> centroid_series_flat(std::size_t j) const;

  /// Scalar centroid series of cluster j for one dimension (convenience for
  /// the scalar-per-resource pipeline configuration; allocates — analysis
  /// paths only).
  std::vector<double> centroid_series(std::size_t j, std::size_t dim) const;

  /// Dimension of the recorded centroids (0 before the first update).
  std::size_t centroid_dims() const { return dims_; }

 private:
  /// Fill `w_` with the eq. (10) similarity of the fresh assignment
  /// against the retained history.
  void similarity_into(const std::vector<std::size_t>& fresh_assignment,
                       std::size_t n);
  /// Rotate the ring and return the slot for the new most-recent
  /// clustering (buffers recycled from the evicted entry).
  Clustering& claim_slot();

  DynamicClusterOptions options_;
  Rng rng_;
  // Fixed-size ring of past clusterings, newest at ring_head_. A ring
  // (not a deque) so the per-step path recycles buffers instead of
  // churning allocator nodes.
  std::vector<Clustering> ring_;
  std::size_t ring_head_ = 0;
  std::size_t ring_size_ = 0;
  // Flat per-cluster centroid series (see centroid_series_flat).
  std::vector<std::vector<double>> series_;
  std::size_t dims_ = 0;
  std::size_t steps_ = 0;
  // Per-step scratch (see class comment).
  KMeansScratch kmeans_scratch_;
  KMeansResult raw_;
  AssignmentScratch assign_scratch_;
  std::vector<std::size_t> phi_;
  // uint8_t (not vector<bool>) so the history/accumulate passes can run
  // through the kern:: SIMD dispatch on contiguous rows.
  std::vector<std::uint8_t> in_all_;
  Matrix w_;
  Matrix jaccard_inter_;
  std::vector<double> jaccard_fresh_size_;
  std::vector<double> jaccard_hist_size_;
  std::vector<std::size_t> counts_scratch_;
  std::vector<bool> empty_scratch_;
  // Optional metrics (all nullptr when no registry was given).
  obs::Counter* updates_total_ = nullptr;
  obs::Counter* kmeans_iterations_total_ = nullptr;
  obs::Counter* reassignments_total_ = nullptr;
  obs::Gauge* match_weight_ = nullptr;
  obs::Gauge* empty_clusters_ = nullptr;
};

}  // namespace resmon::cluster
