// Hungarian algorithm for the assignment problem.
//
// The paper re-indexes each step's K-means clusters by solving the
// maximum-weight bipartite matching of eq. (11); the Hungarian algorithm
// solves it exactly in O(K^3).
#pragma once

#include <vector>

#include "common/matrix.hpp"

namespace resmon::cluster {

/// Minimum-cost perfect assignment on a square cost matrix.
/// Returns `assign` with assign[row] = column, minimizing total cost.
std::vector<std::size_t> min_cost_assignment(const Matrix& cost);

/// Maximum-weight perfect assignment on a square weight matrix (eq. (11)).
/// Returns `assign` with assign[row] = column, maximizing total weight.
std::vector<std::size_t> max_weight_assignment(const Matrix& weight);

/// Total value of an assignment under the given matrix.
double assignment_value(const Matrix& m,
                        const std::vector<std::size_t>& assign);

}  // namespace resmon::cluster
