// Hungarian algorithm for the assignment problem.
//
// The paper re-indexes each step's K-means clusters by solving the
// maximum-weight bipartite matching of eq. (11); the Hungarian algorithm
// solves it exactly in O(K^3).
#pragma once

#include <vector>

#include "common/matrix.hpp"

namespace resmon::cluster {

/// Reusable buffers for the `_into` assignment variants, so the per-step
/// re-indexing path allocates nothing once warm.
struct AssignmentScratch {
  std::vector<double> u;    ///< row potentials
  std::vector<double> v;    ///< column potentials
  std::vector<double> minv;
  std::vector<std::size_t> p;
  std::vector<std::size_t> way;
  std::vector<bool> used;
  Matrix cost;  ///< negated weights (max_weight_assignment_into)
};

/// Minimum-cost perfect assignment on a square cost matrix.
/// Returns `assign` with assign[row] = column, minimizing total cost.
std::vector<std::size_t> min_cost_assignment(const Matrix& cost);

/// Allocation-free variant writing into `assign` (resized to cost.rows()).
void min_cost_assignment_into(const Matrix& cost, AssignmentScratch& scratch,
                              std::vector<std::size_t>& assign);

/// Maximum-weight perfect assignment on a square weight matrix (eq. (11)).
/// Returns `assign` with assign[row] = column, maximizing total weight.
std::vector<std::size_t> max_weight_assignment(const Matrix& weight);

/// Allocation-free variant of max_weight_assignment.
void max_weight_assignment_into(const Matrix& weight,
                                AssignmentScratch& scratch,
                                std::vector<std::size_t>& assign);

/// Total value of an assignment under the given matrix.
double assignment_value(const Matrix& m,
                        const std::vector<std::size_t>& assign);

}  // namespace resmon::cluster
