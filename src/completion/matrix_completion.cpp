#include "completion/matrix_completion.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace resmon::completion {

namespace {

/// Solve the ridge least-squares for one row of a factor: given the other
/// factor F (n x r), the observed indices and values, return
/// argmin_u ||F_obs u - y||^2 + ridge ||u||^2.
std::vector<double> solve_row(const Matrix& f,
                              const std::vector<std::size_t>& observed,
                              const std::vector<double>& values,
                              double ridge) {
  const std::size_t r = f.cols();
  Matrix gram(r, r);
  std::vector<double> rhs(r, 0.0);
  for (std::size_t n = 0; n < observed.size(); ++n) {
    const auto row = f.row(observed[n]);
    for (std::size_t a = 0; a < r; ++a) {
      rhs[a] += row[a] * values[n];
      for (std::size_t b = a; b < r; ++b) {
        gram(a, b) += row[a] * row[b];
      }
    }
  }
  for (std::size_t a = 0; a < r; ++a) {
    for (std::size_t b = 0; b < a; ++b) gram(a, b) = gram(b, a);
    gram(a, a) += ridge;
  }
  return solve_spd(gram, rhs);
}

}  // namespace

Matrix complete_matrix(const Matrix& observed,
                       const std::vector<bool>& mask,
                       const CompletionOptions& options) {
  const std::size_t rows = observed.rows();
  const std::size_t cols = observed.cols();
  RESMON_REQUIRE(rows > 0 && cols > 0, "complete_matrix: empty matrix");
  RESMON_REQUIRE(mask.size() == rows * cols,
                 "complete_matrix: mask size mismatch");
  RESMON_REQUIRE(options.rank >= 1 &&
                     options.rank <= std::min(rows, cols),
                 "complete_matrix: rank out of range");
  RESMON_REQUIRE(options.iterations >= 1,
                 "complete_matrix: need at least one sweep");
  RESMON_REQUIRE(options.ridge > 0.0, "complete_matrix: ridge must be > 0");

  const std::size_t r = options.rank;
  Rng rng(options.seed);
  Matrix u(rows, r);
  Matrix v(cols, r);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t a = 0; a < r; ++a) u(i, a) = rng.uniform(0.0, 1.0);
  }
  for (std::size_t j = 0; j < cols; ++j) {
    for (std::size_t a = 0; a < r; ++a) v(j, a) = rng.uniform(0.0, 1.0);
  }

  // Pre-index the observations per row and per column.
  std::vector<std::vector<std::size_t>> row_obs(rows), col_obs(cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      if (mask[i * cols + j]) {
        row_obs[i].push_back(j);
        col_obs[j].push_back(i);
      }
    }
  }

  std::vector<double> values;
  for (std::size_t sweep = 0; sweep < options.iterations; ++sweep) {
    // Update U given V.
    for (std::size_t i = 0; i < rows; ++i) {
      if (row_obs[i].empty()) continue;  // stays at its current value
      values.clear();
      for (const std::size_t j : row_obs[i]) values.push_back(observed(i, j));
      const std::vector<double> sol =
          solve_row(v, row_obs[i], values, options.ridge);
      for (std::size_t a = 0; a < r; ++a) u(i, a) = sol[a];
    }
    // Update V given U.
    for (std::size_t j = 0; j < cols; ++j) {
      if (col_obs[j].empty()) continue;
      values.clear();
      for (const std::size_t i : col_obs[j]) values.push_back(observed(i, j));
      const std::vector<double> sol =
          solve_row(u, col_obs[j], values, options.ridge);
      for (std::size_t a = 0; a < r; ++a) v(j, a) = sol[a];
    }
  }
  return u * v.transposed();
}

double masked_rmse(const Matrix& truth, const Matrix& estimate,
                   const std::vector<bool>& mask) {
  RESMON_REQUIRE(truth.rows() == estimate.rows() &&
                     truth.cols() == estimate.cols(),
                 "masked_rmse: shape mismatch");
  RESMON_REQUIRE(mask.size() == truth.rows() * truth.cols(),
                 "masked_rmse: mask size mismatch");
  double se = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < truth.rows(); ++i) {
    for (std::size_t j = 0; j < truth.cols(); ++j) {
      if (!mask[i * truth.cols() + j]) continue;
      const double e = estimate(i, j) - truth(i, j);
      se += e * e;
      ++count;
    }
  }
  RESMON_REQUIRE(count > 0, "masked_rmse: empty mask");
  return std::sqrt(se / static_cast<double>(count));
}

CompletionExperimentResult run_completion_experiment(
    const trace::Trace& trace, std::size_t resource, double sample_rate,
    std::size_t window, const CompletionOptions& options,
    std::size_t eval_stride) {
  RESMON_REQUIRE(resource < trace.num_resources(),
                 "completion experiment: resource out of range");
  RESMON_REQUIRE(sample_rate > 0.0 && sample_rate <= 1.0,
                 "completion experiment: sample rate must be in (0,1]");
  RESMON_REQUIRE(window >= 2 && window <= trace.num_steps(),
                 "completion experiment: bad window");
  RESMON_REQUIRE(eval_stride >= 1, "completion experiment: bad stride");

  const std::size_t n = trace.num_nodes();
  Rng rng(options.seed + 1);

  // Random per-(node, step) sampling, as in the compressed-sensing
  // baselines; last received value retained for the hold comparison.
  std::vector<double> last_value(n, 0.0);
  std::vector<bool> seen(n, false);

  // Sliding window of observed entries (front of the deque semantics via
  // ring indexing: column w-1 is the current step).
  Matrix window_values(n, window);
  std::vector<bool> window_mask(n * window, false);

  double se_completion = 0.0;
  double se_hold = 0.0;
  std::size_t evaluated = 0;
  std::uint64_t transmissions = 0;

  for (std::size_t t = 0; t < trace.num_steps(); ++t) {
    // Shift the window left by one column.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t c = 0; c + 1 < window; ++c) {
        window_values(i, c) = window_values(i, c + 1);
        window_mask[i * window + c] = window_mask[i * window + c + 1];
      }
      window_values(i, window - 1) = 0.0;
      window_mask[i * window + window - 1] = false;
    }
    // Sample.
    for (std::size_t i = 0; i < n; ++i) {
      const bool sample = t == 0 || rng.bernoulli(sample_rate);
      if (!sample) continue;
      ++transmissions;
      const double v = trace.value(i, t, resource);
      window_values(i, window - 1) = v;
      window_mask[i * window + window - 1] = true;
      last_value[i] = v;
      seen[i] = true;
    }
    if (t < window || t % eval_stride != 0) continue;

    // Reconstruct the window and read off the current column.
    const Matrix completed =
        complete_matrix(window_values, window_mask, options);
    for (std::size_t i = 0; i < n; ++i) {
      const double truth = trace.value(i, t, resource);
      const double ec = completed(i, window - 1) - truth;
      se_completion += ec * ec;
      const double eh = (seen[i] ? last_value[i] : 0.0) - truth;
      se_hold += eh * eh;
      ++evaluated;
    }
  }
  RESMON_REQUIRE(evaluated > 0, "completion experiment: nothing evaluated");

  CompletionExperimentResult result;
  result.rmse = std::sqrt(se_completion / static_cast<double>(evaluated));
  result.hold_rmse = std::sqrt(se_hold / static_cast<double>(evaluated));
  result.actual_sample_rate =
      static_cast<double>(transmissions) /
      static_cast<double>(n * trace.num_steps());
  return result;
}

}  // namespace resmon::completion
