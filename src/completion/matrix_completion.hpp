// Low-rank matrix completion — the compressed-sensing baseline family.
//
// The related work the paper contrasts against ([6]-[10] in §II) collects
// measurements from a random subset of (node, step) pairs and reconstructs
// the unobserved entries by exploiting the approximate low-rank structure
// of the fleet's utilization matrix. This module implements the standard
// alternating-least-squares (ALS) completion with ridge regularization and
// the §II-style monitoring experiment around it, so the paper's claim that
// such approaches underperform the proposed mechanism can be tested
// directly rather than proxied by the minimum-distance baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "trace/trace.hpp"

namespace resmon::completion {

struct CompletionOptions {
  std::size_t rank = 5;        ///< target rank r of the factorization
  std::size_t iterations = 15; ///< ALS sweeps
  double ridge = 1e-2;         ///< Tikhonov regularizer on both factors
  std::uint64_t seed = 1;      ///< factor initialization
};

/// Complete a partially observed matrix: `observed` is R x C with valid
/// entries wherever `mask` (row-major, R*C) is true. Returns the rank-r
/// reconstruction U V^T of the full matrix. Requires every row and every
/// column to contain at least one observed entry... rows/columns with no
/// observations are reconstructed from the regularized factors (they decay
/// toward zero), which mirrors how the baseline behaves on cold nodes.
Matrix complete_matrix(const Matrix& observed,
                       const std::vector<bool>& mask,
                       const CompletionOptions& options = {});

/// Fraction of squared error explained on the observed entries (training
/// fit of the last complete_matrix-style factorization); diagnostic helper
/// for choosing the rank.
double masked_rmse(const Matrix& truth, const Matrix& estimate,
                   const std::vector<bool>& mask);

/// The §II-style monitoring experiment: every step each node transmits its
/// measurement independently with probability `sample_rate` (the same
/// average budget B as the proposed mechanism); the controller keeps a
/// sliding window of the last `window` steps and estimates the *current*
/// snapshot from the rank-r completion of the windowed matrix.
struct CompletionExperimentResult {
  double rmse = 0.0;              ///< time-averaged RMSE of the estimates
  double hold_rmse = 0.0;         ///< same sampling, last-value-hold instead
  double actual_sample_rate = 0.0;
};

CompletionExperimentResult run_completion_experiment(
    const trace::Trace& trace, std::size_t resource, double sample_rate,
    std::size_t window, const CompletionOptions& options = {},
    std::size_t eval_stride = 5);

}  // namespace resmon::completion
