// Agent: one local node's side of the star topology, over a real socket.
//
// Wraps a TransmitPolicy (normally the §V-A AdaptiveTransmitter): each time
// slot the agent observes its measurement, lets the policy decide, and
// pushes either a measurement frame (policy fired) or a heartbeat frame
// (slot progress for the controller's barrier). Connection loss triggers
// bounded reconnect-with-exponential-backoff; the frame of the current slot
// is resent after a successful reconnect so no slot goes missing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "collect/transmit_policy.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"

namespace resmon::net {

/// What an AgentOptions::frame_hook decided about one outbound frame.
struct FrameAction {
  /// Close the connection instead of delivering anything this slot (the
  /// agent reconnects lazily on its next delivery). Simulates half-open
  /// stalls and agent-side partitions.
  bool sever = false;
  /// Frames to deliver in order. Empty (with sever = false) silently drops
  /// the slot's frame; several entries duplicate or inject traffic.
  std::vector<std::vector<std::uint8_t>> frames;
};

/// Outbound-frame interception point. Called once per observe() with the
/// slot and the already-encoded frame (measurement or heartbeat). The agent
/// stays generic: resmon::faultnet supplies hooks, but any caller can
/// intercept traffic without the net layer knowing about fault schedules.
using FrameHook = std::function<FrameAction(
    std::size_t step, const std::vector<std::uint8_t>& frame)>;

struct AgentOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint32_t node = 0;
  std::uint32_t num_resources = 1;

  /// Reconnect policy: at most `max_reconnect_attempts` tries per outage,
  /// sleeping initial_backoff_ms, 2x, 4x, ... capped at max_backoff_ms.
  std::size_t max_reconnect_attempts = 8;
  int initial_backoff_ms = 20;
  int max_backoff_ms = 1000;

  /// Timeout for the hello/ack handshake and for blocking writes.
  int io_timeout_ms = 5000;

  /// Send a heartbeat on slots where the policy stays silent (required for
  /// the controller's slot barrier; disable only for custom protocols).
  bool heartbeat_when_silent = true;

  /// Optional metrics sink (non-owning): the resmon_agent_* series,
  /// labeled {node="<id>"}. nullptr = no instrumentation.
  obs::MetricsRegistry* metrics = nullptr;

  /// Optional outbound-frame interception (fault injection, tracing).
  /// Empty = frames are delivered unchanged.
  FrameHook frame_hook;
};

class Agent {
 public:
  Agent(const AgentOptions& options,
        std::unique_ptr<collect::TransmitPolicy> policy);

  /// Connect and complete the hello/ack handshake, with bounded retries.
  /// Throws SocketError when the attempts are exhausted or the controller
  /// rejects the hello.
  void connect();

  /// Process time slot `t`: the policy decides on `x`, and the resulting
  /// frame (measurement or heartbeat) is delivered — reconnecting with
  /// backoff if the connection died. Returns beta_{i,t} (whether a
  /// measurement was transmitted).
  bool observe(std::size_t t, std::span<const double> x);

  bool connected() const { return sock_.valid(); }
  const collect::TransmitPolicy& policy() const { return *policy_; }

  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t measurements_sent() const { return measurements_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  /// Successful re-handshakes after a connection loss.
  std::uint64_t reconnects() const { return reconnects_; }

 private:
  /// One connect + handshake attempt. Returns false on any failure.
  bool try_connect_once();
  /// Bounded backoff loop around try_connect_once(); throws on exhaustion.
  void reconnect_with_backoff();
  /// Deliver one encoded frame, reconnecting as needed.
  void deliver(const std::vector<std::uint8_t>& bytes);
  /// Route one encoded frame through the frame_hook (if set), then deliver
  /// whatever the hook returned.
  void dispatch(std::size_t t, std::vector<std::uint8_t> bytes);

  AgentOptions options_;
  std::unique_ptr<collect::TransmitPolicy> policy_;
  Socket sock_;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t measurements_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t reconnects_ = 0;
  bool ever_connected_ = false;
  // Optional metrics (all nullptr when no registry was given).
  obs::Counter* m_frames_total_ = nullptr;
  obs::Counter* m_measurements_total_ = nullptr;
  obs::Counter* m_heartbeats_total_ = nullptr;
  obs::Counter* m_bytes_total_ = nullptr;
  obs::Counter* m_reconnects_total_ = nullptr;
  obs::Gauge* m_connected_ = nullptr;
};

}  // namespace resmon::net
