#include "net/wire.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace resmon::net::wire {

namespace {

// -- little-endian primitives -----------------------------------------------

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

double get_f64(const std::uint8_t* p) {
  return std::bit_cast<double>(get_u64(p));
}

// -- CRC-32 -----------------------------------------------------------------

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

// -- frame assembly ---------------------------------------------------------

/// Write the 16-byte header in front of an already-encoded payload.
std::vector<std::uint8_t> frame(FrameType type,
                                std::vector<std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + payload.size());
  put_u32(out, kMagic);
  out.push_back(kProtocolVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  put_u16(out, 0);  // reserved
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : bytes) {
    c = kCrcTable[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

const char* wire_error_name(WireError error) {
  switch (error) {
    case WireError::kNone: return "none";
    case WireError::kBadMagic: return "bad magic";
    case WireError::kUnsupportedVersion: return "unsupported version";
    case WireError::kUnknownFrameType: return "unknown frame type";
    case WireError::kOversizedPayload: return "oversized payload";
    case WireError::kCrcMismatch: return "crc mismatch";
    case WireError::kMalformedPayload: return "malformed payload";
    case WireError::kTruncated: return "truncated frame";
  }
  return "invalid error code";
}

std::vector<std::uint8_t> encode(const transport::MeasurementMessage& m) {
  std::vector<std::uint8_t> payload;
  payload.reserve(measurement_payload_size(m.values.size()));
  put_u32(payload, static_cast<std::uint32_t>(m.node));
  put_u64(payload, static_cast<std::uint64_t>(m.step));
  put_u32(payload, static_cast<std::uint32_t>(m.values.size()));
  for (double v : m.values) put_f64(payload, v);
  return frame(FrameType::kMeasurement, std::move(payload));
}

std::vector<std::uint8_t> encode(const HelloFrame& f) {
  std::vector<std::uint8_t> payload;
  payload.reserve(kHelloPayloadSize);
  put_u32(payload, f.node);
  put_u32(payload, f.num_resources);
  return frame(FrameType::kHello, std::move(payload));
}

std::vector<std::uint8_t> encode(const HelloAckFrame& f) {
  std::vector<std::uint8_t> payload;
  payload.reserve(kHelloAckPayloadSize);
  put_u32(payload, f.node);
  payload.push_back(f.accepted ? 1 : 0);
  payload.push_back(f.reason);
  put_u16(payload, 0);  // reserved
  return frame(FrameType::kHelloAck, std::move(payload));
}

std::vector<std::uint8_t> encode(const HeartbeatFrame& f) {
  std::vector<std::uint8_t> payload;
  payload.reserve(kHeartbeatPayloadSize);
  put_u32(payload, f.node);
  put_u64(payload, f.step);
  return frame(FrameType::kHeartbeat, std::move(payload));
}

FrameDecoder::FrameDecoder(std::size_t max_payload)
    : max_payload_(max_payload) {}

bool FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  if (error_ != WireError::kNone) return false;
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  while (try_decode_one()) {
  }
  return error_ == WireError::kNone;
}

std::optional<Frame> FrameDecoder::next() {
  if (ready_.empty()) return std::nullopt;
  Frame f = std::move(ready_.front());
  ready_.pop_front();
  return f;
}

bool FrameDecoder::finish() {
  if (error_ != WireError::kNone) return false;
  if (!buffer_.empty()) {
    error_ = WireError::kTruncated;
    return false;
  }
  return true;
}

bool FrameDecoder::try_decode_one() {
  if (error_ != WireError::kNone) return false;
  if (buffer_.size() < kHeaderSize) return false;
  const std::uint8_t* h = buffer_.data();

  // Validate the header before waiting for (or buffering) any payload, so
  // a hostile length field cannot drive allocation.
  if (get_u32(h) != kMagic) {
    error_ = WireError::kBadMagic;
    return false;
  }
  if (h[4] != kProtocolVersion) {
    error_ = WireError::kUnsupportedVersion;
    return false;
  }
  const std::uint8_t type = h[5];
  if (type < static_cast<std::uint8_t>(FrameType::kHello) ||
      type > static_cast<std::uint8_t>(FrameType::kHeartbeat)) {
    error_ = WireError::kUnknownFrameType;
    return false;
  }
  const std::size_t payload_len = get_u32(h + 8);
  if (payload_len > max_payload_) {
    error_ = WireError::kOversizedPayload;
    return false;
  }
  const std::size_t total = kHeaderSize + payload_len;
  if (buffer_.size() < total) return false;  // wait for more bytes

  const std::uint8_t* p = h + kHeaderSize;
  if (crc32({p, payload_len}) != get_u32(h + 12)) {
    error_ = WireError::kCrcMismatch;
    return false;
  }

  switch (static_cast<FrameType>(type)) {
    case FrameType::kHello: {
      if (payload_len != kHelloPayloadSize) {
        error_ = WireError::kMalformedPayload;
        return false;
      }
      ready_.push_back(HelloFrame{.node = get_u32(p),
                                  .num_resources = get_u32(p + 4)});
      break;
    }
    case FrameType::kHelloAck: {
      if (payload_len != kHelloAckPayloadSize) {
        error_ = WireError::kMalformedPayload;
        return false;
      }
      ready_.push_back(HelloAckFrame{
          .node = get_u32(p), .accepted = p[4] != 0, .reason = p[5]});
      break;
    }
    case FrameType::kMeasurement: {
      if (payload_len < 16) {
        error_ = WireError::kMalformedPayload;
        return false;
      }
      const std::size_t count = get_u32(p + 12);
      if (payload_len != measurement_payload_size(count)) {
        error_ = WireError::kMalformedPayload;
        return false;
      }
      transport::MeasurementMessage m;
      m.node = get_u32(p);
      m.step = static_cast<std::size_t>(get_u64(p + 4));
      m.values.resize(count);
      for (std::size_t i = 0; i < count; ++i) {
        m.values[i] = get_f64(p + 16 + 8 * i);
      }
      ready_.push_back(std::move(m));
      break;
    }
    case FrameType::kHeartbeat: {
      if (payload_len != kHeartbeatPayloadSize) {
        error_ = WireError::kMalformedPayload;
        return false;
      }
      ready_.push_back(
          HeartbeatFrame{.node = get_u32(p), .step = get_u64(p + 4)});
      break;
    }
  }

  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(total));
  ++frames_decoded_;
  bytes_consumed_ += total;
  return true;
}

}  // namespace resmon::net::wire
