#include "net/wire.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace resmon::net::wire {

namespace {

// -- little-endian primitives -----------------------------------------------

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

double get_f64(const std::uint8_t* p) {
  return std::bit_cast<double>(get_u64(p));
}

// -- CRC-32 -----------------------------------------------------------------

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

// -- frame assembly ---------------------------------------------------------

/// Write the 16-byte header in front of an already-encoded payload.
std::vector<std::uint8_t> frame(FrameType type,
                                std::vector<std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + payload.size());
  put_u32(out, kMagic);
  out.push_back(kProtocolVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  put_u16(out, 0);  // reserved
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : bytes) {
    c = kCrcTable[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

const char* hello_reject_name(std::uint8_t reason) {
  switch (static_cast<HelloReject>(reason)) {
    case HelloReject::kNone: return "accepted";
    case HelloReject::kNodeOutOfRange: return "node id out of range";
    case HelloReject::kDimensionMismatch: return "dimension mismatch";
    case HelloReject::kDuplicateNode: return "duplicate hello on one stream";
    case HelloReject::kShardOutOfRange: return "shard id out of range";
    case HelloReject::kBadNodeRange: return "invalid shard node range";
    case HelloReject::kVersionMismatch: return "wire protocol version mismatch";
    case HelloReject::kShardsNotEnabled:
      return "shard hello to a single-tier controller";
  }
  return "unknown reason";
}

std::string describe_hello_reject(std::uint8_t reason,
                                  std::uint8_t speaker_version) {
  std::string out = "reason " + std::to_string(static_cast<int>(reason)) +
                    ": " + hello_reject_name(reason);
  if (static_cast<HelloReject>(reason) == HelloReject::kVersionMismatch) {
    out += " (we speak wire protocol v" +
           std::to_string(static_cast<int>(kProtocolVersion)) +
           ", peer speaks ";
    out += speaker_version == 0
               ? std::string("an unreported version")
               : "v" + std::to_string(static_cast<int>(speaker_version));
    out += ")";
  }
  return out;
}

const char* wire_error_name(WireError error) {
  switch (error) {
    case WireError::kNone: return "none";
    case WireError::kBadMagic: return "bad magic";
    case WireError::kUnsupportedVersion: return "unsupported version";
    case WireError::kUnknownFrameType: return "unknown frame type";
    case WireError::kOversizedPayload: return "oversized payload";
    case WireError::kCrcMismatch: return "crc mismatch";
    case WireError::kMalformedPayload: return "malformed payload";
    case WireError::kTruncated: return "truncated frame";
  }
  return "invalid error code";
}

std::vector<std::uint8_t> encode(const transport::MeasurementMessage& m) {
  std::vector<std::uint8_t> payload;
  payload.reserve(measurement_payload_size(m.values.size()));
  put_u32(payload, static_cast<std::uint32_t>(m.node));
  put_u64(payload, static_cast<std::uint64_t>(m.step));
  put_u32(payload, static_cast<std::uint32_t>(m.values.size()));
  for (double v : m.values) put_f64(payload, v);
  return frame(FrameType::kMeasurement, std::move(payload));
}

std::vector<std::uint8_t> encode(const HelloFrame& f) {
  std::vector<std::uint8_t> payload;
  payload.reserve(kHelloPayloadSize);
  put_u32(payload, f.node);
  put_u32(payload, f.num_resources);
  return frame(FrameType::kHello, std::move(payload));
}

std::vector<std::uint8_t> encode(const HelloAckFrame& f) {
  std::vector<std::uint8_t> payload;
  payload.reserve(kHelloAckPayloadSize);
  put_u32(payload, f.node);
  payload.push_back(f.accepted ? 1 : 0);
  payload.push_back(f.reason);
  payload.push_back(f.speaker_version);
  payload.push_back(0);  // reserved
  return frame(FrameType::kHelloAck, std::move(payload));
}

std::vector<std::uint8_t> encode(const HeartbeatFrame& f) {
  std::vector<std::uint8_t> payload;
  payload.reserve(kHeartbeatPayloadSize);
  put_u32(payload, f.node);
  put_u64(payload, f.step);
  return frame(FrameType::kHeartbeat, std::move(payload));
}

std::vector<std::uint8_t> encode(const ShardHelloFrame& f) {
  std::vector<std::uint8_t> payload;
  payload.reserve(kShardHelloPayloadSize);
  put_u32(payload, f.shard);
  put_u32(payload, f.first_node);
  put_u32(payload, f.num_nodes);
  put_u32(payload, f.num_resources);
  put_u32(payload, f.protocol);
  return frame(FrameType::kShardHello, std::move(payload));
}

std::vector<std::uint8_t> encode(const SlotSummaryFrame& f) {
  std::vector<std::uint8_t> payload;
  payload.reserve(slot_summary_payload_size(f.measurements.size(),
                                            f.num_resources));
  put_u32(payload, f.shard);
  put_u64(payload, f.step);
  put_u32(payload, f.degraded);
  put_u32(payload, f.num_resources);
  put_u32(payload, static_cast<std::uint32_t>(f.measurements.size()));
  for (const transport::MeasurementMessage& m : f.measurements) {
    put_u32(payload, static_cast<std::uint32_t>(m.node));
    for (double v : m.values) put_f64(payload, v);
  }
  return frame(FrameType::kSlotSummary, std::move(payload));
}

std::vector<std::uint8_t> encode(const ShardStatusFrame& f) {
  std::vector<std::uint8_t> payload;
  payload.reserve(kShardStatusPayloadSize);
  put_u32(payload, f.shard);
  put_u32(payload, f.live);
  put_u32(payload, f.stale);
  put_u32(payload, f.dead);
  return frame(FrameType::kShardStatus, std::move(payload));
}

FrameDecoder::FrameDecoder(std::size_t max_payload)
    : max_payload_(max_payload) {}

bool FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  if (error_ != WireError::kNone) return false;
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  while (try_decode_one()) {
  }
  return error_ == WireError::kNone;
}

std::optional<Frame> FrameDecoder::next() {
  if (ready_.empty()) return std::nullopt;
  Frame f = std::move(ready_.front());
  ready_.pop_front();
  return f;
}

bool FrameDecoder::finish() {
  if (error_ != WireError::kNone) return false;
  if (!buffer_.empty()) {
    error_ = WireError::kTruncated;
    return false;
  }
  return true;
}

bool FrameDecoder::try_decode_one() {
  if (error_ != WireError::kNone) return false;
  if (buffer_.size() < kHeaderSize) return false;
  const std::uint8_t* h = buffer_.data();

  // Validate the header before waiting for (or buffering) any payload, so
  // a hostile length field cannot drive allocation.
  if (get_u32(h) != kMagic) {
    error_ = WireError::kBadMagic;
    return false;
  }
  if (h[4] != kProtocolVersion) {
    error_ = WireError::kUnsupportedVersion;
    return false;
  }
  const std::uint8_t type = h[5];
  if (type < static_cast<std::uint8_t>(FrameType::kHello) ||
      type > static_cast<std::uint8_t>(FrameType::kShardStatus)) {
    error_ = WireError::kUnknownFrameType;
    return false;
  }
  const std::size_t payload_len = get_u32(h + 8);
  if (payload_len > max_payload_) {
    error_ = WireError::kOversizedPayload;
    return false;
  }
  const std::size_t total = kHeaderSize + payload_len;
  if (buffer_.size() < total) return false;  // wait for more bytes

  const std::uint8_t* p = h + kHeaderSize;
  if (crc32({p, payload_len}) != get_u32(h + 12)) {
    error_ = WireError::kCrcMismatch;
    return false;
  }

  switch (static_cast<FrameType>(type)) {
    case FrameType::kHello: {
      if (payload_len != kHelloPayloadSize) {
        error_ = WireError::kMalformedPayload;
        return false;
      }
      ready_.push_back(HelloFrame{.node = get_u32(p),
                                  .num_resources = get_u32(p + 4)});
      break;
    }
    case FrameType::kHelloAck: {
      if (payload_len != kHelloAckPayloadSize) {
        error_ = WireError::kMalformedPayload;
        return false;
      }
      ready_.push_back(HelloAckFrame{.node = get_u32(p),
                                     .accepted = p[4] != 0,
                                     .reason = p[5],
                                     .speaker_version = p[6]});
      break;
    }
    case FrameType::kMeasurement: {
      if (payload_len < 16) {
        error_ = WireError::kMalformedPayload;
        return false;
      }
      const std::size_t count = get_u32(p + 12);
      if (payload_len != measurement_payload_size(count)) {
        error_ = WireError::kMalformedPayload;
        return false;
      }
      transport::MeasurementMessage m;
      m.node = get_u32(p);
      m.step = static_cast<std::size_t>(get_u64(p + 4));
      m.values.resize(count);
      for (std::size_t i = 0; i < count; ++i) {
        m.values[i] = get_f64(p + 16 + 8 * i);
      }
      ready_.push_back(std::move(m));
      break;
    }
    case FrameType::kHeartbeat: {
      if (payload_len != kHeartbeatPayloadSize) {
        error_ = WireError::kMalformedPayload;
        return false;
      }
      ready_.push_back(
          HeartbeatFrame{.node = get_u32(p), .step = get_u64(p + 4)});
      break;
    }
    case FrameType::kShardHello: {
      if (payload_len != kShardHelloPayloadSize) {
        error_ = WireError::kMalformedPayload;
        return false;
      }
      ready_.push_back(ShardHelloFrame{.shard = get_u32(p),
                                       .first_node = get_u32(p + 4),
                                       .num_nodes = get_u32(p + 8),
                                       .num_resources = get_u32(p + 12),
                                       .protocol = get_u32(p + 16)});
      break;
    }
    case FrameType::kSlotSummary: {
      if (payload_len < kSlotSummaryHeaderSize) {
        error_ = WireError::kMalformedPayload;
        return false;
      }
      const std::size_t dim = get_u32(p + 16);
      const std::size_t count = get_u32(p + 20);
      // Bound both fields by what could possibly fit in the (already
      // length-capped) payload before multiplying, so a hostile header
      // cannot overflow the size arithmetic. An empty summary (a slot in
      // which every shard agent stayed silent) carries dim but no entries,
      // so dim is only bounded when entries exist to hold it.
      if ((count > 0 && dim > payload_len / 8) || count > payload_len / 4 ||
          payload_len != slot_summary_payload_size(count, dim)) {
        error_ = WireError::kMalformedPayload;
        return false;
      }
      SlotSummaryFrame s;
      s.shard = get_u32(p);
      s.step = get_u64(p + 4);
      s.degraded = get_u32(p + 12);
      s.num_resources = static_cast<std::uint32_t>(dim);
      s.measurements.reserve(count);
      const std::uint8_t* entry = p + kSlotSummaryHeaderSize;
      for (std::size_t i = 0; i < count; ++i) {
        transport::MeasurementMessage m;
        m.node = get_u32(entry);
        m.step = static_cast<std::size_t>(s.step);
        m.values.resize(dim);
        for (std::size_t r = 0; r < dim; ++r) {
          m.values[r] = get_f64(entry + 4 + 8 * r);
        }
        entry += 4 + 8 * dim;
        s.measurements.push_back(std::move(m));
      }
      ready_.push_back(std::move(s));
      break;
    }
    case FrameType::kShardStatus: {
      if (payload_len != kShardStatusPayloadSize) {
        error_ = WireError::kMalformedPayload;
        return false;
      }
      ready_.push_back(ShardStatusFrame{.shard = get_u32(p),
                                        .live = get_u32(p + 4),
                                        .stale = get_u32(p + 8),
                                        .dead = get_u32(p + 12)});
      break;
    }
  }

  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(total));
  ++frames_decoded_;
  bytes_consumed_ += total;
  return true;
}

}  // namespace resmon::net::wire
