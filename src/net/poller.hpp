// Poller: the poll(2) wrapper under the controller's event loop.
//
// Registered fds are kept in a stable vector mirrored into the pollfd array
// handed to poll(2); one wait() returns the readable/hangup set. This is
// deliberately the simplest possible reactor — the controller serves
// thousands of agents comfortably with poll, and nothing here precludes an
// epoll backend later behind the same interface.
#pragma once

#include <cstdint>
#include <vector>

namespace resmon::net {

struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool hangup = false;  ///< POLLHUP/POLLERR/POLLNVAL: drop the connection
};

class Poller {
 public:
  /// Register `fd` for readability. Watching an fd twice is an error.
  void watch(int fd);

  /// Stop watching `fd`. Unknown fds are ignored (the connection may have
  /// already been dropped by the event handler).
  void unwatch(int fd);

  std::size_t watched() const { return fds_.size(); }

  /// Block up to `timeout_ms` (0 = return immediately, negative = forever)
  /// and return the fds with pending events.
  std::vector<PollEvent> wait(int timeout_ms);

 private:
  std::vector<int> fds_;
};

}  // namespace resmon::net
