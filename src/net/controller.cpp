#include "net/controller.hpp"

#include <algorithm>
#include <chrono>

namespace resmon::net {

namespace {

using Clock = std::chrono::steady_clock;

int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return static_cast<int>(std::max<long long>(0, left.count()));
}

constexpr int kPumpSliceMs = 20;  ///< poll granularity inside a wait loop

}  // namespace

const char* node_state_name(NodeState state) {
  switch (state) {
    case NodeState::kLive:
      return "live";
    case NodeState::kStale:
      return "stale";
    case NodeState::kDead:
      return "dead";
  }
  return "unknown";
}

Controller::Controller(Socket listener, const ControllerOptions& options)
    : options_(options),
      listener_(std::move(listener)),
      seen_(options.num_nodes, 0),
      progress_(options.num_nodes, -1),
      inbox_(options.num_nodes),
      states_(options.num_nodes, NodeState::kLive),
      // staleness_now() reads only options_, which is initialized above.
      last_seen_(options.num_nodes, staleness_now()) {
  RESMON_REQUIRE(options.num_nodes > 0, "Controller needs at least one node");
  RESMON_REQUIRE(options.num_resources > 0,
                 "Controller needs at least one resource");
  RESMON_REQUIRE(listener_.valid(), "Controller needs a listening socket");
  RESMON_REQUIRE(
      options.dead_after_ms == 0 || options.stale_after_ms == 0 ||
          options.dead_after_ms >= options.stale_after_ms,
      "dead_after_ms must be >= stale_after_ms");
  shards_.resize(options_.num_shards);
  poller_.watch(listener_.fd());
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    m_frames_total_ = &reg.counter("resmon_net_frames_total",
                                   "Frames decoded from agent streams");
    m_measurements_total_ = &reg.counter(
        "resmon_net_measurements_total", "Measurement frames accepted");
    m_heartbeats_total_ = &reg.counter("resmon_net_heartbeats_total",
                                       "Heartbeat frames accepted");
    m_bytes_total_ =
        &reg.counter("resmon_net_bytes_total", "Raw bytes read from agents");
    m_connections_total_ = &reg.counter("resmon_net_connections_total",
                                        "Agent connections accepted");
    m_rejected_total_ = &reg.counter(
        "resmon_net_connections_rejected_total",
        "Connections dropped for wire-protocol or semantic violations");
    m_stale_dropped_total_ = &reg.counter(
        "resmon_net_stale_connections_dropped_total",
        "Half-open connections displaced by a newer hello (newest-wins)");
    m_slots_total_ = &reg.counter("resmon_net_slots_total",
                                  "Slots fully collected across all nodes");
    m_slot_timeouts_total_ = &reg.counter(
        "resmon_net_slot_timeouts_total",
        "collect_slot calls that gave up before the barrier completed");
    m_scrapes_total_ = &reg.counter("resmon_net_metrics_scrapes_total",
                                    "Completed metrics-endpoint scrapes");
    m_connected_agents_ = &reg.gauge(
        "resmon_net_connected_agents",
        "Nodes with a live, hello-completed connection right now");
    m_slot_wait_ms_ = &reg.histogram(
        "resmon_net_slot_wait_ms",
        "Wall-clock milliseconds collect_slot waited at the slot barrier",
        obs::duration_ms_buckets());
    // Eagerly register every wire-error label value so the family is
    // complete (and visible to the docs drift test) before any error
    // happens; count_wire_error then only looks existing series up.
    for (int e = static_cast<int>(wire::WireError::kBadMagic);
         e <= static_cast<int>(wire::WireError::kTruncated); ++e) {
      reg.counter("resmon_net_wire_errors_total",
                  "Byte streams rejected by the frame decoder, by error",
                  {{"error",
                    wire::wire_error_name(static_cast<wire::WireError>(e))}});
    }
    // Degradation observability.
    m_stale_transitions_total_ =
        &reg.counter("resmon_net_stale_transitions_total",
                     "LIVE -> STALE transitions of the staleness policy");
    m_dead_transitions_total_ =
        &reg.counter("resmon_net_dead_transitions_total",
                     "Transitions to DEAD (node evicted after silence)");
    m_rejoins_total_ =
        &reg.counter("resmon_net_rejoins_total",
                     "STALE/DEAD -> LIVE transitions (node reported again)");
    m_degraded_slots_total_ = &reg.counter(
        "resmon_net_degraded_slots_total",
        "Slots completed while skipping at least one non-LIVE node "
        "(sample-and-hold degradation)");
    m_blocked_frames_total_ = &reg.counter(
        "resmon_net_blocked_frames_total",
        "Inbound frames discarded by the controller's block hook");
    m_stale_nodes_ =
        &reg.gauge("resmon_net_stale_nodes", "Nodes currently STALE");
    m_dead_nodes_ =
        &reg.gauge("resmon_net_dead_nodes", "Nodes currently DEAD");
    m_node_state_.resize(options_.num_nodes, nullptr);
    m_node_staleness_ms_.resize(options_.num_nodes, nullptr);
    for (std::size_t node = 0; node < options_.num_nodes; ++node) {
      // Labels carry the *global* node id, so an aggregator fronting a
      // mid-fleet shard exports the same series names the root would.
      const obs::Labels labels = {
          {"node", std::to_string(options_.first_node + node)}};
      m_node_state_[node] = &reg.gauge(
          "resmon_net_node_state",
          "Liveness verdict per node: 0 = live, 1 = stale, 2 = dead",
          labels);
      m_node_staleness_ms_[node] = &reg.gauge(
          "resmon_net_node_staleness_ms",
          "Milliseconds since the node last showed evidence of life",
          labels);
    }
    if (options_.num_shards > 0) {
      m_summaries_total_ =
          &reg.counter("resmon_net_summaries_total",
                       "Slot-summary frames accepted from aggregator shards");
      m_summary_measurements_total_ = &reg.counter(
          "resmon_net_summary_measurements_total",
          "Measurements carried inside accepted slot summaries");
      m_shard_status_total_ =
          &reg.counter("resmon_net_shard_status_total",
                       "Shard-status census frames accepted from aggregators");
      m_shards_connected_ = &reg.gauge(
          "resmon_net_shards_connected",
          "Aggregator shards with a live, hello-completed connection");
      m_shard_live_.resize(options_.num_shards, nullptr);
      m_shard_stale_.resize(options_.num_shards, nullptr);
      m_shard_dead_.resize(options_.num_shards, nullptr);
      for (std::size_t shard = 0; shard < options_.num_shards; ++shard) {
        const obs::Labels labels = {{"shard", std::to_string(shard)}};
        m_shard_live_[shard] = &reg.gauge(
            "resmon_net_shard_live_nodes",
            "LIVE nodes per shard, from the latest shard-status census",
            labels);
        m_shard_stale_[shard] = &reg.gauge(
            "resmon_net_shard_stale_nodes",
            "STALE nodes per shard, from the latest shard-status census",
            labels);
        m_shard_dead_[shard] = &reg.gauge(
            "resmon_net_shard_dead_nodes",
            "DEAD nodes per shard, from the latest shard-status census",
            labels);
      }
    }
  }
}

void Controller::log(const std::string& line) const {
  if (options_.log_sink) options_.log_sink(line);
}

void Controller::serve_metrics(Socket listener) {
  RESMON_REQUIRE(options_.metrics != nullptr,
                 "serve_metrics requires ControllerOptions::metrics");
  RESMON_REQUIRE(listener.valid(), "serve_metrics needs a listening socket");
  RESMON_REQUIRE(!metrics_listener_.valid(),
                 "metrics endpoint already attached");
  metrics_listener_ = std::move(listener);
  poller_.watch(metrics_listener_.fd());
}

void Controller::pump_idle(int duration_ms, std::uint64_t until_scrapes) {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(duration_ms);
  for (;;) {
    if (until_scrapes != 0 && metrics_scrapes_ >= until_scrapes) return;
    const int left = remaining_ms(deadline);
    if (left == 0) return;
    pump(std::min(left, kPumpSliceMs));
  }
}

bool Controller::wait_for_agents(std::size_t count, int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (nodes_seen_ < count) {
    const int left = remaining_ms(deadline);
    if (left == 0) return false;
    pump(std::min(left, kPumpSliceMs));
  }
  return true;
}

bool Controller::wait_for_shards(std::size_t count, int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (shards_seen_ < count) {
    const int left = remaining_ms(deadline);
    if (left == 0) return false;
    pump(std::min(left, kPumpSliceMs));
  }
  return true;
}

std::optional<std::vector<transport::MeasurementMessage>>
Controller::collect_slot(std::size_t t, int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  // The barrier waits for LIVE nodes only: a STALE or DEAD node's slot is
  // given up on, and the pipeline degrades to its last stored sample. The
  // node's progress still counts if its frames do arrive (e.g. right before
  // the verdict flipped).
  auto slot_complete = [&] {
    for (std::size_t node = 0; node < options_.num_nodes; ++node) {
      if (progress_[node] < static_cast<long long>(t) &&
          states_[node] == NodeState::kLive) {
        return false;
      }
    }
    return true;
  };
  const auto wait_start = Clock::now();
  while (!slot_complete()) {
    const int left = remaining_ms(deadline);
    if (left == 0) {
      if (m_slot_timeouts_total_ != nullptr) m_slot_timeouts_total_->inc();
      return std::nullopt;
    }
    pump(std::min(left, kPumpSliceMs));
  }
  bool degraded = false;
  for (std::size_t node = 0; node < options_.num_nodes; ++node) {
    if (progress_[node] < static_cast<long long>(t)) degraded = true;
  }
  // A shard summary marks the slot degraded when the *shard's* barrier
  // skipped a non-LIVE node, even though the summary itself advances every
  // covered node's progress here — this keeps the root's degraded-slot
  // count identical to a single-tier controller fronting the same fleet.
  if (degraded_marks_.count(t) != 0) degraded = true;
  degraded_marks_.erase(degraded_marks_.begin(),
                        degraded_marks_.upper_bound(t));
  if (degraded) {
    ++degraded_slots_;
    if (m_degraded_slots_total_ != nullptr) m_degraded_slots_total_->inc();
  }
  if (m_slots_total_ != nullptr) {
    m_slots_total_->inc();
    m_slot_wait_ms_->observe(
        std::chrono::duration<double, std::milli>(Clock::now() - wait_start)
            .count());
  }

  std::vector<transport::MeasurementMessage> out;
  for (std::size_t node = 0; node < options_.num_nodes; ++node) {
    std::deque<transport::MeasurementMessage>& q = inbox_[node];
    // Skipped or re-collected slots would leave older frames behind;
    // discard them so the store only ever moves forward.
    while (!q.empty() && q.front().step < t) q.pop_front();
    if (!q.empty() && q.front().step == t) {
      out.push_back(std::move(q.front()));
      q.pop_front();
    }
  }
  return out;
}

void Controller::pump(int timeout_ms) {
  std::vector<PollEvent> events = poller_.wait(timeout_ms);
  for (const PollEvent& ev : events) {
    if (ev.fd == listener_.fd()) {
      accept_pending();
      continue;
    }
    if (metrics_listener_.valid() && ev.fd == metrics_listener_.fd()) {
      accept_metrics_pending();
      continue;
    }
    if (auto mit = metrics_connections_.find(ev.fd);
        mit != metrics_connections_.end()) {
      if ((ev.readable || ev.hangup) && !service_metrics(mit->second)) {
        drop_metrics(ev.fd);
      }
      continue;
    }
    auto it = connections_.find(ev.fd);
    if (it == connections_.end()) continue;  // dropped earlier this round
    if (ev.readable || ev.hangup) {
      if (!service(it->second)) drop(ev.fd, /*rejected=*/false);
    }
  }
  update_node_states();
}

void Controller::accept_pending() {
  while (std::optional<Socket> sock = listener_.accept()) {
    const int fd = sock->fd();
    connections_.emplace(fd,
                         Connection(std::move(*sock), options_.max_payload));
    poller_.watch(fd);
    if (m_connections_total_ != nullptr) m_connections_total_->inc();
  }
}

void Controller::accept_metrics_pending() {
  while (std::optional<Socket> sock = metrics_listener_.accept()) {
    const int fd = sock->fd();
    metrics_connections_.emplace(fd, MetricsConnection(std::move(*sock)));
    poller_.watch(fd);
  }
}

bool Controller::service_metrics(MetricsConnection& conn) {
  std::uint8_t buf[1024];
  bool request_done = false;
  for (;;) {
    std::size_t n = 0;
    const IoStatus status = conn.sock.read_some(buf, n);
    if (status == IoStatus::kOk) {
      conn.request.append(reinterpret_cast<const char*>(buf), n);
      // Ignore whatever was actually asked for: every request gets the full
      // exposition. Cap the request buffer so a hostile client cannot grow
      // it without bound.
      if (conn.request.size() > 8192) return false;
      if (conn.request.find("\r\n\r\n") != std::string::npos ||
          conn.request.find("\n\n") != std::string::npos) {
        request_done = true;
        break;
      }
      continue;
    }
    if (status == IoStatus::kWouldBlock) return true;  // wait for more
    // kClosed with a nonempty request: peer shut down its write side
    // (e.g. `curl --http0.9`); still answer.
    request_done = !conn.request.empty();
    break;
  }
  if (!request_done) return false;

  const std::string body = options_.metrics->render_text();
  std::string response =
      "HTTP/1.0 200 OK\r\n"
      "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
      "Content-Length: " +
      std::to_string(body.size()) +
      "\r\n"
      "Connection: close\r\n\r\n" +
      body;
  const bool wrote = conn.sock.write_all(
      {reinterpret_cast<const std::uint8_t*>(response.data()),
       response.size()},
      1000);
  if (wrote) {
    ++metrics_scrapes_;
    if (m_scrapes_total_ != nullptr) m_scrapes_total_->inc();
  }
  return false;  // one response per connection; close either way
}

void Controller::drop_metrics(int fd) {
  auto it = metrics_connections_.find(fd);
  if (it == metrics_connections_.end()) return;
  poller_.unwatch(fd);
  metrics_connections_.erase(it);  // Socket destructor closes the fd
}

void Controller::count_wire_error(wire::WireError error) {
  if (options_.metrics == nullptr) return;
  // Every label value was pre-registered in the constructor, so this is a
  // pure lookup of the existing series.
  options_.metrics
      ->counter("resmon_net_wire_errors_total",
                "Byte streams rejected by the frame decoder, by error",
                {{"error", wire::wire_error_name(error)}})
      .inc();
}

void Controller::set_node_state(std::size_t node, NodeState state) {
  const NodeState previous = states_[node];
  if (previous == state) return;
  states_[node] = state;
  if (state == NodeState::kStale) {
    ++stale_transitions_;
    if (m_stale_transitions_total_ != nullptr) {
      m_stale_transitions_total_->inc();
    }
  } else if (state == NodeState::kDead) {
    ++dead_transitions_;
    if (m_dead_transitions_total_ != nullptr) m_dead_transitions_total_->inc();
  } else {
    ++rejoins_;
    if (m_rejoins_total_ != nullptr) m_rejoins_total_->inc();
  }
  if (options_.metrics != nullptr) {
    m_node_state_[node]->set(static_cast<double>(state));
    const auto count_in = [&](NodeState s) {
      return static_cast<double>(
          std::count(states_.begin(), states_.end(), s));
    };
    m_stale_nodes_->set(count_in(NodeState::kStale));
    m_dead_nodes_->set(count_in(NodeState::kDead));
  }
}

Clock::time_point Controller::staleness_now() const {
  return options_.staleness_clock ? options_.staleness_clock() : Clock::now();
}

void Controller::touch(std::size_t node) {
  last_seen_[node] = staleness_now();
  if (m_node_staleness_ms_.size() > node &&
      m_node_staleness_ms_[node] != nullptr) {
    m_node_staleness_ms_[node]->set(0.0);
  }
  if (states_[node] != NodeState::kLive) {
    set_node_state(node, NodeState::kLive);
  }
}

void Controller::update_node_states() {
  if (options_.stale_after_ms <= 0) return;
  const auto now = staleness_now();
  for (std::size_t node = 0; node < options_.num_nodes; ++node) {
    const auto silence_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            now - last_seen_[node])
            .count();
    if (!m_node_staleness_ms_.empty()) {
      m_node_staleness_ms_[node]->set(static_cast<double>(silence_ms));
    }
    if (options_.dead_after_ms > 0 && silence_ms >= options_.dead_after_ms) {
      if (states_[node] != NodeState::kDead) {
        set_node_state(node, NodeState::kDead);
        // Evict: whatever socket the node still holds is presumed dead
        // weight. A later frame requires a fresh connection (rejoin).
        const long long global =
            static_cast<long long>(options_.first_node + node);
        const auto it = std::find_if(
            connections_.begin(), connections_.end(),
            [&](const auto& kv) { return kv.second.node == global; });
        if (it != connections_.end()) drop(it->first, /*rejected=*/false);
      }
    } else if (silence_ms >= options_.stale_after_ms) {
      if (states_[node] == NodeState::kLive) {
        set_node_state(node, NodeState::kStale);
      }
    }
  }
}

bool Controller::service(Connection& conn) {
  std::uint8_t buf[4096];
  for (;;) {
    std::size_t n = 0;
    const IoStatus status = conn.sock.read_some(buf, n);
    if (status == IoStatus::kOk) {
      bytes_received_ += n;
      if (m_bytes_total_ != nullptr) m_bytes_total_->inc(n);
      if (!conn.decoder.feed({buf, n})) {
        ++connections_rejected_;
        if (m_rejected_total_ != nullptr) m_rejected_total_->inc();
        count_wire_error(conn.decoder.error());
        return false;  // poisoned stream: drop the connection
      }
      while (std::optional<wire::Frame> frame = conn.decoder.next()) {
        ++frames_received_;
        if (m_frames_total_ != nullptr) m_frames_total_->inc();
        if (!handle_frame(conn, std::move(*frame))) {
          ++connections_rejected_;
          if (m_rejected_total_ != nullptr) m_rejected_total_->inc();
          return false;
        }
      }
      continue;
    }
    if (status == IoStatus::kWouldBlock) return true;
    return false;  // kClosed
  }
}

bool Controller::handle_frame(Connection& conn, wire::Frame&& frame) {
  if (std::holds_alternative<wire::HelloFrame>(frame)) {
    return handle_hello(conn, std::get<wire::HelloFrame>(frame));
  }
  if (std::holds_alternative<wire::ShardHelloFrame>(frame)) {
    return handle_shard_hello(conn, std::get<wire::ShardHelloFrame>(frame));
  }
  if (std::holds_alternative<wire::SlotSummaryFrame>(frame)) {
    return handle_slot_summary(
        conn, std::move(std::get<wire::SlotSummaryFrame>(frame)));
  }
  if (std::holds_alternative<wire::ShardStatusFrame>(frame)) {
    return handle_shard_status(conn, std::get<wire::ShardStatusFrame>(frame));
  }

  // Every other agent frame requires a completed handshake, and its node id
  // must match the handshake (one stream speaks for one node).
  if (std::holds_alternative<transport::MeasurementMessage>(frame)) {
    transport::MeasurementMessage& m =
        std::get<transport::MeasurementMessage>(frame);
    if (conn.node < 0 || m.node != static_cast<std::size_t>(conn.node) ||
        m.values.size() != options_.num_resources) {
      return false;
    }
    if (options_.block_hook &&
        options_.block_hook(static_cast<std::uint32_t>(m.node), m.step)) {
      ++blocked_frames_;
      if (m_blocked_frames_total_ != nullptr) m_blocked_frames_total_->inc();
      return true;  // frame eaten by the simulated partition; stream is fine
    }
    const std::size_t local = m.node - options_.first_node;
    progress_[local] =
        std::max(progress_[local], static_cast<long long>(m.step));
    touch(local);
    inbox_[local].push_back(std::move(m));
    if (m_measurements_total_ != nullptr) m_measurements_total_->inc();
    return true;
  }
  if (std::holds_alternative<wire::HeartbeatFrame>(frame)) {
    const wire::HeartbeatFrame hb = std::get<wire::HeartbeatFrame>(frame);
    if (conn.node < 0 || hb.node != static_cast<std::uint32_t>(conn.node)) {
      return false;
    }
    if (options_.block_hook && options_.block_hook(hb.node, hb.step)) {
      ++blocked_frames_;
      if (m_blocked_frames_total_ != nullptr) m_blocked_frames_total_->inc();
      return true;
    }
    const std::size_t local = hb.node - options_.first_node;
    progress_[local] =
        std::max(progress_[local], static_cast<long long>(hb.step));
    touch(local);
    if (m_heartbeats_total_ != nullptr) m_heartbeats_total_->inc();
    return true;
  }
  // HelloAck is controller -> agent only.
  return false;
}

bool Controller::handle_hello(Connection& conn, const wire::HelloFrame& hello) {
  HelloReject reject = HelloReject::kNone;
  if (hello.node < options_.first_node ||
      hello.node >= options_.first_node + options_.num_nodes) {
    reject = HelloReject::kNodeOutOfRange;
  } else if (hello.num_resources != options_.num_resources) {
    reject = HelloReject::kDimensionMismatch;
  } else if (conn.node >= 0 || conn.shard >= 0) {
    reject = HelloReject::kDuplicateNode;  // second hello on one stream
  } else {
    // Newest-wins: a reconnecting agent can beat the controller to
    // noticing its old connection died (lost RST, partition). The fresh
    // hello is authoritative — drop the stale socket instead of locking
    // the node out with kDuplicateNode. `conn` stays valid: erasing a
    // different unordered_map element does not invalidate it.
    const auto stale = std::find_if(
        connections_.begin(), connections_.end(), [&](const auto& kv) {
          return kv.second.node == static_cast<long long>(hello.node);
        });
    if (stale != connections_.end()) {
      drop(stale->first, /*rejected=*/false);
      if (m_stale_dropped_total_ != nullptr) m_stale_dropped_total_->inc();
    }
  }
  const wire::HelloAckFrame ack{
      .node = hello.node,
      .accepted = reject == HelloReject::kNone,
      .reason = static_cast<std::uint8_t>(reject)};
  // Best-effort ack; a failed write surfaces as a drop either way.
  const bool wrote = conn.sock.write_all(wire::encode(ack), 1000);
  if (reject != HelloReject::kNone) {
    log("rejected hello from node " + std::to_string(hello.node) + " (" +
        wire::hello_reject_name(static_cast<std::uint8_t>(reject)) + ")");
    return false;
  }
  if (!wrote) return false;
  conn.node = static_cast<long long>(hello.node);
  const std::size_t local = hello.node - options_.first_node;
  ++connected_nodes_;
  if (m_connected_agents_ != nullptr) {
    m_connected_agents_->set(static_cast<double>(connected_nodes_));
  }
  if (!seen_[local]) {
    seen_[local] = 1;
    ++nodes_seen_;
  }
  touch(local);  // a fresh handshake is evidence of life (rejoin)
  return true;
}

bool Controller::handle_shard_hello(Connection& conn,
                                    const wire::ShardHelloFrame& sh) {
  HelloReject reject = HelloReject::kNone;
  if (options_.num_shards == 0) {
    reject = HelloReject::kShardsNotEnabled;
  } else if (sh.shard >= options_.num_shards) {
    reject = HelloReject::kShardOutOfRange;
  } else if (sh.protocol != wire::kProtocolVersion) {
    reject = HelloReject::kVersionMismatch;
  } else if (sh.num_nodes == 0 || sh.first_node < options_.first_node ||
             std::size_t{sh.first_node} + sh.num_nodes >
                 options_.first_node + options_.num_nodes) {
    reject = HelloReject::kBadNodeRange;
  } else if (sh.num_resources != options_.num_resources) {
    reject = HelloReject::kDimensionMismatch;
  } else if (conn.node >= 0 || conn.shard >= 0) {
    reject = HelloReject::kDuplicateNode;  // second hello on one stream
  } else {
    // Newest-wins, exactly as for agent hellos: a reconnecting aggregator's
    // fresh shard hello displaces whatever stale socket the shard held.
    const auto stale = std::find_if(
        connections_.begin(), connections_.end(), [&](const auto& kv) {
          return kv.second.shard == static_cast<long long>(sh.shard);
        });
    if (stale != connections_.end()) {
      drop(stale->first, /*rejected=*/false);
      if (m_stale_dropped_total_ != nullptr) m_stale_dropped_total_->inc();
    }
  }
  // The ack echoes the shard id in the node field.
  const wire::HelloAckFrame ack{
      .node = sh.shard,
      .accepted = reject == HelloReject::kNone,
      .reason = static_cast<std::uint8_t>(reject)};
  const bool wrote = conn.sock.write_all(wire::encode(ack), 1000);
  if (reject != HelloReject::kNone) {
    log("rejected shard hello from shard " + std::to_string(sh.shard) + " (" +
        wire::describe_hello_reject(static_cast<std::uint8_t>(reject),
                                    static_cast<std::uint8_t>(sh.protocol)) +
        ")");
    return false;
  }
  if (!wrote) return false;
  conn.shard = static_cast<long long>(sh.shard);
  ShardInfo& info = shards_[sh.shard];
  info.first_node = sh.first_node;
  info.num_nodes = sh.num_nodes;
  if (!info.seen) {
    info.seen = true;
    ++shards_seen_;
  }
  ++connected_shards_;
  if (m_shards_connected_ != nullptr) {
    m_shards_connected_->set(static_cast<double>(connected_shards_));
  }
  // The shard speaks for every node it fronts: mark them seen (so
  // wait_for_agents counts fronted nodes too) and alive.
  for (std::size_t node = sh.first_node;
       node < std::size_t{sh.first_node} + sh.num_nodes; ++node) {
    const std::size_t local = node - options_.first_node;
    if (!seen_[local]) {
      seen_[local] = 1;
      ++nodes_seen_;
    }
    touch(local);
  }
  log("shard " + std::to_string(sh.shard) + " connected (nodes [" +
      std::to_string(sh.first_node) + ", " +
      std::to_string(std::size_t{sh.first_node} + sh.num_nodes) + "))");
  return true;
}

bool Controller::handle_slot_summary(Connection& conn,
                                     wire::SlotSummaryFrame&& s) {
  if (conn.shard < 0 || s.shard != static_cast<std::uint32_t>(conn.shard) ||
      s.num_resources != options_.num_resources) {
    return false;
  }
  const ShardInfo& info = shards_[s.shard];
  for (const transport::MeasurementMessage& m : s.measurements) {
    if (m.node < info.first_node ||
        m.node >= info.first_node + info.num_nodes) {
      return false;  // summary smuggles a node the shard does not own
    }
  }
  // The summary is the shard's slot barrier output: every fronted node has
  // progressed to `step` (non-LIVE nodes were skipped, which the shard
  // reports via `degraded` — see collect_slot).
  for (std::size_t node = info.first_node;
       node < info.first_node + info.num_nodes; ++node) {
    const std::size_t local = node - options_.first_node;
    progress_[local] =
        std::max(progress_[local], static_cast<long long>(s.step));
    touch(local);
  }
  for (transport::MeasurementMessage& m : s.measurements) {
    const std::size_t local = m.node - options_.first_node;
    inbox_[local].push_back(std::move(m));
    if (m_measurements_total_ != nullptr) m_measurements_total_->inc();
  }
  if (s.degraded > 0) degraded_marks_.insert(s.step);
  ++summaries_received_;
  summary_measurements_ += s.measurements.size();
  if (m_summaries_total_ != nullptr) m_summaries_total_->inc();
  if (m_summary_measurements_total_ != nullptr) {
    m_summary_measurements_total_->inc(s.measurements.size());
  }
  return true;
}

bool Controller::handle_shard_status(Connection& conn,
                                     const wire::ShardStatusFrame& s) {
  if (conn.shard < 0 || s.shard != static_cast<std::uint32_t>(conn.shard)) {
    return false;
  }
  if (m_shard_status_total_ != nullptr) {
    m_shard_status_total_->inc();
    m_shard_live_[s.shard]->set(static_cast<double>(s.live));
    m_shard_stale_[s.shard]->set(static_cast<double>(s.stale));
    m_shard_dead_[s.shard]->set(static_cast<double>(s.dead));
  }
  return true;
}

void Controller::drop(int fd, bool rejected) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  if (rejected) {
    ++connections_rejected_;
    if (m_rejected_total_ != nullptr) m_rejected_total_->inc();
  }
  if (it->second.node >= 0) --connected_nodes_;
  if (m_connected_agents_ != nullptr) {
    m_connected_agents_->set(static_cast<double>(connected_nodes_));
  }
  if (it->second.shard >= 0) {
    --connected_shards_;
    if (m_shards_connected_ != nullptr) {
      m_shards_connected_->set(static_cast<double>(connected_shards_));
    }
    log("shard " + std::to_string(it->second.shard) +
        " connection dropped");
  }
  poller_.unwatch(fd);
  connections_.erase(it);  // Socket destructor closes the fd
}

}  // namespace resmon::net
