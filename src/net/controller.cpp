#include "net/controller.hpp"

#include <algorithm>
#include <chrono>

namespace resmon::net {

namespace {

using Clock = std::chrono::steady_clock;

int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return static_cast<int>(std::max<long long>(0, left.count()));
}

constexpr int kPumpSliceMs = 20;  ///< poll granularity inside a wait loop

}  // namespace

Controller::Controller(Socket listener, const ControllerOptions& options)
    : options_(options),
      listener_(std::move(listener)),
      seen_(options.num_nodes, 0),
      progress_(options.num_nodes, -1),
      inbox_(options.num_nodes) {
  RESMON_REQUIRE(options.num_nodes > 0, "Controller needs at least one node");
  RESMON_REQUIRE(options.num_resources > 0,
                 "Controller needs at least one resource");
  RESMON_REQUIRE(listener_.valid(), "Controller needs a listening socket");
  poller_.watch(listener_.fd());
}

bool Controller::wait_for_agents(std::size_t count, int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (nodes_seen_ < count) {
    const int left = remaining_ms(deadline);
    if (left == 0) return false;
    pump(std::min(left, kPumpSliceMs));
  }
  return true;
}

std::optional<std::vector<transport::MeasurementMessage>>
Controller::collect_slot(std::size_t t, int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  auto slot_complete = [&] {
    return std::all_of(progress_.begin(), progress_.end(),
                       [&](long long p) {
                         return p >= static_cast<long long>(t);
                       });
  };
  while (!slot_complete()) {
    const int left = remaining_ms(deadline);
    if (left == 0) return std::nullopt;
    pump(std::min(left, kPumpSliceMs));
  }

  std::vector<transport::MeasurementMessage> out;
  for (std::size_t node = 0; node < options_.num_nodes; ++node) {
    std::deque<transport::MeasurementMessage>& q = inbox_[node];
    // Skipped or re-collected slots would leave older frames behind;
    // discard them so the store only ever moves forward.
    while (!q.empty() && q.front().step < t) q.pop_front();
    if (!q.empty() && q.front().step == t) {
      out.push_back(std::move(q.front()));
      q.pop_front();
    }
  }
  return out;
}

void Controller::pump(int timeout_ms) {
  std::vector<PollEvent> events = poller_.wait(timeout_ms);
  for (const PollEvent& ev : events) {
    if (ev.fd == listener_.fd()) {
      accept_pending();
      continue;
    }
    auto it = connections_.find(ev.fd);
    if (it == connections_.end()) continue;  // dropped earlier this round
    if (ev.readable || ev.hangup) {
      if (!service(it->second)) drop(ev.fd, /*rejected=*/false);
    }
  }
}

void Controller::accept_pending() {
  while (std::optional<Socket> sock = listener_.accept()) {
    const int fd = sock->fd();
    connections_.emplace(fd,
                         Connection(std::move(*sock), options_.max_payload));
    poller_.watch(fd);
  }
}

bool Controller::service(Connection& conn) {
  std::uint8_t buf[4096];
  for (;;) {
    std::size_t n = 0;
    const IoStatus status = conn.sock.read_some(buf, n);
    if (status == IoStatus::kOk) {
      bytes_received_ += n;
      if (!conn.decoder.feed({buf, n})) {
        ++connections_rejected_;
        return false;  // poisoned stream: drop the connection
      }
      while (std::optional<wire::Frame> frame = conn.decoder.next()) {
        ++frames_received_;
        if (!handle_frame(conn, std::move(*frame))) {
          ++connections_rejected_;
          return false;
        }
      }
      continue;
    }
    if (status == IoStatus::kWouldBlock) return true;
    return false;  // kClosed
  }
}

bool Controller::handle_frame(Connection& conn, wire::Frame&& frame) {
  if (std::holds_alternative<wire::HelloFrame>(frame)) {
    const wire::HelloFrame hello = std::get<wire::HelloFrame>(frame);
    HelloReject reject = HelloReject::kNone;
    if (hello.node >= options_.num_nodes) {
      reject = HelloReject::kNodeOutOfRange;
    } else if (hello.num_resources != options_.num_resources) {
      reject = HelloReject::kDimensionMismatch;
    } else if (conn.node >= 0) {
      reject = HelloReject::kDuplicateNode;  // second hello on one stream
    } else {
      // Newest-wins: a reconnecting agent can beat the controller to
      // noticing its old connection died (lost RST, partition). The fresh
      // hello is authoritative — drop the stale socket instead of locking
      // the node out with kDuplicateNode. `conn` stays valid: erasing a
      // different unordered_map element does not invalidate it.
      const auto stale = std::find_if(
          connections_.begin(), connections_.end(), [&](const auto& kv) {
            return kv.second.node == static_cast<long long>(hello.node);
          });
      if (stale != connections_.end()) drop(stale->first, /*rejected=*/false);
    }
    const wire::HelloAckFrame ack{
        .node = hello.node,
        .accepted = reject == HelloReject::kNone,
        .reason = static_cast<std::uint8_t>(reject)};
    // Best-effort ack; a failed write surfaces as a drop either way.
    const bool wrote = conn.sock.write_all(wire::encode(ack), 1000);
    if (reject != HelloReject::kNone || !wrote) return false;
    conn.node = static_cast<long long>(hello.node);
    ++connected_nodes_;
    if (!seen_[hello.node]) {
      seen_[hello.node] = 1;
      ++nodes_seen_;
    }
    return true;
  }

  // Every other agent frame requires a completed handshake, and its node id
  // must match the handshake (one stream speaks for one node).
  if (std::holds_alternative<transport::MeasurementMessage>(frame)) {
    transport::MeasurementMessage& m =
        std::get<transport::MeasurementMessage>(frame);
    if (conn.node < 0 || m.node != static_cast<std::size_t>(conn.node) ||
        m.values.size() != options_.num_resources) {
      return false;
    }
    progress_[m.node] =
        std::max(progress_[m.node], static_cast<long long>(m.step));
    inbox_[m.node].push_back(std::move(m));
    return true;
  }
  if (std::holds_alternative<wire::HeartbeatFrame>(frame)) {
    const wire::HeartbeatFrame hb = std::get<wire::HeartbeatFrame>(frame);
    if (conn.node < 0 || hb.node != static_cast<std::uint32_t>(conn.node)) {
      return false;
    }
    progress_[hb.node] =
        std::max(progress_[hb.node], static_cast<long long>(hb.step));
    return true;
  }
  // HelloAck is controller -> agent only.
  return false;
}

void Controller::drop(int fd, bool rejected) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  if (rejected) ++connections_rejected_;
  if (it->second.node >= 0) --connected_nodes_;
  poller_.unwatch(fd);
  connections_.erase(it);  // Socket destructor closes the fd
}

}  // namespace resmon::net
