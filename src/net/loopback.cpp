#include "net/loopback.hpp"

namespace resmon::net {

void LoopbackLink::send(transport::MeasurementMessage message) {
  const std::vector<std::uint8_t> bytes = wire::encode(message);
  // One source of truth for bandwidth: the encoder must produce exactly
  // wire_size() bytes (what Channel::send charges below).
  if (bytes.size() != message.wire_size()) {
    throw InvalidState("LoopbackLink: encoder size disagrees with wire_size");
  }
  if (!decoder_.feed(bytes)) {
    throw InvalidState(std::string("LoopbackLink: self-decode failed: ") +
                       wire::wire_error_name(decoder_.error()));
  }
  std::optional<wire::Frame> frame = decoder_.next();
  if (!frame.has_value() || !decoder_.at_frame_boundary() ||
      !std::holds_alternative<transport::MeasurementMessage>(*frame)) {
    throw InvalidState("LoopbackLink: self-decode yielded no measurement");
  }
  channel_.send(std::move(std::get<transport::MeasurementMessage>(*frame)));
}

}  // namespace resmon::net
