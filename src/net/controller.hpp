// Controller: the central node's socket server.
//
// A poll(2) event loop accepts many agent connections, reads whatever bytes
// are available, runs them through each connection's incremental
// FrameDecoder, and buffers decoded measurements per node. The slot
// protocol matches the paper's synchronous model (§IV): every agent sends
// exactly one frame per time slot — a measurement when its §V-A policy
// fires, otherwise a heartbeat — so the controller knows slot t is complete
// once every node's progress reaches t, without any reverse channel.
// collect_slot() surfaces the slot-t measurements in node order; the caller
// applies them to a CentralStore / MonitoringPipeline once per slot.
//
// Protocol violations (bad magic, CRC mismatch, wrong dimensionality, node
// id out of range, ...) drop only the offending connection; an agent may
// reconnect and resume with a fresh hello. A hello for a node that already
// has a live connection wins (newest-wins): the old socket is presumed
// half-open — the controller may simply not have seen the death yet — and
// is dropped in favor of the new one, so reconnection is never locked out.
//
// Graceful degradation: with a stale_after/dead_after policy configured,
// a node that stops reporting is marked STALE after stale_after_ms of
// silence — the slot barrier stops waiting for it, so the pipeline keeps
// producing output from the node's last stored sample (sample-and-hold is
// the CentralStore's natural behavior) — and DEAD after dead_after_ms,
// which also evicts its connection. Any frame from the node, including a
// fresh hello, rejoins it to LIVE immediately. LIVE -> STALE -> DEAD and
// back is fully observable via resmon_net_node_state and the transition
// counters.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/poller.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "transport/channel.hpp"

namespace resmon::net {

/// Inbound-frame gate: return true to discard the frame of (node, step)
/// before it reaches the controller's state, as if the network ate it.
/// resmon::faultnet builds these from a FaultSpec's partition windows; the
/// controller itself knows nothing about fault schedules.
using BlockHook = std::function<bool(std::uint32_t node, std::uint64_t step)>;

/// Liveness verdict of the staleness state machine. Order matters: values
/// are exported as the resmon_net_node_state gauge.
enum class NodeState : std::uint8_t {
  kLive = 0,   ///< reporting within stale_after_ms
  kStale = 1,  ///< silent past stale_after_ms: barrier skips it, the
               ///< pipeline degrades to sample-and-hold for this node
  kDead = 2,   ///< silent past dead_after_ms: evicted; may still rejoin
};

/// Stable lower-case name of a NodeState ("live", "stale", "dead").
const char* node_state_name(NodeState state);

struct ControllerOptions {
  std::size_t num_nodes = 0;      ///< N: nodes this collector fronts
  std::size_t num_resources = 0;  ///< d: required hello dimensionality
  /// First global node id this collector owns: valid hello node ids are
  /// [first_node, first_node + num_nodes). The root controller keeps the
  /// default 0; an aggregator fronting a mid-fleet shard sets its range so
  /// agents keep their global ids end to end (all public per-node APIs and
  /// metric labels speak global ids too).
  std::size_t first_node = 0;
  /// Number of aggregator shards allowed to connect (two-tier root mode).
  /// 0 = single-tier: shard hellos are rejected with kShardsNotEnabled.
  /// With M > 0 the root also accepts kSlotSummary/kShardStatus frames and
  /// exports per-shard staleness gauges; direct agent connections keep
  /// working, so a fleet can migrate tier by tier.
  std::size_t num_shards = 0;
  /// Per-connection payload cap handed to the decoders.
  std::size_t max_payload = wire::kMaxPayloadSize;
  /// Optional metrics sink (non-owning): the resmon_net_* series, and the
  /// registry the metrics endpoint (serve_metrics) exposes. nullptr = no
  /// instrumentation and no endpoint.
  obs::MetricsRegistry* metrics = nullptr;

  /// Graceful-degradation policy. A node silent for stale_after_ms becomes
  /// STALE: the slot barrier stops waiting for it and downstream stages run
  /// on its last stored sample (sample-and-hold). Silent past dead_after_ms
  /// it becomes DEAD and its connection (if any) is evicted. Any frame from
  /// the node — including a fresh hello — makes it LIVE again (rejoin).
  /// 0 disables the state machine: the barrier waits for every node
  /// forever (well, until collect_slot's timeout).
  int stale_after_ms = 0;
  int dead_after_ms = 0;  ///< 0 = nodes never pass STALE

  /// Clock read by the staleness state machine (last-seen bookkeeping and
  /// silence timers) — and by nothing else. Empty = steady_clock::now().
  /// Tests and the scenario runner inject a manual clock here to drive
  /// LIVE -> STALE -> DEAD deterministically, without real sleeps.
  std::function<std::chrono::steady_clock::time_point()> staleness_clock;

  /// Optional inbound-frame gate (fault injection). Empty = accept all.
  BlockHook block_hook;

  /// Optional operator log sink: one human-readable line per noteworthy
  /// event (rejected hello with its named reason, shard connects, streams
  /// dropped for wire errors). Empty = silent. The binaries route this to
  /// stderr; the library never writes to std streams on its own.
  std::function<void(const std::string&)> log_sink;
};

/// Hello rejection vocabulary — shared with agents/aggregators, so it lives
/// in net/wire.hpp; aliased here for the controller-side call sites.
using HelloReject = wire::HelloReject;

class Controller {
 public:
  /// Takes ownership of a listening socket from Socket::listen_tcp.
  Controller(Socket listener, const ControllerOptions& options);

  /// Port the listener is bound to (resolves port-0 binds).
  std::uint16_t port() const { return listener_.local_port(); }

  /// Attach a second listening socket serving the metrics registry as a
  /// Prometheus text exposition over minimal HTTP/1.0 ("GET anything" ->
  /// 200 + render_text + close). Scrapes are handled inside the same
  /// poll(2) loop that drives the agents, so the endpoint is live whenever
  /// the controller is pumping (wait_for_agents / collect_slot / pump_idle).
  /// Requires ControllerOptions::metrics.
  void serve_metrics(Socket listener);

  /// Port of the metrics listener (after serve_metrics).
  std::uint16_t metrics_port() const { return metrics_listener_.local_port(); }

  /// Completed metrics scrapes (responses fully written).
  std::uint64_t metrics_scrapes() const { return metrics_scrapes_; }

  /// Pump the event loop for `duration_ms` without waiting on any slot:
  /// lets the metrics endpoint answer scrapes after the run loop finished.
  /// Returns early once `until_scrapes` total scrapes have completed
  /// (0 = never return early).
  void pump_idle(int duration_ms, std::uint64_t until_scrapes = 0);

  /// Pump the event loop until `count` distinct nodes have completed the
  /// hello handshake at least once, or `timeout_ms` elapses. Counts nodes
  /// ever seen, not live sockets: a fast agent may have pushed its whole
  /// run into the TCP buffer and disconnected before this is even called,
  /// and its buffered frames are still perfectly collectable.
  bool wait_for_agents(std::size_t count, int timeout_ms);

  /// Pump until every node's progress covers slot `t`, then return the
  /// slot-t measurements in node order (nodes whose policy stayed silent
  /// contribute nothing). nullopt on timeout. Slots must be collected in
  /// increasing order starting at 0.
  std::optional<std::vector<transport::MeasurementMessage>> collect_slot(
      std::size_t t, int timeout_ms);

  /// Nodes currently connected (hello completed, socket alive). Nodes
  /// fronted through a shard count from the shard hello on.
  std::size_t connected_agents() const { return connected_nodes_; }
  /// Distinct nodes that have ever completed a hello handshake (directly or
  /// via a shard hello covering their range).
  std::size_t nodes_seen() const { return nodes_seen_; }

  /// Pump until `count` distinct shards have completed their shard-hello
  /// handshake, or `timeout_ms` elapses (two-tier root mode).
  bool wait_for_shards(std::size_t count, int timeout_ms);
  /// Distinct shards that ever completed a shard hello.
  std::size_t shards_seen() const { return shards_seen_; }
  /// Shards with a live, handshake-completed connection right now.
  std::size_t connected_shards() const { return connected_shards_; }
  /// Slot-summary frames accepted from shards.
  std::uint64_t summaries_received() const { return summaries_received_; }
  /// Measurements carried inside accepted slot summaries.
  std::uint64_t summary_measurements() const {
    return summary_measurements_;
  }

  std::uint64_t frames_received() const { return frames_received_; }
  std::uint64_t bytes_received() const { return bytes_received_; }
  /// Connections dropped for wire-protocol or semantic violations.
  std::uint64_t connections_rejected() const { return connections_rejected_; }

  /// Current liveness verdict for one node (global node id).
  NodeState node_state(std::size_t node) const {
    return states_.at(node - options_.first_node);
  }
  /// LIVE -> STALE transitions (a node may contribute several).
  std::uint64_t stale_transitions() const { return stale_transitions_; }
  /// -> DEAD transitions.
  std::uint64_t dead_transitions() const { return dead_transitions_; }
  /// STALE/DEAD -> LIVE transitions (the node reported again).
  std::uint64_t rejoins() const { return rejoins_; }
  /// Slots the barrier completed while skipping at least one non-LIVE node
  /// (i.e. slots that ran on sample-and-hold data for some node).
  std::uint64_t degraded_slots() const { return degraded_slots_; }
  /// Inbound frames discarded by ControllerOptions::block_hook.
  std::uint64_t blocked_frames() const { return blocked_frames_; }

 private:
  struct Connection {
    Socket sock;
    wire::FrameDecoder decoder;
    long long node = -1;   ///< -1 until the hello handshake completes
    long long shard = -1;  ///< -1 unless a shard hello completed instead
    Connection(Socket s, std::size_t max_payload)
        : sock(std::move(s)), decoder(max_payload) {}
  };

  /// What the root knows about one aggregator shard after its hello.
  struct ShardInfo {
    std::size_t first_node = 0;
    std::size_t num_nodes = 0;
    bool seen = false;
  };

  /// A pending scrape on the metrics port: buffered request bytes until
  /// the header terminator (or EOF) arrives, then one response and close.
  struct MetricsConnection {
    Socket sock;
    std::string request;
    explicit MetricsConnection(Socket s) : sock(std::move(s)) {}
  };

  /// One event-loop iteration: accept, read, decode, dispatch.
  void pump(int timeout_ms);
  void accept_pending();
  void accept_metrics_pending();
  /// Read every available byte from `conn`; returns false if the
  /// connection should be dropped.
  bool service(Connection& conn);
  /// Returns false once the scrape is finished (response sent or peer
  /// gone) and the connection should be closed.
  bool service_metrics(MetricsConnection& conn);
  bool handle_frame(Connection& conn, wire::Frame&& frame);
  bool handle_hello(Connection& conn, const wire::HelloFrame& hello);
  bool handle_shard_hello(Connection& conn, const wire::ShardHelloFrame& sh);
  bool handle_slot_summary(Connection& conn, wire::SlotSummaryFrame&& s);
  bool handle_shard_status(Connection& conn, const wire::ShardStatusFrame& s);
  void drop(int fd, bool rejected);
  void drop_metrics(int fd);
  /// Count a poisoned stream against resmon_net_wire_errors_total.
  void count_wire_error(wire::WireError error);
  /// Now according to the staleness clock (injectable; see
  /// ControllerOptions::staleness_clock).
  std::chrono::steady_clock::time_point staleness_now() const;
  /// Record evidence of life from a node and rejoin it if it was not LIVE.
  /// Takes a *local* index (global id minus first_node), like every private
  /// per-node helper; the public API and metric labels speak global ids.
  void touch(std::size_t node);
  /// Apply the stale_after/dead_after policy to every node's silence timer;
  /// evicts connections of nodes that just became DEAD. Called once per
  /// pump(). No-op when stale_after_ms is 0.
  void update_node_states();
  /// Move `node` to `state`, maintaining counters and gauges.
  void set_node_state(std::size_t node, NodeState state);

  ControllerOptions options_;
  Socket listener_;
  Socket metrics_listener_;  ///< invalid until serve_metrics
  Poller poller_;
  std::unordered_map<int, Connection> connections_;
  std::unordered_map<int, MetricsConnection> metrics_connections_;
  std::size_t connected_nodes_ = 0;
  std::vector<char> seen_;  ///< per-node: hello ever completed
  std::size_t nodes_seen_ = 0;
  /// Highest slot each node has reported (measurement or heartbeat); -1
  /// until the first frame. Survives reconnects.
  std::vector<long long> progress_;
  /// Received measurements not yet surfaced by collect_slot, per node,
  /// in increasing step order (TCP preserves per-connection order).
  std::vector<std::deque<transport::MeasurementMessage>> inbox_;
  /// Staleness state machine (all vectors indexed by node).
  std::vector<NodeState> states_;
  /// Last evidence of life; starts at construction, so a node that never
  /// connects still ages into STALE/DEAD instead of blocking forever.
  std::vector<std::chrono::steady_clock::time_point> last_seen_;
  std::uint64_t stale_transitions_ = 0;
  std::uint64_t dead_transitions_ = 0;
  std::uint64_t rejoins_ = 0;
  std::uint64_t degraded_slots_ = 0;
  std::uint64_t blocked_frames_ = 0;
  std::uint64_t frames_received_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t connections_rejected_ = 0;
  std::uint64_t metrics_scrapes_ = 0;
  /// Two-tier root bookkeeping (empty/zero in single-tier mode).
  std::vector<ShardInfo> shards_;  ///< size num_shards
  std::size_t shards_seen_ = 0;
  std::size_t connected_shards_ = 0;
  std::uint64_t summaries_received_ = 0;
  std::uint64_t summary_measurements_ = 0;
  /// Slots some shard summary flagged degraded, pending consumption by
  /// collect_slot's own degradation accounting (so a two-tier root counts
  /// exactly the slots a single-tier controller would).
  std::set<std::uint64_t> degraded_marks_;
  // Optional metrics (all nullptr when no registry was given).
  obs::Counter* m_frames_total_ = nullptr;
  obs::Counter* m_measurements_total_ = nullptr;
  obs::Counter* m_heartbeats_total_ = nullptr;
  obs::Counter* m_bytes_total_ = nullptr;
  obs::Counter* m_connections_total_ = nullptr;
  obs::Counter* m_rejected_total_ = nullptr;
  obs::Counter* m_stale_dropped_total_ = nullptr;
  obs::Counter* m_slots_total_ = nullptr;
  obs::Counter* m_slot_timeouts_total_ = nullptr;
  obs::Counter* m_scrapes_total_ = nullptr;
  obs::Gauge* m_connected_agents_ = nullptr;
  obs::Histogram* m_slot_wait_ms_ = nullptr;
  // Degradation metrics (nullptr without a registry).
  obs::Counter* m_stale_transitions_total_ = nullptr;
  obs::Counter* m_dead_transitions_total_ = nullptr;
  obs::Counter* m_rejoins_total_ = nullptr;
  obs::Counter* m_degraded_slots_total_ = nullptr;
  obs::Counter* m_blocked_frames_total_ = nullptr;
  obs::Gauge* m_stale_nodes_ = nullptr;
  obs::Gauge* m_dead_nodes_ = nullptr;
  std::vector<obs::Gauge*> m_node_state_;         ///< per node
  std::vector<obs::Gauge*> m_node_staleness_ms_;  ///< per node
  // Two-tier root metrics (nullptr/empty unless num_shards > 0).
  obs::Counter* m_summaries_total_ = nullptr;
  obs::Counter* m_summary_measurements_total_ = nullptr;
  obs::Counter* m_shard_status_total_ = nullptr;
  obs::Gauge* m_shards_connected_ = nullptr;
  std::vector<obs::Gauge*> m_shard_live_;   ///< per shard
  std::vector<obs::Gauge*> m_shard_stale_;  ///< per shard
  std::vector<obs::Gauge*> m_shard_dead_;   ///< per shard

  /// Emit one line to ControllerOptions::log_sink (no-op when unset).
  void log(const std::string& line) const;
};

}  // namespace resmon::net
