#include "net/agent.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>

namespace resmon::net {

Agent::Agent(const AgentOptions& options,
             std::unique_ptr<collect::TransmitPolicy> policy)
    : options_(options), policy_(std::move(policy)) {
  RESMON_REQUIRE(policy_ != nullptr, "Agent needs a transmit policy");
  RESMON_REQUIRE(options.num_resources > 0,
                 "Agent needs at least one resource");
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    const obs::Labels labels = {{"node", std::to_string(options_.node)}};
    m_frames_total_ = &reg.counter("resmon_agent_frames_sent_total",
                                   "Frames delivered to the controller",
                                   labels);
    m_measurements_total_ =
        &reg.counter("resmon_agent_measurements_sent_total",
                     "Measurement frames delivered (beta = 1)", labels);
    m_heartbeats_total_ =
        &reg.counter("resmon_agent_heartbeats_sent_total",
                     "Heartbeat frames delivered (silent slots)", labels);
    m_bytes_total_ = &reg.counter("resmon_agent_bytes_sent_total",
                                  "Encoded frame bytes delivered", labels);
    m_reconnects_total_ =
        &reg.counter("resmon_agent_reconnects_total",
                     "Successful re-handshakes after a connection loss",
                     labels);
    m_connected_ = &reg.gauge("resmon_agent_connected",
                              "1 while the connection is up, else 0", labels);
  }
}

bool Agent::try_connect_once() {
  Socket sock;
  try {
    sock = Socket::connect_tcp(options_.host, options_.port,
                               options_.io_timeout_ms);
  } catch (const SocketError&) {
    return false;  // refused or timed out: the backoff loop retries
  }
  // Reason byte from an explicit controller rejection; set before leaving
  // the try block so the terminal throw below cannot be swallowed by the
  // transient-I/O catch.
  std::optional<std::uint8_t> rejected;
  std::uint8_t rejecter_version = 0;
  try {
    const wire::HelloFrame hello{.node = options_.node,
                                 .num_resources = options_.num_resources};
    if (!sock.write_all(wire::encode(hello), options_.io_timeout_ms)) {
      return false;
    }
    // Wait for the ack (one small frame; arrives in one or two reads).
    wire::FrameDecoder decoder;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(options_.io_timeout_ms);
    while (!rejected) {
      if (!sock.wait_readable(50)) {
        if (std::chrono::steady_clock::now() >= deadline) return false;
        continue;
      }
      std::uint8_t buf[256];
      std::size_t n = 0;
      const IoStatus status = sock.read_some(buf, n);
      if (status == IoStatus::kClosed) return false;
      if (status == IoStatus::kOk && !decoder.feed({buf, n})) return false;
      if (std::optional<wire::Frame> frame = decoder.next()) {
        const auto* ack = std::get_if<wire::HelloAckFrame>(&*frame);
        if (ack == nullptr || ack->node != options_.node) return false;
        if (!ack->accepted) {
          rejected = ack->reason;
          rejecter_version = ack->speaker_version;
          break;
        }
        sock_ = std::move(sock);
        ever_connected_ = true;
        if (m_connected_ != nullptr) m_connected_->set(1.0);
        return true;
      }
      if (std::chrono::steady_clock::now() >= deadline) return false;
    }
  } catch (const SocketError&) {
    // Transient handshake stall (send timeout, surprise errno): retryable,
    // exactly like a failed connect.
    return false;
  }
  // A rejected hello is terminal: retrying the same hello cannot succeed,
  // so this propagates out of the backoff loop.
  throw SocketError("agent " + std::to_string(options_.node) +
                    ": controller rejected hello (" +
                    wire::describe_hello_reject(*rejected, rejecter_version) +
                    ")");
}

void Agent::reconnect_with_backoff() {
  int backoff = options_.initial_backoff_ms;
  for (std::size_t attempt = 0; attempt < options_.max_reconnect_attempts;
       ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff = std::min(backoff * 2, options_.max_backoff_ms);
    }
    // try_connect_once throws only for a rejected hello, which retrying
    // cannot fix; plain connect/handshake failures return false and retry.
    if (try_connect_once()) return;
  }
  throw SocketError("agent " + std::to_string(options_.node) +
                    ": could not reach controller at " + options_.host + ":" +
                    std::to_string(options_.port) + " after " +
                    std::to_string(options_.max_reconnect_attempts) +
                    " attempts");
}

void Agent::connect() {
  if (connected()) return;
  reconnect_with_backoff();
}

void Agent::deliver(const std::vector<std::uint8_t>& bytes) {
  // At most two write attempts: the current connection, then one fresh
  // connection after a bounded backoff cycle. Failing on a connection that
  // was just re-established means the controller is actively closing on
  // this agent — give up rather than loop.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!connected()) {
      const bool outage = ever_connected_;
      reconnect_with_backoff();
      if (outage) {
        ++reconnects_;
        if (m_reconnects_total_ != nullptr) m_reconnects_total_->inc();
      }
    }
    if (sock_.write_all(bytes, options_.io_timeout_ms)) {
      ++frames_sent_;
      bytes_sent_ += bytes.size();
      if (m_frames_total_ != nullptr) {
        m_frames_total_->inc();
        m_bytes_total_->inc(bytes.size());
      }
      return;
    }
    sock_.close();
    if (m_connected_ != nullptr) m_connected_->set(0.0);
  }
  throw SocketError("agent " + std::to_string(options_.node) +
                    ": connection lost and resend failed");
}

void Agent::dispatch(std::size_t t, std::vector<std::uint8_t> bytes) {
  if (!options_.frame_hook) {
    deliver(bytes);
    return;
  }
  const FrameAction action = options_.frame_hook(t, bytes);
  if (action.sever) {
    // Half-open / agent-side partition: the frame is lost and the socket is
    // closed without a FIN exchange; the next surviving frame reconnects.
    sock_.close();
    if (m_connected_ != nullptr) m_connected_->set(0.0);
    return;
  }
  for (const std::vector<std::uint8_t>& frame : action.frames) {
    deliver(frame);
  }
}

bool Agent::observe(std::size_t t, std::span<const double> x) {
  RESMON_REQUIRE(x.size() == options_.num_resources,
                 "Agent::observe: measurement dimension mismatch");
  const bool beta = policy_->decide(t, x);
  if (beta) {
    transport::MeasurementMessage m;
    m.node = options_.node;
    m.step = t;
    m.values.assign(x.begin(), x.end());
    dispatch(t, wire::encode(m));
    ++measurements_sent_;
    if (m_measurements_total_ != nullptr) m_measurements_total_->inc();
  } else if (options_.heartbeat_when_silent) {
    dispatch(t, wire::encode(wire::HeartbeatFrame{
                    .node = options_.node,
                    .step = static_cast<std::uint64_t>(t)}));
    if (m_heartbeats_total_ != nullptr) m_heartbeats_total_->inc();
  }
  return beta;
}

}  // namespace resmon::net
