#include "net/poller.hpp"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace resmon::net {

void Poller::watch(int fd) {
  RESMON_REQUIRE(fd >= 0, "Poller: invalid fd");
  RESMON_REQUIRE(std::find(fds_.begin(), fds_.end(), fd) == fds_.end(),
                 "Poller: fd already watched");
  fds_.push_back(fd);
}

void Poller::unwatch(int fd) {
  fds_.erase(std::remove(fds_.begin(), fds_.end(), fd), fds_.end());
}

std::vector<PollEvent> Poller::wait(int timeout_ms) {
  std::vector<pollfd> pfds;
  pfds.reserve(fds_.size());
  for (int fd : fds_) {
    pfds.push_back({.fd = fd, .events = POLLIN, .revents = 0});
  }
  std::vector<PollEvent> events;
  if (pfds.empty()) return events;
  const int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (rc < 0) {
    if (errno == EINTR) return events;
    throw Error(std::string("poll: ") + std::strerror(errno));
  }
  for (const pollfd& pfd : pfds) {
    if (pfd.revents == 0) continue;
    events.push_back(
        {.fd = pfd.fd,
         .readable = (pfd.revents & POLLIN) != 0,
         .hangup = (pfd.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0});
  }
  return events;
}

}  // namespace resmon::net
