// Binary wire protocol: frame encoders and the incremental decoder.
//
// Agents and the controller exchange length-prefixed, CRC-protected frames
// (layout in transport/wire_format.hpp). Encoding is explicit little-endian, so
// the protocol is byte-identical across hosts; doubles travel as their
// IEEE-754 bit patterns, making encode -> decode an exact identity
// (including NaN payloads and signed zeros).
//
// FrameDecoder is incremental: feed it whatever bytes arrived on a stream
// and pop complete frames. Corrupt, truncated or oversized input surfaces
// as a typed WireError — never an exception, crash or unbounded
// allocation — because remote peers must not be able to take the
// controller down.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "transport/wire_format.hpp"
#include "transport/channel.hpp"

namespace resmon::net::wire {

/// First frame an agent sends after connecting.
struct HelloFrame {
  std::uint32_t node = 0;
  std::uint32_t num_resources = 0;
};

/// Controller's reply to a hello (agent or shard; for a shard hello `node`
/// echoes the shard id).
struct HelloAckFrame {
  std::uint32_t node = 0;
  bool accepted = false;
  /// 0 = ok; nonzero = a HelloReject rejection reason.
  std::uint8_t reason = 0;
  /// Wire protocol version the acking peer speaks, so a rejected hello can
  /// be logged naming both sides. 0 = the ack came from a build predating
  /// this field (it was a reserved-zero byte).
  std::uint8_t speaker_version = kProtocolVersion;
};

/// Why a hello (or shard hello) was rejected, carried in
/// HelloAckFrame::reason. Shared protocol vocabulary: the controller sets
/// these, agents and aggregators render them via hello_reject_name().
enum class HelloReject : std::uint8_t {
  kNone = 0,
  kNodeOutOfRange = 1,
  kDimensionMismatch = 2,
  /// Second hello on a stream that already completed its handshake. A
  /// hello for a node connected on a *different* stream is not rejected:
  /// the newer connection wins and the old one is dropped as stale.
  kDuplicateNode = 3,
  kShardOutOfRange = 4,   ///< shard id >= the root's configured shard count
  kBadNodeRange = 5,      ///< shard's claimed node range is empty/overflows
  kVersionMismatch = 6,   ///< shard hello's protocol field != ours
  kShardsNotEnabled = 7,  ///< shard hello sent to a single-tier controller
};

/// Human-readable name of a HelloReject code (stable, for operator logs).
/// Unknown codes render as "unknown reason".
const char* hello_reject_name(std::uint8_t reason);

/// One line an operator can act on: the named reason, plus both protocol
/// versions when the rejection is a version mismatch (`speaker_version` is
/// the rejecting peer's version from the ack, 0 if unreported).
std::string describe_hello_reject(std::uint8_t reason,
                                  std::uint8_t speaker_version);

/// Liveness + slot progress: "node has processed slot `step` (and did not
/// transmit a measurement for it)".
struct HeartbeatFrame {
  std::uint32_t node = 0;
  std::uint64_t step = 0;
};

/// First frame an aggregator sends its root: which shard it is and the
/// contiguous node range [first_node, first_node + num_nodes) it fronts.
struct ShardHelloFrame {
  std::uint32_t shard = 0;
  std::uint32_t first_node = 0;
  std::uint32_t num_nodes = 0;
  std::uint32_t num_resources = 0;
  /// The aggregator's kProtocolVersion, checked explicitly by the root so
  /// a skew rejects with kVersionMismatch naming both versions.
  std::uint32_t protocol = kProtocolVersion;
};

/// One compacted slot of a shard: every measurement the shard's agents
/// transmitted for `step` (heartbeats are compacted away — the summary's
/// existence is the progress signal), plus how many owned nodes were
/// skipped as non-LIVE (`degraded`) so the root's degradation accounting
/// matches a single-tier run exactly.
struct SlotSummaryFrame {
  std::uint32_t shard = 0;
  std::uint64_t step = 0;
  std::uint32_t degraded = 0;
  std::uint32_t num_resources = 0;
  /// Measurements in node order; every entry's step == `step` and values
  /// size == num_resources (enforced by the decoder).
  std::vector<transport::MeasurementMessage> measurements;
};

/// Periodic shard staleness census, so the root can export per-shard
/// LIVE/STALE/DEAD gauges without owning the per-node machine.
struct ShardStatusFrame {
  std::uint32_t shard = 0;
  std::uint32_t live = 0;
  std::uint32_t stale = 0;
  std::uint32_t dead = 0;
};

/// Any decoded frame. Measurements reuse the transport-layer struct so the
/// controller can apply them to a CentralStore directly.
using Frame =
    std::variant<HelloFrame, HelloAckFrame, transport::MeasurementMessage,
                 HeartbeatFrame, ShardHelloFrame, SlotSummaryFrame,
                 ShardStatusFrame>;

/// Why a byte stream was rejected. kNone means the stream is healthy.
enum class WireError : std::uint8_t {
  kNone = 0,
  kBadMagic,           ///< header does not start with "RMON"
  kUnsupportedVersion, ///< version newer (or older) than this build speaks
  kUnknownFrameType,   ///< type byte not a FrameType of this version
  kOversizedPayload,   ///< payload_len exceeds the decoder's limit
  kCrcMismatch,        ///< payload failed its CRC-32 check
  kMalformedPayload,   ///< payload_len inconsistent with the frame type
  kTruncated,          ///< stream ended mid-frame (reported by finish())
};

/// Human-readable name of a WireError (stable, for logs and tests).
const char* wire_error_name(WireError error);

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `bytes`.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// Encode one frame. The returned buffer is a complete frame: header
/// (including CRC over the payload) followed by the payload.
std::vector<std::uint8_t> encode(const transport::MeasurementMessage& m);
std::vector<std::uint8_t> encode(const HelloFrame& f);
std::vector<std::uint8_t> encode(const HelloAckFrame& f);
std::vector<std::uint8_t> encode(const HeartbeatFrame& f);
std::vector<std::uint8_t> encode(const ShardHelloFrame& f);
std::vector<std::uint8_t> encode(const SlotSummaryFrame& f);
std::vector<std::uint8_t> encode(const ShardStatusFrame& f);

/// Incremental frame decoder for one byte stream (one TCP connection).
///
///   FrameDecoder dec;
///   dec.feed(bytes_from_socket);
///   while (auto frame = dec.next()) handle(*frame);
///   if (dec.error() != WireError::kNone) drop_connection();
///
/// Once an error is set the decoder is poisoned: further feed() calls
/// return false and next() yields nothing. A stream that ends cleanly
/// between frames passes finish(); ending mid-frame is kTruncated.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kMaxPayloadSize);

  /// Append stream bytes and decode as many complete frames as they
  /// contain. Returns false iff the decoder is (now) in an error state.
  /// A header announcing an oversized payload is rejected here, before
  /// any payload is buffered.
  bool feed(std::span<const std::uint8_t> bytes);

  /// Pop the next fully decoded frame, if any.
  std::optional<Frame> next();

  /// Signal end-of-stream. Returns true iff the stream ended exactly on a
  /// frame boundary with no decode error; a partial frame in the buffer
  /// sets kTruncated.
  bool finish();

  WireError error() const { return error_; }

  /// True when no partial frame is buffered.
  bool at_frame_boundary() const { return buffer_.empty(); }

  /// Bytes currently buffered while waiting for the rest of a frame.
  std::size_t buffered_bytes() const { return buffer_.size(); }

  std::uint64_t frames_decoded() const { return frames_decoded_; }
  std::uint64_t bytes_consumed() const { return bytes_consumed_; }

 private:
  /// Try to decode one frame from the front of buffer_. Returns true if a
  /// frame was consumed; false if more bytes are needed or error_ was set.
  bool try_decode_one();

  std::size_t max_payload_;
  std::vector<std::uint8_t> buffer_;
  std::deque<Frame> ready_;
  WireError error_ = WireError::kNone;
  std::uint64_t frames_decoded_ = 0;
  std::uint64_t bytes_consumed_ = 0;
};

}  // namespace resmon::net::wire
