#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace resmon::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw SocketError(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

/// Disable Nagle: frames are tiny and the slot barrier is latency-bound.
void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw SocketError("invalid IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket Socket::listen_tcp(const std::string& host, std::uint16_t port,
                          int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket sock(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(host, port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    throw_errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd, backlog) < 0) throw_errno("listen");
  set_nonblocking(fd);
  return sock;
}

Socket Socket::connect_tcp(const std::string& host, std::uint16_t port,
                           int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket sock(fd);
  set_nonblocking(fd);
  sockaddr_in addr = make_addr(host, port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) {
      throw_errno("connect " + host + ":" + std::to_string(port));
    }
    pollfd pfd{.fd = fd, .events = POLLOUT, .revents = 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc <= 0) {
      throw SocketError("connect " + host + ":" + std::to_string(port) +
                        (rc == 0 ? ": timed out" : ": poll failed"));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      throw SocketError("connect " + host + ":" + std::to_string(port) +
                        ": " + std::strerror(err != 0 ? err : errno));
    }
  }
  set_nodelay(fd);
  return sock;
}

std::uint16_t Socket::local_port() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

std::optional<Socket> Socket::accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      Socket sock(fd);  // owns the fd even if set_nonblocking throws
      set_nonblocking(fd);
      set_nodelay(fd);
      return sock;
    }
    switch (errno) {
      case EINTR:
      case ECONNABORTED:  // peer gave up while queued: skip it, keep going
        continue;
      case EAGAIN:
#if EAGAIN != EWOULDBLOCK
      case EWOULDBLOCK:
#endif
      // fd/buffer exhaustion is transient and must not kill the event
      // loop; the listener stays level-triggered readable, so the next
      // pump retries once pressure eases.
      case EMFILE:
      case ENFILE:
      case ENOBUFS:
      case ENOMEM:
        return std::nullopt;
      default:
        throw_errno("accept");
    }
  }
}

IoStatus Socket::read_some(std::span<std::uint8_t> out, std::size_t& n) {
  n = 0;
  const ssize_t rc = ::recv(fd_, out.data(), out.size(), 0);
  if (rc > 0) {
    n = static_cast<std::size_t>(rc);
    return IoStatus::kOk;
  }
  if (rc == 0) return IoStatus::kClosed;
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    return IoStatus::kWouldBlock;
  }
  if (errno == ECONNRESET || errno == EPIPE) return IoStatus::kClosed;
  throw_errno("recv");
}

bool Socket::write_all(std::span<const std::uint8_t> bytes, int timeout_ms) {
  // timeout_ms bounds the whole write, not each poll(): a peer draining
  // one byte per window must not stall the caller (in the controller,
  // the single-threaded event loop) indefinitely.
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t rc = ::send(fd_, bytes.data() + off, bytes.size() - off,
                              MSG_NOSIGNAL);
    if (rc > 0) {
      off += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && (errno == EPIPE || errno == ECONNRESET)) return false;
    if (rc < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
        errno != EINTR) {
      throw_errno("send");
    }
    const long long left = std::chrono::duration_cast<std::chrono::milliseconds>(
                               deadline - Clock::now())
                               .count();
    if (left <= 0) throw SocketError("send: timed out waiting for buffer");
    pollfd pfd{.fd = fd_, .events = POLLOUT, .revents = 0};
    const int prc = ::poll(&pfd, 1, static_cast<int>(left));
    if (prc == 0) throw SocketError("send: timed out waiting for buffer");
    if (prc < 0 && errno != EINTR) throw_errno("poll(POLLOUT)");
    if ((pfd.revents & (POLLERR | POLLHUP)) != 0) return false;
  }
  return true;
}

bool Socket::wait_readable(int timeout_ms) {
  pollfd pfd{.fd = fd_, .events = POLLIN, .revents = 0};
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc < 0 && errno != EINTR) throw_errno("poll(POLLIN)");
  return rc > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

}  // namespace resmon::net
