// Minimal RAII wrapper over POSIX TCP sockets for the resmon runtime.
//
// Sockets are nonblocking by default once created through the factory
// functions; IO helpers translate EAGAIN into "no progress" return values
// so the poll(2)-driven event loop never blocks inside a read or write.
// Setup failures (bind, listen, connect, ...) throw SocketError — they are
// operator errors, not remote-input conditions.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "common/error.hpp"

namespace resmon::net {

/// Thrown when socket setup or a local syscall fails unrecoverably.
class SocketError : public Error {
 public:
  explicit SocketError(const std::string& what) : Error(what) {}
};

/// Result of a nonblocking read.
enum class IoStatus : std::uint8_t {
  kOk,          ///< made progress (>= 1 byte)
  kWouldBlock,  ///< no data available right now
  kClosed,      ///< peer closed the connection (EOF or reset)
};

/// Move-only owner of one socket file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Listening socket bound to `host`:`port` (port 0 picks an ephemeral
  /// port — read it back with local_port()). SO_REUSEADDR is set so smoke
  /// tests can rebind quickly.
  static Socket listen_tcp(const std::string& host, std::uint16_t port,
                           int backlog = 64);

  /// Connected client socket (blocking connect with `timeout_ms`, then
  /// switched to nonblocking). Throws SocketError on failure or timeout.
  static Socket connect_tcp(const std::string& host, std::uint16_t port,
                            int timeout_ms);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Port this socket is bound to (after listen_tcp with port 0).
  std::uint16_t local_port() const;

  /// Accept one pending connection on a listening socket, nonblocking.
  /// Returns nullopt when no connection is waiting.
  std::optional<Socket> accept();

  /// Nonblocking read into `out`; `n` receives the byte count on kOk.
  IoStatus read_some(std::span<std::uint8_t> out, std::size_t& n);

  /// Write the whole buffer, waiting (poll) for writability as needed so
  /// short socket buffers cannot drop frame suffixes. Returns false if the
  /// peer closed the connection. Throws SocketError only on local failure.
  bool write_all(std::span<const std::uint8_t> bytes, int timeout_ms);

  /// Wait up to `timeout_ms` for the socket to become readable.
  bool wait_readable(int timeout_ms);

 private:
  int fd_ = -1;
};

}  // namespace resmon::net
