// LoopbackLink: the in-process uplink routed through the real wire codec.
//
// Every message is encoded to wire bytes, fed through an incremental
// FrameDecoder and only the decoded copy is delivered — so deterministic
// tests and benches exercise the exact encode/decode path the TCP runtime
// uses, and bandwidth accounting counts real frame bytes, while keeping the
// Channel's seeded drop/delay failure injection. Because encode -> decode
// is an identity, a LoopbackLink behaves bit-identically to a bare Channel
// with the same options.
#pragma once

#include "net/wire.hpp"
#include "transport/channel.hpp"
#include "transport/link.hpp"

namespace resmon::net {

class LoopbackLink final : public transport::Link {
 public:
  LoopbackLink() = default;
  explicit LoopbackLink(const transport::ChannelOptions& options)
      : channel_(options) {}

  /// Encode, decode, then enqueue the decoded message on the channel.
  /// Throws InvalidState if the codec ever fails to round-trip (that is a
  /// bug, not an input condition: this link sees only locally built
  /// messages).
  void send(transport::MeasurementMessage message) override;

  std::vector<transport::MeasurementMessage> drain() override {
    return channel_.drain();
  }

  std::size_t pending() const override { return channel_.pending(); }
  std::uint64_t messages_sent() const override {
    return channel_.messages_sent();
  }
  std::uint64_t bytes_sent() const override { return channel_.bytes_sent(); }
  std::uint64_t messages_dropped() const override {
    return channel_.messages_dropped();
  }

  /// The underlying simulated channel (for failure-injection inspection).
  const transport::Channel& channel() const { return channel_; }

 private:
  transport::Channel channel_;
  wire::FrameDecoder decoder_;
};

}  // namespace resmon::net
