#include "gaussian/selection.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"

namespace resmon::gaussian {

namespace {

void check_k(const GaussianModel& model, std::size_t k) {
  RESMON_REQUIRE(k >= 1 && k < model.num_nodes(),
                 "monitor count must be in [1, N)");
}

}  // namespace

std::vector<std::size_t> select_top_w(const GaussianModel& model,
                                      std::size_t k) {
  check_k(model, k);
  const std::size_t n = model.num_nodes();
  const Matrix& cov = model.covariance();

  std::vector<double> weight(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      weight[i] += std::fabs(cov(i, j));
    }
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return weight[a] > weight[b];
  });
  order.resize(k);
  std::sort(order.begin(), order.end());
  return order;
}

std::vector<std::size_t> select_top_w_update(const GaussianModel& model,
                                             std::size_t k) {
  check_k(model, k);
  const std::size_t n = model.num_nodes();

  std::vector<std::size_t> monitors;
  std::vector<bool> chosen(n, false);
  monitors.reserve(k);
  for (std::size_t pick = 0; pick < k; ++pick) {
    std::size_t best = n;
    double best_var = std::numeric_limits<double>::max();
    for (std::size_t cand = 0; cand < n; ++cand) {
      if (chosen[cand]) continue;
      monitors.push_back(cand);
      const double var = model.conditional_variance(monitors);
      monitors.pop_back();
      if (var < best_var) {
        best_var = var;
        best = cand;
      }
    }
    monitors.push_back(best);
    chosen[best] = true;
  }
  std::sort(monitors.begin(), monitors.end());
  return monitors;
}

std::vector<std::size_t> select_batch(const GaussianModel& model,
                                      std::size_t k, Rng& rng,
                                      std::size_t max_rounds,
                                      std::size_t candidates_per_slot) {
  check_k(model, k);
  const std::size_t n = model.num_nodes();

  std::vector<std::size_t> batch = select_top_w(model, k);
  std::vector<bool> in_batch(n, false);
  for (const std::size_t m : batch) in_batch[m] = true;
  double current = model.conditional_variance(batch);

  for (std::size_t round = 0; round < max_rounds; ++round) {
    bool improved = false;
    for (std::size_t slot = 0; slot < k; ++slot) {
      for (std::size_t c = 0; c < candidates_per_slot; ++c) {
        const std::size_t cand = rng.index(n);
        if (in_batch[cand]) continue;
        const std::size_t old = batch[slot];
        batch[slot] = cand;
        const double var = model.conditional_variance(batch);
        if (var < current) {
          current = var;
          in_batch[old] = false;
          in_batch[cand] = true;
          improved = true;
        } else {
          batch[slot] = old;
        }
      }
    }
    if (!improved) break;
  }
  std::sort(batch.begin(), batch.end());
  return batch;
}

}  // namespace resmon::gaussian
