// Multivariate Gaussian model over node measurements — the machinery behind
// the comparison baseline of §VI-E (Silvestri et al., ICDCS 2015 [3]).
//
// During a training phase the central node receives every node's
// measurements and estimates a mean vector and covariance matrix; during the
// testing phase only K "monitor" nodes report, and the remaining nodes are
// inferred by conditional-Gaussian regression on the monitors.
#pragma once

#include <vector>

#include "common/matrix.hpp"

namespace resmon::gaussian {

/// Gaussian model of the joint distribution of one resource across nodes.
class GaussianModel {
 public:
  /// Estimate from a training matrix with one row per time step and one
  /// column per node. A small ridge is added to the covariance diagonal for
  /// numerical stability. Requires at least 2 rows.
  static GaussianModel fit(const Matrix& train, double ridge = 1e-6);

  std::size_t num_nodes() const { return mean_.size(); }
  const std::vector<double>& mean() const { return mean_; }
  const Matrix& covariance() const { return cov_; }

  /// Conditional-mean inference: given observed values at `monitors`
  /// (parallel to `observed`), return the inferred values for all nodes
  /// (monitors keep their observed values).
  std::vector<double> infer(const std::vector<std::size_t>& monitors,
                            std::span<const double> observed) const;

  /// Total conditional variance of the non-monitor nodes given the monitor
  /// set: tr(Sigma_uu - Sigma_uo Sigma_oo^{-1} Sigma_ou). The selection
  /// algorithms minimize this quantity.
  double conditional_variance(const std::vector<std::size_t>& monitors) const;

 private:
  friend class OnlineGaussianModel;
  GaussianModel(std::vector<double> mean, Matrix cov);

  std::vector<double> mean_;
  Matrix cov_;
};

/// Streaming estimator of the same model: one observe() per time step with
/// the full fleet snapshot, Welford-style updates of the mean vector and
/// the co-moment matrix. Matches [3]'s *online* setting, where the
/// training phase accumulates statistics sample by sample; finalize() at
/// any point yields a GaussianModel numerically equal to the batch fit on
/// the samples seen so far.
class OnlineGaussianModel {
 public:
  explicit OnlineGaussianModel(std::size_t num_nodes);

  /// Incorporate one snapshot (one value per node).
  void observe(std::span<const double> snapshot);

  std::size_t num_nodes() const { return mean_.size(); }
  std::size_t samples() const { return count_; }
  const std::vector<double>& mean() const { return mean_; }

  /// Snapshot the accumulated statistics into a usable model.
  /// Requires at least 2 samples.
  GaussianModel finalize(double ridge = 1e-6) const;

 private:
  std::vector<double> mean_;
  Matrix comoment_;  // sum of (x - mean) (x - mean)^T, updated online
  std::vector<double> delta_;  // scratch
  std::size_t count_ = 0;
};

}  // namespace resmon::gaussian
