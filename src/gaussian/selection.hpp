// Monitor-selection algorithms of the Gaussian baseline [3] (§VI-E):
// Top-W, Top-W-Update and Batch Selection. All three choose K monitor nodes
// from the training-phase Gaussian model; they differ in how much work they
// spend re-evaluating the model as monitors are added.
#pragma once

#include <cstdint>
#include <vector>

#include "gaussian/gaussian_model.hpp"

#include "common/rng.hpp"

namespace resmon::gaussian {

/// Top-W: rank nodes once by total absolute covariance weight
/// w_i = sum_j |Sigma_ij| and take the top K. One pass, no updates.
std::vector<std::size_t> select_top_w(const GaussianModel& model,
                                      std::size_t k);

/// Top-W-Update: greedy selection; after each pick the value of every
/// remaining candidate is re-evaluated as the total conditional variance of
/// the non-monitors given the tentative monitor set. Most accurate and by
/// far the most expensive of the three (matching Table IV).
std::vector<std::size_t> select_top_w_update(const GaussianModel& model,
                                             std::size_t k);

/// Batch Selection: local search over whole candidate batches — start from
/// the Top-W batch, then try swapping each member against sampled
/// non-members, keeping swaps that reduce total conditional variance.
/// `max_rounds` full sweeps are performed.
std::vector<std::size_t> select_batch(const GaussianModel& model,
                                      std::size_t k, Rng& rng,
                                      std::size_t max_rounds = 2,
                                      std::size_t candidates_per_slot = 8);

}  // namespace resmon::gaussian
