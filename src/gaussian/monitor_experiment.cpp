#include "gaussian/monitor_experiment.hpp"

#include <chrono>
#include <cmath>
#include <limits>

#include "cluster/kmeans.hpp"
#include "common/rng.hpp"
#include "gaussian/selection.hpp"

namespace resmon::gaussian {

namespace {

using Clock = std::chrono::steady_clock;

/// Training-phase data as a (train_steps x nodes) matrix for the Gaussian
/// model, and as a (nodes x train_steps) point matrix for K-means.
Matrix training_matrix(const trace::Trace& trace,
                       const MonitorExperimentOptions& o) {
  Matrix train(o.train_steps, trace.num_nodes());
  for (std::size_t t = 0; t < o.train_steps; ++t) {
    for (std::size_t i = 0; i < trace.num_nodes(); ++i) {
      train(t, i) = trace.value(i, t, o.resource);
    }
  }
  return train;
}

Matrix node_points(const trace::Trace& trace,
                   const MonitorExperimentOptions& o) {
  Matrix points(trace.num_nodes(), o.train_steps);
  for (std::size_t i = 0; i < trace.num_nodes(); ++i) {
    for (std::size_t t = 0; t < o.train_steps; ++t) {
      points(i, t) = trace.value(i, t, o.resource);
    }
  }
  return points;
}

/// Nearest-monitor assignment by Euclidean distance on training series.
std::vector<std::size_t> assign_to_monitors(
    const Matrix& points, const std::vector<std::size_t>& monitors) {
  std::vector<std::size_t> owner(points.rows());
  for (std::size_t i = 0; i < points.rows(); ++i) {
    std::size_t best = 0;
    double best_d2 = std::numeric_limits<double>::max();
    for (std::size_t m = 0; m < monitors.size(); ++m) {
      const double d2 =
          squared_distance(points.row(i), points.row(monitors[m]));
      if (d2 < best_d2) {
        best_d2 = d2;
        best = m;
      }
    }
    owner[i] = best;  // index into `monitors`
  }
  return owner;
}

/// Test-phase RMSE for cluster-style estimation: each node's estimate is the
/// current value of its assigned monitor.
double cluster_test_rmse(const trace::Trace& trace,
                         const MonitorExperimentOptions& o,
                         const std::vector<std::size_t>& monitors,
                         const std::vector<std::size_t>& owner) {
  double se = 0.0;
  std::size_t count = 0;
  for (std::size_t t = o.train_steps; t < o.train_steps + o.test_steps; ++t) {
    for (std::size_t i = 0; i < trace.num_nodes(); ++i) {
      const double estimate =
          trace.value(monitors[owner[i]], t, o.resource);
      const double truth = trace.value(i, t, o.resource);
      se += (estimate - truth) * (estimate - truth);
      ++count;
    }
  }
  return std::sqrt(se / static_cast<double>(count));
}

/// Test-phase RMSE for Gaussian conditional inference.
double gaussian_test_rmse(const trace::Trace& trace,
                          const MonitorExperimentOptions& o,
                          const GaussianModel& model,
                          const std::vector<std::size_t>& monitors) {
  double se = 0.0;
  std::size_t count = 0;
  std::vector<double> observed(monitors.size());
  for (std::size_t t = o.train_steps; t < o.train_steps + o.test_steps; ++t) {
    for (std::size_t m = 0; m < monitors.size(); ++m) {
      observed[m] = trace.value(monitors[m], t, o.resource);
    }
    const std::vector<double> inferred = model.infer(monitors, observed);
    for (std::size_t i = 0; i < trace.num_nodes(); ++i) {
      const double truth = trace.value(i, t, o.resource);
      se += (inferred[i] - truth) * (inferred[i] - truth);
      ++count;
    }
  }
  return std::sqrt(se / static_cast<double>(count));
}

}  // namespace

std::string to_string(MonitorMethod method) {
  switch (method) {
    case MonitorMethod::kProposed:
      return "Proposed";
    case MonitorMethod::kMinimumDistance:
      return "Min.-distance";
    case MonitorMethod::kTopW:
      return "Top-W";
    case MonitorMethod::kTopWUpdate:
      return "Top-W-Update";
    case MonitorMethod::kBatchSelection:
      return "Batch Selection";
  }
  throw InvalidArgument("unknown monitor method");
}

MonitorExperimentResult run_monitor_experiment(
    const trace::Trace& trace, MonitorMethod method,
    const MonitorExperimentOptions& o) {
  RESMON_REQUIRE(o.resource < trace.num_resources(),
                 "monitor experiment: resource out of range");
  RESMON_REQUIRE(o.num_monitors >= 1 &&
                     o.num_monitors < trace.num_nodes(),
                 "monitor experiment: K must be in [1, N)");
  RESMON_REQUIRE(trace.num_steps() >= o.train_steps + o.test_steps,
                 "monitor experiment: trace too short");

  MonitorExperimentResult result;
  Rng rng(o.seed);

  switch (method) {
    case MonitorMethod::kProposed: {
      const auto t0 = Clock::now();
      const Matrix points = node_points(trace, o);
      const cluster::KMeansResult km =
          cluster::kmeans(points, o.num_monitors, rng);
      // Monitor per cluster: the member closest to the centroid.
      std::vector<std::size_t> monitors(o.num_monitors);
      std::vector<double> best_d2(
          o.num_monitors, std::numeric_limits<double>::max());
      for (std::size_t i = 0; i < points.rows(); ++i) {
        const std::size_t j = km.assignment[i];
        const double d2 =
            squared_distance(points.row(i), km.centroids.row(j));
        if (d2 < best_d2[j]) {
          best_d2[j] = d2;
          monitors[j] = i;
        }
      }
      // Owner of node i = the monitor of its K-means cluster.
      std::vector<std::size_t> owner(points.rows());
      for (std::size_t i = 0; i < points.rows(); ++i) {
        owner[i] = km.assignment[i];
      }
      result.selection_seconds =
          std::chrono::duration<double>(Clock::now() - t0).count();
      result.monitors = monitors;
      result.rmse = cluster_test_rmse(trace, o, monitors, owner);
      return result;
    }
    case MonitorMethod::kMinimumDistance: {
      const auto t0 = Clock::now();
      const Matrix points = node_points(trace, o);
      // K distinct random monitors.
      std::vector<std::size_t> ids(points.rows());
      for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
      for (std::size_t j = 0; j < o.num_monitors; ++j) {
        std::swap(ids[j], ids[j + rng.index(ids.size() - j)]);
      }
      std::vector<std::size_t> monitors(ids.begin(),
                                        ids.begin() + o.num_monitors);
      const std::vector<std::size_t> owner =
          assign_to_monitors(points, monitors);
      result.selection_seconds =
          std::chrono::duration<double>(Clock::now() - t0).count();
      result.monitors = monitors;
      result.rmse = cluster_test_rmse(trace, o, monitors, owner);
      return result;
    }
    case MonitorMethod::kTopW:
    case MonitorMethod::kTopWUpdate:
    case MonitorMethod::kBatchSelection: {
      const auto t0 = Clock::now();
      const Matrix train = training_matrix(trace, o);
      const GaussianModel model = GaussianModel::fit(train);
      std::vector<std::size_t> monitors;
      if (method == MonitorMethod::kTopW) {
        monitors = select_top_w(model, o.num_monitors);
      } else if (method == MonitorMethod::kTopWUpdate) {
        monitors = select_top_w_update(model, o.num_monitors);
      } else {
        monitors = select_batch(model, o.num_monitors, rng);
      }
      result.selection_seconds =
          std::chrono::duration<double>(Clock::now() - t0).count();
      result.monitors = monitors;
      result.rmse = gaussian_test_rmse(trace, o, model, monitors);
      return result;
    }
  }
  throw InvalidArgument("unknown monitor method");
}

}  // namespace resmon::gaussian
