#include "gaussian/gaussian_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace resmon::gaussian {

GaussianModel::GaussianModel(std::vector<double> mean, Matrix cov)
    : mean_(std::move(mean)), cov_(std::move(cov)) {}

GaussianModel GaussianModel::fit(const Matrix& train, double ridge) {
  RESMON_REQUIRE(train.rows() >= 2,
                 "GaussianModel needs at least two samples");
  const std::size_t t = train.rows();
  const std::size_t n = train.cols();

  std::vector<double> mean(n, 0.0);
  for (std::size_t row = 0; row < t; ++row) {
    for (std::size_t i = 0; i < n; ++i) mean[i] += train(row, i);
  }
  for (double& m : mean) m /= static_cast<double>(t);

  Matrix cov(n, n);
  for (std::size_t row = 0; row < t; ++row) {
    for (std::size_t i = 0; i < n; ++i) {
      const double di = train(row, i) - mean[i];
      for (std::size_t j = i; j < n; ++j) {
        cov(i, j) += di * (train(row, j) - mean[j]);
      }
    }
  }
  const double denom = static_cast<double>(t - 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      cov(i, j) /= denom;
      cov(j, i) = cov(i, j);
    }
    cov(i, i) += ridge;
  }
  return GaussianModel(std::move(mean), std::move(cov));
}

std::vector<double> GaussianModel::infer(
    const std::vector<std::size_t>& monitors,
    std::span<const double> observed) const {
  RESMON_REQUIRE(monitors.size() == observed.size(),
                 "monitor/observation count mismatch");
  RESMON_REQUIRE(!monitors.empty(), "need at least one monitor");
  const std::size_t n = num_nodes();
  const std::size_t k = monitors.size();
  for (const std::size_t m : monitors) {
    RESMON_REQUIRE(m < n, "monitor index out of range");
  }

  // Sigma_oo and the centered observation vector.
  Matrix s_oo(k, k);
  std::vector<double> delta(k);
  for (std::size_t a = 0; a < k; ++a) {
    delta[a] = observed[a] - mean_[monitors[a]];
    for (std::size_t b = 0; b < k; ++b) {
      s_oo(a, b) = cov_(monitors[a], monitors[b]);
    }
  }
  // alpha = Sigma_oo^{-1} (x_o - mu_o); then x_u = mu_u + Sigma_uo alpha.
  const std::vector<double> alpha = solve_spd(s_oo, delta);

  std::vector<double> out(mean_);
  std::vector<bool> is_monitor(n, false);
  for (std::size_t a = 0; a < k; ++a) is_monitor[monitors[a]] = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (is_monitor[i]) continue;
    double acc = mean_[i];
    for (std::size_t a = 0; a < k; ++a) {
      acc += cov_(i, monitors[a]) * alpha[a];
    }
    out[i] = acc;
  }
  for (std::size_t a = 0; a < k; ++a) out[monitors[a]] = observed[a];
  return out;
}

double GaussianModel::conditional_variance(
    const std::vector<std::size_t>& monitors) const {
  RESMON_REQUIRE(!monitors.empty(), "need at least one monitor");
  const std::size_t n = num_nodes();
  const std::size_t k = monitors.size();

  Matrix s_oo(k, k);
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = 0; b < k; ++b) {
      s_oo(a, b) = cov_(monitors[a], monitors[b]);
    }
  }
  const Matrix l = cholesky(s_oo);

  std::vector<bool> is_monitor(n, false);
  for (const std::size_t m : monitors) is_monitor[m] = true;

  // For each unobserved node i: var_i = Sigma_ii - c_i^T Sigma_oo^{-1} c_i
  // where c_i = Sigma_{o,i}. Using the Cholesky factor, solve L y = c_i and
  // subtract ||y||^2.
  double total = 0.0;
  std::vector<double> c(k), y(k);
  for (std::size_t i = 0; i < n; ++i) {
    if (is_monitor[i]) continue;
    for (std::size_t a = 0; a < k; ++a) c[a] = cov_(monitors[a], i);
    for (std::size_t a = 0; a < k; ++a) {
      double s = c[a];
      for (std::size_t b = 0; b < a; ++b) s -= l(a, b) * y[b];
      y[a] = s / l(a, a);
    }
    double reduction = 0.0;
    for (std::size_t a = 0; a < k; ++a) reduction += y[a] * y[a];
    total += std::max(0.0, cov_(i, i) - reduction);
  }
  return total;
}

OnlineGaussianModel::OnlineGaussianModel(std::size_t num_nodes)
    : mean_(num_nodes, 0.0),
      comoment_(num_nodes, num_nodes),
      delta_(num_nodes, 0.0) {
  RESMON_REQUIRE(num_nodes > 0, "OnlineGaussianModel needs nodes");
}

void OnlineGaussianModel::observe(std::span<const double> snapshot) {
  RESMON_REQUIRE(snapshot.size() == mean_.size(),
                 "OnlineGaussianModel: snapshot size mismatch");
  ++count_;
  const double inv_n = 1.0 / static_cast<double>(count_);
  const std::size_t n = mean_.size();
  // Welford: delta = x - mean_old; mean += delta/n;
  // M += delta * (x - mean_new)^T, kept symmetric.
  for (std::size_t i = 0; i < n; ++i) delta_[i] = snapshot[i] - mean_[i];
  for (std::size_t i = 0; i < n; ++i) mean_[i] += delta_[i] * inv_n;
  for (std::size_t i = 0; i < n; ++i) {
    const double di = delta_[i];
    for (std::size_t j = i; j < n; ++j) {
      const double upd = di * (snapshot[j] - mean_[j]);
      comoment_(i, j) += upd;
      if (j != i) comoment_(j, i) += upd;
    }
  }
}

GaussianModel OnlineGaussianModel::finalize(double ridge) const {
  RESMON_REQUIRE(count_ >= 2,
                 "OnlineGaussianModel needs at least two samples");
  const std::size_t n = mean_.size();
  Matrix cov = comoment_;
  cov *= 1.0 / static_cast<double>(count_ - 1);
  for (std::size_t i = 0; i < n; ++i) cov(i, i) += ridge;
  return GaussianModel(mean_, std::move(cov));
}

}  // namespace resmon::gaussian
