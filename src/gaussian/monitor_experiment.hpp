// The §VI-E train/test monitoring experiment (Fig. 12, Table IV).
//
// Setup: a training phase of `train_steps` during which every node reports
// (B = 1), followed by a testing phase of `test_steps` during which only K
// selected monitors report. Non-monitor values are estimated, and the RMSE
// over all nodes and test steps is measured.
//
// Methods:
//  * kProposed       — K-means on the training-phase series; the node
//                      closest to each centroid becomes the monitor; cluster
//                      members are estimated by their monitor's value.
//  * kMinimumDistance — K random monitors; nodes assigned to the nearest
//                      monitor (Euclidean distance on training series).
//  * kTopW / kTopWUpdate / kBatchSelection — Gaussian model from the
//                      training phase + the matching selection algorithm;
//                      non-monitors inferred by conditional-Gaussian
//                      regression.
#pragma once

#include <cstdint>
#include <string>

#include "trace/trace.hpp"

namespace resmon::gaussian {

enum class MonitorMethod {
  kProposed,
  kMinimumDistance,
  kTopW,
  kTopWUpdate,
  kBatchSelection,
};

std::string to_string(MonitorMethod method);

struct MonitorExperimentOptions {
  std::size_t resource = 0;       ///< which resource column to monitor
  std::size_t num_monitors = 10;  ///< K
  std::size_t train_steps = 500;  ///< paper uses 500
  std::size_t test_steps = 500;   ///< paper uses 500
  std::uint64_t seed = 1;
};

struct MonitorExperimentResult {
  double rmse = 0.0;            ///< estimation RMSE over the test phase
  double selection_seconds = 0.0;  ///< time to build model + pick monitors
  std::vector<std::size_t> monitors;
};

/// Run one method on one trace. Requires the trace to cover
/// train_steps + test_steps steps and more nodes than monitors.
MonitorExperimentResult run_monitor_experiment(
    const trace::Trace& trace, MonitorMethod method,
    const MonitorExperimentOptions& options);

}  // namespace resmon::gaussian
