// Scenario runner: executes one parsed ScenarioSpec end to end and grades
// its [assert] section against the metrics registry.
//
// Two execution modes, selected by the spec:
//   - in-process (default): trace -> MonitoringPipeline::step(), with the
//     optional faultnet spec on the loopback uplink and an optional
//     fault-free twin run for bit-identity divergence checks;
//   - socket mode ([controller] present): a real net::Controller over TCP
//     with one net::Agent per node, driven in deterministic lock-step from
//     the calling thread, the staleness machine aged by a ManualClock so
//     LIVE -> STALE -> DEAD churn replays identically on any machine.
//
// Derived results are exported as resmon_scenario_* gauges into the same
// registry, so assertions address pipeline, net, collect and scenario
// series uniformly (docs/METRICS.md "Scenario results").
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "scenario/scenario_spec.hpp"

namespace resmon::scenario {

/// Verdict of one assertion after the run.
struct AssertionOutcome {
  Assertion assertion;
  bool passed = false;
  double actual = 0.0;    ///< final (or first violating) observed value
  bool found = true;      ///< false: the metric was not in the registry
  std::string expected;   ///< human rendering of the expectation
};

/// Everything one scenario run produced.
struct ScenarioResult {
  std::string name;
  bool passed = true;
  std::size_t steps_run = 0;
  std::vector<AssertionOutcome> outcomes;

  /// The first violated assertion, or nullptr when everything passed.
  const AssertionOutcome* first_failure() const;
};

/// Register every resmon_scenario_* result family (with the given horizon
/// labels) in `registry`. run() calls this itself; test_docs calls it to
/// keep docs/METRICS.md's catalogue drift-checked.
void register_result_metrics(obs::MetricsRegistry& registry,
                             const std::vector<std::size_t>& horizons = {1});

/// Execute the scenario and evaluate its assertions. All series produced
/// by the run (pipeline, collect, net, scenario results) land in
/// `registry`; the caller owns it and can render it afterwards. Throws
/// resmon::Error on infrastructure failures (bad spec fields, socket
/// setup, a stuck slot barrier) — assertion violations are NOT exceptions,
/// they are reported in the result.
ScenarioResult run(const ScenarioSpec& spec, obs::MetricsRegistry& registry);

/// Render a pass/fail report: one line per assertion, and for the first
/// violated one the metric name, expected and actual values. Returns
/// result.passed for convenience.
bool print_report(const ScenarioResult& result, std::ostream& out,
                  bool verbose);

}  // namespace resmon::scenario
