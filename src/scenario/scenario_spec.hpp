// ScenarioSpec: the declarative scenario-pack format (.scn files).
//
// A scenario names everything one end-to-end run of the monitoring system
// needs — a synthetic trace profile, the pipeline/policy options, an
// optional faultnet schedule, controller staleness knobs with a churn
// timetable — plus a list of assertions evaluated against the obs metrics
// registry after the run. Packs under scenarios/ are the repo's enforced
// reproductions of the paper's experiments: `resmon scenario run` and the
// test_scenarios ctest driver both execute them through scenario::run().
//
// File grammar (INI-style; '#' starts a comment, blank lines ignored):
//
//   name = spot-churn                 # top-level keys before any section
//   description = free text
//
//   [trace]
//   profile = google                  # alibaba | bitbrains | google | sensors
//   nodes = 20                        # override the profile's node count
//   steps = 300                       # override the profile's step count
//   seed = 7
//   spike_probability = 0.05          # enumerated profile overrides; see
//   ...                               # apply_profile_override()
//
//   [pipeline]
//   policy = adaptive                 # adaptive | uniform | always | deadband
//   b = 0.3                           # transmission budget B
//   k = 3                             # number of clusters K
//   model = holt-winters              # hold|arima|auto-arima|lstm|holt-winters
//   initial = 120                     # retrain schedule: warm-up steps
//   retrain = 96                      # retrain schedule: interval
//   temporal_window = 1
//   threads = 1
//   seed = 7
//
//   [faults]                          # optional; faultnet grammar verbatim
//   spec = dup=0.4;reorder=0.6;seed=13
//
//   [controller]                      # optional; presence selects the real
//   stale_after_slots = 3             # TCP controller + staleness machine
//   dead_after_slots = 8              # (socket mode); absent = in-process
//   ms_per_slot = 100                 # manual-clock milliseconds per slot
//
//   [topology]                        # optional; socket mode only
//   tiers = 2                         # 1 = agents -> controller (default);
//   shards = 2                        # 2 = agents -> aggregators -> root
//
//   [churn]                           # socket mode only; repeatable keys
//   kill = 2:20                       # node 2 dies at slot 20
//   restart = 2:50                    # node 2 rejoins at slot 50
//
//   [host]                            # optional; live-host record/replay
//   samples = 30                      # procfs samples to record
//   interval_ms = 40                  # sample pacing (real wall clock)
//   procfs_root = /proc               # procfs mount to sample
//   busy_iters = 100000               # spin work between samples so the
//                                     # recorded CPU series is nonzero
//
//   [run]
//   steps = 300                       # slots to execute (<= trace steps)
//   horizons = 1,6                    # forecast horizons to score
//   sample_every = 10                 # metric sampling period (monotonicity)
//   baseline_compare = true           # also run a fault-free twin and export
//                                     # resmon_scenario_forecast_divergence
//
//   [assert]                          # one assertion per line:
//   resmon_scenario_steps == 300                    # metric <op> value
//   resmon_scenario_rmse{h="1"} in 0.05 +- 0.02     # tolerance band
//   resmon_net_frames_total nondecreasing           # over sampled series
//   resmon_scenario_rmse{h="1"} nonincreasing slack 0.01
//
// Assertion ops: == != <= >= < > (compared on the metric's final value),
// `in CENTER +- TOL` (band on the final value), and
// `nondecreasing`/`nonincreasing` with an optional `slack S`, checked over
// the values sampled every [run].sample_every slots. Metric references use
// the exposition spelling: family name plus optional {key="value",...}
// labels (quotes optional in .scn files); histogram series are addressed
// via their _sum/_count expansions.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "collect/fleet_collector.hpp"
#include "faultnet/fault_spec.hpp"
#include "forecast/forecaster.hpp"
#include "obs/metrics.hpp"
#include "trace/synthetic.hpp"

namespace resmon::scenario {

/// One expected-metric assertion from the [assert] section.
struct Assertion {
  enum class Kind {
    kCompare,    ///< final value <op> threshold
    kBand,       ///< |final value - center| <= tolerance
    kMonotonic,  ///< sampled series nondecreasing / nonincreasing
  };
  enum class Op { kEq, kNe, kLe, kGe, kLt, kGt };

  Kind kind = Kind::kCompare;
  std::string metric;  ///< family name, e.g. "resmon_scenario_rmse"
  obs::Labels labels;  ///< label set of the addressed series (may be empty)
  Op op = Op::kEq;     ///< kCompare only
  double value = 0.0;  ///< kCompare: threshold; kBand: center
  double tolerance = 0.0;   ///< kBand only
  bool increasing = true;   ///< kMonotonic: nondecreasing (else nonincr.)
  double slack = 0.0;       ///< kMonotonic: tolerated counter-direction step
  std::string raw;          ///< original line, for failure messages

  /// The exposition-style series key this assertion addresses,
  /// e.g. `resmon_scenario_rmse{h="1"}`.
  std::string series_key() const;
};

/// One scheduled churn event (socket mode): the node's agent is destroyed
/// (kill) or reconstructed and reconnected (restart) at the given slot.
struct ChurnEvent {
  std::size_t node = 0;
  std::size_t slot = 0;
  bool restart = false;  ///< false = kill
};

/// A parsed scenario file. parse() fills defaults documented in the
/// grammar above and validates cross-field consistency.
struct ScenarioSpec {
  std::string name;
  std::string description;

  // [trace]
  std::string profile = "google";
  std::size_t nodes = 0;  ///< 0 = profile default
  std::size_t steps = 0;  ///< 0 = profile default
  std::uint64_t trace_seed = 1;
  /// Enumerated (key, value) profile overrides, applied in file order.
  std::vector<std::pair<std::string, double>> profile_overrides;

  // [pipeline]
  collect::PolicyKind policy = collect::PolicyKind::kAdaptive;
  double max_frequency = 0.3;
  std::size_t num_clusters = 3;
  forecast::ForecasterKind model = forecast::ForecasterKind::kSampleHold;
  std::size_t initial_steps = 100;
  std::size_t retrain_interval = 96;
  std::size_t temporal_window = 1;
  std::size_t threads = 1;
  std::uint64_t pipeline_seed = 1;

  // [faults]
  faultnet::FaultSpec faults;

  // [controller] — socket mode iff present.
  bool socket_mode = false;
  std::size_t stale_after_slots = 0;
  std::size_t dead_after_slots = 0;
  std::size_t ms_per_slot = 100;

  // [topology] — optional; tiers = 2 inserts an aggregator tier between
  // the agents and the root (socket mode only).
  std::size_t tiers = 1;
  std::size_t shards = 2;  ///< aggregator count when tiers == 2

  // [churn]
  std::vector<ChurnEvent> churn;

  // [host] — live-host record/replay mode iff present: the runner samples
  // its own process through the procfs backend, records the series, then
  // replays the recording and asserts the two pipelines cannot diverge.
  bool host_mode = false;
  std::size_t host_samples = 30;
  std::size_t host_interval_ms = 40;
  std::string host_procfs_root = "/proc";
  std::size_t host_busy_iters = 100000;

  // [run]
  std::size_t run_steps = 0;  ///< 0 = the whole trace
  std::vector<std::size_t> horizons = {1};
  std::size_t sample_every = 10;
  bool baseline_compare = false;

  std::vector<Assertion> assertions;

  /// Parse the .scn grammar. Throws InvalidArgument naming the offending
  /// line on any syntax error, unknown section/key, or bad value.
  static ScenarioSpec parse(std::istream& in, const std::string& origin);
  static ScenarioSpec parse_string(const std::string& text,
                                   const std::string& origin = "<string>");
  static ScenarioSpec parse_file(const std::string& path);
};

/// Apply one enumerated [trace] override to a profile; throws
/// InvalidArgument for keys that are not overridable. Exposed for the
/// drift test that keeps the .scn grammar and SyntheticProfile in sync.
void apply_profile_override(trace::SyntheticProfile& profile,
                            const std::string& key, double value,
                            const std::string& context);

}  // namespace resmon::scenario
