#include "scenario/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <limits>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

#include "agg/aggregator.hpp"
#include "common/error.hpp"
#include "core/metrics.hpp"
#include "core/pipeline.hpp"
#include "host/procfs.hpp"
#include "host/recording.hpp"
#include "host/sampler.hpp"
#include "host/source.hpp"
#include "net/agent.hpp"
#include "net/controller.hpp"
#include "net/socket.hpp"
#include "scenario/manual_clock.hpp"
#include "trace/synthetic.hpp"

namespace resmon::scenario {

namespace {

/// Metric values keyed by the exposition series key (name + labels).
using SnapshotMap = std::map<std::string, double>;

SnapshotMap snapshot_map(const obs::MetricsRegistry& registry) {
  SnapshotMap out;
  for (const obs::Sample& s : registry.snapshot()) {
    out[s.name + s.labels] = s.value;
  }
  return out;
}

std::string op_name(Assertion::Op op) {
  switch (op) {
    case Assertion::Op::kEq:
      return "==";
    case Assertion::Op::kNe:
      return "!=";
    case Assertion::Op::kLe:
      return "<=";
    case Assertion::Op::kGe:
      return ">=";
    case Assertion::Op::kLt:
      return "<";
    case Assertion::Op::kGt:
      return ">";
  }
  return "?";
}

bool eval_op(Assertion::Op op, double actual, double threshold) {
  switch (op) {
    case Assertion::Op::kEq:
      return actual == threshold;
    case Assertion::Op::kNe:
      return actual != threshold;
    case Assertion::Op::kLe:
      return actual <= threshold;
    case Assertion::Op::kGe:
      return actual >= threshold;
    case Assertion::Op::kLt:
      return actual < threshold;
    case Assertion::Op::kGt:
      return actual > threshold;
  }
  return false;
}

std::string fmt(double v) {
  std::ostringstream ss;
  ss << v;
  return ss.str();
}

/// Evaluate every assertion against the final snapshot and the sampled
/// series history.
void evaluate(const ScenarioSpec& spec, const SnapshotMap& final_values,
              const std::map<std::string, std::vector<double>>& series,
              ScenarioResult& result) {
  for (const Assertion& a : spec.assertions) {
    AssertionOutcome out;
    out.assertion = a;
    const std::string key = a.series_key();
    switch (a.kind) {
      case Assertion::Kind::kCompare: {
        out.expected = op_name(a.op) + " " + fmt(a.value);
        const auto it = final_values.find(key);
        if (it == final_values.end()) {
          out.found = false;
          break;
        }
        out.actual = it->second;
        out.passed = eval_op(a.op, out.actual, a.value);
        break;
      }
      case Assertion::Kind::kBand: {
        out.expected =
            "in " + fmt(a.value) + " +- " + fmt(a.tolerance);
        const auto it = final_values.find(key);
        if (it == final_values.end()) {
          out.found = false;
          break;
        }
        out.actual = it->second;
        out.passed = std::abs(out.actual - a.value) <= a.tolerance;
        break;
      }
      case Assertion::Kind::kMonotonic: {
        out.expected = a.increasing ? "nondecreasing" : "nonincreasing";
        if (a.slack > 0) out.expected += " (slack " + fmt(a.slack) + ")";
        const auto it = series.find(key);
        if (it == series.end() || it->second.empty()) {
          out.found = false;
          break;
        }
        const std::vector<double>& v = it->second;
        out.passed = true;
        out.actual = v.back();
        for (std::size_t i = 1; i < v.size(); ++i) {
          const bool ok = a.increasing ? v[i] >= v[i - 1] - a.slack
                                       : v[i] <= v[i - 1] + a.slack;
          if (!ok) {
            out.passed = false;
            out.actual = v[i];
            out.expected += " (violated at sample " + std::to_string(i) +
                            ", previous " + fmt(v[i - 1]) + ")";
            break;
          }
        }
        break;
      }
    }
    if (!out.found) out.passed = false;
    if (!out.passed) result.passed = false;
    result.outcomes.push_back(std::move(out));
  }
}

trace::SyntheticProfile profile_for(const ScenarioSpec& spec) {
  trace::SyntheticProfile profile = trace::profile_by_name(spec.profile);
  if (spec.nodes != 0) profile.num_nodes = spec.nodes;
  if (spec.steps != 0) profile.num_steps = spec.steps;
  for (const auto& [key, value] : spec.profile_overrides) {
    apply_profile_override(profile, key, value,
                           "scenario '" + spec.name + "'");
  }
  return profile;
}

core::PipelineOptions pipeline_options(const ScenarioSpec& spec,
                                       obs::MetricsRegistry* registry) {
  core::PipelineOptions opt;
  opt.policy = spec.policy;
  opt.max_frequency = spec.max_frequency;
  opt.num_clusters = spec.num_clusters;
  opt.temporal_window = spec.temporal_window;
  opt.forecaster = spec.model;
  opt.schedule = {.initial_steps = spec.initial_steps,
                  .retrain_interval = spec.retrain_interval};
  opt.seed = spec.pipeline_seed;
  opt.num_threads = spec.threads;
  opt.faults = spec.faults;
  opt.metrics = registry;
  return opt;
}

std::size_t resolve_run_steps(const ScenarioSpec& spec,
                              const trace::Trace& trace) {
  const std::size_t steps =
      spec.run_steps == 0 ? trace.num_steps() : spec.run_steps;
  RESMON_REQUIRE(steps <= trace.num_steps(),
                 "scenario run steps exceed the trace length");
  RESMON_REQUIRE(steps > 0, "scenario would run zero steps");
  return steps;
}

/// Shared result-export state: per-horizon RMSE accumulators plus the
/// sampled series history for monotonicity assertions.
struct ResultTracker {
  explicit ResultTracker(const ScenarioSpec& spec) : spec_(spec) {
    accumulators_.resize(spec.horizons.size());
  }

  /// Score the pipeline after it processed step t (0-based).
  void score(const core::MonitoringPipeline& pipeline, std::size_t t) {
    if (t + 1 < spec_.initial_steps) return;  // models still warming up
    const std::size_t limit = pipeline.trace().num_steps();
    for (std::size_t i = 0; i < spec_.horizons.size(); ++i) {
      const std::size_t h = spec_.horizons[i];
      if (t + h >= limit) continue;  // no ground truth that far out
      accumulators_[i].add(pipeline.rmse_at(h));
    }
  }

  void sample(const obs::MetricsRegistry& registry) {
    for (const auto& [key, value] : snapshot_map(registry)) {
      series_[key].push_back(value);
    }
  }

  /// Export the resmon_scenario_* result gauges.
  void publish(const ScenarioSpec& spec, obs::MetricsRegistry& registry,
               const core::MonitoringPipeline& pipeline,
               std::size_t steps_run, double traffic_fraction,
               double bytes_sent, double divergence) {
    register_result_metrics(registry, spec.horizons);
    registry.gauge("resmon_scenario_steps", "")
        .set(static_cast<double>(steps_run));
    registry.gauge("resmon_scenario_traffic_fraction", "")
        .set(traffic_fraction);
    registry.gauge("resmon_scenario_bytes_sent", "").set(bytes_sent);
    registry.gauge("resmon_scenario_forecast_divergence", "")
        .set(divergence);
    const std::size_t last = pipeline.current_step() - 1;
    const std::size_t limit = pipeline.trace().num_steps();
    for (std::size_t i = 0; i < spec.horizons.size(); ++i) {
      const std::size_t h = spec.horizons[i];
      const obs::Labels labels = {{"h", std::to_string(h)}};
      registry.gauge("resmon_scenario_rmse", "", labels)
          .set(accumulators_[i].value());
      // Aggregate |mean forecast - mean truth| at the end of the run: the
      // capacity-planning view (how much total load h slots ahead).
      if (last + h < limit) {
        const Matrix forecast = pipeline.forecast_all(h);
        double fsum = 0.0;
        double tsum = 0.0;
        for (std::size_t n = 0; n < forecast.rows(); ++n) {
          for (std::size_t r = 0; r < forecast.cols(); ++r) {
            fsum += forecast(n, r);
            tsum += pipeline.trace().value(n, last + h, r);
          }
        }
        const double cells =
            static_cast<double>(forecast.rows() * forecast.cols());
        registry.gauge("resmon_scenario_aggregate_abs_error", "", labels)
            .set(std::abs(fsum - tsum) / cells);
      }
    }
  }

  const std::map<std::string, std::vector<double>>& series() const {
    return series_;
  }

 private:
  const ScenarioSpec& spec_;
  std::vector<core::RmseAccumulator> accumulators_;
  std::map<std::string, std::vector<double>> series_;
};

/// Max elementwise |a - b|; infinity on shape mismatch.
double max_abs_diff(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return std::numeric_limits<double>::infinity();
  }
  double worst = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      worst = std::max(worst, std::abs(a(r, c) - b(r, c)));
    }
  }
  return worst;
}

ScenarioResult run_in_process(const ScenarioSpec& spec,
                              obs::MetricsRegistry& registry) {
  const trace::SyntheticProfile profile = profile_for(spec);
  const trace::InMemoryTrace trace =
      trace::generate(profile, spec.trace_seed);
  const std::size_t steps = resolve_run_steps(spec, trace);

  core::MonitoringPipeline pipeline(trace, pipeline_options(spec, &registry));

  // Fault-free twin for bit-identity divergence: same trace, same options,
  // no faultnet spec, metrics kept out of the shared registry.
  std::unique_ptr<obs::MetricsRegistry> twin_registry;
  std::unique_ptr<core::MonitoringPipeline> twin;
  if (spec.baseline_compare) {
    twin_registry = std::make_unique<obs::MetricsRegistry>();
    core::PipelineOptions twin_options =
        pipeline_options(spec, twin_registry.get());
    twin_options.faults = {};
    twin = std::make_unique<core::MonitoringPipeline>(trace, twin_options);
  }

  ResultTracker tracker(spec);
  double divergence = 0.0;
  for (std::size_t t = 0; t < steps; ++t) {
    pipeline.step();
    if (twin != nullptr) twin->step();
    tracker.score(pipeline, t);
    const bool sampled = (t + 1) % spec.sample_every == 0 || t + 1 == steps;
    if (sampled) {
      tracker.sample(registry);
      if (twin != nullptr) {
        // h = 0 compares the stored central view, h >= 1 the forecasts.
        divergence = std::max(
            divergence,
            max_abs_diff(pipeline.forecast_all(0), twin->forecast_all(0)));
        for (const std::size_t h : spec.horizons) {
          if (t + h >= trace.num_steps()) continue;
          divergence = std::max(
              divergence,
              max_abs_diff(pipeline.forecast_all(h), twin->forecast_all(h)));
        }
      }
    }
  }

  const double traffic = pipeline.collector().average_actual_frequency();
  const double bytes =
      registry.value("resmon_collect_link_bytes_sent").value_or(0.0);
  tracker.publish(spec, registry, pipeline, steps, traffic, bytes,
                  divergence);

  ScenarioResult result;
  result.name = spec.name;
  result.steps_run = steps;
  // One final sample so monotonic assertions see the published gauges too.
  tracker.sample(registry);
  evaluate(spec, snapshot_map(registry), tracker.series(), result);
  return result;
}

// ------------------------------------------------------------------ host mode

/// Burn a little CPU between samples so the recorded utilization series is
/// not identically zero; the volatile sink keeps the loop alive under -O2.
void busy_spin(std::size_t iters) {
  volatile double sink = 0.0;
  for (std::size_t i = 0; i < iters; ++i) {
    sink = sink + static_cast<double>(i % 7) * 1e-9;
  }
}

trace::InMemoryTrace trace_from_rows(
    const std::vector<std::vector<double>>& rows) {
  trace::InMemoryTrace t(1, rows.size(), rows.front().size());
  for (std::size_t step = 0; step < rows.size(); ++step) {
    for (std::size_t r = 0; r < rows[step].size(); ++r) {
      t.set_value(0, step, r, rows[step][r]);
    }
  }
  return t;
}

/// Host mode: sample this very process through the procfs backend while
/// recording, replay the recording through a second pipeline, and publish
/// the max forecast divergence between the two — which must be 0 whatever
/// the live host happened to be doing, because both pipelines consume the
/// same recorded bytes. This is the determinism contract of DESIGN.md
/// "Host collection", enforced as a scenario assertion.
ScenarioResult run_host(const ScenarioSpec& spec,
                        obs::MetricsRegistry& registry) {
  // Record phase: live procfs reads, teed into an in-memory recording.
  host::DirProcfs procfs(spec.host_procfs_root);
  host::HostSamplerOptions hopts;
  hopts.metrics = &registry;
  host::HostSampler sampler(procfs, hopts);
  std::ostringstream recorded;
  host::RecordingWriter writer(recorded, spec.host_interval_ms,
                               host::HostSampler::kNumResources);
  host::ProcfsSamplerSource::Options sopts;
  sopts.interval_ms = spec.host_interval_ms;
  sopts.recorder = &writer;
  host::ProcfsSamplerSource source(sampler, sopts);
  std::vector<std::vector<double>> rows;
  rows.reserve(spec.host_samples);
  for (std::size_t t = 0; t < spec.host_samples; ++t) {
    rows.push_back(source.measurement(t));
    busy_spin(spec.host_busy_iters);
  }
  writer.finish();

  // Replay phase: parse the recording back exactly like --source replay.
  std::istringstream replayed(recorded.str());
  const host::Recording recording =
      host::read_recording(replayed, "<recording>");
  RESMON_REQUIRE(recording.rows == rows,
                 "scenario: replayed rows differ from the recorded samples");

  const trace::InMemoryTrace live_trace = trace_from_rows(rows);
  const trace::InMemoryTrace replay_trace = trace_from_rows(recording.rows);
  const std::size_t steps = resolve_run_steps(spec, live_trace);

  core::MonitoringPipeline pipeline(live_trace,
                                    pipeline_options(spec, &registry));
  obs::MetricsRegistry twin_registry;
  core::MonitoringPipeline twin(replay_trace,
                                pipeline_options(spec, &twin_registry));

  ResultTracker tracker(spec);
  double divergence = 0.0;
  for (std::size_t t = 0; t < steps; ++t) {
    pipeline.step();
    twin.step();
    tracker.score(pipeline, t);
    if ((t + 1) % spec.sample_every == 0 || t + 1 == steps) {
      tracker.sample(registry);
      divergence = std::max(divergence, max_abs_diff(pipeline.forecast_all(0),
                                                     twin.forecast_all(0)));
      for (const std::size_t h : spec.horizons) {
        if (t + h >= live_trace.num_steps()) continue;
        divergence = std::max(
            divergence,
            max_abs_diff(pipeline.forecast_all(h), twin.forecast_all(h)));
      }
    }
  }

  const double traffic = pipeline.collector().average_actual_frequency();
  const double bytes =
      registry.value("resmon_collect_link_bytes_sent").value_or(0.0);
  tracker.publish(spec, registry, pipeline, steps, traffic, bytes,
                  divergence);

  ScenarioResult result;
  result.name = spec.name;
  result.steps_run = steps;
  tracker.sample(registry);
  evaluate(spec, snapshot_map(registry), tracker.series(), result);
  return result;
}

// ---------------------------------------------------------------- socket mode

/// One churn-driven agent slot: the Agent object (absent while killed) and
/// the scheduled events for this node.
struct AgentSlot {
  std::unique_ptr<net::Agent> agent;
};

std::unique_ptr<net::Agent> make_agent(const ScenarioSpec& spec,
                                       std::uint16_t port, std::size_t node,
                                       std::size_t num_resources) {
  net::AgentOptions opt;
  opt.port = port;
  opt.node = static_cast<std::uint32_t>(node);
  opt.num_resources = static_cast<std::uint32_t>(num_resources);
  return std::make_unique<net::Agent>(
      opt, collect::make_policy_factory(spec.policy, spec.max_frequency)());
}

/// Run `connect()` on a helper thread while the controller pumps its event
/// loop until the node's hello lands (the rejoin flips it back to LIVE);
/// rethrows any connect failure on the caller. Bounded so a wedged
/// handshake cannot hang the runner.
void connect_pumping(net::Agent& agent, net::Controller& controller,
                     std::size_t node) {
  std::exception_ptr failure;
  std::thread th([&] {
    try {
      agent.connect();
      // Captured for the deferred std::rethrow_exception after join().
      // resmon-lint-allow(catch-all-swallow): rethrown on the caller
    } catch (...) {
      failure = std::current_exception();
    }
  });
  for (int rounds = 0;
       rounds < 1000 && controller.node_state(node) != net::NodeState::kLive;
       ++rounds) {
    controller.pump_idle(10);
  }
  th.join();
  if (failure != nullptr) std::rethrow_exception(failure);
  RESMON_REQUIRE(controller.node_state(node) == net::NodeState::kLive,
                 "scenario: node did not rejoin after restart");
}

/// One socket-mode fleet: agents -> controller (single tier) or agents ->
/// aggregators -> root (two tiers). baseline_compare in two-tier mode runs
/// a second, single-tier fleet of these in lock-step over the same trace —
/// the bit-identity twin. Not movable: the ManualClock's now_fn closures
/// capture `this`-adjacent state, so the fleet is built in place.
struct SocketFleet {
  ManualClock clock;
  std::unique_ptr<net::Controller> root;
  /// Private registries for the aggregators' *internal* controllers: their
  /// per-node resmon_net_* series would collide with the root's otherwise.
  std::vector<std::unique_ptr<obs::MetricsRegistry>> agg_net_registries;
  std::vector<std::unique_ptr<agg::Aggregator>> aggs;
  std::vector<std::size_t> owner;  ///< node -> shard index (two-tier)
  std::vector<AgentSlot> agents;
  std::unique_ptr<core::MonitoringPipeline> pipeline;
  std::uint64_t agent_bytes = 0;
  std::uint64_t agent_measurements = 0;

  bool two_tier() const { return !aggs.empty(); }
  /// The controller a node's agent speaks to: its shard's downstream side
  /// in two-tier mode, the root otherwise.
  net::Controller& downstream_of(std::size_t node) {
    return two_tier() ? aggs[owner[node]]->downstream() : *root;
  }

  /// Keep traffic totals across kills: the Agent object dies with them.
  void retire(AgentSlot& slot) {
    agent_bytes += slot.agent->bytes_sent();
    agent_measurements += slot.agent->measurements_sent();
    slot.agent.reset();
  }
};

/// Build one fleet over `trace` and complete every handshake: shard hellos
/// first (two-tier), then the whole agent fleet in parallel.
std::unique_ptr<SocketFleet> make_socket_fleet(const ScenarioSpec& spec,
                                               const trace::InMemoryTrace& trace,
                                               obs::MetricsRegistry& registry,
                                               bool two_tier) {
  const std::size_t n = trace.num_nodes();
  const int msps = static_cast<int>(spec.ms_per_slot);
  auto fleet = std::make_unique<SocketFleet>();

  // The +msps/2 offset keeps thresholds off exact slot multiples: a live
  // node's silence peaks at whole slots, so it can never tie the limit.
  const int stale_after_ms =
      static_cast<int>(spec.stale_after_slots) * msps + msps / 2;
  const int dead_after_ms =
      spec.dead_after_slots == 0
          ? 0
          : static_cast<int>(spec.dead_after_slots) * msps + msps / 2;

  net::ControllerOptions copt;
  copt.num_nodes = n;
  copt.num_resources = trace.num_resources();
  copt.metrics = &registry;
  if (two_tier) {
    // The shard tier owns per-node staleness; the root's degraded-slot
    // accounting comes from the summaries' degraded counts alone.
    copt.num_shards = spec.shards;
  } else {
    copt.stale_after_ms = stale_after_ms;
    copt.dead_after_ms = dead_after_ms;
    copt.staleness_clock = fleet->clock.now_fn();
  }
  fleet->root = std::make_unique<net::Controller>(
      net::Socket::listen_tcp("127.0.0.1", 0), copt);

  if (two_tier) {
    RESMON_REQUIRE(spec.shards <= n,
                   "scenario: more shards than nodes in [topology]");
    fleet->owner.resize(n);
    for (std::size_t shard = 0; shard < spec.shards; ++shard) {
      const agg::ShardRange range = agg::shard_range(n, spec.shards, shard);
      agg::AggregatorOptions aopt;
      aopt.shard = shard;
      aopt.first_node = range.first_node;
      aopt.num_nodes = range.num_nodes;
      aopt.num_resources = trace.num_resources();
      aopt.upstream_port = fleet->root->port();
      aopt.stale_after_ms = stale_after_ms;
      aopt.dead_after_ms = dead_after_ms;
      aopt.staleness_clock = fleet->clock.now_fn();
      aopt.metrics = &registry;  // resmon_agg_* series are shard-labeled
      fleet->agg_net_registries.push_back(
          std::make_unique<obs::MetricsRegistry>());
      aopt.net_metrics = fleet->agg_net_registries.back().get();
      fleet->aggs.push_back(std::make_unique<agg::Aggregator>(
          net::Socket::listen_tcp("127.0.0.1", 0), aopt));
      for (std::size_t node = range.first_node;
           node < range.first_node + range.num_nodes; ++node) {
        fleet->owner[node] = shard;
      }
      // The shard hello blocks until the root pumps the ack. The main
      // thread owns the root, so the loop polls only the connector's done
      // flag — never the aggregator's own state, which the helper thread
      // is still writing.
      agg::Aggregator& aggregator = *fleet->aggs.back();
      std::exception_ptr failure;
      std::atomic<bool> done{false};
      std::thread connector([&] {
        try {
          aggregator.connect_upstream();
          // resmon-lint-allow(catch-all-swallow): rethrown after the join
        } catch (...) {
          failure = std::current_exception();
        }
        done.store(true, std::memory_order_release);
      });
      while (!done.load(std::memory_order_acquire)) {
        fleet->root->pump_idle(10);
      }
      connector.join();
      if (failure != nullptr) std::rethrow_exception(failure);
    }
    RESMON_REQUIRE(fleet->root->wait_for_shards(spec.shards, 10000),
                   "scenario: shard hellos did not finish");
  }

  core::PipelineOptions popt = pipeline_options(spec, &registry);
  fleet->pipeline = std::make_unique<core::MonitoringPipeline>(
      trace, popt, core::ExternalCollection{});

  // Connect the whole fleet: agents block on their hello/ack handshake in
  // helper threads while the main thread pumps their collectors.
  fleet->agents.resize(n);
  {
    std::vector<std::exception_ptr> failures(n);
    std::vector<std::thread> connectors;
    connectors.reserve(n);
    for (std::size_t node = 0; node < n; ++node) {
      fleet->agents[node].agent = make_agent(
          spec, fleet->downstream_of(node).port(), node,
          trace.num_resources());
      connectors.emplace_back([&fleet, &failures, node] {
        try {
          fleet->agents[node].agent->connect();
          // resmon-lint-allow(catch-all-swallow): rethrown after the joins
        } catch (...) {
          failures[node] = std::current_exception();
        }
      });
    }
    bool all_in = true;
    if (two_tier) {
      for (std::size_t shard = 0; shard < spec.shards; ++shard) {
        const agg::ShardRange range =
            agg::shard_range(n, spec.shards, shard);
        all_in = fleet->aggs[shard]->wait_for_agents(range.num_nodes, 10000)
                 && all_in;
      }
    } else {
      all_in = fleet->root->wait_for_agents(n, 10000);
    }
    for (std::thread& th : connectors) th.join();
    for (const std::exception_ptr& failure : failures) {
      if (failure != nullptr) std::rethrow_exception(failure);
    }
    RESMON_REQUIRE(all_in, "scenario: fleet did not finish its handshakes");
  }
  return fleet;
}

/// Apply one slot's churn events to a fleet. A restarted agent reconnects
/// to its original collector (the shard's downstream side in two-tier
/// mode), which pumps until the node is LIVE again.
void apply_churn(const ScenarioSpec& spec, SocketFleet& fleet,
                 const std::vector<ChurnEvent>& events,
                 std::size_t num_resources) {
  for (const ChurnEvent& ev : events) {
    RESMON_REQUIRE(ev.node < fleet.agents.size(),
                   "scenario: churn node out of range");
    AgentSlot& slot = fleet.agents[ev.node];
    if (!ev.restart) {
      RESMON_REQUIRE(slot.agent != nullptr,
                     "scenario: kill of an already-dead node");
      fleet.retire(slot);
    } else {
      RESMON_REQUIRE(slot.agent == nullptr,
                     "scenario: restart of a live node");
      net::Controller& downstream = fleet.downstream_of(ev.node);
      slot.agent =
          make_agent(spec, downstream.port(), ev.node, num_resources);
      connect_pumping(*slot.agent, downstream, ev.node);
    }
  }
}

/// Complete the fleet's slot-t barrier. The barrier waits for LIVE nodes
/// only: while a freshly-killed node is still LIVE it cannot complete, so
/// each timed-out attempt advances the manual clock one slot until the
/// staleness machine notices the silence and degrades the node. In
/// two-tier mode the aging happens per shard; the root then consumes one
/// summary per shard without a staleness machine of its own.
std::vector<transport::MeasurementMessage> collect_fleet_slot(
    const ScenarioSpec& spec, SocketFleet& fleet, std::size_t t) {
  const int msps = static_cast<int>(spec.ms_per_slot);
  const std::size_t max_attempts = spec.stale_after_slots + 8;
  if (fleet.two_tier()) {
    for (auto& aggregator : fleet.aggs) {
      bool forwarded = false;
      for (std::size_t attempt = 0; attempt < max_attempts && !forwarded;
           ++attempt) {
        forwarded = aggregator->forward_slot(t, 200);
        if (!forwarded) fleet.clock.advance_ms(msps);
      }
      RESMON_REQUIRE(forwarded,
                     "scenario: shard barrier stuck past the staleness "
                     "policy");
    }
    auto messages = fleet.root->collect_slot(t, 10000);
    RESMON_REQUIRE(messages.has_value(),
                   "scenario: root did not receive every shard summary");
    return *messages;
  }
  std::optional<std::vector<transport::MeasurementMessage>> messages;
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    messages = fleet.root->collect_slot(t, 200);
    if (messages.has_value()) break;
    fleet.clock.advance_ms(msps);
  }
  RESMON_REQUIRE(messages.has_value(),
                 "scenario: slot barrier stuck past the staleness policy");
  return *messages;
}

ScenarioResult run_socket(const ScenarioSpec& spec,
                          obs::MetricsRegistry& registry) {
  const trace::SyntheticProfile profile = profile_for(spec);
  const trace::InMemoryTrace trace =
      trace::generate(profile, spec.trace_seed);
  const std::size_t steps = resolve_run_steps(spec, trace);
  const std::size_t n = trace.num_nodes();
  const int msps = static_cast<int>(spec.ms_per_slot);

  auto fleet =
      make_socket_fleet(spec, trace, registry, spec.tiers == 2);

  // The bit-identity twin (two-tier scenarios only, validated at parse
  // time): a single-tier fleet over the same trace, same churn, its own
  // clock and registry, driven in lock-step so the divergence gauge
  // compares the two topologies sample by sample.
  std::unique_ptr<obs::MetricsRegistry> twin_registry;
  std::unique_ptr<SocketFleet> twin;
  if (spec.baseline_compare) {
    twin_registry = std::make_unique<obs::MetricsRegistry>();
    twin = make_socket_fleet(spec, trace, *twin_registry,
                             /*two_tier=*/false);
  }

  // Index churn events by slot for the lock-step loop.
  std::map<std::size_t, std::vector<ChurnEvent>> churn_at;
  for (const ChurnEvent& ev : spec.churn) churn_at[ev.slot].push_back(ev);

  ResultTracker tracker(spec);
  double divergence = 0.0;
  for (std::size_t t = 0; t < steps; ++t) {
    if (const auto it = churn_at.find(t); it != churn_at.end()) {
      apply_churn(spec, *fleet, it->second, trace.num_resources());
      if (twin != nullptr) {
        apply_churn(spec, *twin, it->second, trace.num_resources());
      }
    }

    // Lock-step: every live agent writes its slot-t frame (measurement or
    // heartbeat) before the collectors start, so the first pump below
    // touches every live node at the *current* manual time.
    for (SocketFleet* f : {fleet.get(), twin.get()}) {
      if (f == nullptr) continue;
      for (std::size_t node = 0; node < n; ++node) {
        if (f->agents[node].agent == nullptr) continue;
        f->agents[node].agent->observe(t, trace.measurement(node, t));
      }
      f->clock.advance_ms(msps);
      f->pipeline->step_external(collect_fleet_slot(spec, *f, t));
    }

    tracker.score(*fleet->pipeline, t);
    if ((t + 1) % spec.sample_every == 0 || t + 1 == steps) {
      tracker.sample(registry);
      if (twin != nullptr) {
        // h = 0 compares the stored central view, h >= 1 the forecasts.
        divergence = std::max(
            divergence, max_abs_diff(fleet->pipeline->forecast_all(0),
                                     twin->pipeline->forecast_all(0)));
        for (const std::size_t h : spec.horizons) {
          if (t + h >= trace.num_steps()) continue;
          divergence = std::max(
              divergence, max_abs_diff(fleet->pipeline->forecast_all(h),
                                       twin->pipeline->forecast_all(h)));
        }
      }
    }
  }

  for (SocketFleet* f : {fleet.get(), twin.get()}) {
    if (f == nullptr) continue;
    for (AgentSlot& slot : f->agents) {
      if (slot.agent != nullptr) f->retire(slot);
    }
  }
  const double traffic =
      static_cast<double>(fleet->agent_measurements) /
      (static_cast<double>(n) * static_cast<double>(steps));
  tracker.publish(spec, registry, *fleet->pipeline, steps, traffic,
                  static_cast<double>(fleet->agent_bytes), divergence);

  ScenarioResult result;
  result.name = spec.name;
  result.steps_run = steps;
  tracker.sample(registry);
  evaluate(spec, snapshot_map(registry), tracker.series(), result);
  return result;
}

}  // namespace

const AssertionOutcome* ScenarioResult::first_failure() const {
  for (const AssertionOutcome& out : outcomes) {
    if (!out.passed) return &out;
  }
  return nullptr;
}

void register_result_metrics(obs::MetricsRegistry& registry,
                             const std::vector<std::size_t>& horizons) {
  registry.gauge("resmon_scenario_steps",
                 "Time slots the scenario actually executed");
  registry.gauge("resmon_scenario_traffic_fraction",
                 "Measurements transmitted per node-slot (actual frequency)");
  registry.gauge("resmon_scenario_bytes_sent",
                 "Total uplink bytes the fleet paid for during the scenario");
  registry.gauge(
      "resmon_scenario_forecast_divergence",
      "Max |difference| between the faulted run and its fault-free twin "
      "(stored values and forecasts; 0 = bit-identical)");
  for (const std::size_t h : horizons) {
    const obs::Labels labels = {{"h", std::to_string(h)}};
    registry.gauge("resmon_scenario_rmse",
                   "Time-averaged forecast RMSE (eq. (4)) at horizon h",
                   labels);
    registry.gauge(
        "resmon_scenario_aggregate_abs_error",
        "Capacity-planning error: |mean forecast - mean truth| per cell at "
        "horizon h, scored at the end of the run",
        labels);
  }
}

ScenarioResult run(const ScenarioSpec& spec, obs::MetricsRegistry& registry) {
  if (spec.host_mode) return run_host(spec, registry);
  if (spec.socket_mode) return run_socket(spec, registry);
  return run_in_process(spec, registry);
}

bool print_report(const ScenarioResult& result, std::ostream& out,
                  bool verbose) {
  if (verbose) {
    for (const AssertionOutcome& o : result.outcomes) {
      out << "  [" << (o.passed ? "PASS" : "FAIL") << "] "
          << o.assertion.raw << '\n';
    }
  }
  if (result.passed) {
    out << "PASS " << result.name << " (" << result.outcomes.size()
        << " assertions, " << result.steps_run << " steps)\n";
    return true;
  }
  const AssertionOutcome* first = result.first_failure();
  out << "FAIL " << result.name << ": " << first->assertion.series_key()
      << " expected " << first->expected << ", actual ";
  if (first->found) {
    out << first->actual;
  } else {
    out << "<metric not found>";
  }
  out << '\n';
  return false;
}

}  // namespace resmon::scenario
