// ManualClock: a hand-advanced stand-in for the monotonic clock.
//
// The Controller's LIVE -> STALE -> DEAD machine ages nodes by silence
// measured on an injectable clock (ControllerOptions::staleness_clock).
// Binding that clock to real time makes every staleness test a race against
// the scheduler; binding it to a ManualClock makes a "slot of silence" an
// explicit advance_ms() call, so churn scenarios and test_degradation
// replay bit-identically on any machine, sanitizer, or load.
//
// Thread-safe: now() may be read from the controller's pump loop while a
// driver thread advances it.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>

namespace resmon::scenario {

class ManualClock {
 public:
  /// Current manual time: a fixed epoch plus every advance so far.
  std::chrono::steady_clock::time_point now() const {
    return epoch_ + std::chrono::milliseconds(
                        elapsed_ms_.load(std::memory_order_acquire));
  }

  /// Move the clock forward (never backward — the clock stays monotonic).
  void advance_ms(std::int64_t ms) {
    elapsed_ms_.fetch_add(ms, std::memory_order_acq_rel);
  }

  /// Milliseconds advanced since construction.
  std::int64_t elapsed_ms() const {
    return elapsed_ms_.load(std::memory_order_acquire);
  }

  /// Adapter for ControllerOptions::staleness_clock. The controller must
  /// not outlive this clock.
  std::function<std::chrono::steady_clock::time_point()> now_fn() {
    return [this] { return now(); };
  }

 private:
  // A fixed default epoch: the absolute value never matters, only
  // differences, and starting at a constant keeps runs reproducible.
  std::chrono::steady_clock::time_point epoch_{};
  std::atomic<std::int64_t> elapsed_ms_{0};
};

}  // namespace resmon::scenario
