#include "scenario/scenario_spec.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/parse.hpp"

namespace resmon::scenario {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (std::isspace(static_cast<unsigned char>(s[b])) != 0)) ++b;
  while (e > b && (std::isspace(static_cast<unsigned char>(s[e - 1])) != 0)) {
    --e;
  }
  return s.substr(b, e - b);
}

/// Strip a trailing '# comment' (a '#' not inside a quoted string).
std::string strip_comment(const std::string& line) {
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '"') quoted = !quoted;
    if (line[i] == '#' && !quoted) return line.substr(0, i);
  }
  return line;
}

collect::PolicyKind policy_from_string(const std::string& name,
                                       const std::string& context) {
  if (name == "adaptive") return collect::PolicyKind::kAdaptive;
  if (name == "uniform") return collect::PolicyKind::kUniform;
  if (name == "always") return collect::PolicyKind::kAlways;
  if (name == "deadband") return collect::PolicyKind::kDeadband;
  throw InvalidArgument(context + ": unknown policy '" + name +
                        "' (want adaptive|uniform|always|deadband)");
}

/// Parse "NODE:SLOT" for churn events.
ChurnEvent parse_churn(const std::string& value, bool restart,
                       const std::string& context) {
  const std::size_t colon = value.find(':');
  if (colon == std::string::npos) {
    throw InvalidArgument(context + ": churn events are NODE:SLOT, got '" +
                          value + "'");
  }
  ChurnEvent ev;
  ev.node = parse_size(context + " node", value.substr(0, colon));
  ev.slot = parse_size(context + " slot", value.substr(colon + 1));
  ev.restart = restart;
  return ev;
}

/// Parse a metric reference `family` or `family{k=v,k2="v2"}` into a name
/// plus a Labels set. Label values may be quoted or bare.
void parse_metric_ref(const std::string& text, Assertion& out,
                      const std::string& context) {
  const std::size_t brace = text.find('{');
  if (brace == std::string::npos) {
    out.metric = text;
  } else {
    if (text.back() != '}') {
      throw InvalidArgument(context + ": unterminated label set in '" + text +
                            "'");
    }
    out.metric = text.substr(0, brace);
    const std::string body = text.substr(brace + 1, text.size() - brace - 2);
    std::istringstream labels(body);
    std::string pair;
    while (std::getline(labels, pair, ',')) {
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        throw InvalidArgument(context + ": label '" + pair +
                              "' is not key=value");
      }
      std::string key = trim(pair.substr(0, eq));
      std::string value = trim(pair.substr(eq + 1));
      if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
        value = value.substr(1, value.size() - 2);
      }
      if (key.empty()) {
        throw InvalidArgument(context + ": empty label key in '" + pair + "'");
      }
      out.labels.emplace_back(std::move(key), std::move(value));
    }
  }
  if (out.metric.empty()) {
    throw InvalidArgument(context + ": empty metric name");
  }
}

Assertion parse_assertion(const std::string& line, const std::string& context) {
  // Tokenize on whitespace; the first token is the metric reference.
  std::istringstream ss(line);
  std::vector<std::string> tok;
  std::string t;
  while (ss >> t) tok.push_back(t);
  if (tok.size() < 2) {
    throw InvalidArgument(context + ": assertion needs a metric and an "
                          "operator: '" + line + "'");
  }
  Assertion a;
  a.raw = line;
  parse_metric_ref(tok[0], a, context);

  const std::string& op = tok[1];
  if (op == "nondecreasing" || op == "nonincreasing") {
    a.kind = Assertion::Kind::kMonotonic;
    a.increasing = op == "nondecreasing";
    if (tok.size() == 2) return a;
    if (tok.size() == 4 && tok[2] == "slack") {
      a.slack = parse_double(context + " slack", tok[3]);
      return a;
    }
    throw InvalidArgument(context + ": monotonic assertion is 'METRIC " + op +
                          " [slack S]': '" + line + "'");
  }
  if (op == "in") {
    // METRIC in CENTER +- TOL
    if (tok.size() != 5 || tok[3] != "+-") {
      throw InvalidArgument(context +
                            ": band assertion is 'METRIC in CENTER +- TOL': "
                            "'" + line + "'");
    }
    a.kind = Assertion::Kind::kBand;
    a.value = parse_double(context + " center", tok[2]);
    a.tolerance = parse_double(context + " tolerance", tok[4]);
    if (a.tolerance < 0) {
      throw InvalidArgument(context + ": negative tolerance in '" + line +
                            "'");
    }
    return a;
  }
  static const std::vector<std::pair<std::string, Assertion::Op>> kOps = {
      {"==", Assertion::Op::kEq}, {"!=", Assertion::Op::kNe},
      {"<=", Assertion::Op::kLe}, {">=", Assertion::Op::kGe},
      {"<", Assertion::Op::kLt},  {">", Assertion::Op::kGt}};
  const auto it =
      std::find_if(kOps.begin(), kOps.end(),
                   [&](const auto& kv) { return kv.first == op; });
  if (it == kOps.end() || tok.size() != 3) {
    throw InvalidArgument(context + ": expected 'METRIC <op> VALUE' with op "
                          "one of == != <= >= < > in nondecreasing "
                          "nonincreasing: '" + line + "'");
  }
  a.kind = Assertion::Kind::kCompare;
  a.op = it->second;
  a.value = parse_double(context + " threshold", tok[2]);
  return a;
}

}  // namespace

std::string Assertion::series_key() const {
  return metric + obs::MetricsRegistry::render_labels(labels);
}

void apply_profile_override(trace::SyntheticProfile& profile,
                            const std::string& key, double value,
                            const std::string& context) {
  // Enumerated on purpose: every overridable knob is named here, so a typo
  // in a pack is a parse error instead of a silently ignored key.
  if (key == "groups") {
    profile.num_groups = static_cast<std::size_t>(value);
  } else if (key == "resources") {
    profile.num_resources = static_cast<std::size_t>(value);
  } else if (key == "diurnal_period") {
    profile.diurnal_period = value;
  } else if (key == "weekend_dampening") {
    profile.weekend_dampening = value;
  } else if (key == "spike_probability") {
    profile.spike_probability = value;
  } else if (key == "spike_magnitude") {
    profile.spike_magnitude = value;
  } else if (key == "regime_switch_probability") {
    profile.regime_switch_probability = value;
  } else if (key == "group_jump_probability") {
    profile.group_jump_probability = value;
  } else if (key == "group_jump_std") {
    profile.group_jump_std = value;
  } else if (key == "volatility_active") {
    profile.volatility_active = value;
  } else if (key == "volatility_switch_probability") {
    profile.volatility_switch_probability = value;
  } else if (key == "node_noise_std") {
    profile.node_noise_std = value;
  } else {
    throw InvalidArgument(context + ": '" + key +
                          "' is not an overridable profile knob");
  }
}

ScenarioSpec ScenarioSpec::parse(std::istream& in, const std::string& origin) {
  ScenarioSpec spec;
  bool saw_controller = false;
  bool saw_horizons = false;
  std::string section;  // "" = top level
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    line = trim(strip_comment(line));
    if (line.empty()) continue;
    const std::string context =
        origin + ":" + std::to_string(line_no);

    if (line.front() == '[') {
      if (line.back() != ']') {
        throw InvalidArgument(context + ": unterminated section header '" +
                              line + "'");
      }
      section = line.substr(1, line.size() - 2);
      static const std::vector<std::string> kSections = {
          "trace", "pipeline", "faults", "controller", "topology", "churn",
          "host", "run", "assert"};
      if (std::find(kSections.begin(), kSections.end(), section) ==
          kSections.end()) {
        throw InvalidArgument(context + ": unknown section [" + section + "]");
      }
      if (section == "controller") saw_controller = true;
      if (section == "host") spec.host_mode = true;
      continue;
    }

    if (section == "assert") {
      spec.assertions.push_back(parse_assertion(line, context));
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw InvalidArgument(context + ": expected 'key = value', got '" +
                            line + "'");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty() || value.empty()) {
      throw InvalidArgument(context + ": empty key or value in '" + line +
                            "'");
    }

    if (section.empty()) {
      if (key == "name") {
        spec.name = value;
      } else if (key == "description") {
        spec.description = value;
      } else {
        throw InvalidArgument(context + ": unknown top-level key '" + key +
                              "' (want name or description)");
      }
    } else if (section == "trace") {
      if (key == "profile") {
        spec.profile = value;
      } else if (key == "nodes") {
        spec.nodes = parse_size(context, value);
      } else if (key == "steps") {
        spec.steps = parse_size(context, value);
      } else if (key == "seed") {
        spec.trace_seed = parse_size(context, value);
      } else {
        // Everything else must be an enumerated profile override; validate
        // the key now against a scratch profile so bad keys fail at parse
        // time, not at run time.
        const double v = parse_double(context, value);
        trace::SyntheticProfile scratch;
        apply_profile_override(scratch, key, v, context);
        spec.profile_overrides.emplace_back(key, v);
      }
    } else if (section == "pipeline") {
      if (key == "policy") {
        spec.policy = policy_from_string(value, context);
      } else if (key == "b") {
        spec.max_frequency = parse_double(context, value);
      } else if (key == "k") {
        spec.num_clusters = parse_size(context, value);
      } else if (key == "model") {
        spec.model = forecast::forecaster_kind_from_string(value);
      } else if (key == "initial") {
        spec.initial_steps = parse_size(context, value);
      } else if (key == "retrain") {
        spec.retrain_interval = parse_size(context, value);
      } else if (key == "temporal_window") {
        spec.temporal_window = parse_size(context, value);
      } else if (key == "threads") {
        spec.threads = parse_size(context, value);
      } else if (key == "seed") {
        spec.pipeline_seed = parse_size(context, value);
      } else {
        throw InvalidArgument(context + ": unknown [pipeline] key '" + key +
                              "'");
      }
    } else if (section == "faults") {
      if (key == "spec") {
        spec.faults = faultnet::FaultSpec::parse(value);
      } else {
        throw InvalidArgument(context + ": unknown [faults] key '" + key +
                              "' (want spec)");
      }
    } else if (section == "controller") {
      if (key == "stale_after_slots") {
        spec.stale_after_slots = parse_size(context, value);
      } else if (key == "dead_after_slots") {
        spec.dead_after_slots = parse_size(context, value);
      } else if (key == "ms_per_slot") {
        spec.ms_per_slot = parse_size(context, value);
      } else {
        throw InvalidArgument(context + ": unknown [controller] key '" + key +
                              "'");
      }
    } else if (section == "topology") {
      if (key == "tiers") {
        spec.tiers = parse_size(context, value);
      } else if (key == "shards") {
        spec.shards = parse_size(context, value);
      } else {
        throw InvalidArgument(context + ": unknown [topology] key '" + key +
                              "' (want tiers or shards)");
      }
    } else if (section == "churn") {
      if (key == "kill") {
        spec.churn.push_back(parse_churn(value, /*restart=*/false, context));
      } else if (key == "restart") {
        spec.churn.push_back(parse_churn(value, /*restart=*/true, context));
      } else {
        throw InvalidArgument(context + ": unknown [churn] key '" + key +
                              "' (want kill or restart)");
      }
    } else if (section == "host") {
      if (key == "samples") {
        spec.host_samples = parse_size(context, value);
      } else if (key == "interval_ms") {
        spec.host_interval_ms = parse_size(context, value);
      } else if (key == "procfs_root") {
        spec.host_procfs_root = value;
      } else if (key == "busy_iters") {
        spec.host_busy_iters = parse_size(context, value);
      } else {
        throw InvalidArgument(context + ": unknown [host] key '" + key +
                              "' (want samples, interval_ms, procfs_root "
                              "or busy_iters)");
      }
    } else if (section == "run") {
      if (key == "steps") {
        spec.run_steps = parse_size(context, value);
      } else if (key == "horizons") {
        spec.horizons.clear();
        std::istringstream hs(value);
        std::string h;
        while (std::getline(hs, h, ',')) {
          spec.horizons.push_back(parse_size(context + " horizon", trim(h)));
        }
        if (spec.horizons.empty()) {
          throw InvalidArgument(context + ": horizons list is empty");
        }
        saw_horizons = true;
      } else if (key == "sample_every") {
        spec.sample_every = parse_size(context, value);
      } else if (key == "baseline_compare") {
        spec.baseline_compare = parse_bool(context, value);
      } else {
        throw InvalidArgument(context + ": unknown [run] key '" + key + "'");
      }
    }
  }

  spec.socket_mode = saw_controller;
  if (spec.name.empty()) {
    throw InvalidArgument(origin + ": scenario has no 'name ='");
  }
  if (spec.sample_every == 0) {
    throw InvalidArgument(origin + ": sample_every must be >= 1");
  }
  if (!spec.churn.empty() && !spec.socket_mode) {
    throw InvalidArgument(origin +
                          ": [churn] requires a [controller] section");
  }
  if (spec.socket_mode && spec.stale_after_slots == 0) {
    throw InvalidArgument(origin +
                          ": [controller] needs stale_after_slots >= 1");
  }
  if (spec.socket_mode && spec.dead_after_slots != 0 &&
      spec.dead_after_slots < spec.stale_after_slots) {
    throw InvalidArgument(origin +
                          ": dead_after_slots must be >= stale_after_slots");
  }
  if (spec.socket_mode && !spec.faults.empty()) {
    throw InvalidArgument(origin +
                          ": [faults] applies to the in-process link; use "
                          "[churn] in socket mode");
  }
  if (spec.tiers != 1 && spec.tiers != 2) {
    throw InvalidArgument(origin + ": tiers must be 1 or 2");
  }
  if (spec.tiers == 2 && !spec.socket_mode) {
    throw InvalidArgument(origin +
                          ": tiers = 2 requires a [controller] section");
  }
  if (spec.tiers == 2 && spec.shards == 0) {
    throw InvalidArgument(origin + ": shards must be >= 1");
  }
  // In socket mode the fault-free twin only exists for two-tier scenarios,
  // where it is the single-tier fleet the bit-identity invariant compares
  // against.
  if (spec.socket_mode && spec.baseline_compare && spec.tiers != 2) {
    throw InvalidArgument(origin +
                          ": baseline_compare in socket mode requires "
                          "tiers = 2 (it runs the single-tier twin)");
  }
  // Host mode is a self-contained record/replay loop over this process's
  // own procfs samples: every networked or fault-injecting feature refers
  // to the synthetic trace and would be meaningless here.
  if (spec.host_mode) {
    if (spec.socket_mode) {
      throw InvalidArgument(origin +
                            ": [host] cannot be combined with [controller]");
    }
    if (!spec.faults.empty()) {
      throw InvalidArgument(origin +
                            ": [host] cannot be combined with [faults]");
    }
    if (spec.baseline_compare) {
      throw InvalidArgument(
          origin + ": [host] publishes its own record-vs-replay divergence; "
                   "drop baseline_compare");
    }
    if (spec.host_samples < 2) {
      throw InvalidArgument(origin + ": [host] needs samples >= 2");
    }
    if (spec.num_clusters != 1) {
      throw InvalidArgument(origin +
                            ": [host] samples a single node; set k = 1");
    }
  }
  // A restart only makes sense after a kill of the same node.
  for (const ChurnEvent& ev : spec.churn) {
    if (!ev.restart) continue;
    const bool killed_before = std::any_of(
        spec.churn.begin(), spec.churn.end(), [&](const ChurnEvent& k) {
          return !k.restart && k.node == ev.node && k.slot < ev.slot;
        });
    if (!killed_before) {
      throw InvalidArgument(origin + ": restart of node " +
                            std::to_string(ev.node) +
                            " has no earlier kill");
    }
  }
  if (!saw_horizons && spec.socket_mode) {
    // Socket scenarios default to short-horizon scoring only.
    spec.horizons = {1};
  }
  return spec;
}

ScenarioSpec ScenarioSpec::parse_string(const std::string& text,
                                        const std::string& origin) {
  std::istringstream in(text);
  return parse(in, origin);
}

ScenarioSpec ScenarioSpec::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw InvalidArgument("scenario: cannot open " + path);
  }
  return parse(in, path);
}

}  // namespace resmon::scenario
