// FaultyLink: fault-injecting wrapper around any transport::Link.
//
// Composes over the uplink the pipeline already uses (normally a
// net::LoopbackLink, so the real wire codec still runs underneath) and
// applies a FaultSpec's schedule on the way through:
//
//   drop        message vanishes (sender still pays bandwidth)
//   duplicate   message is enqueued twice (receiver dedups by step)
//   corrupt     message is encoded, one payload byte is flipped, and the
//               mutilated frame is pushed through a real FrameDecoder —
//               which must CRC-reject it; the reject is counted and the
//               message is lost, exactly like the TCP path
//   delay       message surfaces `k` drains late
//   stall       messages inside the window are held and flushed after it
//   partition   messages inside the window are lost
//   reorder     a delivered batch is deterministically shuffled
//
// drain() is the slot clock (the pipeline drains once per step), matching
// transport::Channel's delay semantics. All decisions come from the
// order-independent FaultInjector, so a seeded spec yields one exact fault
// realization per run.
#pragma once

#include <deque>
#include <memory>

#include "faultnet/injector.hpp"
#include "obs/metrics.hpp"
#include "transport/channel.hpp"
#include "transport/link.hpp"

namespace resmon::faultnet {

class FaultyLink final : public transport::Link {
 public:
  /// Wraps `inner` (owned). `metrics` (non-owning, may be nullptr) receives
  /// resmon_faultnet_injected_total{fault=...} and
  /// resmon_faultnet_crc_rejects_total.
  FaultyLink(const FaultSpec& spec, std::unique_ptr<transport::Link> inner,
             obs::MetricsRegistry* metrics = nullptr);

  void send(transport::MeasurementMessage message) override;
  std::vector<transport::MeasurementMessage> drain() override;

  std::size_t pending() const override {
    return inner_->pending() + held_.size();
  }
  /// Sender-side accounting: every send() counts (faulted sends included —
  /// the sender paid for the transmission), mirroring transport::Channel.
  std::uint64_t messages_sent() const override { return messages_sent_; }
  std::uint64_t bytes_sent() const override { return bytes_sent_; }
  /// Messages lost to injected faults (drop/corrupt/partition) plus
  /// whatever the inner link dropped on its own.
  std::uint64_t messages_dropped() const override {
    return faulted_drops_ + inner_->messages_dropped();
  }

  const FaultInjector& injector() const { return injector_; }
  const transport::Link& inner() const { return *inner_; }
  /// Corrupted frames rejected by the wire decoder's CRC check.
  std::uint64_t crc_rejects() const { return crc_rejects_; }

 private:
  struct Held {
    transport::MeasurementMessage message;
    std::size_t release_at = 0;  ///< drain index at which it surfaces
  };

  /// Encode, flip one payload byte, and require the decoder to reject it.
  void corrupt_and_reject(const transport::MeasurementMessage& message);

  FaultInjector injector_;
  std::unique_ptr<transport::Link> inner_;
  std::deque<Held> held_;
  std::size_t drain_count_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t faulted_drops_ = 0;
  std::uint64_t crc_rejects_ = 0;
  obs::Counter* m_crc_rejects_ = nullptr;
};

}  // namespace resmon::faultnet
