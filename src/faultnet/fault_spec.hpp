// FaultSpec: the seeded, declarative fault schedule of resmon::faultnet.
//
// One spec describes every fault the chaos harness can inject into the
// uplink — per-frame probabilistic faults (drop, duplicate, corrupt-bytes,
// delay, reorder) and slot-window faults (stall = half-open silence,
// partition = connection severed and unreachable). The same spec drives
// every injection point: FaultyLink for in-process/loopback pipelines,
// AgentFaultHook for the real TCP agent, and controller_block_hook for
// controller-side partitions. All randomness is derived by hashing
// (seed, node, step, fault-kind), never from shared RNG state, so a given
// spec produces the identical fault realization regardless of process
// interleaving, thread count, or call order — the property the chaos-soak
// CI job keys on.
//
// Textual grammar (the --fault-spec flag; clauses separated by ';'):
//
//   drop=P            drop each frame with probability P
//   dup=P             deliver each frame twice with probability P
//   corrupt=P         flip one payload byte with probability P (the frame
//                     then fails its CRC-32 check at the receiver)
//   delay=P:K         with probability P, delay a frame by 1..K slots
//   reorder=P         shuffle a delivered batch with probability P
//                     (link-level only; a TCP stream cannot reorder)
//   stall=A-B         slots [A, B] inclusive: hold all traffic, flush
//                     after the window (half-open connection)
//   partition=A-B     slots [A, B] inclusive: traffic is lost and the
//                     connection is severed; reconnects fail
//   nodes=1,3,5       restrict every fault to these node ids (default all)
//   seed=S            fault-hash seed (default 1)
//
// `stall` and `partition` may repeat to schedule several windows. An empty
// string parses to the empty spec (no faults).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace resmon::faultnet {

/// One inclusive slot window [from, to].
struct SlotWindow {
  std::size_t from = 0;
  std::size_t to = 0;

  bool contains(std::size_t step) const { return step >= from && step <= to; }
  bool operator==(const SlotWindow&) const = default;
};

/// Parsed fault schedule. Default-constructed = no faults.
struct FaultSpec {
  double drop = 0.0;       ///< per-frame drop probability
  double duplicate = 0.0;  ///< per-frame duplication probability
  double corrupt = 0.0;    ///< per-frame byte-corruption probability
  double reorder = 0.0;    ///< per-batch shuffle probability (link level)
  double delay = 0.0;      ///< per-frame delay probability
  std::size_t max_delay_slots = 0;  ///< K of delay=P:K (uniform in [1, K])
  std::vector<SlotWindow> stalls;
  std::vector<SlotWindow> partitions;
  /// Node ids the faults apply to; empty = every node.
  std::vector<std::size_t> nodes;
  std::uint64_t seed = 1;

  /// Parse the --fault-spec grammar documented above. Throws
  /// InvalidArgument naming the offending clause on any syntax error,
  /// probability outside [0,1], or inverted window.
  static FaultSpec parse(const std::string& text);

  /// Canonical textual form (round-trips through parse()).
  std::string to_string() const;

  /// True when the spec injects nothing at all.
  bool empty() const;

  /// True when the spec's faults target `node` (the nodes= filter).
  bool applies_to(std::size_t node) const;

  /// True when `step` falls inside any stall window.
  bool stalled_at(std::size_t step) const;

  /// True when `step` falls inside any partition window.
  bool partitioned_at(std::size_t step) const;

  bool operator==(const FaultSpec&) const = default;
};

}  // namespace resmon::faultnet
