// FaultInjector: the deterministic decision engine of resmon::faultnet.
//
// Every fault decision is a pure function of (spec.seed, node, step,
// fault-kind) — a splitmix64-style hash mapped to [0, 1) and compared
// against the spec's probability. No shared RNG state means the decision
// for frame (node, step) is identical whether it is asked once or twice,
// from one process or eight, in any order — which is what makes the chaos
// harness reproducible: the agent-side hook, the link wrapper and a test
// re-deriving the schedule all agree on exactly which frames fault.
#pragma once

#include <cstddef>
#include <cstdint>

#include "faultnet/fault_spec.hpp"
#include "obs/metrics.hpp"

namespace resmon::faultnet {

/// Which fault fired (label values of resmon_faultnet_injected_total).
enum class FaultKind : std::uint8_t {
  kDrop = 0,
  kDuplicate,
  kCorrupt,
  kDelay,
  kReorder,
  kStall,
  kPartition,
};

/// Stable label value of a FaultKind ("drop", "duplicate", ...).
const char* fault_kind_name(FaultKind kind);

/// The per-frame verdict for one (node, step).
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  bool corrupt = false;
  std::size_t delay_slots = 0;  ///< 0 = deliver now
  bool stalled = false;         ///< inside a stall window
  bool partitioned = false;     ///< inside a partition window
};

class FaultInjector {
 public:
  /// `metrics` (non-owning, may be nullptr) receives the
  /// resmon_faultnet_injected_total{fault=...} counters; every label value
  /// is registered eagerly so dashboards and the docs drift test see the
  /// full family at zero.
  explicit FaultInjector(const FaultSpec& spec,
                         obs::MetricsRegistry* metrics = nullptr);

  const FaultSpec& spec() const { return spec_; }

  /// The fault verdict for the frame of (node, step). Pure: two calls with
  /// the same arguments always agree. Faults are mutually exclusive per
  /// frame with precedence partition > stall > drop > corrupt > duplicate >
  /// delay (a dropped frame cannot also be duplicated). Does not count
  /// metrics — callers count what they actually act on via count().
  FaultDecision decide(std::size_t node, std::size_t step) const;

  /// Whether a drained batch at drain index `batch` for `node` should be
  /// shuffled (the link-level reorder fault).
  bool reorder_batch(std::size_t node, std::size_t batch) const;

  /// Deterministic uniform draw in [0, n) for frame (node, step) and a
  /// caller-chosen salt (e.g. picking which payload byte to corrupt or a
  /// delay length). Requires n > 0.
  std::size_t pick(std::size_t node, std::size_t step, std::uint64_t salt,
                   std::size_t n) const;

  /// Bump resmon_faultnet_injected_total{fault=...} (no-op without metrics).
  void count(FaultKind kind) const;

 private:
  FaultSpec spec_;
  obs::Counter* injected_[7] = {nullptr};  // indexed by FaultKind
};

}  // namespace resmon::faultnet
