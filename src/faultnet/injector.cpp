#include "faultnet/injector.hpp"

#include "common/error.hpp"

namespace resmon::faultnet {

namespace {

/// splitmix64 finalizer: avalanche a 64-bit state into a hash.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Order-independent hash of one fault decision's identity.
std::uint64_t decision_hash(std::uint64_t seed, std::size_t node,
                            std::size_t step, std::uint64_t salt) {
  std::uint64_t h = mix64(seed ^ 0xD1B54A32D192ED03ULL);
  h = mix64(h ^ static_cast<std::uint64_t>(node));
  h = mix64(h ^ static_cast<std::uint64_t>(step));
  return mix64(h ^ salt);
}

/// Map a hash to [0, 1) with 53 bits of precision.
double unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Salt per fault kind so e.g. drop and corrupt draws are independent.
constexpr std::uint64_t kSaltDrop = 0x01;
constexpr std::uint64_t kSaltDuplicate = 0x02;
constexpr std::uint64_t kSaltCorrupt = 0x03;
constexpr std::uint64_t kSaltDelayFire = 0x04;
constexpr std::uint64_t kSaltDelayLen = 0x05;
constexpr std::uint64_t kSaltReorder = 0x06;

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kReorder:
      return "reorder";
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kPartition:
      return "partition";
  }
  return "unknown";
}

FaultInjector::FaultInjector(const FaultSpec& spec,
                             obs::MetricsRegistry* metrics)
    : spec_(spec) {
  if (metrics != nullptr) {
    for (int k = 0; k <= static_cast<int>(FaultKind::kPartition); ++k) {
      injected_[k] = &metrics->counter(
          "resmon_faultnet_injected_total",
          "Faults injected into the uplink, by kind",
          {{"fault", fault_kind_name(static_cast<FaultKind>(k))}});
    }
  }
}

FaultDecision FaultInjector::decide(std::size_t node,
                                    std::size_t step) const {
  FaultDecision d;
  if (!spec_.applies_to(node)) return d;
  if (spec_.partitioned_at(step)) {
    d.partitioned = true;
    return d;
  }
  if (spec_.stalled_at(step)) {
    d.stalled = true;
    return d;
  }
  const auto draw = [&](std::uint64_t salt) {
    return unit(decision_hash(spec_.seed, node, step, salt));
  };
  if (spec_.drop > 0.0 && draw(kSaltDrop) < spec_.drop) {
    d.drop = true;
    return d;
  }
  if (spec_.corrupt > 0.0 && draw(kSaltCorrupt) < spec_.corrupt) {
    d.corrupt = true;
    return d;
  }
  if (spec_.duplicate > 0.0 && draw(kSaltDuplicate) < spec_.duplicate) {
    d.duplicate = true;
    return d;
  }
  if (spec_.delay > 0.0 && spec_.max_delay_slots > 0 &&
      draw(kSaltDelayFire) < spec_.delay) {
    d.delay_slots =
        1 + pick(node, step, kSaltDelayLen, spec_.max_delay_slots);
  }
  return d;
}

bool FaultInjector::reorder_batch(std::size_t node,
                                  std::size_t batch) const {
  if (spec_.reorder <= 0.0 || !spec_.applies_to(node)) return false;
  return unit(decision_hash(spec_.seed, node, batch, kSaltReorder)) <
         spec_.reorder;
}

std::size_t FaultInjector::pick(std::size_t node, std::size_t step,
                                std::uint64_t salt, std::size_t n) const {
  RESMON_REQUIRE(n > 0, "FaultInjector::pick needs n > 0");
  return static_cast<std::size_t>(
      decision_hash(spec_.seed, node, step, mix64(salt) | 0x80) %
      static_cast<std::uint64_t>(n));
}

void FaultInjector::count(FaultKind kind) const {
  obs::Counter* c = injected_[static_cast<int>(kind)];
  if (c != nullptr) c->inc();
}

}  // namespace resmon::faultnet
