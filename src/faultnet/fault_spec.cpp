#include "faultnet/fault_spec.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace resmon::faultnet {

namespace {

[[noreturn]] void bad_clause(const std::string& clause,
                             const std::string& why) {
  throw InvalidArgument("fault-spec clause '" + clause + "': " + why);
}

double parse_probability(const std::string& clause, const std::string& text) {
  std::size_t consumed = 0;
  double p = 0.0;
  try {
    p = std::stod(text, &consumed);
  } catch (const std::exception&) {
    bad_clause(clause, "expected a probability");
  }
  if (consumed != text.size()) bad_clause(clause, "trailing characters");
  if (p < 0.0 || p > 1.0) bad_clause(clause, "probability must be in [0,1]");
  return p;
}

std::size_t parse_count(const std::string& clause, const std::string& text) {
  std::size_t consumed = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(text, &consumed);
  } catch (const std::exception&) {
    bad_clause(clause, "expected a non-negative integer");
  }
  if (consumed != text.size()) bad_clause(clause, "trailing characters");
  return static_cast<std::size_t>(v);
}

SlotWindow parse_window(const std::string& clause, const std::string& text) {
  const std::size_t dash = text.find('-');
  if (dash == std::string::npos) {
    bad_clause(clause, "expected a slot window FROM-TO");
  }
  SlotWindow w{.from = parse_count(clause, text.substr(0, dash)),
               .to = parse_count(clause, text.substr(dash + 1))};
  if (w.from > w.to) bad_clause(clause, "window is inverted (FROM > TO)");
  return w;
}

}  // namespace

FaultSpec FaultSpec::parse(const std::string& text) {
  FaultSpec spec;
  std::stringstream in(text);
  std::string clause;
  while (std::getline(in, clause, ';')) {
    if (clause.empty()) continue;
    const std::size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0) {
      bad_clause(clause, "expected KEY=VALUE");
    }
    const std::string key = clause.substr(0, eq);
    const std::string value = clause.substr(eq + 1);
    if (key == "drop") {
      spec.drop = parse_probability(clause, value);
    } else if (key == "dup") {
      spec.duplicate = parse_probability(clause, value);
    } else if (key == "corrupt") {
      spec.corrupt = parse_probability(clause, value);
    } else if (key == "reorder") {
      spec.reorder = parse_probability(clause, value);
    } else if (key == "delay") {
      const std::size_t colon = value.find(':');
      if (colon == std::string::npos) {
        bad_clause(clause, "expected delay=P:MAX_SLOTS");
      }
      spec.delay = parse_probability(clause, value.substr(0, colon));
      spec.max_delay_slots = parse_count(clause, value.substr(colon + 1));
      if (spec.delay > 0.0 && spec.max_delay_slots == 0) {
        bad_clause(clause, "delay needs MAX_SLOTS >= 1");
      }
    } else if (key == "stall") {
      spec.stalls.push_back(parse_window(clause, value));
    } else if (key == "partition") {
      spec.partitions.push_back(parse_window(clause, value));
    } else if (key == "nodes") {
      std::stringstream list(value);
      std::string id;
      while (std::getline(list, id, ',')) {
        if (id.empty()) bad_clause(clause, "empty node id");
        spec.nodes.push_back(parse_count(clause, id));
      }
      if (spec.nodes.empty()) bad_clause(clause, "empty node list");
    } else if (key == "seed") {
      spec.seed = static_cast<std::uint64_t>(parse_count(clause, value));
    } else {
      bad_clause(clause, "unknown key");
    }
  }
  return spec;
}

std::string FaultSpec::to_string() const {
  std::ostringstream out;
  const char* sep = "";
  auto emit = [&](const std::string& clause) {
    out << sep << clause;
    sep = ";";
  };
  auto prob = [](double p) {
    std::ostringstream s;
    s << p;
    return s.str();
  };
  if (drop > 0.0) emit("drop=" + prob(drop));
  if (duplicate > 0.0) emit("dup=" + prob(duplicate));
  if (corrupt > 0.0) emit("corrupt=" + prob(corrupt));
  if (reorder > 0.0) emit("reorder=" + prob(reorder));
  if (delay > 0.0) {
    emit("delay=" + prob(delay) + ":" + std::to_string(max_delay_slots));
  }
  for (const SlotWindow& w : stalls) {
    emit("stall=" + std::to_string(w.from) + "-" + std::to_string(w.to));
  }
  for (const SlotWindow& w : partitions) {
    emit("partition=" + std::to_string(w.from) + "-" + std::to_string(w.to));
  }
  if (!nodes.empty()) {
    std::string list = "nodes=";
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (i > 0) list += ",";
      list += std::to_string(nodes[i]);
    }
    emit(list);
  }
  if (seed != 1) emit("seed=" + std::to_string(seed));
  return out.str();
}

bool FaultSpec::empty() const {
  return drop == 0.0 && duplicate == 0.0 && corrupt == 0.0 &&
         reorder == 0.0 && delay == 0.0 && stalls.empty() &&
         partitions.empty();
}

bool FaultSpec::applies_to(std::size_t node) const {
  return nodes.empty() ||
         std::find(nodes.begin(), nodes.end(), node) != nodes.end();
}

bool FaultSpec::stalled_at(std::size_t step) const {
  return std::any_of(stalls.begin(), stalls.end(),
                     [&](const SlotWindow& w) { return w.contains(step); });
}

bool FaultSpec::partitioned_at(std::size_t step) const {
  return std::any_of(partitions.begin(), partitions.end(),
                     [&](const SlotWindow& w) { return w.contains(step); });
}

}  // namespace resmon::faultnet
