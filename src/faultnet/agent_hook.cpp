#include "faultnet/agent_hook.hpp"

#include <memory>

#include "faultnet/injector.hpp"
#include "net/wire.hpp"

namespace resmon::faultnet {

namespace {

/// Salt for picking which payload byte a corrupt fault flips (distinct from
/// FaultyLink's so link and hook runs corrupt different bytes — both paths
/// must survive any flipped byte anyway).
constexpr std::uint64_t kSaltHookCorruptByte = 0x21;

/// Flip one payload byte of an encoded frame, chosen deterministically.
/// Leaves the header intact so the receiver parses it and reaches the CRC
/// check; CRC-32 detects any single-byte change, so rejection is certain.
std::vector<std::uint8_t> corrupt_frame(const FaultInjector& injector,
                                        std::uint32_t node, std::size_t step,
                                        std::vector<std::uint8_t> frame) {
  if (frame.size() <= net::wire::kHeaderSize) return frame;
  const std::size_t payload_len = frame.size() - net::wire::kHeaderSize;
  const std::size_t offset =
      net::wire::kHeaderSize +
      injector.pick(node, step, kSaltHookCorruptByte, payload_len);
  frame[offset] ^= 0xFF;
  return frame;
}

}  // namespace

net::FrameHook make_agent_fault_hook(const FaultSpec& spec,
                                     std::uint32_t node,
                                     obs::MetricsRegistry* metrics) {
  auto injector = std::make_shared<FaultInjector>(spec, metrics);
  return [injector, node](std::size_t step,
                          const std::vector<std::uint8_t>& frame) {
    net::FrameAction action;
    const FaultDecision d = injector->decide(node, step);
    if (d.partitioned || d.stalled) {
      injector->count(d.partitioned ? FaultKind::kPartition
                                    : FaultKind::kStall);
      action.sever = true;
      return action;
    }
    if (d.drop) {
      injector->count(FaultKind::kDrop);
      return action;  // no frames, no sever: the slot's frame vanishes
    }
    if (d.corrupt) {
      injector->count(FaultKind::kCorrupt);
      action.frames.push_back(corrupt_frame(*injector, node, step, frame));
      return action;
    }
    if (d.duplicate) {
      injector->count(FaultKind::kDuplicate);
      action.frames.push_back(frame);
    }
    action.frames.push_back(frame);
    return action;
  };
}

net::BlockHook make_controller_block_hook(const FaultSpec& spec,
                                          obs::MetricsRegistry* metrics) {
  auto injector = std::make_shared<FaultInjector>(spec, metrics);
  return [injector](std::uint32_t node, std::uint64_t step) {
    const FaultSpec& s = injector->spec();
    if (!s.applies_to(node) ||
        !s.partitioned_at(static_cast<std::size_t>(step))) {
      return false;
    }
    injector->count(FaultKind::kPartition);
    return true;
  };
}

}  // namespace resmon::faultnet
