// Adapters that plug a FaultSpec into the real TCP runtime.
//
// The net layer stays generic — net::AgentOptions::frame_hook and
// net::ControllerOptions::block_hook are plain std::functions — and this
// header supplies the faultnet implementations:
//
//   make_agent_fault_hook(spec, metrics)
//       per-frame faults on the agent's uplink: drop, duplicate,
//       corrupt-bytes (the mutilated frame is really sent, so the
//       controller's CRC check rejects it and drops the connection),
//       stall/partition windows (the socket is severed without delivery).
//       delay= and reorder= do not apply to a TCP stream and are ignored.
//
//   make_controller_block_hook(spec, metrics)
//       controller-side hard partition: inbound measurement/heartbeat
//       frames from the spec's nodes are discarded while their slot falls
//       inside a partition window, exactly as if the network ate them.
//
// Both hooks share the FaultSpec's seeded decision engine, so the fault
// realization of a distributed run is reproducible from the spec alone.
#pragma once

#include "faultnet/fault_spec.hpp"
#include "net/agent.hpp"
#include "net/controller.hpp"

namespace resmon::faultnet {

/// Build a net::AgentOptions::frame_hook injecting `spec`'s faults into the
/// outbound frames of agent `node` (decisions key on this id, and a nodes=
/// filter excluding it makes the hook a passthrough). `metrics`
/// (non-owning, may be nullptr) receives
/// resmon_faultnet_injected_total{fault=...}. The returned hook owns a
/// shared injector and may outlive this call.
net::FrameHook make_agent_fault_hook(const FaultSpec& spec,
                                     std::uint32_t node,
                                     obs::MetricsRegistry* metrics = nullptr);

/// Build a net::ControllerOptions::block_hook discarding inbound frames
/// from `spec`'s nodes during its partition windows.
net::BlockHook make_controller_block_hook(
    const FaultSpec& spec, obs::MetricsRegistry* metrics = nullptr);

}  // namespace resmon::faultnet
