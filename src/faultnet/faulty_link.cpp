#include "faultnet/faulty_link.hpp"

#include <utility>

#include "common/error.hpp"
#include "net/wire.hpp"
#include "transport/channel.hpp"

namespace resmon::faultnet {

namespace {

/// Salt for picking which payload byte a corrupt fault flips.
constexpr std::uint64_t kSaltCorruptByte = 0x11;
/// Salt stream for the deterministic batch shuffle.
constexpr std::uint64_t kSaltShuffle = 0x12;

}  // namespace

FaultyLink::FaultyLink(const FaultSpec& spec,
                       std::unique_ptr<transport::Link> inner,
                       obs::MetricsRegistry* metrics)
    : injector_(spec, metrics), inner_(std::move(inner)) {
  RESMON_REQUIRE(inner_ != nullptr, "FaultyLink needs an inner link");
  if (metrics != nullptr) {
    m_crc_rejects_ = &metrics->counter(
        "resmon_faultnet_crc_rejects_total",
        "Corrupted frames rejected by the wire decoder's CRC check");
  }
}

void FaultyLink::send(transport::MeasurementMessage message) {
  ++messages_sent_;
  bytes_sent_ += message.wire_size();
  const FaultDecision d = injector_.decide(message.node, message.step);
  if (d.partitioned) {
    injector_.count(FaultKind::kPartition);
    ++faulted_drops_;
    return;
  }
  if (d.stalled) {
    injector_.count(FaultKind::kStall);
    // Held until the first drain after the stall window: the connection is
    // half-open, the peer's buffered bytes arrive when it recovers.
    std::size_t release = message.step;
    for (const SlotWindow& w : injector_.spec().stalls) {
      if (w.contains(message.step)) release = std::max(release, w.to + 1);
    }
    held_.push_back({std::move(message), release});
    return;
  }
  if (d.drop) {
    injector_.count(FaultKind::kDrop);
    ++faulted_drops_;
    return;
  }
  if (d.corrupt) {
    injector_.count(FaultKind::kCorrupt);
    corrupt_and_reject(message);
    ++faulted_drops_;
    return;
  }
  if (d.delay_slots > 0) {
    injector_.count(FaultKind::kDelay);
    const std::size_t release = message.step + d.delay_slots;
    held_.push_back({std::move(message), release});
    return;
  }
  if (d.duplicate) {
    injector_.count(FaultKind::kDuplicate);
    inner_->send(message);
  }
  inner_->send(std::move(message));
}

std::vector<transport::MeasurementMessage> FaultyLink::drain() {
  // drain() is the slot clock: the pipeline drains exactly once per step,
  // so drain index == current slot (matching transport::Channel).
  const std::size_t now = drain_count_++;
  for (std::size_t i = 0; i < held_.size();) {
    if (held_[i].release_at <= now) {
      inner_->send(std::move(held_[i].message));
      held_.erase(held_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  std::vector<transport::MeasurementMessage> batch = inner_->drain();
  if (batch.size() > 1 && injector_.reorder_batch(0, now)) {
    injector_.count(FaultKind::kReorder);
    // Deterministic Fisher-Yates keyed on (batch index, position). Safe for
    // pipeline output: the store keeps at most one freshest sample per node,
    // and within one drain a node contributes distinct steps at most once
    // apart from duplicates — which the store dedups regardless of order.
    for (std::size_t i = batch.size() - 1; i > 0; --i) {
      const std::size_t j = injector_.pick(i, now, kSaltShuffle, i + 1);
      std::swap(batch[i], batch[j]);
    }
  }
  return batch;
}

void FaultyLink::corrupt_and_reject(
    const transport::MeasurementMessage& message) {
  std::vector<std::uint8_t> frame = net::wire::encode(message);
  RESMON_REQUIRE(frame.size() > net::wire::kHeaderSize,
                 "measurement frame must carry a payload");
  // Flip one payload byte (never the header) so the header still parses and
  // the receiver reaches — and fails — the CRC check, the exact path a
  // corrupted TCP stream takes in the controller.
  const std::size_t payload_len = frame.size() - net::wire::kHeaderSize;
  const std::size_t offset =
      net::wire::kHeaderSize +
      injector_.pick(message.node, message.step, kSaltCorruptByte,
                     payload_len);
  frame[offset] ^= 0xFF;
  net::wire::FrameDecoder decoder;
  decoder.feed(frame);
  RESMON_REQUIRE(decoder.error() == net::wire::WireError::kCrcMismatch,
                 "corrupted payload must fail the CRC check");
  ++crc_rejects_;
  if (m_crc_rejects_ != nullptr) m_crc_rejects_->inc();
}

}  // namespace resmon::faultnet
