#include "trace/trace.hpp"

namespace resmon::trace {

std::string resource_name(std::size_t resource) {
  switch (resource) {
    case kCpu:
      return "CPU";
    case kMemory:
      return "Memory";
    default:
      return "Resource" + std::to_string(resource);
  }
}

std::vector<double> Trace::measurement(std::size_t node, std::size_t t) const {
  std::vector<double> m(num_resources());
  for (std::size_t r = 0; r < num_resources(); ++r) {
    m[r] = value(node, t, r);
  }
  return m;
}

std::vector<double> Trace::series(std::size_t node,
                                  std::size_t resource) const {
  std::vector<double> s(num_steps());
  for (std::size_t t = 0; t < num_steps(); ++t) {
    s[t] = value(node, t, resource);
  }
  return s;
}

InMemoryTrace::InMemoryTrace(std::size_t num_nodes, std::size_t num_steps,
                             std::size_t num_resources)
    : num_nodes_(num_nodes),
      num_steps_(num_steps),
      num_resources_(num_resources),
      data_(num_nodes * num_steps * num_resources, 0.0) {
  RESMON_REQUIRE(num_nodes > 0, "trace needs at least one node");
  RESMON_REQUIRE(num_steps > 0, "trace needs at least one time step");
  RESMON_REQUIRE(num_resources > 0, "trace needs at least one resource");
}

SubTrace::SubTrace(std::shared_ptr<const Trace> base,
                   std::vector<std::size_t> nodes, std::size_t num_steps)
    : base_(std::move(base)), nodes_(std::move(nodes)), num_steps_(num_steps) {
  RESMON_REQUIRE(base_ != nullptr, "SubTrace requires a base trace");
  RESMON_REQUIRE(!nodes_.empty(), "SubTrace requires at least one node");
  RESMON_REQUIRE(num_steps_ > 0 && num_steps_ <= base_->num_steps(),
                 "SubTrace step count out of range");
  for (const std::size_t n : nodes_) {
    RESMON_REQUIRE(n < base_->num_nodes(), "SubTrace node index out of range");
  }
}

}  // namespace resmon::trace
