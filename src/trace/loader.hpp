// CSV trace ingestion, for running the pipeline on real cluster traces
// (e.g. pre-processed Alibaba/Bitbrains/Google data).
//
// Expected format: a header line followed by one row per (node, step):
//   node,step,<resource0>,<resource1>,...
// Node ids and steps must be dense 0-based ranges; missing (node, step)
// combinations are filled with the node's previous value (sample-and-hold),
// matching the paper's pre-processing of sparse raw traces.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace resmon::trace {

/// Parse a trace from a stream. Throws resmon::Error on malformed input.
InMemoryTrace load_csv(std::istream& in);

/// Parse a trace from a file path.
InMemoryTrace load_csv_file(const std::string& path);

/// Serialize a trace in the same CSV format (for round-tripping and for
/// exporting synthetic traces to other tools).
void save_csv(const Trace& trace, std::ostream& out);

}  // namespace resmon::trace
