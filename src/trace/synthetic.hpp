// Synthetic trace generation.
//
// The generator reproduces the statistical properties the paper's algorithms
// depend on (§III): machines form latent behavioural groups whose membership
// drifts over time, so spatial correlation is strong in the short term but
// weak in the long term; per-node series mix a diurnal component, an AR(1)
// group signal, bursty noise and occasional regime shifts.
//
// Profiles are provided that stand in for the three evaluation datasets
// (Alibaba, Bitbrains, Google) and for the Intel Berkeley sensor data used in
// the Fig. 1 motivation (strong long-term correlation).
#pragma once

#include <cstdint>
#include <string>

#include "trace/trace.hpp"

namespace resmon::trace {

/// Parameters of the synthetic workload generator. See generate() for the
/// exact generative model.
struct SyntheticProfile {
  std::string name = "custom";

  std::size_t num_nodes = 100;
  std::size_t num_steps = 2500;
  std::size_t num_resources = 2;

  /// Number of latent behavioural groups (applications / services).
  std::size_t num_groups = 5;

  /// Steps per diurnal cycle (288 = one day at 5-minute sampling).
  double diurnal_period = 288.0;
  /// Weekly pattern: fraction by which group base levels and diurnal
  /// amplitude are reduced on "weekend" days (day = floor(t / period),
  /// days 5 and 6 of each 7). 0 disables the weekly cycle.
  double weekend_dampening = 0.0;
  /// Diurnal amplitude per resource index (CPU swings more than memory).
  double diurnal_amplitude_cpu = 0.15;
  double diurnal_amplitude_memory = 0.06;

  /// AR(1) persistence and innovation std-dev of each group's signal.
  double ar_coefficient = 0.97;
  double group_innovation_std = 0.02;
  /// Permanent group-level load shifts (service deployments, tenant moves):
  /// with this per-group per-step probability the group's base level jumps
  /// by N(0, group_jump_std) and stays there. These shifts are what break
  /// models anchored at historical statistics (Gaussian means/covariances,
  /// §VI-E) while live cluster tracking follows them.
  double group_jump_probability = 0.002;
  double group_jump_std = 0.12;

  /// Per-node noise innovation std-dev. The per-node component is an AR(1)
  /// process (utilization is persistent at minute scale), not i.i.d.
  double node_noise_std = 0.03;
  /// AR(1) persistence of the per-node noise component.
  double node_noise_ar = 0.8;
  /// Volatility clustering: each node alternates between a quiet and an
  /// active regime (2-state Markov chain) that scales node_noise_std.
  /// Real utilization traces are bursty; this is the property that makes
  /// error-adaptive transmission beat uniform sampling (Fig. 4).
  double volatility_quiet = 0.1;    ///< noise multiplier in the quiet state
  double volatility_active = 2.8;   ///< noise multiplier in the active state
  double volatility_switch_probability = 0.04;  ///< per node per step
  /// Std-dev of each node's initial offset from its group signal.
  double node_offset_std = 0.05;
  /// Per-step random-walk drift of each node's offset (machines are slowly
  /// re-purposed over days). This is what makes long-term statistics go
  /// stale: a model anchored at training-phase means mispredicts the test
  /// phase, while tracking live values does not (§III, §VI-E).
  double node_offset_drift_std = 0.002;

  /// Per-node, per-step probability of migrating to another group
  /// (models task re-scheduling; drives cluster evolution).
  double regime_switch_probability = 0.002;

  /// Short utilization spikes (stragglers, cron jobs).
  double spike_probability = 0.01;
  double spike_magnitude = 0.25;

  /// Fraction of nodes that are near-exact replicas of another node
  /// (load-balanced instances of the same service). Replicas make the
  /// fleet's covariance matrix severely ill-conditioned, which is what
  /// destabilizes Gaussian inference on real traces (§VI-E / Fig. 12)
  /// while leaving cluster-based estimation untouched.
  double replica_fraction = 0.2;
  /// Private noise of a replica around its partner's values.
  double replica_noise_std = 0.003;

  /// Measurements are rounded to this granularity, mimicking monitoring
  /// agents that report integer percentages. 0 disables quantization.
  double quantization = 0.001;

  /// Base level range for group signals.
  double base_min = 0.25;
  double base_max = 0.65;
};

/// Profile approximating the Alibaba cluster trace v2018: 1-minute sampling
/// over 8 days, volatile CPU, moderately many groups.
SyntheticProfile alibaba_profile();

/// Profile approximating the Bitbrains GWA-T-12 `Rnd` trace: 5-minute
/// sampling, strong diurnal pattern, bursty VMs.
SyntheticProfile bitbrains_profile();

/// Profile approximating the Google cluster-usage trace v2: 5-minute
/// sampling over 29 days, many machines, smoother utilization.
SyntheticProfile google_profile();

/// Profile approximating the Intel Berkeley sensor-lab data: one global
/// environmental signal shared by all nodes with small offsets, yielding the
/// strong long-term spatial correlation shown in Fig. 1.
SyntheticProfile sensors_profile();

/// Look up a profile by dataset name ("alibaba", "bitbrains", "google",
/// "sensors"); throws InvalidArgument for unknown names.
SyntheticProfile profile_by_name(const std::string& name);

/// The paper-scale node/step counts for each dataset (used by `--full`).
SyntheticProfile scale_to_paper(SyntheticProfile profile);

/// Generate a deterministic trace from the profile and seed.
///
/// Generative model, per resource r and time step t:
///   group signal   s_{g,r,t} = base_{g,r} + amp_r * sin(2*pi*t/period + phase_g)
///                              + u_{g,r,t},   u AR(1) with the profile's
///                              persistence/innovation, reflected into range
///   node value     x_{i,r,t} = clamp01(s_{group_i(t),r,t} + offset_{i,r}
///                              + noise + spike) then quantized.
/// group_i(t) performs an independent random walk over groups with the
/// profile's switch probability.
InMemoryTrace generate(const SyntheticProfile& profile, std::uint64_t seed);

}  // namespace resmon::trace
