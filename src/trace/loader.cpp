#include "trace/loader.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/parse.hpp"

namespace resmon::trace {

namespace {

// A row can place a node/step index anywhere, and the resulting dense
// grid is n*steps cells. Bound both axes so a corrupt index ("4294967295"
// where "42" was meant) is diagnosed instead of attempting a huge
// allocation.
constexpr std::size_t kMaxIndex = 10'000'000;

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, ',')) fields.push_back(field);
  if (!line.empty() && line.back() == ',') fields.emplace_back();
  return fields;
}

std::string strip_cr(std::string line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

}  // namespace

InMemoryTrace load_csv(std::istream& in) {
  // Lines starting with '#' are comments; host recordings (src/host) lead
  // with a '# resmon-host-recording v1' magic line and carry '#' metadata
  // trailers, and must load here as ordinary traces.
  std::string line;
  std::size_t line_no = 0;
  bool have_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    line = strip_cr(line);
    if (line.empty() || line.front() == '#') continue;
    have_header = true;
    break;
  }
  if (!have_header) {
    throw Error("load_csv: empty input");
  }
  const std::vector<std::string> header = split_csv_line(line);
  RESMON_REQUIRE(header.size() >= 3,
                 "trace CSV needs node,step and at least one resource column");
  const std::size_t num_resources = header.size() - 2;

  struct Row {
    std::size_t node;
    std::size_t step;
    std::vector<double> values;
  };
  std::vector<Row> rows;
  std::size_t max_node = 0;
  std::size_t max_step = 0;
  while (std::getline(in, line)) {
    ++line_no;
    line = strip_cr(line);
    if (line.empty() || line.front() == '#') continue;
    const std::vector<std::string> fields = split_csv_line(line);
    if (fields.size() != header.size()) {
      throw Error("load_csv: line " + std::to_string(line_no) +
                  " has wrong field count (expected " +
                  std::to_string(header.size()) + ", got " +
                  std::to_string(fields.size()) + ")");
    }
    const std::string where = "load_csv: line " + std::to_string(line_no);
    Row row;
    row.node = parse_size(where + " node", fields[0]);
    row.step = parse_size(where + " step", fields[1]);
    if (row.node > kMaxIndex || row.step > kMaxIndex) {
      throw Error(where + ": node/step index out of range");
    }
    row.values.reserve(num_resources);
    for (std::size_t r = 0; r < num_resources; ++r) {
      row.values.push_back(parse_double(where + " column " + header[2 + r],
                                        fields[2 + r]));
    }
    max_node = std::max(max_node, row.node);
    max_step = std::max(max_step, row.step);
    rows.push_back(std::move(row));
  }
  RESMON_REQUIRE(!rows.empty(), "trace CSV contains no data rows");

  const std::size_t n = max_node + 1;
  const std::size_t steps = max_step + 1;
  InMemoryTrace trace(n, steps, num_resources);

  // Track which cells were provided so gaps can be sample-and-held.
  std::vector<bool> seen(n * steps, false);
  for (const Row& row : rows) {
    for (std::size_t r = 0; r < num_resources; ++r) {
      trace.set_value(row.node, row.step, r, row.values[r]);
    }
    seen[row.node * steps + row.step] = true;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t t = 0; t < steps; ++t) {
      if (seen[i * steps + t]) continue;
      // Hold the previous observed value; leading gaps stay at zero.
      if (t > 0) {
        for (std::size_t r = 0; r < num_resources; ++r) {
          trace.set_value(i, t, r, trace.value(i, t - 1, r));
        }
      }
    }
  }
  return trace;
}

InMemoryTrace load_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("load_csv_file: cannot open " + path);
  return load_csv(in);
}

void save_csv(const Trace& trace, std::ostream& out) {
  out << "node,step";
  for (std::size_t r = 0; r < trace.num_resources(); ++r) {
    out << ',' << resource_name(r);
  }
  out << '\n';
  for (std::size_t i = 0; i < trace.num_nodes(); ++i) {
    for (std::size_t t = 0; t < trace.num_steps(); ++t) {
      out << i << ',' << t;
      for (std::size_t r = 0; r < trace.num_resources(); ++r) {
        out << ',' << trace.value(i, t, r);
      }
      out << '\n';
    }
  }
}

}  // namespace resmon::trace
