#include "trace/loader.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace resmon::trace {

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, ',')) fields.push_back(field);
  return fields;
}

}  // namespace

InMemoryTrace load_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw Error("load_csv: empty input");
  }
  const std::vector<std::string> header = split_csv_line(line);
  RESMON_REQUIRE(header.size() >= 3,
                 "trace CSV needs node,step and at least one resource column");
  const std::size_t num_resources = header.size() - 2;

  struct Row {
    std::size_t node;
    std::size_t step;
    std::vector<double> values;
  };
  std::vector<Row> rows;
  std::size_t max_node = 0;
  std::size_t max_step = 0;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> fields = split_csv_line(line);
    if (fields.size() != header.size()) {
      throw Error("load_csv: line " + std::to_string(line_no) +
                  " has wrong field count");
    }
    Row row;
    try {
      row.node = std::stoul(fields[0]);
      row.step = std::stoul(fields[1]);
      row.values.reserve(num_resources);
      for (std::size_t r = 0; r < num_resources; ++r) {
        row.values.push_back(std::stod(fields[2 + r]));
      }
    } catch (const std::exception&) {
      throw Error("load_csv: malformed number on line " +
                  std::to_string(line_no));
    }
    max_node = std::max(max_node, row.node);
    max_step = std::max(max_step, row.step);
    rows.push_back(std::move(row));
  }
  RESMON_REQUIRE(!rows.empty(), "trace CSV contains no data rows");

  const std::size_t n = max_node + 1;
  const std::size_t steps = max_step + 1;
  InMemoryTrace trace(n, steps, num_resources);

  // Track which cells were provided so gaps can be sample-and-held.
  std::vector<bool> seen(n * steps, false);
  for (const Row& row : rows) {
    for (std::size_t r = 0; r < num_resources; ++r) {
      trace.set_value(row.node, row.step, r, row.values[r]);
    }
    seen[row.node * steps + row.step] = true;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t t = 0; t < steps; ++t) {
      if (seen[i * steps + t]) continue;
      // Hold the previous observed value; leading gaps stay at zero.
      if (t > 0) {
        for (std::size_t r = 0; r < num_resources; ++r) {
          trace.set_value(i, t, r, trace.value(i, t - 1, r));
        }
      }
    }
  }
  return trace;
}

InMemoryTrace load_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("load_csv_file: cannot open " + path);
  return load_csv(in);
}

void save_csv(const Trace& trace, std::ostream& out) {
  out << "node,step";
  for (std::size_t r = 0; r < trace.num_resources(); ++r) {
    out << ',' << resource_name(r);
  }
  out << '\n';
  for (std::size_t i = 0; i < trace.num_nodes(); ++i) {
    for (std::size_t t = 0; t < trace.num_steps(); ++t) {
      out << i << ',' << t;
      for (std::size_t r = 0; r < trace.num_resources(); ++r) {
        out << ',' << trace.value(i, t, r);
      }
      out << '\n';
    }
  }
}

}  // namespace resmon::trace
