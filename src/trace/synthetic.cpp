#include "trace/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/rng.hpp"

namespace resmon::trace {

SyntheticProfile alibaba_profile() {
  SyntheticProfile p;
  p.name = "alibaba";
  p.num_nodes = 120;
  p.num_steps = 3000;
  p.num_groups = 6;
  p.diurnal_period = 1440.0;  // 1-minute sampling -> 1440 steps per day.
  p.diurnal_amplitude_cpu = 0.12;
  p.diurnal_amplitude_memory = 0.05;
  p.ar_coefficient = 0.95;
  p.group_innovation_std = 0.03;       // volatile co-located workloads
  p.node_noise_std = 0.04;
  p.node_offset_std = 0.05;
  p.regime_switch_probability = 0.003;
  p.spike_probability = 0.05;
  p.spike_magnitude = 0.35;
  return p;
}

SyntheticProfile bitbrains_profile() {
  SyntheticProfile p;
  p.name = "bitbrains";
  p.num_nodes = 80;
  p.num_steps = 2600;
  p.num_groups = 4;
  p.diurnal_period = 288.0;  // 5-minute sampling.
  p.diurnal_amplitude_cpu = 0.2;
  p.diurnal_amplitude_memory = 0.08;
  p.ar_coefficient = 0.96;
  p.group_innovation_std = 0.025;
  p.node_noise_std = 0.05;  // bursty business-critical VMs
  p.node_offset_std = 0.07;
  p.regime_switch_probability = 0.002;
  p.spike_probability = 0.05;
  p.spike_magnitude = 0.35;
  return p;
}

SyntheticProfile google_profile() {
  SyntheticProfile p;
  p.name = "google";
  p.num_nodes = 150;
  p.num_steps = 3000;
  p.num_groups = 8;
  p.diurnal_period = 288.0;  // 5-minute sampling.
  p.diurnal_amplitude_cpu = 0.1;
  p.diurnal_amplitude_memory = 0.04;
  p.ar_coefficient = 0.98;  // borg bin-packing keeps machines steadier
  p.group_innovation_std = 0.015;
  p.node_noise_std = 0.03;
  p.node_offset_std = 0.04;
  p.regime_switch_probability = 0.0025;
  p.spike_probability = 0.03;
  p.spike_magnitude = 0.2;
  return p;
}

SyntheticProfile sensors_profile() {
  SyntheticProfile p;
  p.name = "sensors";
  p.num_nodes = 54;  // the Intel lab deployment had 54 motes
  p.num_steps = 2500;
  p.num_groups = 1;  // one shared environmental signal
  p.diurnal_period = 288.0;
  p.diurnal_amplitude_cpu = 0.25;    // "temperature": strong diurnal swing
  p.diurnal_amplitude_memory = 0.2;  // "humidity"
  p.ar_coefficient = 0.995;
  p.group_innovation_std = 0.004;
  p.node_noise_std = 0.008;  // sensors track the environment closely
  p.volatility_quiet = 1.0;  // environmental noise is not bursty
  p.volatility_active = 1.0;
  p.volatility_switch_probability = 0.0;
  p.node_offset_std = 0.04;
  p.node_offset_drift_std = 0.0;  // sensor calibration does not wander
  p.group_jump_probability = 0.0;  // the environment has no deployments
  p.replica_fraction = 0.0;        // every mote is a distinct sensor
  p.regime_switch_probability = 0.0;  // motes do not migrate
  p.spike_probability = 0.0;
  p.spike_magnitude = 0.0;
  return p;
}

SyntheticProfile profile_by_name(const std::string& name) {
  if (name == "alibaba") return alibaba_profile();
  if (name == "bitbrains") return bitbrains_profile();
  if (name == "google") return google_profile();
  if (name == "sensors") return sensors_profile();
  throw InvalidArgument("unknown trace profile: " + name);
}

SyntheticProfile scale_to_paper(SyntheticProfile profile) {
  if (profile.name == "alibaba") {
    profile.num_nodes = 4000;
    profile.num_steps = 11519;
  } else if (profile.name == "bitbrains") {
    profile.num_nodes = 500;
    profile.num_steps = 8259;
  } else if (profile.name == "google") {
    profile.num_nodes = 12476;
    profile.num_steps = 8350;
  } else if (profile.name == "sensors") {
    profile.num_nodes = 54;
    profile.num_steps = 3456;  // 12 days at 5-minute sampling
  }
  return profile;
}

namespace {

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

double quantize(double v, double granularity) {
  if (granularity <= 0.0) return v;
  return std::round(v / granularity) * granularity;
}

}  // namespace

InMemoryTrace generate(const SyntheticProfile& profile, std::uint64_t seed) {
  RESMON_REQUIRE(profile.num_groups > 0, "profile needs at least one group");
  RESMON_REQUIRE(profile.ar_coefficient >= 0.0 && profile.ar_coefficient < 1.0,
                 "AR(1) coefficient must be in [0,1) for stationarity");
  RESMON_REQUIRE(profile.regime_switch_probability >= 0.0 &&
                     profile.regime_switch_probability <= 1.0,
                 "switch probability must be a probability");

  const std::size_t n = profile.num_nodes;
  const std::size_t steps = profile.num_steps;
  const std::size_t d = profile.num_resources;
  const std::size_t g = profile.num_groups;

  Rng rng(seed);
  InMemoryTrace trace(n, steps, d);

  // Static per-group characteristics. Group base levels are spread evenly
  // across the configured range (with jitter) and diurnal phases are
  // clustered around a common phase: machines in one datacenter see the
  // same user-demand cycle, which keeps group signals from constantly
  // crossing each other (and keeps cluster identities meaningful).
  std::vector<double> base(g * d);
  std::vector<double> phase(g);
  const double common_phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
  for (std::size_t j = 0; j < g; ++j) {
    phase[j] = common_phase + rng.normal(0.0, 0.3);
    const double spread = profile.base_max - profile.base_min;
    const double center =
        g == 1 ? profile.base_min + 0.5 * spread
               : profile.base_min + spread * static_cast<double>(j) /
                                        static_cast<double>(g - 1);
    for (std::size_t r = 0; r < d; ++r) {
      base[j * d + r] = center + rng.normal(0.0, 0.02);
    }
  }

  // Static per-node characteristics.
  std::vector<double> offset(n * d);
  std::vector<std::size_t> group(n);
  std::vector<bool> active(n);  // volatility regime per node
  for (std::size_t i = 0; i < n; ++i) {
    group[i] = rng.index(g);
    active[i] = rng.bernoulli(0.5);
    for (std::size_t r = 0; r < d; ++r) {
      offset[i * d + r] = rng.normal(0.0, profile.node_offset_std);
    }
  }

  auto amplitude = [&](std::size_t r) {
    return r == kCpu ? profile.diurnal_amplitude_cpu
                     : profile.diurnal_amplitude_memory;
  };

  std::vector<double> ar_state(g * d, 0.0);   // AR(1) component per group.
  std::vector<double> signal(g * d, 0.0);     // full group signal this step.
  std::vector<double> node_noise(n * d, 0.0);  // AR(1) component per node.

  for (std::size_t t = 0; t < steps; ++t) {
    // Weekly cycle: weekends carry less load.
    const std::size_t day = static_cast<std::size_t>(
        static_cast<double>(t) / profile.diurnal_period);
    const bool weekend = day % 7 >= 5;
    const double week_scale =
        weekend ? 1.0 - profile.weekend_dampening : 1.0;

    // Evolve group signals.
    for (std::size_t j = 0; j < g; ++j) {
      if (rng.bernoulli(profile.group_jump_probability)) {
        // Permanent load shift: move the group's base, keep it in a range
        // that leaves room for the diurnal swing.
        const double jump = rng.normal(0.0, profile.group_jump_std);
        for (std::size_t r = 0; r < d; ++r) {
          base[j * d + r] = std::clamp(base[j * d + r] + jump, 0.1, 0.85);
        }
      }
      for (std::size_t r = 0; r < d; ++r) {
        double& u = ar_state[j * d + r];
        u = profile.ar_coefficient * u +
            rng.normal(0.0, profile.group_innovation_std);
        const double diurnal =
            amplitude(r) *
            std::sin(2.0 * std::numbers::pi * static_cast<double>(t) /
                         profile.diurnal_period +
                     phase[j]);
        signal[j * d + r] = week_scale * (base[j * d + r] + diurnal) + u;
      }
    }
    // Evolve node group membership (workload migration) and volatility
    // regime (bursty vs quiet periods).
    for (std::size_t i = 0; i < n; ++i) {
      if (g > 1 && rng.bernoulli(profile.regime_switch_probability)) {
        std::size_t next = rng.index(g - 1);
        if (next >= group[i]) ++next;  // uniform over the *other* groups
        group[i] = next;
      }
      if (rng.bernoulli(profile.volatility_switch_probability)) {
        active[i] = !active[i];
      }
      if (profile.node_offset_drift_std > 0.0) {
        for (std::size_t r = 0; r < d; ++r) {
          offset[i * d + r] +=
              rng.normal(0.0, profile.node_offset_drift_std);
        }
      }
    }
    // Emit node measurements.
    for (std::size_t i = 0; i < n; ++i) {
      const bool spiking = rng.bernoulli(profile.spike_probability);
      const double innovation_std =
          profile.node_noise_std * (active[i] ? profile.volatility_active
                                              : profile.volatility_quiet);
      for (std::size_t r = 0; r < d; ++r) {
        double& u = node_noise[i * d + r];
        u = profile.node_noise_ar * u + rng.normal(0.0, innovation_std);
        double v = signal[group[i] * d + r] + offset[i * d + r] + u;
        if (spiking) v += profile.spike_magnitude;
        trace.set_value(i, t, r,
                        quantize(clamp01(v), profile.quantization));
      }
    }
  }

  // Replica post-pass: the last `replica_fraction` of nodes mirror a
  // randomly chosen earlier node up to small private noise.
  const std::size_t replicas = static_cast<std::size_t>(
      profile.replica_fraction * static_cast<double>(n));
  if (replicas > 0 && replicas < n) {
    const std::size_t originals = n - replicas;
    for (std::size_t i = originals; i < n; ++i) {
      const std::size_t partner = rng.index(originals);
      for (std::size_t t = 0; t < steps; ++t) {
        for (std::size_t r = 0; r < d; ++r) {
          const double v = trace.value(partner, t, r) +
                           rng.normal(0.0, profile.replica_noise_std);
          trace.set_value(i, t, r,
                          quantize(clamp01(v), profile.quantization));
        }
      }
    }
  }
  return trace;
}

}  // namespace resmon::trace
