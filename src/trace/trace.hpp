// Trace substrate: the per-node resource-utilization time series that the
// monitoring pipeline consumes.
//
// The paper evaluates on the Alibaba (2018), Bitbrains GWA-T-12 and Google
// cluster-usage (v2) traces, which are not redistributable here; the
// `synthetic.hpp` generators provide statistically matched stand-ins (see
// DESIGN.md "Substitutions"), and `loader.hpp` can ingest the real traces
// from CSV when available.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace resmon::trace {

/// Index constants for the two resource types used throughout the paper.
inline constexpr std::size_t kCpu = 0;
inline constexpr std::size_t kMemory = 1;

/// Human-readable resource names for report output.
std::string resource_name(std::size_t resource);

/// Immutable view of a complete trace: `num_nodes()` machines, each with a
/// `num_resources()`-dimensional normalized utilization measurement at every
/// one of `num_steps()` time steps. Values are in [0, 1].
class Trace {
 public:
  virtual ~Trace() = default;

  virtual std::size_t num_nodes() const = 0;
  virtual std::size_t num_steps() const = 0;
  virtual std::size_t num_resources() const = 0;

  /// Normalized utilization of `resource` at `node` and time step `t`.
  virtual double value(std::size_t node, std::size_t t,
                       std::size_t resource) const = 0;

  /// The d-dimensional measurement x_{i,t} of eq. (1) context.
  std::vector<double> measurement(std::size_t node, std::size_t t) const;

  /// Full time series of one resource at one node (used by offline
  /// baselines and correlation studies).
  std::vector<double> series(std::size_t node, std::size_t resource) const;
};

/// Trace held densely in memory, row-major by (node, step, resource).
class InMemoryTrace final : public Trace {
 public:
  InMemoryTrace(std::size_t num_nodes, std::size_t num_steps,
                std::size_t num_resources);

  std::size_t num_nodes() const override { return num_nodes_; }
  std::size_t num_steps() const override { return num_steps_; }
  std::size_t num_resources() const override { return num_resources_; }

  double value(std::size_t node, std::size_t t,
               std::size_t resource) const override {
    return data_[offset(node, t, resource)];
  }

  void set_value(std::size_t node, std::size_t t, std::size_t resource,
                 double v) {
    data_[offset(node, t, resource)] = v;
  }

 private:
  std::size_t offset(std::size_t node, std::size_t t,
                     std::size_t resource) const {
    return (node * num_steps_ + t) * num_resources_ + resource;
  }

  std::size_t num_nodes_;
  std::size_t num_steps_;
  std::size_t num_resources_;
  std::vector<double> data_;
};

/// A trace restricted to a subset of nodes and/or a prefix of time steps.
/// Used by experiments that sample machines (e.g. the 100-node comparison of
/// §VI-E) without copying the underlying data.
class SubTrace final : public Trace {
 public:
  SubTrace(std::shared_ptr<const Trace> base, std::vector<std::size_t> nodes,
           std::size_t num_steps);

  std::size_t num_nodes() const override { return nodes_.size(); }
  std::size_t num_steps() const override { return num_steps_; }
  std::size_t num_resources() const override {
    return base_->num_resources();
  }

  double value(std::size_t node, std::size_t t,
               std::size_t resource) const override {
    return base_->value(nodes_[node], t, resource);
  }

 private:
  std::shared_ptr<const Trace> base_;
  std::vector<std::size_t> nodes_;
  std::size_t num_steps_;
};

}  // namespace resmon::trace
