// Holt-Winters exponential smoothing forecaster.
//
// Not part of the paper's evaluation, but the standard model production
// monitoring systems reach for first; included as an ablation point between
// sample-and-hold and ARIMA (see bench/ablation_models). Additive level +
// damped additive trend, with optional additive seasonality. Smoothing
// parameters are chosen by minimizing the one-step-ahead sum of squared
// errors with Nelder-Mead.
#pragma once

#include "common/optim.hpp"
#include "forecast/forecaster.hpp"

namespace resmon::forecast {

struct HoltWintersOptions {
  /// Season length; 0 disables the seasonal component.
  std::size_t season = 0;
  /// Trend damping factor phi in (0, 1]; 1 = undamped Holt trend.
  double damping = 0.98;
  /// When true, fit() optimizes (alpha, beta, gamma) by CSS; otherwise the
  /// fixed values below are used.
  bool optimize = true;
  double alpha = 0.3;  ///< level smoothing
  double beta = 0.05;  ///< trend smoothing
  double gamma = 0.1;  ///< seasonal smoothing
  optim::NelderMeadOptions optimizer{.max_iterations = 200,
                                     .initial_step = 0.15,
                                     .f_tolerance = 1e-10,
                                     .x_tolerance = 1e-8};
};

class HoltWintersForecaster final : public Forecaster {
 public:
  explicit HoltWintersForecaster(const HoltWintersOptions& options = {});

  void fit(std::span<const double> series) override;
  void update(double value) override;
  double forecast(std::size_t h) const override;
  bool is_fitted() const override { return fitted_; }
  std::string name() const override {
    return options_.season > 1 ? "HoltWinters" : "Holt";
  }

  double alpha() const { return alpha_; }
  double beta() const { return beta_; }
  double gamma() const { return gamma_; }
  /// One-step-ahead SSE of the fitted parameters over the training series.
  double training_sse() const { return sse_; }

 private:
  /// Run the smoothing recursion over `series` with the given parameters,
  /// returning the one-step SSE and leaving the final state in the out
  /// parameters.
  double run(std::span<const double> series, double alpha, double beta,
             double gamma, double* level_out, double* trend_out,
             std::vector<double>* season_out) const;

  HoltWintersOptions options_;
  bool fitted_ = false;
  double alpha_ = 0.3;
  double beta_ = 0.05;
  double gamma_ = 0.1;
  double sse_ = 0.0;

  double level_ = 0.0;
  double trend_ = 0.0;
  std::vector<double> seasonal_;   // length = season (empty if disabled)
  std::size_t season_phase_ = 0;   // index of the *next* seasonal slot
};

}  // namespace resmon::forecast
