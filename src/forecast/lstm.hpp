// LSTM forecaster (§VI-A3): two stacked LSTM layers with dense ReLU heads,
// trained by truncated backpropagation through time with Adam.
//
// The implementation is self-contained (no external ML dependency): weights
// live in one flat parameter vector, the forward pass caches activations per
// time step, and the backward pass produces the gradient for Adam. Series
// are min-max normalized to [0,1] before training so the ReLU output heads
// match the non-negative utilization range, as in the paper.
//
// Multi-step strategy: the paper forecasts h steps ahead for h up to 50 but
// does not specify the rollout; iterating a one-step model compounds error,
// so this implementation trains *direct* horizon heads — one small dense
// head per horizon bucket on the shared recurrent encoder — and linearly
// interpolates between bracketing buckets for intermediate h (see
// DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "common/optim.hpp"
#include "common/rng.hpp"
#include "forecast/forecaster.hpp"

namespace resmon::forecast {

struct LstmOptions {
  std::size_t hidden_size = 12;   ///< units per LSTM layer
  std::size_t window = 16;        ///< input window length for training
  std::size_t epochs = 12;        ///< passes over the training windows
  std::size_t stride = 1;         ///< sample every `stride`-th window
  double learning_rate = 1e-2;    ///< Adam step size
  double grad_clip = 1.0;         ///< global gradient-norm clip (0 = off)
  /// Direct-forecast horizon buckets (strictly increasing, must start at
  /// 1). forecast(h) interpolates between the bracketing buckets and holds
  /// the last bucket beyond the end.
  std::vector<std::size_t> horizons{1, 2, 3, 5, 8, 12, 20, 30, 50};
};

class LstmForecaster final : public Forecaster {
 public:
  explicit LstmForecaster(const LstmOptions& options = {},
                          std::uint64_t seed = 0);

  void fit(std::span<const double> series) override;
  void update(double value) override;
  double forecast(std::size_t h) const override;
  bool is_fitted() const override { return fitted_; }
  std::string name() const override { return "LSTM"; }

  /// Mean squared training error of the final epoch (normalized units,
  /// averaged across horizon heads).
  double final_training_loss() const { return final_loss_; }

  std::size_t num_parameters() const { return params_.size(); }

  /// Numerical gradient check (test hook): compares the analytic gradient
  /// of 0.5 * (prediction - target)^2 on one window (using horizon head
  /// `head`) against central finite differences and returns the largest
  /// absolute deviation. Values around 1e-6 or below indicate a correct
  /// backward pass.
  double gradient_check(std::span<const double> window, double target,
                        std::size_t head = 0);

 private:
  // Layout of the flat parameter vector; each LSTM layer stores
  // [W_x (4H x I), W_h (4H x H), b (4H)], gate order (i, f, g, o),
  // followed by one dense head [w (H), b (1)] per horizon bucket.
  struct LayerView {
    std::size_t wx = 0;  ///< offset of W_x
    std::size_t wh = 0;  ///< offset of W_h
    std::size_t b = 0;   ///< offset of bias
    std::size_t input = 0;
  };

  void init_params();
  double normalize(double v) const;
  double denormalize(double v) const;

  /// Forward one window through the encoder and the given horizon head;
  /// returns the prediction. When `cache` is non-null, all per-step
  /// activations are stored for the backward pass.
  struct Cache;
  double forward(std::span<const double> window, std::size_t head,
                 Cache* cache) const;
  /// Backward pass for one window; accumulates into grad_. Takes one
  /// output-error term per horizon head (0 = head not trained this window);
  /// all heads share a single BPTT pass through the encoder.
  void backward(const Cache& cache, std::span<const double> d_predictions);

  /// Prediction of horizon head `head` from the most recent window.
  double predict_head(std::size_t head) const;

  LstmOptions options_;
  Rng rng_;
  bool fitted_ = false;

  std::vector<double> params_;
  std::vector<double> grad_;
  LayerView layer_[2];
  std::vector<std::size_t> head_w_;  ///< dense weight offset per head
  std::vector<std::size_t> head_b_;  ///< dense bias offset per head

  std::vector<double> series_;  // raw (unnormalized) history
  double lo_ = 0.0;             // normalization range from the last fit
  double hi_ = 1.0;
  double final_loss_ = 0.0;
};

}  // namespace resmon::forecast
