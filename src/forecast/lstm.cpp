#include "forecast/lstm.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace resmon::forecast {

namespace {

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

/// Per-window activation cache for backpropagation through time.
struct LstmForecaster::Cache {
  // Indexed [layer][t][unit].
  // Gates after nonlinearity: i, f, g, o; cell state c and tanh(c); h.
  std::vector<std::vector<std::vector<double>>> gi, gf, gg, go, c, tc, h;
  std::vector<double> input;  // normalized window
  std::size_t head = 0;       // head used for the forward() return value
  std::vector<double> head_pre;         // pre-ReLU output of every head
  std::vector<double> head_prediction;  // ReLU output of every head
};

LstmForecaster::LstmForecaster(const LstmOptions& options, std::uint64_t seed)
    : options_(options), rng_(seed) {
  RESMON_REQUIRE(options.hidden_size >= 1, "LSTM hidden size must be >= 1");
  RESMON_REQUIRE(options.window >= 2, "LSTM window must be >= 2");
  RESMON_REQUIRE(options.epochs >= 1, "LSTM needs at least one epoch");
  RESMON_REQUIRE(options.stride >= 1, "LSTM stride must be >= 1");
  RESMON_REQUIRE(!options.horizons.empty() && options.horizons[0] == 1,
                 "LSTM horizon buckets must start at 1");
  for (std::size_t i = 1; i < options.horizons.size(); ++i) {
    RESMON_REQUIRE(options.horizons[i] > options.horizons[i - 1],
                   "LSTM horizon buckets must be strictly increasing");
  }
  init_params();
}

void LstmForecaster::init_params() {
  const std::size_t h = options_.hidden_size;
  std::size_t offset = 0;
  for (std::size_t l = 0; l < 2; ++l) {
    const std::size_t input = l == 0 ? 1 : h;
    layer_[l].input = input;
    layer_[l].wx = offset;
    offset += 4 * h * input;
    layer_[l].wh = offset;
    offset += 4 * h * h;
    layer_[l].b = offset;
    offset += 4 * h;
  }
  head_w_.clear();
  head_b_.clear();
  for (std::size_t k = 0; k < options_.horizons.size(); ++k) {
    head_w_.push_back(offset);
    offset += h;
    head_b_.push_back(offset);
    offset += 1;
  }

  params_.assign(offset, 0.0);
  grad_.assign(offset, 0.0);
  const double r = 1.0 / std::sqrt(static_cast<double>(h));
  for (double& p : params_) p = rng_.uniform(-r, r);
  // Forget-gate bias starts positive so early training retains memory.
  for (std::size_t l = 0; l < 2; ++l) {
    for (std::size_t u = 0; u < h; ++u) {
      params_[layer_[l].b + h + u] = 1.0;
    }
  }
  for (const std::size_t b : head_b_) {
    params_[b] = 0.5;  // mid-range output before training
  }
}

double LstmForecaster::normalize(double v) const {
  return (v - lo_) / (hi_ - lo_);
}

double LstmForecaster::denormalize(double v) const {
  return lo_ + v * (hi_ - lo_);
}

double LstmForecaster::forward(std::span<const double> window,
                               std::size_t head, Cache* cache) const {
  const std::size_t h = options_.hidden_size;
  const std::size_t steps = window.size();

  if (cache != nullptr) {
    cache->input.assign(window.begin(), window.end());
    cache->head = head;
    for (auto* field :
         {&cache->gi, &cache->gf, &cache->gg, &cache->go, &cache->c,
          &cache->tc, &cache->h}) {
      field->assign(2, std::vector<std::vector<double>>(
                           steps, std::vector<double>(h)));
    }
  }

  std::vector<double> h_state[2] = {std::vector<double>(h, 0.0),
                                    std::vector<double>(h, 0.0)};
  std::vector<double> c_state[2] = {std::vector<double>(h, 0.0),
                                    std::vector<double>(h, 0.0)};
  std::vector<double> h_new_vec(h, 0.0);
  std::vector<double> layer_in;

  for (std::size_t t = 0; t < steps; ++t) {
    layer_in.assign(1, window[t]);
    for (std::size_t l = 0; l < 2; ++l) {
      const LayerView& lv = layer_[l];
      const std::size_t in_dim = lv.input;
      for (std::size_t u = 0; u < h; ++u) {
        double pre[4];
        for (std::size_t g = 0; g < 4; ++g) {
          double acc = params_[lv.b + g * h + u];
          const std::size_t wx_row = lv.wx + (g * h + u) * in_dim;
          for (std::size_t i = 0; i < in_dim; ++i) {
            acc += params_[wx_row + i] * layer_in[i];
          }
          const std::size_t wh_row = lv.wh + (g * h + u) * h;
          for (std::size_t i = 0; i < h; ++i) {
            acc += params_[wh_row + i] * h_state[l][i];
          }
          pre[g] = acc;
        }
        const double gi = sigmoid(pre[0]);
        const double gf = sigmoid(pre[1]);
        const double gg = std::tanh(pre[2]);
        const double go = sigmoid(pre[3]);
        const double c_new = gf * c_state[l][u] + gi * gg;
        const double tc = std::tanh(c_new);
        const double h_new = go * tc;
        c_state[l][u] = c_new;  // c[u] is read only by unit u; safe in place
        h_new_vec[u] = h_new;   // h is read across units; update after loop
        if (cache != nullptr) {
          cache->gi[l][t][u] = gi;
          cache->gf[l][t][u] = gf;
          cache->gg[l][t][u] = gg;
          cache->go[l][t][u] = go;
          cache->c[l][t][u] = c_new;
          cache->tc[l][t][u] = tc;
          cache->h[l][t][u] = h_new;
        }
      }
      h_state[l] = h_new_vec;
      layer_in = h_state[l];
    }
  }

  // Evaluate every horizon head from the shared encoder state (cheap: one
  // dot product each); the requested head's output is returned.
  const std::size_t num_heads = head_w_.size();
  double out = 0.0;
  if (cache != nullptr) {
    cache->head_pre.assign(num_heads, 0.0);
    cache->head_prediction.assign(num_heads, 0.0);
  }
  for (std::size_t k = 0; k < num_heads; ++k) {
    if (cache == nullptr && k != head) continue;
    double pre = params_[head_b_[k]];
    for (std::size_t u = 0; u < h; ++u) {
      pre += params_[head_w_[k] + u] * h_state[1][u];
    }
    const double value = std::max(pre, 0.0);  // ReLU head
    if (cache != nullptr) {
      cache->head_pre[k] = pre;
      cache->head_prediction[k] = value;
    }
    if (k == head) out = value;
  }
  return out;
}

void LstmForecaster::backward(const Cache& cache,
                              std::span<const double> d_predictions) {
  const std::size_t h = options_.hidden_size;
  const std::size_t steps = cache.input.size();

  // Through the ReLU + dense heads; all head gradients sum into the shared
  // encoder state, so one BPTT pass trains every horizon at once.
  std::vector<double> dh_next[2] = {std::vector<double>(h, 0.0),
                                    std::vector<double>(h, 0.0)};
  std::vector<double> dc_next[2] = {std::vector<double>(h, 0.0),
                                    std::vector<double>(h, 0.0)};
  for (std::size_t k = 0; k < head_w_.size(); ++k) {
    const double d_pre =
        cache.head_pre[k] > 0.0 ? d_predictions[k] : 0.0;
    if (d_pre == 0.0) continue;
    grad_[head_b_[k]] += d_pre;
    for (std::size_t u = 0; u < h; ++u) {
      grad_[head_w_[k] + u] += d_pre * cache.h[1][steps - 1][u];
      dh_next[1][u] += d_pre * params_[head_w_[k] + u];
    }
  }

  // BPTT, top layer first within each time step.
  std::vector<double> d_layer_in(h, 0.0);  // gradient wrt layer-1's input
  for (std::size_t t = steps; t-- > 0;) {
    std::fill(d_layer_in.begin(), d_layer_in.end(), 0.0);
    for (std::size_t l = 2; l-- > 0;) {
      const LayerView& lv = layer_[l];
      const std::size_t in_dim = lv.input;
      std::vector<double> dh_prev(h, 0.0);
      std::vector<double> dc_prev(h, 0.0);
      for (std::size_t u = 0; u < h; ++u) {
        const double dh = dh_next[l][u];
        const double go = cache.go[l][t][u];
        const double tc = cache.tc[l][t][u];
        const double gi = cache.gi[l][t][u];
        const double gf = cache.gf[l][t][u];
        const double gg = cache.gg[l][t][u];
        const double c_prev = t > 0 ? cache.c[l][t - 1][u] : 0.0;

        const double dc = dc_next[l][u] + dh * go * (1.0 - tc * tc);
        const double d_go = dh * tc * go * (1.0 - go);
        const double d_gi = dc * gg * gi * (1.0 - gi);
        const double d_gf = dc * c_prev * gf * (1.0 - gf);
        const double d_gg = dc * gi * (1.0 - gg * gg);
        dc_prev[u] = dc * gf;

        const double d_pre_gates[4] = {d_gi, d_gf, d_gg, d_go};
        for (std::size_t g = 0; g < 4; ++g) {
          const double dpg = d_pre_gates[g];
          if (dpg == 0.0) continue;
          grad_[lv.b + g * h + u] += dpg;
          const std::size_t wx_row = lv.wx + (g * h + u) * in_dim;
          const std::size_t wh_row = lv.wh + (g * h + u) * h;
          for (std::size_t i = 0; i < in_dim; ++i) {
            const double x_in =
                l == 0 ? cache.input[t] : cache.h[0][t][i];
            grad_[wx_row + i] += dpg * x_in;
            if (l == 1) d_layer_in[i] += dpg * params_[wx_row + i];
          }
          if (t > 0) {
            for (std::size_t i = 0; i < h; ++i) {
              grad_[wh_row + i] += dpg * cache.h[l][t - 1][i];
              dh_prev[i] += dpg * params_[wh_row + i];
            }
          }
        }
      }
      dh_next[l] = std::move(dh_prev);
      dc_next[l] = std::move(dc_prev);
      if (l == 1) {
        // Gradient flowing into layer 0's output at this same time step.
        for (std::size_t i = 0; i < h; ++i) dh_next[0][i] += d_layer_in[i];
      }
    }
  }
}

double LstmForecaster::gradient_check(std::span<const double> window,
                                      double target, std::size_t head) {
  RESMON_REQUIRE(head < options_.horizons.size(), "head out of range");
  Cache cache;
  const double pred = forward(window, head, &cache);
  std::fill(grad_.begin(), grad_.end(), 0.0);
  std::vector<double> d_predictions(head_w_.size(), 0.0);
  d_predictions[head] = pred - target;
  backward(cache, d_predictions);

  constexpr double kEps = 1e-6;
  double worst = 0.0;
  for (std::size_t p = 0; p < params_.size(); ++p) {
    const double saved = params_[p];
    params_[p] = saved + kEps;
    const double up = forward(window, head, nullptr);
    params_[p] = saved - kEps;
    const double down = forward(window, head, nullptr);
    params_[p] = saved;
    const double loss_up = 0.5 * (up - target) * (up - target);
    const double loss_down = 0.5 * (down - target) * (down - target);
    const double numeric = (loss_up - loss_down) / (2.0 * kEps);
    worst = std::max(worst, std::fabs(numeric - grad_[p]));
  }
  return worst;
}

void LstmForecaster::fit(std::span<const double> series) {
  RESMON_REQUIRE(series.size() > options_.window + 1,
                 "LSTM: series shorter than training window");
  series_.assign(series.begin(), series.end());

  lo_ = *std::min_element(series.begin(), series.end());
  hi_ = *std::max_element(series.begin(), series.end());
  if (hi_ - lo_ < 1e-9) hi_ = lo_ + 1.0;  // constant series: avoid div by 0

  std::vector<double> norm(series_.size());
  for (std::size_t i = 0; i < norm.size(); ++i) {
    norm[i] = normalize(series_[i]);
  }

  // Training examples: window [t, t+W) -> target at t+W-1+h for a horizon
  // bucket h. Every start must support at least the h=1 bucket.
  std::vector<std::size_t> starts;
  for (std::size_t t = 0; t + options_.window < norm.size();
       t += options_.stride) {
    starts.push_back(t);
  }
  RESMON_REQUIRE(!starts.empty(), "LSTM: no training windows");

  init_params();  // re-randomize so refits do not depend on stale optima
  optim::Adam adam(params_.size(), {.learning_rate = options_.learning_rate});
  Cache cache;

  const std::size_t num_heads = options_.horizons.size();
  std::vector<double> d_predictions(num_heads, 0.0);
  for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng_.shuffle(starts);
    double loss_sum = 0.0;
    std::size_t loss_terms = 0;
    for (const std::size_t start : starts) {
      const std::span<const double> window(norm.data() + start,
                                           options_.window);
      // One forward pass evaluates every horizon head; each head with a
      // valid target contributes its error, and a single BPTT pass trains
      // all of them through the shared encoder.
      forward(window, 0, &cache);
      std::size_t valid = 0;
      for (std::size_t k = 0; k < num_heads; ++k) {
        const std::size_t target_index =
            start + options_.window - 1 + options_.horizons[k];
        if (target_index >= norm.size()) {
          d_predictions[k] = 0.0;
          continue;
        }
        const double err = cache.head_prediction[k] - norm[target_index];
        d_predictions[k] = err;
        loss_sum += err * err;
        ++valid;
      }
      if (valid == 0) continue;
      loss_terms += valid;
      // Normalize so the gradient scale matches single-head training.
      for (double& d : d_predictions) d /= static_cast<double>(valid);

      std::fill(grad_.begin(), grad_.end(), 0.0);
      backward(cache, d_predictions);
      if (options_.grad_clip > 0.0) {
        double norm2 = 0.0;
        for (const double g : grad_) norm2 += g * g;
        const double gnorm = std::sqrt(norm2);
        if (gnorm > options_.grad_clip) {
          const double scale = options_.grad_clip / gnorm;
          for (double& g : grad_) g *= scale;
        }
      }
      adam.step(params_, grad_);
    }
    final_loss_ = loss_terms > 0
                      ? loss_sum / static_cast<double>(loss_terms)
                      : 0.0;
  }
  fitted_ = true;
}

void LstmForecaster::update(double value) {
  if (!fitted_) throw InvalidState("LSTM: update before fit");
  series_.push_back(value);
}

double LstmForecaster::predict_head(std::size_t head) const {
  const std::size_t w = options_.window;
  std::vector<double> window;
  window.reserve(w);
  const std::size_t have = std::min(series_.size(), w);
  for (std::size_t i = series_.size() - have; i < series_.size(); ++i) {
    window.push_back(normalize(series_[i]));
  }
  while (window.size() < w) {
    window.insert(window.begin(), window.front());  // pad short histories
  }
  return forward(window, head, nullptr);
}

double LstmForecaster::forecast(std::size_t h) const {
  RESMON_REQUIRE(h >= 1, "forecast horizon must be >= 1");
  if (!fitted_) throw InvalidState("LSTM: forecast before fit");

  const std::vector<std::size_t>& hs = options_.horizons;
  // Exact bucket, or hold the last bucket beyond the trained range.
  const auto it = std::lower_bound(hs.begin(), hs.end(), h);
  if (it == hs.end()) {
    return denormalize(predict_head(hs.size() - 1));
  }
  const std::size_t hi_idx = static_cast<std::size_t>(it - hs.begin());
  if (hs[hi_idx] == h || hi_idx == 0) {
    return denormalize(predict_head(hi_idx));
  }
  // Linear interpolation between the bracketing horizon heads.
  const std::size_t lo_idx = hi_idx - 1;
  const double frac = static_cast<double>(h - hs[lo_idx]) /
                      static_cast<double>(hs[hi_idx] - hs[lo_idx]);
  const double lo_pred = predict_head(lo_idx);
  const double hi_pred = predict_head(hi_idx);
  return denormalize(lo_pred + frac * (hi_pred - lo_pred));
}

}  // namespace resmon::forecast
