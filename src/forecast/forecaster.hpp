// Time-series forecasting interface (§V-C).
//
// One Forecaster instance is trained per cluster on that cluster's centroid
// series. Models are (re)fitted periodically on the full history and their
// transient state is updated with every new observation in between, exactly
// as §V-C describes.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace resmon::forecast {

/// A univariate time-series forecasting model.
class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// (Re)train on the full history, replacing any previous state.
  virtual void fit(std::span<const double> series) = 0;

  /// Append one new observation, updating the model's transient state
  /// (not its trained parameters). Valid only after fit().
  virtual void update(double value) = 0;

  /// Point forecast h >= 1 steps after the last observation.
  /// Valid only after fit().
  virtual double forecast(std::size_t h) const = 0;

  /// True once fit() has succeeded.
  virtual bool is_fitted() const = 0;

  /// Short model name for reports ("ARIMA", "LSTM", "SampleHold").
  virtual std::string name() const = 0;
};

/// The models evaluated in the paper.
enum class ForecasterKind {
  kSampleHold,  ///< forecast = last observed value
  kArima,       ///< fixed-order seasonal ARIMA
  kAutoArima,   ///< AICc grid search over seasonal ARIMA orders (§VI-A3)
  kLstm,        ///< stacked LSTM + dense ReLU heads (§VI-A3)
  kHoltWinters, ///< exponential smoothing (ablation; not in the paper)
};

std::string to_string(ForecasterKind kind);

/// Parse "hold" / "arima" / "auto-arima" / "lstm" (used by CLI flags).
ForecasterKind forecaster_kind_from_string(const std::string& name);

/// Construct a forecaster of the given kind with library defaults.
/// `seed` feeds stochastic models (LSTM initialization / shuffling).
std::unique_ptr<Forecaster> make_forecaster(ForecasterKind kind,
                                            std::uint64_t seed);

}  // namespace resmon::forecast
