// Sample-and-hold forecaster: the paper's simplest baseline (§VI-D1).
// The forecast for any horizon is the most recent observation.
#pragma once

#include "forecast/forecaster.hpp"

#include "common/error.hpp"

namespace resmon::forecast {

class SampleHoldForecaster final : public Forecaster {
 public:
  void fit(std::span<const double> series) override {
    RESMON_REQUIRE(!series.empty(), "SampleHold: empty series");
    last_ = series.back();
    fitted_ = true;
  }

  void update(double value) override {
    if (!fitted_) throw InvalidState("SampleHold: update before fit");
    last_ = value;
  }

  double forecast(std::size_t h) const override {
    RESMON_REQUIRE(h >= 1, "forecast horizon must be >= 1");
    if (!fitted_) throw InvalidState("SampleHold: forecast before fit");
    return last_;
  }

  bool is_fitted() const override { return fitted_; }
  std::string name() const override { return "SampleHold"; }

 private:
  double last_ = 0.0;
  bool fitted_ = false;
};

}  // namespace resmon::forecast
