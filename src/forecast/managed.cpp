#include "forecast/managed.hpp"

#include <chrono>

#include "common/error.hpp"

namespace resmon::forecast {

ManagedForecaster::ManagedForecaster(std::unique_ptr<Forecaster> model,
                                     const RetrainSchedule& schedule)
    : model_(std::move(model)), schedule_(schedule) {
  RESMON_REQUIRE(model_ != nullptr, "ManagedForecaster requires a model");
  RESMON_REQUIRE(schedule.initial_steps >= 2,
                 "initial collection phase must have at least 2 steps");
  RESMON_REQUIRE(schedule.retrain_interval >= 1,
                 "retrain interval must be at least 1 step");
}

void ManagedForecaster::observe(double value) {
  history_.push_back(value);

  const bool due =
      history_.size() == schedule_.initial_steps ||
      (history_.size() > schedule_.initial_steps &&
       (history_.size() - schedule_.initial_steps) %
               schedule_.retrain_interval ==
           0);
  if (due) {
    const auto start = std::chrono::steady_clock::now();
    try {
      model_->fit(history_);
      ++fits_completed_;
    } catch (const NumericalError&) {
      // Not enough usable data yet (e.g. seasonal ARIMA with a long season);
      // stay in the fallback regime until the next scheduled fit.
    }
    training_seconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  } else if (ready()) {
    model_->update(value);
  }
}

double ManagedForecaster::forecast(std::size_t h) const {
  RESMON_REQUIRE(h >= 1, "forecast horizon must be >= 1");
  if (history_.empty()) {
    throw InvalidState("ManagedForecaster: no observations yet");
  }
  if (!ready()) return history_.back();
  return model_->forecast(h);
}

}  // namespace resmon::forecast
