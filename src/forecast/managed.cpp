#include "forecast/managed.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/error.hpp"

namespace resmon::forecast {

ManagedForecaster::ManagedForecaster(std::unique_ptr<Forecaster> model,
                                     const RetrainSchedule& schedule,
                                     obs::MetricsRegistry* metrics,
                                     const std::string& label)
    : model_(std::move(model)), schedule_(schedule) {
  RESMON_REQUIRE(model_ != nullptr, "ManagedForecaster requires a model");
  RESMON_REQUIRE(schedule.initial_steps >= 2,
                 "initial collection phase must have at least 2 steps");
  RESMON_REQUIRE(schedule.retrain_interval >= 1,
                 "retrain interval must be at least 1 step");
  if (metrics != nullptr) {
    fits_total_ = &metrics->counter("resmon_forecast_fits_total",
                                    "Completed model (re)fits, all models");
    fit_failures_total_ = &metrics->counter(
        "resmon_forecast_fit_failures_total",
        "Scheduled fits that threw NumericalError (fallback regime)");
    fit_seconds_ = &metrics->histogram(
        "resmon_forecast_fit_seconds",
        "Wall-clock duration of one model fit", obs::duration_seconds_buckets());
    residual_gauge_ = &metrics->gauge(
        "resmon_forecast_residual_rmse",
        "Cumulative one-step-ahead RMSE of this model's forecasts",
        {{"model", label}});
  }
}

namespace {

/// Initial reservation (in observations) of the unbounded history; growth
/// beyond it doubles, so steady-state observe() calls allocate nothing (see
/// docs/PERFORMANCE.md "Zero-allocation steady state").
constexpr std::size_t kHistoryReserveSteps = 1024;

}  // namespace

bool ManagedForecaster::next_observe_retrains() const {
  const std::size_t next = history_.size() + 1;
  return next == schedule_.initial_steps ||
         (next > schedule_.initial_steps &&
          (next - schedule_.initial_steps) % schedule_.retrain_interval == 0);
}

double ManagedForecaster::residual_rmse() const {
  if (residual_count_ == 0) return 0.0;
  return std::sqrt(residual_sq_sum_ / static_cast<double>(residual_count_));
}

void ManagedForecaster::observe(double value) {
  if (residual_gauge_ != nullptr && !history_.empty()) {
    // What would we have predicted for this step? Same fallback rule as
    // forecast(): the model once ready, else sample-and-hold.
    const double pred = ready() ? model_->forecast(1) : history_.back();
    const double err = value - pred;
    residual_sq_sum_ += err * err;
    ++residual_count_;
    residual_gauge_->set(residual_rmse());
  }

  const bool due = next_observe_retrains();
  if (history_.capacity() == history_.size()) {
    history_.reserve(std::max(history_.size() * 2, kHistoryReserveSteps));
  }
  history_.push_back(value);

  if (due) {
    const auto start = std::chrono::steady_clock::now();
    bool fit_ok = false;
    try {
      model_->fit(history_);
      ++fits_completed_;
      fit_ok = true;
    } catch (const NumericalError&) {
      // Not enough usable data yet (e.g. seasonal ARIMA with a long season);
      // stay in the fallback regime until the next scheduled fit.
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    training_seconds_ += seconds;
    if (fits_total_ != nullptr) {
      if (fit_ok) {
        fits_total_->inc();
      } else {
        fit_failures_total_->inc();
      }
      fit_seconds_->observe(seconds);
    }
  } else if (ready()) {
    model_->update(value);
  }
}

double ManagedForecaster::forecast(std::size_t h) const {
  RESMON_REQUIRE(h >= 1, "forecast horizon must be >= 1");
  if (history_.empty()) {
    throw InvalidState("ManagedForecaster: no observations yet");
  }
  if (!ready()) return history_.back();
  return model_->forecast(h);
}

}  // namespace resmon::forecast
