// Seasonal ARIMA forecasting (§V-C, §VI-A3).
//
// Model: ARIMA(p,d,q)(P,D,Q)_s. The series is differenced d times at lag 1
// and D times at lag s; the differenced series follows a multiplicative
// seasonal ARMA whose combined lag polynomials are expanded once and kept as
// sparse (lag, coefficient) lists. Coefficients are estimated by minimizing
// the conditional sum of squares (CSS) with Nelder-Mead; model order is
// selected with the bias-corrected Akaike information criterion (AICc), as
// in the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/optim.hpp"
#include "common/stats.hpp"
#include "forecast/forecaster.hpp"

namespace resmon::forecast {

/// Seasonal ARIMA order. `season == 0` (or all of sp/sd/sq zero) disables
/// the seasonal part.
struct ArimaOrder {
  std::size_t p = 1;   ///< autoregressive order
  std::size_t d = 0;   ///< regular differencing
  std::size_t q = 0;   ///< moving-average order
  std::size_t sp = 0;  ///< seasonal AR order (paper's P)
  std::size_t sd = 0;  ///< seasonal differencing (paper's D)
  std::size_t sq = 0;  ///< seasonal MA order (paper's Q)
  std::size_t season = 0;  ///< seasonal period s (e.g. 288 = 1 day @ 5 min)

  bool has_seasonal() const {
    return season > 1 && (sp > 0 || sd > 0 || sq > 0);
  }
  /// A constant term is estimated only when no differencing is applied.
  bool needs_mean() const { return d == 0 && sd == 0; }
  /// Number of free coefficients (excluding sigma^2).
  std::size_t num_params() const {
    return p + q + sp + sq + (needs_mean() ? 1 : 0);
  }
  std::string to_string() const;
};

struct ArimaOptions {
  optim::NelderMeadOptions optimizer{.max_iterations = 400,
                                     .initial_step = 0.2,
                                     .f_tolerance = 1e-10,
                                     .x_tolerance = 1e-8};
};

/// Fixed-order seasonal ARIMA model.
class ArimaForecaster final : public Forecaster {
 public:
  explicit ArimaForecaster(const ArimaOrder& order,
                           const ArimaOptions& options = {});

  void fit(std::span<const double> series) override;
  void update(double value) override;
  double forecast(std::size_t h) const override;
  bool is_fitted() const override { return fitted_; }
  std::string name() const override { return "ARIMA" + order_.to_string(); }

  const ArimaOrder& order() const { return order_; }
  double css() const;     ///< conditional sum of squares at the optimum
  double sigma2() const;  ///< residual variance estimate
  double aicc() const;    ///< corrected AIC (model selection criterion)

  /// A point forecast with a symmetric prediction interval.
  struct Interval {
    double lower = 0.0;
    double point = 0.0;
    double upper = 0.0;
  };

  /// Standard error of the h-step-ahead forecast, from the psi-weight
  /// expansion of the (possibly differenced) model:
  /// se_h = sigma * sqrt(sum_{i=0}^{h-1} psi_i^2).
  double forecast_stddev(std::size_t h) const;

  /// Point forecast with a normal prediction interval at the given
  /// confidence level (default 95%).
  Interval forecast_interval(std::size_t h, double confidence = 0.95) const;

  /// Ljung-Box whiteness test on the fitted residuals. A small p-value
  /// means the model left autocorrelated structure unexplained and a
  /// richer order should be considered.
  stats::LjungBoxResult residual_diagnostics(std::size_t lags = 20) const;

  /// Estimated coefficients in the layout [phi, theta, PHI, THETA, (mean)].
  const std::vector<double>& coefficients() const { return params_; }

 private:
  void rebuild_polynomials();
  void recompute_chain_and_residuals();
  void append_to_chain(double value);

  // Scratch buffers (centered series / forecast recursion) so the steady
  // per-step path — update() plus the one-step forecast(1) the pipeline's
  // residual tracking issues — performs no heap allocations.
  std::vector<double> wc_scratch_;
  mutable std::vector<double> fc_scratch_;

  ArimaOrder order_;
  ArimaOptions options_;
  bool fitted_ = false;

  std::vector<double> params_;
  // Combined sparse lag polynomials of the fitted model:
  //   wc_t = sum(ar) a * wc_{t-lag} + sum(ma) b * e_{t-lag} + e_t
  std::vector<std::pair<std::size_t, double>> ar_lags_;
  std::vector<std::pair<std::size_t, double>> ma_lags_;
  double mean_ = 0.0;
  std::size_t max_ar_lag_ = 0;  ///< deepest AR lag (hoisted for update())

  // Differencing chain: chain_[0] is the raw series; then sd seasonal
  // differences, then d regular differences; chain_.back() is w.
  std::vector<std::vector<double>> chain_;
  std::vector<double> residuals_;  // e_t over w (zero-initialized recursion)
  double css_ = 0.0;
  std::size_t n_effective_ = 0;
};

/// Order-search ranges for AutoArima. The defaults are a reduced grid that
/// keeps bench runtime reasonable; paper_grid() restores the paper's ranges
/// (p,q in [0,5], d in [0,2], P,Q in [0,2], D in [0,1]).
struct ArimaGrid {
  std::size_t max_p = 2;
  std::size_t max_d = 1;
  std::size_t max_q = 2;
  std::size_t max_sp = 1;
  std::size_t max_sd = 1;
  std::size_t max_sq = 1;
  std::size_t season = 0;  ///< 0 = non-seasonal search only

  static ArimaGrid paper_grid(std::size_t season);
};

/// Result of one grid-search candidate fit.
struct ArimaCandidate {
  ArimaOrder order;
  double aicc = 0.0;
};

/// ARIMA with automatic order selection: fit() grid-searches the order by
/// AICc and keeps the best model (ties broken toward fewer parameters).
class AutoArimaForecaster final : public Forecaster {
 public:
  explicit AutoArimaForecaster(const ArimaGrid& grid = {},
                               const ArimaOptions& options = {});

  void fit(std::span<const double> series) override;
  void update(double value) override;
  double forecast(std::size_t h) const override;
  bool is_fitted() const override { return model_ != nullptr; }
  std::string name() const override;

  /// The selected model (valid after fit()).
  const ArimaForecaster& selected() const;

  /// All candidate orders evaluated in the last fit, with their AICc.
  const std::vector<ArimaCandidate>& candidates() const {
    return candidates_;
  }

 private:
  ArimaGrid grid_;
  ArimaOptions options_;
  std::unique_ptr<ArimaForecaster> model_;
  std::vector<ArimaCandidate> candidates_;
};

}  // namespace resmon::forecast
