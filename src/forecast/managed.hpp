// ManagedForecaster: the paper's training schedule around a Forecaster.
//
// "When the system starts for the first time, there is an initial data
//  collection phase where there is no forecasting model available to use.
//  ... The transient state of each model gets updated whenever a new
//  measurement is available. The models are retrained periodically at a
//  given time interval using all the historical cluster centroids." (§V-C)
#pragma once

#include <memory>

#include "forecast/forecaster.hpp"

namespace resmon::forecast {

/// Retraining schedule. Paper defaults: initial phase of 1000 steps, then
/// retrain every 288 steps (one day at 5-minute sampling).
struct RetrainSchedule {
  std::size_t initial_steps = 1000;
  std::size_t retrain_interval = 288;
};

/// Feeds a centroid series into a Forecaster, (re)fitting it on the schedule
/// and updating its transient state in between. Before the first fit,
/// forecasts fall back to the last observed value (sample-and-hold), so the
/// pipeline always has an answer.
class ManagedForecaster {
 public:
  ManagedForecaster(std::unique_ptr<Forecaster> model,
                    const RetrainSchedule& schedule);

  /// Record one new observation (one per time step).
  void observe(double value);

  /// True once the underlying model has been trained at least once.
  bool ready() const { return fits_completed_ > 0; }

  /// Forecast h >= 1 steps past the last observation. Uses the trained
  /// model when ready, otherwise holds the last observation.
  double forecast(std::size_t h) const;

  std::size_t observations() const { return history_.size(); }
  std::size_t fits_completed() const { return fits_completed_; }
  const Forecaster& model() const { return *model_; }

  /// Total wall-clock seconds spent inside model->fit() so far (Table II).
  double total_training_seconds() const { return training_seconds_; }

 private:
  std::unique_ptr<Forecaster> model_;
  RetrainSchedule schedule_;
  std::vector<double> history_;
  std::size_t fits_completed_ = 0;
  double training_seconds_ = 0.0;
};

}  // namespace resmon::forecast
