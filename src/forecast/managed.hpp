// ManagedForecaster: the paper's training schedule around a Forecaster.
//
// "When the system starts for the first time, there is an initial data
//  collection phase where there is no forecasting model available to use.
//  ... The transient state of each model gets updated whenever a new
//  measurement is available. The models are retrained periodically at a
//  given time interval using all the historical cluster centroids." (§V-C)
#pragma once

#include <memory>
#include <string>

#include "forecast/forecaster.hpp"
#include "obs/metrics.hpp"

namespace resmon::forecast {

/// Retraining schedule. Paper defaults: initial phase of 1000 steps, then
/// retrain every 288 steps (one day at 5-minute sampling).
struct RetrainSchedule {
  std::size_t initial_steps = 1000;
  std::size_t retrain_interval = 288;
};

/// Feeds a centroid series into a Forecaster, (re)fitting it on the schedule
/// and updating its transient state in between. Before the first fit,
/// forecasts fall back to the last observed value (sample-and-hold), so the
/// pipeline always has an answer.
class ManagedForecaster {
 public:
  /// `metrics` (non-owning, may be nullptr) turns on instrumentation: the
  /// shared resmon_forecast_fits/fit-seconds series plus a
  /// resmon_forecast_residual_rmse{model="label"} gauge tracking this
  /// model's cumulative one-step-ahead error. Without a registry the
  /// residual is not tracked (no forecast(1) on the observe path).
  ManagedForecaster(std::unique_ptr<Forecaster> model,
                    const RetrainSchedule& schedule,
                    obs::MetricsRegistry* metrics = nullptr,
                    const std::string& label = {});

  /// Record one new observation (one per time step).
  void observe(double value);

  /// True when the NEXT observe() will trigger a scheduled (re)fit. The
  /// pipeline uses this to route cheap observe-only steps around the thread
  /// pool (see "Forecast-stage gating" in docs/PERFORMANCE.md).
  bool next_observe_retrains() const;

  /// True once the underlying model has been trained at least once.
  bool ready() const { return fits_completed_ > 0; }

  /// Forecast h >= 1 steps past the last observation. Uses the trained
  /// model when ready, otherwise holds the last observation.
  double forecast(std::size_t h) const;

  std::size_t observations() const { return history_.size(); }
  std::size_t fits_completed() const { return fits_completed_; }
  const Forecaster& model() const { return *model_; }

  /// Total wall-clock seconds spent inside model->fit() so far (Table II).
  double total_training_seconds() const { return training_seconds_; }

  /// RMSE of the one-step-ahead forecasts made so far (cumulative over all
  /// observe() calls after the first). Only tracked when a metrics registry
  /// was attached; 0.0 otherwise or before the second observation.
  double residual_rmse() const;

 private:
  std::unique_ptr<Forecaster> model_;
  RetrainSchedule schedule_;
  std::vector<double> history_;
  std::size_t fits_completed_ = 0;
  double training_seconds_ = 0.0;
  // One-step-ahead residual accumulation (metrics-only).
  double residual_sq_sum_ = 0.0;
  std::size_t residual_count_ = 0;
  // Optional metrics (all nullptr when no registry was given).
  obs::Counter* fits_total_ = nullptr;
  obs::Counter* fit_failures_total_ = nullptr;
  obs::Histogram* fit_seconds_ = nullptr;
  obs::Gauge* residual_gauge_ = nullptr;
};

}  // namespace resmon::forecast
