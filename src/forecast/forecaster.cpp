#include "forecast/forecaster.hpp"

#include "common/error.hpp"
#include "forecast/arima.hpp"
#include "forecast/lstm.hpp"
#include "forecast/holt_winters.hpp"
#include "forecast/sample_hold.hpp"

namespace resmon::forecast {

std::string to_string(ForecasterKind kind) {
  switch (kind) {
    case ForecasterKind::kSampleHold:
      return "SampleHold";
    case ForecasterKind::kArima:
      return "ARIMA";
    case ForecasterKind::kAutoArima:
      return "AutoARIMA";
    case ForecasterKind::kLstm:
      return "LSTM";
    case ForecasterKind::kHoltWinters:
      return "HoltWinters";
  }
  throw InvalidArgument("unknown forecaster kind");
}

ForecasterKind forecaster_kind_from_string(const std::string& name) {
  if (name == "hold" || name == "sample-hold") {
    return ForecasterKind::kSampleHold;
  }
  if (name == "arima") return ForecasterKind::kArima;
  if (name == "auto-arima") return ForecasterKind::kAutoArima;
  if (name == "lstm") return ForecasterKind::kLstm;
  if (name == "holt-winters" || name == "holt") {
    return ForecasterKind::kHoltWinters;
  }
  throw InvalidArgument("unknown forecaster name: " + name +
                        " (expected hold|arima|auto-arima|lstm|holt-winters)");
}

std::unique_ptr<Forecaster> make_forecaster(ForecasterKind kind,
                                            std::uint64_t seed) {
  switch (kind) {
    case ForecasterKind::kSampleHold:
      return std::make_unique<SampleHoldForecaster>();
    case ForecasterKind::kArima:
      // A compact default that tracks persistent utilization series well.
      return std::make_unique<ArimaForecaster>(
          ArimaOrder{.p = 2, .d = 0, .q = 1});
    case ForecasterKind::kAutoArima:
      return std::make_unique<AutoArimaForecaster>();
    case ForecasterKind::kLstm:
      return std::make_unique<LstmForecaster>(LstmOptions{}, seed);
    case ForecasterKind::kHoltWinters:
      return std::make_unique<HoltWintersForecaster>();
  }
  throw InvalidArgument("unknown forecaster kind");
}

}  // namespace resmon::forecast
