#include "forecast/arima.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "common/error.hpp"
#include "common/kernels.hpp"
#include "common/stats.hpp"

namespace resmon::forecast {

namespace {

/// Combined sparse lag polynomials of a multiplicative seasonal ARMA, plus
/// the mean term, built from a flat parameter vector laid out as
/// [phi_1..phi_p, theta_1..theta_q, PHI_1..PHI_sp, THETA_1..THETA_sq, (mean)].
struct Polys {
  std::vector<std::pair<std::size_t, double>> ar;
  std::vector<std::pair<std::size_t, double>> ma;
  double mean = 0.0;
  std::size_t max_ar_lag = 0;
  double ar_abs_sum = 0.0;
  double ma_abs_sum = 0.0;
};

Polys build_polys(const ArimaOrder& o, std::span<const double> params) {
  Polys out;
  std::size_t idx = 0;
  const std::span<const double> phi = params.subspan(idx, o.p);
  idx += o.p;
  const std::span<const double> theta = params.subspan(idx, o.q);
  idx += o.q;
  const std::span<const double> sphi = params.subspan(idx, o.sp);
  idx += o.sp;
  const std::span<const double> stheta = params.subspan(idx, o.sq);
  idx += o.sq;
  out.mean = o.needs_mean() ? params[idx] : 0.0;

  const std::size_t s = o.season;
  // (1 - sum phi_i B^i)(1 - sum PHI_I B^{sI}) on the AR side expands to
  // coefficients +phi_i at lag i, +PHI_I at lag sI, -phi_i*PHI_I at i+sI.
  for (std::size_t i = 0; i < o.p; ++i) out.ar.emplace_back(i + 1, phi[i]);
  for (std::size_t I = 0; I < o.sp; ++I) {
    out.ar.emplace_back(s * (I + 1), sphi[I]);
    for (std::size_t i = 0; i < o.p; ++i) {
      out.ar.emplace_back(s * (I + 1) + i + 1, -phi[i] * sphi[I]);
    }
  }
  // (1 + sum theta_j B^j)(1 + sum THETA_J B^{sJ}) on the MA side:
  // +theta_j at j, +THETA_J at sJ, +theta_j*THETA_J at j+sJ.
  for (std::size_t j = 0; j < o.q; ++j) out.ma.emplace_back(j + 1, theta[j]);
  for (std::size_t J = 0; J < o.sq; ++J) {
    out.ma.emplace_back(s * (J + 1), stheta[J]);
    for (std::size_t j = 0; j < o.q; ++j) {
      out.ma.emplace_back(s * (J + 1) + j + 1, theta[j] * stheta[J]);
    }
  }
  for (const auto& [lag, a] : out.ar) {
    out.max_ar_lag = std::max(out.max_ar_lag, lag);
    out.ar_abs_sum += std::fabs(a);
  }
  for (const auto& [lag, b] : out.ma) {
    (void)lag;
    out.ma_abs_sum += std::fabs(b);
  }
  return out;
}

/// Residual recursion with zero initialization (conditional sum of squares).
/// Returns the CSS over t >= max_ar_lag and fills e (one residual per w).
/// `wc` is caller-provided scratch for the centered series, so the
/// Nelder-Mead objective (which calls this once per evaluation) allocates
/// nothing once warm.
double compute_residuals(std::span<const double> w, const Polys& polys,
                         std::vector<double>& e, std::vector<double>& wc,
                         std::size_t* n_eff) {
  const std::size_t n = w.size();
  e.assign(n, 0.0);
  wc.resize(n);
  kern::subtract_mean(w.data(), polys.mean, n, wc.data());

  double css = 0.0;
  if (polys.ma.empty()) {
    // Pure-AR model: e has no dependence on earlier residuals, so the
    // recursion decomposes into one vectorizable axpy pass per AR lag. For
    // each t the accumulator sees the exact same subtractions in the exact
    // same (ar-list) order as the scalar recursion — bit-identical.
    std::copy(wc.begin(), wc.end(), e.begin());
    for (const auto& [lag, a] : polys.ar) {
      kern::axpy_lagged(a, wc.data(), lag, n, e.data());
    }
    for (std::size_t t = polys.max_ar_lag; t < n; ++t) css += e[t] * e[t];
  } else {
    for (std::size_t t = 0; t < n; ++t) {
      double acc = wc[t];
      for (const auto& [lag, a] : polys.ar) {
        if (t >= lag) acc -= a * wc[t - lag];
      }
      for (const auto& [lag, b] : polys.ma) {
        if (t >= lag) acc -= b * e[t - lag];
      }
      e[t] = acc;
      if (t >= polys.max_ar_lag) css += acc * acc;
    }
  }
  if (n_eff != nullptr) {
    *n_eff = n > polys.max_ar_lag ? n - polys.max_ar_lag : 0;
  }
  return css;
}

std::vector<double> difference(std::span<const double> x, std::size_t lag) {
  RESMON_REQUIRE(x.size() > lag, "series too short to difference");
  std::vector<double> out(x.size() - lag);
  for (std::size_t t = 0; t < out.size(); ++t) {
    out[t] = x[t + lag] - x[t];
  }
  return out;
}

}  // namespace

std::string ArimaOrder::to_string() const {
  // Built with += rather than chained operator+: GCC 12's -Wrestrict
  // false-positives on the temporary chain under -O2, breaking -Werror.
  std::string out;
  out += '(';
  out += std::to_string(p);
  out += ',';
  out += std::to_string(d);
  out += ',';
  out += std::to_string(q);
  out += ')';
  if (has_seasonal()) {
    out += '(';
    out += std::to_string(sp);
    out += ',';
    out += std::to_string(sd);
    out += ',';
    out += std::to_string(sq);
    out += ")[";
    out += std::to_string(season);
    out += ']';
  }
  return out;
}

ArimaForecaster::ArimaForecaster(const ArimaOrder& order,
                                 const ArimaOptions& options)
    : order_(order), options_(options) {
  RESMON_REQUIRE(order.d <= 2, "regular differencing d must be <= 2");
  RESMON_REQUIRE(order.sd <= 1, "seasonal differencing D must be <= 1");
  if (order.sp > 0 || order.sd > 0 || order.sq > 0) {
    RESMON_REQUIRE(order.season > 1,
                   "seasonal terms require a season length > 1");
  }
}

void ArimaForecaster::rebuild_polynomials() {
  const Polys polys = build_polys(order_, params_);
  ar_lags_ = polys.ar;
  ma_lags_ = polys.ma;
  mean_ = polys.mean;
  max_ar_lag_ = polys.max_ar_lag;
}

void ArimaForecaster::recompute_chain_and_residuals() {
  const Polys polys = build_polys(order_, params_);
  css_ = compute_residuals(chain_.back(), polys, residuals_, wc_scratch_,
                           &n_effective_);
}

void ArimaForecaster::fit(std::span<const double> series) {
  const std::size_t seasonal_loss = order_.sd * order_.season;
  const std::size_t loss = order_.d + seasonal_loss;

  // Trial polynomials with unit coefficients give the deepest lag the model
  // will ever reach; the differenced series must comfortably cover it.
  std::vector<double> ones(order_.num_params(), 0.1);
  const Polys trial = build_polys(order_, ones);
  const std::size_t min_len =
      std::max<std::size_t>(trial.max_ar_lag + 8, 16);
  if (series.size() < loss + min_len) {
    throw NumericalError("ARIMA" + order_.to_string() +
                         ": series too short (" +
                         std::to_string(series.size()) + " points)");
  }

  // Build the differencing chain: seasonal differences first, regular after.
  chain_.clear();
  chain_.emplace_back(series.begin(), series.end());
  for (std::size_t i = 0; i < order_.sd; ++i) {
    chain_.push_back(difference(chain_.back(), order_.season));
  }
  for (std::size_t i = 0; i < order_.d; ++i) {
    chain_.push_back(difference(chain_.back(), 1));
  }
  const std::vector<double>& w = chain_.back();

  params_.assign(order_.num_params(), 0.1);
  if (order_.needs_mean()) {
    double m = 0.0;
    for (double v : w) m += v;
    params_.back() = m / static_cast<double>(w.size());
  }

  if (!params_.empty()) {
    const double n = static_cast<double>(w.size());
    std::vector<double> scratch;
    auto objective = [&](std::span<const double> candidate) -> double {
      const Polys polys = build_polys(order_, candidate);
      const double css =
          compute_residuals(w, polys, scratch, wc_scratch_, nullptr);
      // Soft stationarity/invertibility penalty: keep the combined lag
      // polynomials inside the (conservative) |coeffs| sum < 1 region.
      const double excess_ar = std::max(0.0, polys.ar_abs_sum - 0.999);
      const double excess_ma = std::max(0.0, polys.ma_abs_sum - 0.999);
      return css * (1.0 + 50.0 * (excess_ar + excess_ma)) +
             n * (excess_ar + excess_ma);
    };
    const optim::OptimResult opt =
        optim::nelder_mead(objective, params_, options_.optimizer);
    params_ = opt.x;
  }

  rebuild_polynomials();
  recompute_chain_and_residuals();
  fitted_ = true;
}

void ArimaForecaster::append_to_chain(double value) {
  // Reserve in slabs so the unbounded chain levels do not reallocate on the
  // steady per-step path (see docs/PERFORMANCE.md).
  const auto grow = [](std::vector<double>& v) {
    if (v.capacity() == v.size()) {
      v.reserve(std::max(v.size() * 2, v.size() + 1024));
    }
  };
  grow(chain_[0]);
  chain_[0].push_back(value);
  std::size_t level = 1;
  for (std::size_t i = 0; i < order_.sd; ++i, ++level) {
    const std::vector<double>& prev = chain_[level - 1];
    grow(chain_[level]);
    chain_[level].push_back(prev.back() - prev[prev.size() - 1 - order_.season]);
  }
  for (std::size_t i = 0; i < order_.d; ++i, ++level) {
    const std::vector<double>& prev = chain_[level - 1];
    grow(chain_[level]);
    chain_[level].push_back(prev.back() - prev[prev.size() - 2]);
  }
}

void ArimaForecaster::update(double value) {
  if (!fitted_) throw InvalidState("ARIMA: update before fit");
  append_to_chain(value);

  // Extend the residual recursion by one step.
  const std::vector<double>& w = chain_.back();
  const std::size_t t = w.size() - 1;
  double acc = w[t] - mean_;
  for (const auto& [lag, a] : ar_lags_) {
    if (t >= lag) acc -= a * (w[t - lag] - mean_);
  }
  for (const auto& [lag, b] : ma_lags_) {
    if (t >= lag) acc -= b * residuals_[t - lag];
  }
  if (residuals_.capacity() == residuals_.size()) {
    residuals_.reserve(
        std::max(residuals_.size() * 2, residuals_.size() + 1024));
  }
  residuals_.push_back(acc);
  if (t >= max_ar_lag_) {
    css_ += acc * acc;
    ++n_effective_;
  }
}

double ArimaForecaster::forecast(std::size_t h) const {
  RESMON_REQUIRE(h >= 1, "forecast horizon must be >= 1");
  if (!fitted_) throw InvalidState("ARIMA: forecast before fit");

  const std::vector<double>& w = chain_.back();
  const std::size_t n = w.size();

  // Forecast the stationary (differenced, centered) series: future shocks
  // are zero, past residuals come from the fitted recursion. fc lives in a
  // member scratch: the pipeline's residual tracking calls forecast(1)
  // every step, which must stay allocation-free.
  std::vector<double>& fc = fc_scratch_;
  fc.assign(h, 0.0);
  auto wc_at = [&](long long idx) -> double {
    // idx relative to w; negative = before data start (treated as mean).
    if (idx < 0) return 0.0;
    if (idx < static_cast<long long>(n)) return w[idx] - mean_;
    return fc[static_cast<std::size_t>(idx) - n];
  };
  auto e_at = [&](long long idx) -> double {
    if (idx < 0 || idx >= static_cast<long long>(n)) return 0.0;
    return residuals_[idx];
  };
  for (std::size_t tau = 0; tau < h; ++tau) {
    const long long t = static_cast<long long>(n + tau);
    double acc = 0.0;
    for (const auto& [lag, a] : ar_lags_) {
      acc += a * wc_at(t - static_cast<long long>(lag));
    }
    for (const auto& [lag, b] : ma_lags_) {
      acc += b * e_at(t - static_cast<long long>(lag));
    }
    fc[tau] = acc;
  }
  // Undo centering.
  for (double& v : fc) v += mean_;

  // Invert the differencing chain, deepest level first (regular diffs were
  // applied last, so they are inverted first).
  std::size_t level = chain_.size() - 1;
  for (std::size_t i = 0; i < order_.d; ++i, --level) {
    const std::vector<double>& base = chain_[level - 1];
    double prev = base.back();
    for (std::size_t tau = 0; tau < h; ++tau) {
      fc[tau] = prev + fc[tau];
      prev = fc[tau];
    }
  }
  for (std::size_t i = 0; i < order_.sd; ++i, --level) {
    const std::vector<double>& base = chain_[level - 1];
    const std::size_t s = order_.season;
    for (std::size_t tau = 0; tau < h; ++tau) {
      // x_{n-1+tau+1} = x_{n-1+tau+1-s} + u_fc[tau]
      const long long past = static_cast<long long>(base.size()) +
                             static_cast<long long>(tau) -
                             static_cast<long long>(s);
      const double anchor = past < static_cast<long long>(base.size())
                                ? base[past]
                                : fc[static_cast<std::size_t>(past) -
                                     base.size()];
      fc[tau] = anchor + fc[tau];
    }
  }
  return fc[h - 1];
}

double ArimaForecaster::forecast_stddev(std::size_t h) const {
  RESMON_REQUIRE(h >= 1, "forecast horizon must be >= 1");
  if (!fitted_) throw InvalidState("ARIMA: forecast_stddev before fit");

  // Full autoregressive polynomial including the differencing operators:
  // A(B) = (1 - sum a_lag B^lag) (1-B)^d (1-B^s)^D = 1 - sum phi_j B^j.
  // Represent polynomials as dense coefficient vectors in B.
  auto poly_mul = [](const std::vector<double>& p,
                     const std::vector<double>& q) {
    std::vector<double> out(p.size() + q.size() - 1, 0.0);
    for (std::size_t i = 0; i < p.size(); ++i) {
      for (std::size_t j = 0; j < q.size(); ++j) out[i + j] += p[i] * q[j];
    }
    return out;
  };
  std::vector<double> a_poly{1.0};
  {
    std::size_t max_lag = 0;
    for (const auto& [lag, coeff] : ar_lags_) {
      (void)coeff;
      max_lag = std::max(max_lag, lag);
    }
    std::vector<double> stationary(max_lag + 1, 0.0);
    stationary[0] = 1.0;
    for (const auto& [lag, coeff] : ar_lags_) stationary[lag] -= coeff;
    a_poly = stationary;
  }
  for (std::size_t i = 0; i < order_.d; ++i) {
    a_poly = poly_mul(a_poly, {1.0, -1.0});
  }
  for (std::size_t i = 0; i < order_.sd; ++i) {
    std::vector<double> seasonal(order_.season + 1, 0.0);
    seasonal[0] = 1.0;
    seasonal[order_.season] = -1.0;
    a_poly = poly_mul(a_poly, seasonal);
  }
  // phi_full[j] (j >= 1) with x_t = sum phi_full_j x_{t-j} + MA + e_t.
  std::vector<double> phi_full(a_poly.size(), 0.0);
  for (std::size_t j = 1; j < a_poly.size(); ++j) phi_full[j] = -a_poly[j];

  // MA coefficients b_j (dense).
  std::vector<double> b;
  for (const auto& [lag, coeff] : ma_lags_) {
    if (lag >= b.size()) b.resize(lag + 1, 0.0);
    b[lag] = coeff;
  }

  // psi recursion: psi_0 = 1; psi_j = b_j + sum_i phi_full_i psi_{j-i}.
  std::vector<double> psi(h, 0.0);
  psi[0] = 1.0;
  double var_sum = 1.0;
  for (std::size_t j = 1; j < h; ++j) {
    double s = j < b.size() ? b[j] : 0.0;
    for (std::size_t i = 1; i < phi_full.size() && i <= j; ++i) {
      s += phi_full[i] * psi[j - i];
    }
    psi[j] = s;
    var_sum += s * s;
  }
  return std::sqrt(sigma2() * var_sum);
}

ArimaForecaster::Interval ArimaForecaster::forecast_interval(
    std::size_t h, double confidence) const {
  RESMON_REQUIRE(confidence > 0.0 && confidence < 1.0,
                 "confidence must be in (0,1)");
  const double point = forecast(h);
  const double z = stats::normal_quantile(0.5 + confidence / 2.0);
  const double se = forecast_stddev(h);
  return {point - z * se, point, point + z * se};
}

stats::LjungBoxResult ArimaForecaster::residual_diagnostics(
    std::size_t lags) const {
  if (!fitted_) throw InvalidState("ARIMA: diagnostics before fit");
  return stats::ljung_box(residuals_, lags, order_.num_params());
}

double ArimaForecaster::css() const {
  if (!fitted_) throw InvalidState("ARIMA: css before fit");
  return css_;
}

double ArimaForecaster::sigma2() const {
  if (!fitted_) throw InvalidState("ARIMA: sigma2 before fit");
  if (n_effective_ == 0) return 0.0;
  return css_ / static_cast<double>(n_effective_);
}

double ArimaForecaster::aicc() const {
  if (!fitted_) throw InvalidState("ARIMA: aicc before fit");
  const double n = static_cast<double>(n_effective_);
  const double k = static_cast<double>(order_.num_params()) + 1.0;
  if (n <= k + 1.0) return std::numeric_limits<double>::infinity();
  const double s2 = std::max(sigma2(), 1e-12);
  const double log_l =
      -0.5 * n * (std::log(2.0 * std::numbers::pi * s2) + 1.0);
  const double aic = -2.0 * log_l + 2.0 * k;
  return aic + 2.0 * k * (k + 1.0) / (n - k - 1.0);
}

ArimaGrid ArimaGrid::paper_grid(std::size_t season) {
  ArimaGrid g;
  g.max_p = 5;
  g.max_d = 2;
  g.max_q = 5;
  g.max_sp = 2;
  g.max_sd = 1;
  g.max_sq = 2;
  g.season = season;
  return g;
}

AutoArimaForecaster::AutoArimaForecaster(const ArimaGrid& grid,
                                         const ArimaOptions& options)
    : grid_(grid), options_(options) {}

void AutoArimaForecaster::fit(std::span<const double> series) {
  candidates_.clear();
  std::unique_ptr<ArimaForecaster> best;
  double best_aicc = std::numeric_limits<double>::infinity();
  std::size_t best_params = 0;

  const bool seasonal = grid_.season > 1;
  const std::size_t sp_hi = seasonal ? grid_.max_sp : 0;
  const std::size_t sd_hi = seasonal ? grid_.max_sd : 0;
  const std::size_t sq_hi = seasonal ? grid_.max_sq : 0;

  for (std::size_t p = 0; p <= grid_.max_p; ++p) {
    for (std::size_t d = 0; d <= grid_.max_d; ++d) {
      for (std::size_t q = 0; q <= grid_.max_q; ++q) {
        for (std::size_t sp = 0; sp <= sp_hi; ++sp) {
          for (std::size_t sd = 0; sd <= sd_hi; ++sd) {
            for (std::size_t sq = 0; sq <= sq_hi; ++sq) {
              ArimaOrder order{.p = p, .d = d, .q = q, .sp = sp, .sd = sd,
                               .sq = sq, .season = grid_.season};
              if (order.num_params() == 0 && d == 0 && sd == 0) {
                continue;  // empty model: no dynamics, no mean, no trend
              }
              auto model =
                  std::make_unique<ArimaForecaster>(order, options_);
              double aicc;
              try {
                model->fit(series);
                aicc = model->aicc();
              } catch (const NumericalError&) {
                continue;  // series too short for this order
              }
              candidates_.push_back({order, aicc});
              const std::size_t np = order.num_params();
              if (aicc < best_aicc - 1e-9 ||
                  (std::fabs(aicc - best_aicc) <= 1e-9 &&
                   np < best_params)) {
                best_aicc = aicc;
                best_params = np;
                best = std::move(model);
              }
            }
          }
        }
      }
    }
  }
  if (best == nullptr) {
    throw NumericalError(
        "AutoArima: no candidate order could be fitted (series too short?)");
  }
  model_ = std::move(best);
}

void AutoArimaForecaster::update(double value) {
  if (model_ == nullptr) throw InvalidState("AutoArima: update before fit");
  model_->update(value);
}

double AutoArimaForecaster::forecast(std::size_t h) const {
  if (model_ == nullptr) throw InvalidState("AutoArima: forecast before fit");
  return model_->forecast(h);
}

std::string AutoArimaForecaster::name() const {
  return model_ == nullptr ? "AutoARIMA" : "Auto" + model_->name();
}

const ArimaForecaster& AutoArimaForecaster::selected() const {
  if (model_ == nullptr) throw InvalidState("AutoArima: not fitted");
  return *model_;
}

}  // namespace resmon::forecast
