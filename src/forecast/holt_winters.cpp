#include "forecast/holt_winters.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace resmon::forecast {

HoltWintersForecaster::HoltWintersForecaster(
    const HoltWintersOptions& options)
    : options_(options) {
  RESMON_REQUIRE(options.damping > 0.0 && options.damping <= 1.0,
                 "HoltWinters: damping must be in (0,1]");
  RESMON_REQUIRE(options.season != 1, "HoltWinters: season of 1 is invalid");
  for (const double p : {options.alpha, options.beta, options.gamma}) {
    RESMON_REQUIRE(p >= 0.0 && p <= 1.0,
                   "HoltWinters: smoothing parameters must be in [0,1]");
  }
}

double HoltWintersForecaster::run(std::span<const double> series,
                                  double alpha, double beta, double gamma,
                                  double* level_out, double* trend_out,
                                  std::vector<double>* season_out) const {
  const std::size_t s = options_.season;
  const bool seasonal = s > 1 && series.size() >= 2 * s;
  const double phi = options_.damping;

  // Initialization: level = first value (or first-season mean), trend from
  // the first difference(s), seasonal indices from the first season's
  // deviations.
  double level;
  double trend;
  std::vector<double> season_state;
  std::size_t start;
  if (seasonal) {
    double mean0 = 0.0;
    for (std::size_t i = 0; i < s; ++i) mean0 += series[i];
    mean0 /= static_cast<double>(s);
    level = mean0;
    double mean1 = 0.0;
    for (std::size_t i = s; i < 2 * s; ++i) mean1 += series[i];
    mean1 /= static_cast<double>(s);
    trend = (mean1 - mean0) / static_cast<double>(s);
    season_state.resize(s);
    for (std::size_t i = 0; i < s; ++i) {
      season_state[i] = series[i] - mean0;
    }
    start = s;
  } else {
    level = series[0];
    trend = series.size() > 1 ? series[1] - series[0] : 0.0;
    start = 1;
  }

  double sse = 0.0;
  for (std::size_t t = start; t < series.size(); ++t) {
    const double season_term =
        seasonal ? season_state[t % s] : 0.0;
    const double predicted = level + phi * trend + season_term;
    const double err = series[t] - predicted;
    sse += err * err;

    const double deseason = series[t] - season_term;
    const double new_level =
        alpha * deseason + (1.0 - alpha) * (level + phi * trend);
    trend = beta * (new_level - level) + (1.0 - beta) * phi * trend;
    level = new_level;
    if (seasonal) {
      season_state[t % s] =
          gamma * (series[t] - new_level) + (1.0 - gamma) * season_state[t % s];
    }
  }

  if (level_out != nullptr) *level_out = level;
  if (trend_out != nullptr) *trend_out = trend;
  if (season_out != nullptr) *season_out = std::move(season_state);
  return sse;
}

void HoltWintersForecaster::fit(std::span<const double> series) {
  RESMON_REQUIRE(series.size() >= 3, "HoltWinters: series too short");

  alpha_ = options_.alpha;
  beta_ = options_.beta;
  gamma_ = options_.gamma;
  if (options_.optimize) {
    auto clamp01 = [](double v) { return std::clamp(v, 0.0, 1.0); };
    auto objective = [&](std::span<const double> p) {
      // Out-of-range parameters are clamped and penalized so the optimizer
      // stays in the valid box.
      double penalty = 0.0;
      for (const double v : p) {
        penalty += std::max(0.0, v - 1.0) + std::max(0.0, -v);
      }
      return run(series, clamp01(p[0]), clamp01(p[1]), clamp01(p[2]),
                 nullptr, nullptr, nullptr) *
                 (1.0 + penalty) +
             penalty;
    };
    const optim::OptimResult r = optim::nelder_mead(
        objective, {alpha_, beta_, gamma_}, options_.optimizer);
    alpha_ = clamp01(r.x[0]);
    beta_ = clamp01(r.x[1]);
    gamma_ = clamp01(r.x[2]);
  }

  sse_ = run(series, alpha_, beta_, gamma_, &level_, &trend_, &seasonal_);
  season_phase_ = seasonal_.empty() ? 0 : series.size() % options_.season;
  fitted_ = true;
}

void HoltWintersForecaster::update(double value) {
  if (!fitted_) throw InvalidState("HoltWinters: update before fit");
  const double phi = options_.damping;
  const double season_term =
      seasonal_.empty() ? 0.0 : seasonal_[season_phase_];
  const double deseason = value - season_term;
  const double new_level =
      alpha_ * deseason + (1.0 - alpha_) * (level_ + phi * trend_);
  trend_ = beta_ * (new_level - level_) + (1.0 - beta_) * phi * trend_;
  level_ = new_level;
  if (!seasonal_.empty()) {
    seasonal_[season_phase_] =
        gamma_ * (value - new_level) + (1.0 - gamma_) * seasonal_[season_phase_];
    season_phase_ = (season_phase_ + 1) % seasonal_.size();
  }
}

double HoltWintersForecaster::forecast(std::size_t h) const {
  RESMON_REQUIRE(h >= 1, "forecast horizon must be >= 1");
  if (!fitted_) throw InvalidState("HoltWinters: forecast before fit");
  // Damped trend: level + (phi + phi^2 + ... + phi^h) * trend.
  const double phi = options_.damping;
  double damp_sum = 0.0;
  double p = phi;
  for (std::size_t i = 0; i < h; ++i) {
    damp_sum += p;
    p *= phi;
  }
  double season_term = 0.0;
  if (!seasonal_.empty()) {
    season_term = seasonal_[(season_phase_ + h - 1) % seasonal_.size()];
  }
  return level_ + damp_sum * trend_ + season_term;
}

}  // namespace resmon::forecast
