// The paper's adaptive transmission algorithm (§V-A).
//
// A Lyapunov drift-plus-penalty rule: each node maintains a virtual queue
// Q_i(t) measuring how much the frequency budget B_i has been overdrawn, and
// transmits when V_t * F_{i,t}(0) - the staleness penalty of *not*
// transmitting - outweighs the queue pressure:
//
//   beta_{i,t} = argmin_{beta in {0,1}}  V_t F_{i,t}(beta) + Q_i(t) (beta - B_i)
//   Q_i(t+1)  = Q_i(t) + beta_{i,t} - B_i                       (eq. 9)
//   V_t       = V_0 (t+1)^gamma                                  (eq. 8)
//   F_{i,t}(0) = (1/d) || z_{i,t} - x_{i,t} ||^2,  F_{i,t}(1) = 0 (eq. 6)
//
// which reduces to: transmit iff Q_i(t) < V_t * F_{i,t}(0).
#pragma once

#include "collect/transmit_policy.hpp"
#include "obs/metrics.hpp"

namespace resmon::collect {

/// Tunables of the adaptive transmitter. Paper defaults (§VI-A2):
/// B = 0.3, V0 = 1e-12, gamma = 0.65.
struct AdaptiveOptions {
  double max_frequency = 0.3;  ///< B_i: long-run transmission frequency cap.
  double v0 = 1e-12;           ///< V_0 of eq. (8).
  double gamma = 0.65;         ///< gamma of eq. (8); must be in (0,1).

  /// The paper's eq. (9) lets Q_i(t) go negative, which forces periodic
  /// transmissions even when the measurement has not changed. Enabling the
  /// standard Lyapunov clamp Q <- max(Q + Y, 0) lets a node stay silent
  /// through flat periods (frequency <= B instead of == B). Default follows
  /// the paper.
  bool clamp_queue = false;

  /// Optional metrics sink (non-owning). All transmitters built from one
  /// options struct share aggregate fleet-level series: the virtual-queue
  /// backlog distribution and the configured budget B. nullptr = no
  /// instrumentation, zero overhead on the hot path beyond a null check.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Drift-plus-penalty transmission policy for a single node.
class AdaptiveTransmitter final : public TransmitPolicy {
 public:
  explicit AdaptiveTransmitter(const AdaptiveOptions& options);

  bool decide(std::size_t t, std::span<const double> x) override;
  double frequency_constraint() const override {
    return options_.max_frequency;
  }
  std::uint64_t transmissions() const override { return transmissions_; }
  std::uint64_t decisions() const override { return decisions_; }

  /// Current virtual queue length Q_i(t) (exposed for tests/diagnostics).
  double queue_length() const { return queue_; }

  /// Penalty F_{i,t}(0) that the most recent decision evaluated.
  double last_penalty() const { return last_penalty_; }

 private:
  AdaptiveOptions options_;
  double queue_ = 0.0;
  double last_penalty_ = 0.0;
  std::vector<double> last_sent_;  // z_{i,t}; empty until first transmission
  std::uint64_t transmissions_ = 0;
  std::uint64_t decisions_ = 0;
  obs::Histogram* queue_hist_ = nullptr;  // backlog Q_i(t) after each decide
};

/// Baseline (§VI-B): transmit at a fixed interval so that the average
/// frequency equals B. Deterministic credit accumulation: transmit whenever
/// accumulated credit reaches one message.
class UniformTransmitter final : public TransmitPolicy {
 public:
  explicit UniformTransmitter(double max_frequency);

  bool decide(std::size_t t, std::span<const double> x) override;
  double frequency_constraint() const override { return max_frequency_; }
  std::uint64_t transmissions() const override { return transmissions_; }
  std::uint64_t decisions() const override { return decisions_; }

 private:
  double max_frequency_;
  double credit_;
  std::uint64_t transmissions_ = 0;
  std::uint64_t decisions_ = 0;
};

}  // namespace resmon::collect
