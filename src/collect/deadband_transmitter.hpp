// Send-on-delta ("deadband") transmission policy.
//
// The classic adaptive-sampling rule from the sensor-network literature the
// paper cites ([13]-[17]): transmit when the measurement has moved more
// than a threshold delta away from the last transmitted value. A fixed
// delta gives no control over the transmission frequency, which is exactly
// the shortcoming §II points out; this implementation therefore also offers
// a calibrated mode that adapts delta multiplicatively to track a target
// frequency B. Used as an ablation baseline against the paper's
// drift-plus-penalty rule (bench/ablation_policies).
#pragma once

#include "collect/transmit_policy.hpp"

namespace resmon::collect {

struct DeadbandOptions {
  /// Initial (or fixed) threshold on the per-dimension RMS deviation.
  double delta = 0.05;
  /// Target frequency for calibration; <= 0 disables calibration and the
  /// policy runs with the fixed delta (classic send-on-delta).
  double target_frequency = 0.3;
  /// Multiplicative step for the calibration: after a transmission delta
  /// grows by (1 + rate * (1 - B)), after silence it shrinks by
  /// (1 - rate * B), so in equilibrium transmissions happen a fraction B
  /// of the time.
  double adaptation_rate = 0.05;
  /// Bounds for the calibrated threshold.
  double min_delta = 1e-4;
  double max_delta = 1.0;
};

class DeadbandTransmitter final : public TransmitPolicy {
 public:
  explicit DeadbandTransmitter(const DeadbandOptions& options);

  bool decide(std::size_t t, std::span<const double> x) override;
  double frequency_constraint() const override {
    return options_.target_frequency > 0.0 ? options_.target_frequency : 1.0;
  }
  std::uint64_t transmissions() const override { return transmissions_; }
  std::uint64_t decisions() const override { return decisions_; }

  /// Current (possibly calibrated) threshold.
  double delta() const { return delta_; }

 private:
  DeadbandOptions options_;
  double delta_;
  std::vector<double> last_sent_;
  std::uint64_t transmissions_ = 0;
  std::uint64_t decisions_ = 0;
};

}  // namespace resmon::collect
