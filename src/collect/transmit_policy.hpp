// Transmission policies: when does a local node push its measurement?
//
// Each local node runs one policy instance. Policies see only local
// information (the node's own measurements and what it last transmitted),
// matching the paper's fully distributed setting.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace resmon::collect {

/// Per-node decision procedure for beta_{i,t} of §IV.
class TransmitPolicy {
 public:
  virtual ~TransmitPolicy() = default;

  /// Decide whether to transmit the measurement `x` observed at time step
  /// `t` (0-based, strictly increasing across calls). A `true` return means
  /// the node sends `x` now; the policy must account for it internally.
  virtual bool decide(std::size_t t, std::span<const double> x) = 0;

  /// The maximum transmission frequency B_i this policy was configured with.
  virtual double frequency_constraint() const = 0;

  /// Transmissions actually made so far.
  virtual std::uint64_t transmissions() const = 0;

  /// Decisions made so far (equals the number of decide() calls).
  virtual std::uint64_t decisions() const = 0;

  /// Actual transmission frequency so far: transmissions / decisions.
  double actual_frequency() const {
    return decisions() == 0
               ? 0.0
               : static_cast<double>(transmissions()) /
                     static_cast<double>(decisions());
  }
};

/// Factory: produces one policy per node so a fleet can be configured from a
/// single description.
using PolicyFactory = std::unique_ptr<TransmitPolicy> (*)();

}  // namespace resmon::collect
