// FleetCollector: drives one TransmitPolicy per node against a trace and
// maintains the central node's view (z_t) through a Channel.
//
// This is the "measurement collection" half of the paper's system; the core
// MonitoringPipeline layers clustering and forecasting on top of it.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "collect/measurement_source.hpp"
#include "collect/transmit_policy.hpp"
#include "obs/metrics.hpp"
#include "trace/trace.hpp"
#include "transport/channel.hpp"
#include "transport/link.hpp"

namespace resmon {
class ThreadPool;
}

namespace resmon::collect {

/// Which transmission policy a fleet uses.
enum class PolicyKind {
  kAdaptive,  ///< §V-A drift-plus-penalty (the paper's algorithm)
  kUniform,   ///< fixed-interval baseline (§VI-B)
  kAlways,    ///< transmit every step (B = 1); ground-truth reference
  kDeadband,  ///< calibrated send-on-delta (ablation; refs [13]-[17])
};

/// Runs the collection stage: each time step, every node observes its
/// measurement from the trace, its policy decides whether to transmit, and
/// transmitted measurements land in the central store.
class FleetCollector {
 public:
  /// Builds a fleet with one policy per node from the given factory.
  /// `channel_options` injects uplink failures (drops/delays); the default
  /// is a reliable link. `pool` (non-owning, may be nullptr) parallelizes
  /// the per-node policy stepping; each policy is only ever touched by one
  /// thread per step and link sends stay serialized in node order on the
  /// calling thread, so results are identical at every thread count.
  /// `link` replaces the default in-process Channel (e.g. with a
  /// net::LoopbackLink that runs the real wire codec); when provided,
  /// `channel_options` is ignored — configure the link directly.
  /// `metrics` (non-owning, may be nullptr) receives fleet-level collection
  /// series (resmon_collect_*; see DESIGN.md "Observability").
  FleetCollector(
      const trace::Trace& trace,
      const std::function<std::unique_ptr<TransmitPolicy>()>& make_policy,
      const transport::ChannelOptions& channel_options = {},
      ThreadPool* pool = nullptr,
      std::unique_ptr<transport::Link> link = nullptr,
      obs::MetricsRegistry* metrics = nullptr);

  /// Same, but over arbitrary MeasurementSources (one per node) instead of
  /// a trace — the host-collection path (procfs sampling, recorded-series
  /// replay). All sources must agree on num_resources(). Live sources may
  /// block inside measurement(), so the per-node loop stays serial in node
  /// order whenever any source is unbounded; `pool` still parallelizes the
  /// policy decisions for bounded (trace-like) sources.
  FleetCollector(
      std::vector<std::unique_ptr<MeasurementSource>> sources,
      const std::function<std::unique_ptr<TransmitPolicy>()>& make_policy,
      const transport::ChannelOptions& channel_options = {},
      ThreadPool* pool = nullptr,
      std::unique_ptr<transport::Link> link = nullptr,
      obs::MetricsRegistry* metrics = nullptr);

  /// Advance one time step. Must be called with consecutive t starting at 0.
  /// Returns the per-node transmission indicators beta_t.
  std::vector<bool> step(std::size_t t);

  const transport::CentralStore& store() const { return store_; }
  const transport::Link& link() const { return *link_; }

  const TransmitPolicy& policy(std::size_t node) const {
    return *policies_[node];
  }

  /// Average actual transmission frequency across the fleet.
  double average_actual_frequency() const;

  std::size_t num_nodes() const { return policies_.size(); }

 private:
  std::vector<std::unique_ptr<MeasurementSource>> sources_;
  std::size_t num_steps_ = 0;  ///< min over sources (cached)
  std::vector<std::unique_ptr<TransmitPolicy>> policies_;
  std::unique_ptr<transport::Link> link_;
  transport::CentralStore store_;
  ThreadPool* pool_ = nullptr;
  std::size_t next_step_ = 0;
  // Optional metrics (all nullptr when no registry was given).
  obs::Counter* decisions_total_ = nullptr;
  obs::Counter* sends_total_ = nullptr;
  obs::Gauge* link_bytes_ = nullptr;
  obs::Gauge* store_complete_ = nullptr;
};

/// Convenience: a policy factory for the given kind and budget B.
/// `metrics` (non-owning) flows into AdaptiveOptions::metrics so the
/// adaptive transmitters emit their queue-backlog series; the other policy
/// kinds are covered by the FleetCollector-level counters.
std::function<std::unique_ptr<TransmitPolicy>()> make_policy_factory(
    PolicyKind kind, double max_frequency, double v0 = 1e-12,
    double gamma = 0.65, bool clamp_queue = false,
    obs::MetricsRegistry* metrics = nullptr);

}  // namespace resmon::collect
