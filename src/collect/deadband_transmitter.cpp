#include "collect/deadband_transmitter.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/matrix.hpp"

namespace resmon::collect {

DeadbandTransmitter::DeadbandTransmitter(const DeadbandOptions& options)
    : options_(options), delta_(options.delta) {
  RESMON_REQUIRE(options.delta > 0.0, "deadband delta must be positive");
  RESMON_REQUIRE(options.target_frequency <= 1.0,
                 "target frequency must be <= 1");
  RESMON_REQUIRE(options.adaptation_rate >= 0.0 &&
                     options.adaptation_rate < 1.0,
                 "adaptation rate must be in [0,1)");
  RESMON_REQUIRE(options.min_delta > 0.0 &&
                     options.min_delta <= options.max_delta,
                 "invalid delta bounds");
}

bool DeadbandTransmitter::decide(std::size_t /*t*/,
                                 std::span<const double> x) {
  RESMON_REQUIRE(!x.empty(), "measurement must be non-empty");
  ++decisions_;

  bool transmit;
  if (last_sent_.empty()) {
    transmit = true;  // central node has nothing yet
  } else {
    const double rms_deviation =
        std::sqrt(squared_distance(x, last_sent_) /
                  static_cast<double>(x.size()));
    transmit = rms_deviation > delta_;
  }

  // Calibration: nudge the threshold so the long-run transmit fraction
  // approaches the target B.
  const double b = options_.target_frequency;
  if (b > 0.0) {
    if (transmit) {
      delta_ *= 1.0 + options_.adaptation_rate * (1.0 - b);
    } else {
      delta_ *= 1.0 - options_.adaptation_rate * b;
    }
    delta_ = std::clamp(delta_, options_.min_delta, options_.max_delta);
  }

  if (transmit) {
    last_sent_.assign(x.begin(), x.end());
    ++transmissions_;
  }
  return transmit;
}

}  // namespace resmon::collect
