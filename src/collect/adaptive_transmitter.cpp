#include "collect/adaptive_transmitter.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/matrix.hpp"

namespace resmon::collect {

AdaptiveTransmitter::AdaptiveTransmitter(const AdaptiveOptions& options)
    : options_(options) {
  RESMON_REQUIRE(options.max_frequency > 0.0 && options.max_frequency <= 1.0,
                 "B must be in (0,1]");
  RESMON_REQUIRE(options.v0 > 0.0, "V0 must be positive");
  RESMON_REQUIRE(options.gamma > 0.0 && options.gamma < 1.0,
                 "gamma must be in (0,1)");
  if (options_.metrics != nullptr) {
    queue_hist_ = &options_.metrics->histogram(
        "resmon_collect_queue_length",
        "Virtual-queue backlog Q_i(t) after each decision, eq. (9)",
        {-4.0, -2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0});
    options_.metrics
        ->gauge("resmon_collect_budget_b",
                "Configured long-run transmission frequency cap B")
        .set(options_.max_frequency);
  }
}

bool AdaptiveTransmitter::decide(std::size_t t, std::span<const double> x) {
  RESMON_REQUIRE(!x.empty(), "measurement must be non-empty");
  ++decisions_;

  bool transmit;
  if (last_sent_.empty()) {
    // Nothing stored at the central node yet: F(0) is effectively infinite,
    // so the first measurement is always sent.
    last_penalty_ = 0.0;
    transmit = true;
  } else {
    // F_{i,t}(0) of eq. (6): mean squared deviation between the current
    // measurement and what the central node still holds.
    const double penalty =
        squared_distance(x, last_sent_) / static_cast<double>(x.size());
    last_penalty_ = penalty;
    // V_t of eq. (8). `t` is 0-based here; the paper indexes slots from 1,
    // so paper-t = t + 1 and V_t = V0 * (paper-t + 1)^gamma.
    const double v_t =
        options_.v0 * std::pow(static_cast<double>(t) + 2.0, options_.gamma);
    // Minimizing eq. (7) over beta in {0,1}:
    //   cost(1) = Q * (1 - B),   cost(0) = V_t * F - Q * B
    // => transmit iff Q < V_t * F.
    transmit = queue_ < v_t * penalty;
  }

  const double y = (transmit ? 1.0 : 0.0) - options_.max_frequency;
  queue_ += y;  // eq. (9)
  if (options_.clamp_queue) queue_ = std::max(queue_, 0.0);
  if (queue_hist_ != nullptr) queue_hist_->observe(queue_);

  if (transmit) {
    last_sent_.assign(x.begin(), x.end());
    ++transmissions_;
  }
  return transmit;
}

UniformTransmitter::UniformTransmitter(double max_frequency)
    : max_frequency_(max_frequency), credit_(1.0) {
  RESMON_REQUIRE(max_frequency > 0.0 && max_frequency <= 1.0,
                 "B must be in (0,1]");
}

bool UniformTransmitter::decide(std::size_t /*t*/,
                                std::span<const double> /*x*/) {
  ++decisions_;
  credit_ += max_frequency_;
  if (credit_ >= 1.0) {
    credit_ -= 1.0;
    ++transmissions_;
    return true;
  }
  return false;
}

}  // namespace resmon::collect
