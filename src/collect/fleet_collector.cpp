#include "collect/fleet_collector.hpp"

#include <algorithm>

#include "collect/adaptive_transmitter.hpp"
#include "collect/deadband_transmitter.hpp"
#include "common/thread_pool.hpp"

namespace resmon::collect {

namespace {

/// Chunk grain of the parallel per-node policy loop. Policy decisions write
/// disjoint per-node state, so the grain only balances task overhead against
/// load spread; it does not affect results.
constexpr std::size_t kNodeGrain = 64;

/// Trivial policy that transmits every step; used as the B = 1 reference.
class AlwaysTransmitter final : public TransmitPolicy {
 public:
  bool decide(std::size_t /*t*/, std::span<const double> /*x*/) override {
    ++decisions_;
    ++transmissions_;
    return true;
  }
  double frequency_constraint() const override { return 1.0; }
  std::uint64_t transmissions() const override { return transmissions_; }
  std::uint64_t decisions() const override { return decisions_; }

 private:
  std::uint64_t transmissions_ = 0;
  std::uint64_t decisions_ = 0;
};

}  // namespace

namespace {

std::vector<std::unique_ptr<MeasurementSource>> sources_over_trace(
    const trace::Trace& trace) {
  std::vector<std::unique_ptr<MeasurementSource>> sources;
  sources.reserve(trace.num_nodes());
  for (std::size_t i = 0; i < trace.num_nodes(); ++i) {
    sources.push_back(std::make_unique<TraceSource>(trace, i));
  }
  return sources;
}

/// Contract checks that must run before the member initializers touch
/// sources.front() (the CentralStore is sized from it).
std::vector<std::unique_ptr<MeasurementSource>> validate_sources(
    std::vector<std::unique_ptr<MeasurementSource>> sources) {
  RESMON_REQUIRE(!sources.empty(), "FleetCollector needs >= 1 source");
  for (const auto& source : sources) {
    RESMON_REQUIRE(source != nullptr, "null MeasurementSource");
    RESMON_REQUIRE(
        source->num_resources() == sources.front()->num_resources(),
        "MeasurementSources disagree on num_resources");
  }
  return sources;
}

}  // namespace

FleetCollector::FleetCollector(
    const trace::Trace& trace,
    const std::function<std::unique_ptr<TransmitPolicy>()>& make_policy,
    const transport::ChannelOptions& channel_options, ThreadPool* pool,
    std::unique_ptr<transport::Link> link, obs::MetricsRegistry* metrics)
    : FleetCollector(sources_over_trace(trace), make_policy, channel_options,
                     pool, std::move(link), metrics) {}

FleetCollector::FleetCollector(
    std::vector<std::unique_ptr<MeasurementSource>> sources,
    const std::function<std::unique_ptr<TransmitPolicy>()>& make_policy,
    const transport::ChannelOptions& channel_options, ThreadPool* pool,
    std::unique_ptr<transport::Link> link, obs::MetricsRegistry* metrics)
    : sources_(validate_sources(std::move(sources))),
      link_(link != nullptr
                ? std::move(link)
                : std::make_unique<transport::Channel>(channel_options)),
      store_(sources_.size(), sources_.front()->num_resources()),
      pool_(pool) {
  num_steps_ = MeasurementSource::unbounded();
  for (const auto& source : sources_) {
    num_steps_ = std::min(num_steps_, source->num_steps());
  }
  policies_.reserve(sources_.size());
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    policies_.push_back(make_policy());
    RESMON_REQUIRE(policies_.back() != nullptr,
                   "policy factory returned nullptr");
  }
  if (metrics != nullptr) {
    decisions_total_ = &metrics->counter(
        "resmon_collect_decisions_total",
        "Per-node transmission decisions evaluated (N per step)");
    sends_total_ =
        &metrics->counter("resmon_collect_sends_total",
                          "Measurements pushed to the uplink (beta = 1)");
    link_bytes_ = &metrics->gauge(
        "resmon_collect_link_bytes_sent",
        "Cumulative wire bytes the uplink has carried (exact frame sizes)");
    store_complete_ = &metrics->gauge(
        "resmon_collect_store_complete",
        "1 once the central store has heard from every node, else 0");
  }
}

std::vector<bool> FleetCollector::step(std::size_t t) {
  RESMON_REQUIRE(t == next_step_,
                 "FleetCollector::step must be called with consecutive t");
  RESMON_REQUIRE(t < num_steps_, "step beyond end of the shortest source");
  ++next_step_;

  // Every node's policy decision is independent, so the decide() calls run
  // in parallel; per-node results land in disjoint slots (std::vector<bool>
  // packs bits, hence the byte-wide scratch vector). The link sends then
  // happen on this thread in node order, so bandwidth accounting and the
  // link's drop/delay RNG draws are identical to the serial path. A fleet
  // holding any unbounded (live-sampling) source stays serial: such sources
  // pace themselves on the wall clock inside measurement().
  const std::size_t n = policies_.size();
  std::vector<std::uint8_t> transmit(n, 0);
  std::vector<std::vector<double>> measurements(n);
  ThreadPool* pool =
      num_steps_ == MeasurementSource::unbounded() ? nullptr : pool_;
  run_chunked(pool, n, kNodeGrain,
              [&](std::size_t, std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) {
                  measurements[i] = sources_[i]->measurement(t);
                  if (policies_[i]->decide(t, measurements[i])) {
                    transmit[i] = 1;
                  }
                }
              });

  std::vector<bool> beta(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (transmit[i] == 0) continue;
    beta[i] = true;
    link_->send(
        {.node = i, .step = t, .values = std::move(measurements[i])});
  }
  for (const transport::MeasurementMessage& msg : link_->drain()) {
    store_.apply(msg);
  }
  if (decisions_total_ != nullptr) {
    decisions_total_->inc(n);
    sends_total_->inc(static_cast<std::uint64_t>(
        std::count(beta.begin(), beta.end(), true)));
    link_bytes_->set(static_cast<double>(link_->bytes_sent()));
    store_complete_->set(store_.complete() ? 1.0 : 0.0);
  }
  return beta;
}

double FleetCollector::average_actual_frequency() const {
  double s = 0.0;
  for (const auto& p : policies_) s += p->actual_frequency();
  return s / static_cast<double>(policies_.size());
}

std::function<std::unique_ptr<TransmitPolicy>()> make_policy_factory(
    PolicyKind kind, double max_frequency, double v0, double gamma,
    bool clamp_queue, obs::MetricsRegistry* metrics) {
  switch (kind) {
    case PolicyKind::kAdaptive: {
      AdaptiveOptions opts;
      opts.max_frequency = max_frequency;
      opts.v0 = v0;
      opts.gamma = gamma;
      opts.clamp_queue = clamp_queue;
      opts.metrics = metrics;
      return [opts]() -> std::unique_ptr<TransmitPolicy> {
        return std::make_unique<AdaptiveTransmitter>(opts);
      };
    }
    case PolicyKind::kUniform:
      return [max_frequency]() -> std::unique_ptr<TransmitPolicy> {
        return std::make_unique<UniformTransmitter>(max_frequency);
      };
    case PolicyKind::kAlways:
      return []() -> std::unique_ptr<TransmitPolicy> {
        return std::make_unique<AlwaysTransmitter>();
      };
    case PolicyKind::kDeadband: {
      DeadbandOptions opts;
      opts.target_frequency = max_frequency;
      return [opts]() -> std::unique_ptr<TransmitPolicy> {
        return std::make_unique<DeadbandTransmitter>(opts);
      };
    }
  }
  throw InvalidArgument("unknown policy kind");
}

}  // namespace resmon::collect
