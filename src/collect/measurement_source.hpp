// MeasurementSource: where one node's per-slot measurement vector comes
// from.
//
// The pipeline has historically read measurements straight out of a
// trace::Trace; the host-collection backend (src/host) produces them by
// sampling procfs instead. This interface is the seam between the two: a
// FleetCollector (and the resmon_agent slot loop) drives any source the
// same way, so synthetic traces, live procfs sampling and recorded-series
// replay all feed the identical adaptive-transmission -> clustering ->
// forecasting path (DESIGN.md "Host collection").
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "trace/trace.hpp"

namespace resmon::collect {

/// One node's measurement stream. measurement(t) must be called with
/// consecutive t starting at 0; sources that sample live state are allowed
/// to block (pacing themselves to a wall-clock interval) and to mutate
/// internal counters, hence non-const.
class MeasurementSource {
 public:
  virtual ~MeasurementSource() = default;

  /// Dimension d of every vector measurement() returns.
  virtual std::size_t num_resources() const = 0;

  /// Number of slots this source can serve, or unbounded() for sources
  /// that can sample forever (live procfs).
  virtual std::size_t num_steps() const { return unbounded(); }

  /// The node's d-dimensional measurement x_{i,t} for slot t.
  virtual std::vector<double> measurement(std::size_t t) = 0;

  static constexpr std::size_t unbounded() {
    return std::numeric_limits<std::size_t>::max();
  }
};

/// The classic source: node `node` of a trace::Trace.
class TraceSource final : public MeasurementSource {
 public:
  TraceSource(const trace::Trace& trace, std::size_t node)
      : trace_(trace), node_(node) {
    RESMON_REQUIRE(node < trace.num_nodes(),
                   "TraceSource: node out of range");
  }

  std::size_t num_resources() const override {
    return trace_.num_resources();
  }
  std::size_t num_steps() const override { return trace_.num_steps(); }
  std::vector<double> measurement(std::size_t t) override {
    return trace_.measurement(node_, t);
  }

 private:
  const trace::Trace& trace_;
  std::size_t node_;
};

}  // namespace resmon::collect
