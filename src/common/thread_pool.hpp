// Fixed-size thread pool with a determinism-preserving parallel_for.
//
// Parallelism in resmon must never change results: the pipeline guarantees
// bit-identical outputs at every thread count. parallel_for therefore uses
// a chunk partition that depends only on the trip count and the grain —
// never on how many workers exist — chunks write disjoint state, and
// callers merge per-chunk partials in chunk order. Which thread executes a
// chunk is unspecified; what is computed is not.
//
// The calling thread participates in chunk execution, so a parallel_for
// issued from inside a pool task (nested parallelism) always makes
// progress even when every worker is busy — there is no deadlock by
// resource exhaustion.
//
// Dispatch cost is kept off the hot path: a parallel region publishes ONE
// loop descriptor (workers claim chunks from it with a relaxed fetch_add)
// instead of enqueuing one heap-allocated closure per helper, the body is
// passed as a non-owning function ref (no std::function allocation), and a
// single-chunk region runs inline with no locking at all. See
// docs/PERFORMANCE.md for the anti-scaling history this fixed.
#pragma once

#include <algorithm>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/thread_annotations.hpp"

namespace resmon {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1). The destructor drains queued work and joins.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Run `task` on a worker; the future carries its result or exception.
  /// Blocking on the future from inside a pool task can deadlock a fully
  /// loaded pool — nested parallelism should go through parallel_for,
  /// whose caller helps execute the work.
  template <typename F>
  auto submit(F&& task)
      -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> result = packaged->get_future();
    enqueue([packaged]() { (*packaged)(); });
    return result;
  }

  /// Non-owning reference to a chunk body. parallel_for blocks until every
  /// chunk has run, so the referenced callable safely lives on the caller's
  /// stack — no ownership, no allocation.
  struct ChunkRef {
    const void* ctx = nullptr;
    void (*fn)(const void* ctx, std::size_t chunk, std::size_t begin,
               std::size_t end) = nullptr;
  };

  /// Execute body(chunk, begin, end) over every chunk of [0, n) and wait
  /// for all of them. The partition is fixed by (n, grain); bodies must
  /// write disjoint state (reductions go into per-chunk slots, merged by
  /// the caller in chunk order). The first exception a body throws is
  /// rethrown here after all chunks finish.
  template <typename F>
  void parallel_for(std::size_t n, std::size_t grain, const F& body) {
    parallel_for_ref(
        n, grain,
        ChunkRef{&body, [](const void* ctx, std::size_t chunk,
                           std::size_t begin, std::size_t end) {
          (*static_cast<const F*>(ctx))(chunk, begin, end);
        }});
  }

  void parallel_for_ref(std::size_t n, std::size_t grain, ChunkRef body);

  /// Number of chunks parallel_for uses for a given trip count and grain.
  static std::size_t num_chunks(std::size_t n, std::size_t grain) {
    const std::size_t g = grain == 0 ? 1 : grain;
    return (n + g - 1) / g;
  }

 private:
  struct ForLoop;

  static void drive(ForLoop& loop);
  /// First published loop that still has unclaimed chunks; also retires
  /// exhausted loops from the front.
  std::shared_ptr<ForLoop> runnable_loop_locked() RESMON_REQUIRES(mutex_);
  void enqueue(std::function<void()> task);
  void worker_main();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar work_ready_;
  std::deque<std::function<void()>> queue_ RESMON_GUARDED_BY(mutex_);
  /// Active parallel regions, newest last. Workers claim chunks directly
  /// from these descriptors; one push + wakeup per region replaces the old
  /// per-helper closure enqueue.
  std::deque<std::shared_ptr<ForLoop>> loops_ RESMON_GUARDED_BY(mutex_);
  bool stopping_ RESMON_GUARDED_BY(mutex_) = false;
};

/// Run `body` over the same fixed chunk partition parallel_for would use:
/// on the pool when one is given, serially in chunk order otherwise. Serial
/// and pooled execution perform identical floating-point work, so callers
/// that merge per-chunk partials in chunk order get bit-identical results
/// at every thread count (including the no-pool serial path).
template <typename F>
void run_chunked(ThreadPool* pool, std::size_t n, std::size_t grain,
                 const F& body) {
  if (n == 0) return;
  if (pool != nullptr) {
    pool->parallel_for(n, grain, body);
    return;
  }
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t chunks = ThreadPool::num_chunks(n, g);
  for (std::size_t c = 0; c < chunks; ++c) {
    body(c, c * g, std::min(n, c * g + g));
  }
}

}  // namespace resmon
