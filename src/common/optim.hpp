// Numerical optimizers.
//
// Nelder-Mead powers the conditional-sum-of-squares estimation of ARIMA
// coefficients; Adam powers LSTM training. Both are dependency-free.
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace resmon::optim {

/// Configuration for the Nelder-Mead downhill simplex method.
struct NelderMeadOptions {
  std::size_t max_iterations = 500;
  double initial_step = 0.1;   ///< Size of the initial simplex around x0.
  double f_tolerance = 1e-8;   ///< Stop when simplex f-spread falls below.
  double x_tolerance = 1e-8;   ///< Stop when simplex extent falls below.
};

/// Result of an optimization run.
struct OptimResult {
  std::vector<double> x;       ///< Best parameter vector found.
  double value = 0.0;          ///< Objective at x.
  std::size_t iterations = 0;  ///< Iterations actually used.
  bool converged = false;      ///< Tolerances reached before max_iterations.
};

/// Minimize f starting from x0 with the Nelder-Mead simplex method.
/// f must be defined for all real inputs (use penalties for constraints).
OptimResult nelder_mead(const std::function<double(std::span<const double>)>& f,
                        std::vector<double> x0,
                        const NelderMeadOptions& options = {});

/// Tunables for the Adam optimizer.
struct AdamOptions {
  double learning_rate = 1e-2;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

/// Adam first-order optimizer state for a flat parameter vector.
/// Usage: repeatedly compute a gradient for the current parameters and call
/// step(); the optimizer updates the parameters in place.
class Adam {
 public:
  using Options = AdamOptions;

  explicit Adam(std::size_t dimension, const Options& options = {});

  /// Apply one Adam update: params -= lr * m_hat / (sqrt(v_hat) + eps).
  /// Requires params.size() == grad.size() == dimension.
  void step(std::span<double> params, std::span<const double> grad);

  std::size_t dimension() const { return m_.size(); }
  std::size_t steps_taken() const { return t_; }

 private:
  Options opts_;
  std::vector<double> m_;
  std::vector<double> v_;
  std::size_t t_ = 0;
};

}  // namespace resmon::optim
