#include "common/matrix.hpp"

#include <cassert>
#include <cmath>

namespace resmon {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    RESMON_REQUIRE(r.size() == cols_, "ragged initializer for Matrix");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  RESMON_REQUIRE(cols_ == rhs.rows_, "matrix product shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out(r, c) += a * rhs(k, c);
      }
    }
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  RESMON_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_,
                 "matrix sum shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  RESMON_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_,
                 "matrix difference shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

std::vector<double> Matrix::apply(std::span<const double> v) const {
  RESMON_REQUIRE(v.size() == cols_, "matrix-vector shape mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    out[r] = dot(row(r), v);
  }
  return out;
}

Matrix cholesky(const Matrix& a) {
  RESMON_REQUIRE(a.rows() == a.cols(), "cholesky requires a square matrix");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      throw NumericalError("cholesky: matrix is not positive definite");
    }
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / l(j, j);
    }
  }
  return l;
}

namespace {

// Forward/back substitution against a lower-triangular factor L.
std::vector<double> cholesky_solve(const Matrix& l,
                                   std::span<const double> b) {
  const std::size_t n = l.rows();
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

}  // namespace

std::vector<double> solve_spd(const Matrix& a, std::span<const double> b) {
  RESMON_REQUIRE(a.rows() == b.size(), "solve_spd shape mismatch");
  return cholesky_solve(cholesky(a), b);
}

Matrix solve_spd(const Matrix& a, const Matrix& b) {
  RESMON_REQUIRE(a.rows() == b.rows(), "solve_spd shape mismatch");
  const Matrix l = cholesky(a);
  Matrix x(b.rows(), b.cols());
  std::vector<double> col(b.rows());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < b.rows(); ++r) col[r] = b(r, c);
    const std::vector<double> sol = cholesky_solve(l, col);
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = sol[r];
  }
  return x;
}

std::vector<double> solve_lu(Matrix a, std::vector<double> b) {
  RESMON_REQUIRE(a.rows() == a.cols(), "solve_lu requires a square matrix");
  RESMON_REQUIRE(a.rows() == b.size(), "solve_lu shape mismatch");
  const std::size_t n = a.rows();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a(r, col)) > std::fabs(a(pivot, col))) pivot = r;
    }
    if (std::fabs(a(pivot, col)) < 1e-12) {
      throw NumericalError("solve_lu: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) / a(col, col);
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= f * a(col, c);
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t c = ii + 1; c < n; ++c) s -= a(ii, c) * x[c];
    x[ii] = s / a(ii, ii);
  }
  return x;
}

double dot(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

double squared_distance(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace resmon
