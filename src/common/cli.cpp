#include "common/cli.hpp"

#include <string_view>

#include "common/error.hpp"

namespace resmon {

namespace {

bool is_flag(std::string_view arg) {
  return arg.size() > 2 && arg.substr(0, 2) == "--";
}

}  // namespace

Args::Args(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!is_flag(arg)) {
      throw InvalidArgument("unexpected positional argument: " +
                            std::string(arg));
    }
    const std::string_view body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(body.substr(0, eq))] =
          std::string(body.substr(eq + 1));
      continue;
    }
    // `--name value` when the next token is not itself a flag; otherwise a
    // bare boolean flag.
    if (i + 1 < argc && !is_flag(argv[i + 1])) {
      values_[std::string(body)] = argv[i + 1];
      ++i;
    } else {
      values_[std::string(body)] = "true";
    }
  }
}

bool Args::has(const std::string& name) const {
  return values_.contains(name);
}

std::string Args::get(const std::string& name,
                      const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Args::get_int(const std::string& name,
                           std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw InvalidArgument("flag --" + name + " expects an integer, got '" +
                          it->second + "'");
  }
}

double Args::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw InvalidArgument("flag --" + name + " expects a number, got '" +
                          it->second + "'");
  }
}

std::size_t Args::get_threads(std::size_t fallback) const {
  const std::int64_t v =
      get_int("threads", static_cast<std::int64_t>(fallback));
  if (v < 0) throw InvalidArgument("flag --threads must be >= 0");
  return static_cast<std::size_t>(v);
}

bool Args::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace resmon
