// Error handling primitives shared by all resmon modules.
//
// The library throws exceptions derived from resmon::Error for contract
// violations and invalid input (C++ Core Guidelines E.2/E.14: use exceptions
// for errors, purpose-designed types).
#pragma once

#include <stdexcept>
#include <string>

namespace resmon {

/// Base class for all errors thrown by the resmon library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a function argument violates its documented contract.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when an object is used in a state that does not permit the
/// operation (e.g. forecasting before any model has been fit).
class InvalidState : public Error {
 public:
  explicit InvalidState(const std::string& what) : Error(what) {}
};

/// Thrown when a numerical routine fails to converge or encounters a
/// singular/ill-conditioned problem.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_invalid_argument(const char* expr,
                                                const char* file, int line,
                                                const std::string& msg) {
  throw InvalidArgument(std::string(file) + ":" + std::to_string(line) +
                        ": requirement `" + expr + "` failed: " + msg);
}
}  // namespace detail

}  // namespace resmon

/// Precondition check that throws resmon::InvalidArgument with context.
/// Used at public API boundaries; internal invariants use assert().
#define RESMON_REQUIRE(expr, msg)                                        \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::resmon::detail::throw_invalid_argument(#expr, __FILE__, __LINE__, \
                                               (msg));                   \
    }                                                                    \
  } while (false)
