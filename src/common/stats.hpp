// Descriptive statistics used across the library: moments, Pearson
// correlation (the paper's spatial-correlation metric, §III), empirical CDFs
// (Fig. 1), and autocorrelation functions (ARIMA diagnostics).
#pragma once

#include <span>
#include <vector>

namespace resmon::stats {

double mean(std::span<const double> x);

/// Population variance (divide by n). Returns 0 for n < 1.
double variance(std::span<const double> x);

/// Sample variance (divide by n-1). Returns 0 for n < 2.
double sample_variance(std::span<const double> x);

double stddev(std::span<const double> x);
double sample_stddev(std::span<const double> x);

double min(std::span<const double> x);
double max(std::span<const double> x);

/// Pearson correlation coefficient between two equally long series.
/// This is the paper's "(spatial) correlation of two nodes": sample
/// covariance divided by the two standard deviations. Returns 0 when either
/// series is constant (correlation undefined).
double pearson(std::span<const double> x, std::span<const double> y);

/// Sample covariance between two equally long series (divide by n-1).
double sample_covariance(std::span<const double> x, std::span<const double> y);

/// Autocorrelation function up to max_lag (inclusive); acf[0] == 1.
std::vector<double> acf(std::span<const double> x, std::size_t max_lag);

/// Partial autocorrelation function up to max_lag via Durbin-Levinson;
/// pacf[0] == 1 by convention.
std::vector<double> pacf(std::span<const double> x, std::size_t max_lag);

/// Quantile of the empirical distribution (linear interpolation), q in [0,1].
double quantile(std::vector<double> x, double q);

/// Empirical cumulative distribution function evaluated on a fixed grid.
/// Used to regenerate Fig. 1.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  /// F(x) = fraction of samples <= x.
  double operator()(double x) const;

  std::size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted_samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Root mean square error between two equally long series.
double rmse(std::span<const double> truth, std::span<const double> estimate);

/// Quantile function of the standard normal distribution (inverse CDF),
/// p in (0, 1). Accurate to ~1e-9 (Acklam's rational approximation with a
/// Halley refinement step). Used for forecast prediction intervals.
double normal_quantile(double p);

/// CDF of the chi-square distribution with k > 0 degrees of freedom,
/// evaluated at x >= 0 (regularized lower incomplete gamma P(k/2, x/2)).
double chi_square_cdf(double x, double k);

/// Ljung-Box portmanteau test for residual autocorrelation.
struct LjungBoxResult {
  double statistic = 0.0;  ///< Q = n(n+2) sum rho_k^2 / (n-k)
  double p_value = 1.0;    ///< under chi-square with (lags - fitted) dof
};

/// Test whether `residuals` are white noise using `lags` autocorrelation
/// terms; `fitted_parameters` reduces the degrees of freedom when the
/// residuals come from a fitted ARMA model. Small p-values reject
/// whiteness (the model left structure on the table).
LjungBoxResult ljung_box(std::span<const double> residuals,
                         std::size_t lags,
                         std::size_t fitted_parameters = 0);

}  // namespace resmon::stats
