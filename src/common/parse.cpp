#include "common/parse.hpp"

#include <cctype>
#include <cmath>
#include <stdexcept>

namespace resmon {

std::size_t parse_size(const std::string& context, const std::string& text) {
  if (text.empty()) {
    throw InvalidArgument(context + ": expected a non-negative integer, got "
                                    "an empty field");
  }
  for (const char c : text) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
      throw InvalidArgument(context +
                            ": expected a non-negative integer, got '" +
                            text + "'");
    }
  }
  unsigned long long v = 0;
  std::size_t consumed = 0;
  try {
    v = std::stoull(text, &consumed);
  } catch (const std::exception&) {
    throw InvalidArgument(context + ": integer out of range: '" + text + "'");
  }
  if (consumed != text.size()) {
    throw InvalidArgument(context + ": trailing characters in integer '" +
                          text + "'");
  }
  return static_cast<std::size_t>(v);
}

double parse_double(const std::string& context, const std::string& text) {
  if (text.empty()) {
    throw InvalidArgument(context + ": expected a number, got an empty field");
  }
  double v = 0.0;
  std::size_t consumed = 0;
  try {
    v = std::stod(text, &consumed);
  } catch (const std::exception&) {
    throw InvalidArgument(context + ": expected a number, got '" + text + "'");
  }
  if (consumed != text.size()) {
    throw InvalidArgument(context + ": trailing characters in number '" +
                          text + "'");
  }
  if (!std::isfinite(v)) {
    throw InvalidArgument(context + ": number is not finite: '" + text + "'");
  }
  return v;
}

bool parse_bool(const std::string& context, const std::string& text) {
  if (text == "true" || text == "1" || text == "yes" || text == "on") {
    return true;
  }
  if (text == "false" || text == "0" || text == "no" || text == "off") {
    return false;
  }
  throw InvalidArgument(context + ": expected a boolean, got '" + text + "'");
}

}  // namespace resmon
