// Dimension-major (structure-of-arrays) mirror of a row-major Matrix.
//
// The hot kernels (common/kernels.hpp) vectorize *across points*: one point
// per SIMD lane, each lane running the unchanged per-point operation
// sequence. That requires coordinate `dim` of consecutive points to be
// contiguous in memory — the transpose of Matrix's row-major layout. A
// SoaMatrix holds that transpose and hands kernels a per-dimension pointer
// table. assign_from() reuses capacity, so a scratch SoaMatrix refilled
// every step performs no steady-state allocations.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/matrix.hpp"

namespace resmon {

class SoaMatrix {
 public:
  SoaMatrix() = default;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Dimension-major resize; keeps capacity when shrinking or refilling.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
    col_ptrs_.resize(cols);
    for (std::size_t c = 0; c < cols; ++c) {
      col_ptrs_[c] = data_.data() + c * rows;
    }
  }

  /// Refill from a row-major matrix (transposing copy).
  void assign_from(const Matrix& m) {
    resize(m.rows(), m.cols());
    for (std::size_t r = 0; r < rows_; ++r) {
      const std::span<const double> row = m.row(r);
      for (std::size_t c = 0; c < cols_; ++c) data_[c * rows_ + r] = row[c];
    }
  }

  std::span<double> col(std::size_t c) {
    return {data_.data() + c * rows_, rows_};
  }
  std::span<const double> col(std::size_t c) const {
    return {data_.data() + c * rows_, rows_};
  }

  double operator()(std::size_t r, std::size_t c) const {
    return data_[c * rows_ + r];
  }

  /// Per-dimension pointer table in the shape kernels consume
  /// (xcols[dim][i] = coordinate dim of point i).
  const double* const* col_ptrs() const { return col_ptrs_.data(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;        // column c occupies [c*rows, (c+1)*rows)
  std::vector<const double*> col_ptrs_;
};

}  // namespace resmon
