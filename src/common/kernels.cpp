#include "common/kernels.hpp"

#include <atomic>

// Two instances of every kernel body. The SIMD instance is compiled for
// AVX2 via the target attribute (note: *not* "avx2,fma" — fused
// multiply-add would contract `acc += diff * diff` and break bitwise
// equality with the scalar instance; this TU is additionally built with
// -ffp-contract=off as insurance). The `#pragma omp simd` annotations are
// enabled project-wide by -fopenmp-simd, which implies no OpenMP runtime.

namespace resmon::kern {

namespace scalar {
#define RESMON_KERNEL_FN
#define RESMON_KERNEL_LOOP
#include "common/kernels_impl.inc"  // NOLINT(bugprone-suspicious-include)
#undef RESMON_KERNEL_FN
#undef RESMON_KERNEL_LOOP
}  // namespace scalar

namespace simd {
#define RESMON_KERNEL_FN __attribute__((target("avx2")))
#define RESMON_KERNEL_LOOP _Pragma("omp simd")
#include "common/kernels_impl.inc"  // NOLINT(bugprone-suspicious-include)
#undef RESMON_KERNEL_FN
#undef RESMON_KERNEL_LOOP
}  // namespace simd

namespace {

std::atomic<Path> g_path{Path::kAuto};

Path resolve(Path p) {
  if (p != Path::kAuto) return p;
  return simd_supported() ? Path::kSimd : Path::kScalar;
}

inline bool use_simd() {
  return resolve(g_path.load(std::memory_order_relaxed)) == Path::kSimd;
}

}  // namespace

bool simd_supported() { return __builtin_cpu_supports("avx2") != 0; }

void set_path(Path path) { g_path.store(path, std::memory_order_relaxed); }

Path active_path() {
  return resolve(g_path.load(std::memory_order_relaxed));
}

void nearest_centroids(const double* const* xcols, std::size_t d,
                       const double* centroids, std::size_t k,
                       std::size_t begin, std::size_t end,
                       std::uint32_t* best_j, double* best_d2) {
  if (use_simd()) {
    simd::nearest_centroids(xcols, d, centroids, k, begin, end, best_j,
                            best_d2);
  } else {
    scalar::nearest_centroids(xcols, d, centroids, k, begin, end, best_j,
                              best_d2);
  }
}

void min_distance_update(const double* const* xcols, std::size_t d,
                         const double* c, std::size_t begin, std::size_t end,
                         double* dist2) {
  if (use_simd()) {
    simd::min_distance_update(xcols, d, c, begin, end, dist2);
  } else {
    scalar::min_distance_update(xcols, d, c, begin, end, dist2);
  }
}

void subtract_mean(const double* src, double mean, std::size_t n,
                   double* dst) {
  if (use_simd()) {
    simd::subtract_mean(src, mean, n, dst);
  } else {
    scalar::subtract_mean(src, mean, n, dst);
  }
}

void axpy_lagged(double a, const double* w, std::size_t lag, std::size_t n,
                 double* e) {
  if (use_simd()) {
    simd::axpy_lagged(a, w, lag, n, e);
  } else {
    scalar::axpy_lagged(a, w, lag, n, e);
  }
}

void history_mask(const std::size_t* past, std::size_t k, std::size_t begin,
                  std::size_t end, std::uint8_t* mask) {
  if (use_simd()) {
    simd::history_mask(past, k, begin, end, mask);
  } else {
    scalar::history_mask(past, k, begin, end, mask);
  }
}

void similarity_accumulate(const std::size_t* fresh, const std::uint8_t* mask,
                           std::size_t k, std::size_t begin, std::size_t end,
                           double* w) {
  if (use_simd()) {
    simd::similarity_accumulate(fresh, mask, k, begin, end, w);
  } else {
    scalar::similarity_accumulate(fresh, mask, k, begin, end, w);
  }
}

}  // namespace resmon::kern
