// Strict numeric/boolean parsing shared by every textual input surface
// (the CSV trace loader, the scenario-pack parser, config-ish grammars).
//
// std::stoul/std::stod silently accept trailing garbage ("3x" -> 3) and
// std::stoul wraps negative input into a huge unsigned value — both of
// which turn a typo in an input file into a bogus in-memory layout instead
// of a diagnosis. These helpers demand whole-string consumption and throw
// resmon::InvalidArgument naming the caller's context on any violation, so
// malformed input always fails with a message instead of UB downstream.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace resmon {

/// Parse a non-negative integer (digits only: no sign, no whitespace, no
/// trailing characters). Throws InvalidArgument("<context>: ...").
std::size_t parse_size(const std::string& context, const std::string& text);

/// Parse a finite double, requiring the whole string to be consumed.
/// Throws InvalidArgument("<context>: ...") on garbage, trailing
/// characters, or non-finite results (inf/nan overflow).
double parse_double(const std::string& context, const std::string& text);

/// Parse a boolean: "true"/"1"/"yes"/"on" and "false"/"0"/"no"/"off".
bool parse_bool(const std::string& context, const std::string& text);

}  // namespace resmon
