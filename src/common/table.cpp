#include "common/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace resmon {

Table::Table(std::vector<std::string> headers, int precision)
    : headers_(std::move(headers)), precision_(precision) {
  RESMON_REQUIRE(!headers_.empty(), "Table requires at least one column");
}

void Table::add_row(std::vector<Cell> row) {
  RESMON_REQUIRE(row.size() == headers_.size(),
                 "Table row width does not match header count");
  rows_.push_back(std::move(row));
}

std::string Table::format_cell(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision_) << std::get<double>(c);
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], r.back().size());
    }
    rendered.push_back(std::move(r));
  }

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
         << cells[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c], '-') << "  ";
  }
  os << '\n';
  for (const auto& r : rendered) print_row(r);
}

void Table::print_csv(std::ostream& os) const {
  auto join = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  join(headers_);
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (const auto& cell : row) r.push_back(format_cell(cell));
    join(r);
  }
}

void Table::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("Table::save_csv: cannot open " + path);
  print_csv(out);
  if (!out) throw Error("Table::save_csv: write failed for " + path);
}

}  // namespace resmon
