// Lightweight tabular output for benchmark/experiment harnesses.
//
// Every bench binary prints the rows/series of the paper table or figure it
// regenerates; Table renders them as aligned text and optionally CSV.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace resmon {

/// A simple column-oriented table. Cells are strings or doubles; doubles are
/// formatted with a fixed precision when rendered.
class Table {
 public:
  using Cell = std::variant<std::string, double>;

  explicit Table(std::vector<std::string> headers, int precision = 4);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<Cell> row);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return headers_.size(); }

  /// Render as an aligned, human-readable text table.
  void print(std::ostream& os) const;

  /// Render as CSV (headers + rows).
  void print_csv(std::ostream& os) const;

  /// Write CSV to a file; throws resmon::Error on I/O failure.
  void save_csv(const std::string& path) const;

 private:
  std::string format_cell(const Cell& c) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_;
};

}  // namespace resmon
