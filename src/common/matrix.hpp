// Dense linear algebra used by the clustering, forecasting and Gaussian
// inference modules. Deliberately small: resmon only needs dense real
// matrices up to a few hundred rows (covariance matrices over ~100 monitors,
// ARIMA design matrices, LSTM weight blocks).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace resmon {

/// Dense row-major matrix of doubles with value semantics.
class Matrix {
 public:
  Matrix() = default;

  /// Zero-initialized rows x cols matrix.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Construct from nested initializer lists; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  /// Reshape to rows x cols with every element zeroed. Reuses the existing
  /// allocation when capacity suffices — the hot-path scratch objects rely
  /// on this to stay allocation-free at steady state.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0);
  }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  Matrix transposed() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  /// Matrix-vector product. Requires v.size() == cols().
  std::vector<double> apply(std::span<const double> v) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Cholesky factorization A = L * L^T of a symmetric positive-definite
/// matrix. Throws NumericalError if A is not (numerically) SPD.
Matrix cholesky(const Matrix& a);

/// Solve A x = b for symmetric positive-definite A via Cholesky.
std::vector<double> solve_spd(const Matrix& a, std::span<const double> b);

/// Solve A X = B for SPD A, returning X (B may have multiple columns).
Matrix solve_spd(const Matrix& a, const Matrix& b);

/// Solve a general square system A x = b via partial-pivoting LU.
/// Throws NumericalError on a (numerically) singular matrix.
std::vector<double> solve_lu(Matrix a, std::vector<double> b);

// -- small vector helpers (free functions over std::vector<double>) ---------

double dot(std::span<const double> a, std::span<const double> b);
double norm2(std::span<const double> a);           ///< Euclidean norm.
double squared_distance(std::span<const double> a, std::span<const double> b);
void axpy(double alpha, std::span<const double> x, std::span<double> y);

}  // namespace resmon
