// Seeded random number generation.
//
// All randomness in resmon flows through Rng so that every experiment is
// reproducible from a single 64-bit seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace resmon {

/// Deterministic random source. Thin wrapper over std::mt19937_64 with the
/// distributions the library needs. Copyable; copies evolve independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * unit_(engine_);
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Standard normal draw.
  double normal() { return normal_(engine_); }

  /// Normal draw with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    return mean + stddev * normal_(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) { return unit_(engine_) < p; }

  /// Derive an independent child generator (e.g. one per node) so that
  /// changing how one consumer draws does not perturb the others.
  Rng fork() { return Rng(engine_()); }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace resmon
