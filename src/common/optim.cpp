#include "common/optim.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace resmon::optim {

OptimResult nelder_mead(const std::function<double(std::span<const double>)>& f,
                        std::vector<double> x0,
                        const NelderMeadOptions& options) {
  RESMON_REQUIRE(!x0.empty(), "nelder_mead requires at least one parameter");
  const std::size_t n = x0.size();

  // Standard reflection/expansion/contraction/shrink coefficients.
  constexpr double kAlpha = 1.0;
  constexpr double kGamma = 2.0;
  constexpr double kRho = 0.5;
  constexpr double kSigma = 0.5;

  std::vector<std::vector<double>> simplex(n + 1, x0);
  for (std::size_t i = 0; i < n; ++i) {
    simplex[i + 1][i] +=
        x0[i] != 0.0 ? options.initial_step * std::fabs(x0[i]) +
                           options.initial_step
                     : options.initial_step;
  }
  std::vector<double> fvals(n + 1);
  for (std::size_t i = 0; i <= n; ++i) fvals[i] = f(simplex[i]);

  std::vector<std::size_t> order(n + 1);
  OptimResult result;
  std::vector<double> centroid(n), reflected(n), expanded(n), contracted(n);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    for (std::size_t i = 0; i <= n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return fvals[a] < fvals[b]; });

    const std::size_t best = order[0];
    const std::size_t worst = order[n];
    const std::size_t second_worst = order[n - 1];

    // Convergence: spread of objective values and simplex extent.
    const double f_spread = std::fabs(fvals[worst] - fvals[best]);
    double x_spread = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      x_spread = std::max(
          x_spread, std::fabs(simplex[worst][i] - simplex[best][i]));
    }
    if (f_spread < options.f_tolerance && x_spread < options.x_tolerance) {
      result.converged = true;
      break;
    }

    // Centroid of all points except the worst.
    std::fill(centroid.begin(), centroid.end(), 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (std::size_t d = 0; d < n; ++d) centroid[d] += simplex[i][d];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    for (std::size_t d = 0; d < n; ++d) {
      reflected[d] = centroid[d] + kAlpha * (centroid[d] - simplex[worst][d]);
    }
    const double f_reflected = f(reflected);

    if (f_reflected < fvals[best]) {
      for (std::size_t d = 0; d < n; ++d) {
        expanded[d] = centroid[d] + kGamma * (reflected[d] - centroid[d]);
      }
      const double f_expanded = f(expanded);
      if (f_expanded < f_reflected) {
        simplex[worst] = expanded;
        fvals[worst] = f_expanded;
      } else {
        simplex[worst] = reflected;
        fvals[worst] = f_reflected;
      }
    } else if (f_reflected < fvals[second_worst]) {
      simplex[worst] = reflected;
      fvals[worst] = f_reflected;
    } else {
      for (std::size_t d = 0; d < n; ++d) {
        contracted[d] = centroid[d] + kRho * (simplex[worst][d] - centroid[d]);
      }
      const double f_contracted = f(contracted);
      if (f_contracted < fvals[worst]) {
        simplex[worst] = contracted;
        fvals[worst] = f_contracted;
      } else {
        // Shrink the whole simplex towards the best vertex.
        for (std::size_t i = 0; i <= n; ++i) {
          if (i == best) continue;
          for (std::size_t d = 0; d < n; ++d) {
            simplex[i][d] = simplex[best][d] +
                            kSigma * (simplex[i][d] - simplex[best][d]);
          }
          fvals[i] = f(simplex[i]);
        }
      }
    }
  }

  const auto best_it = std::min_element(fvals.begin(), fvals.end());
  result.value = *best_it;
  result.x = simplex[static_cast<std::size_t>(best_it - fvals.begin())];
  return result;
}

Adam::Adam(std::size_t dimension, const Options& options)
    : opts_(options), m_(dimension, 0.0), v_(dimension, 0.0) {
  RESMON_REQUIRE(dimension > 0, "Adam requires a non-empty parameter vector");
}

void Adam::step(std::span<double> params, std::span<const double> grad) {
  RESMON_REQUIRE(params.size() == m_.size() && grad.size() == m_.size(),
                 "Adam dimension mismatch");
  ++t_;
  const double bias1 = 1.0 - std::pow(opts_.beta1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(opts_.beta2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    m_[i] = opts_.beta1 * m_[i] + (1.0 - opts_.beta1) * grad[i];
    v_[i] = opts_.beta2 * v_[i] + (1.0 - opts_.beta2) * grad[i] * grad[i];
    const double m_hat = m_[i] / bias1;
    const double v_hat = v_[i] / bias2;
    params[i] -= opts_.learning_rate * m_hat /
                 (std::sqrt(v_hat) + opts_.epsilon);
  }
}

}  // namespace resmon::optim
