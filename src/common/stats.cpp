#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace resmon::stats {

double mean(std::span<const double> x) {
  if (x.empty()) return 0.0;
  double s = 0.0;
  for (double v : x) s += v;
  return s / static_cast<double>(x.size());
}

double variance(std::span<const double> x) {
  if (x.empty()) return 0.0;
  const double m = mean(x);
  double s = 0.0;
  for (double v : x) s += (v - m) * (v - m);
  return s / static_cast<double>(x.size());
}

double sample_variance(std::span<const double> x) {
  if (x.size() < 2) return 0.0;
  const double m = mean(x);
  double s = 0.0;
  for (double v : x) s += (v - m) * (v - m);
  return s / static_cast<double>(x.size() - 1);
}

double stddev(std::span<const double> x) { return std::sqrt(variance(x)); }

double sample_stddev(std::span<const double> x) {
  return std::sqrt(sample_variance(x));
}

double min(std::span<const double> x) {
  RESMON_REQUIRE(!x.empty(), "min of empty range");
  return *std::min_element(x.begin(), x.end());
}

double max(std::span<const double> x) {
  RESMON_REQUIRE(!x.empty(), "max of empty range");
  return *std::max_element(x.begin(), x.end());
}

double sample_covariance(std::span<const double> x,
                         std::span<const double> y) {
  RESMON_REQUIRE(x.size() == y.size(), "covariance length mismatch");
  if (x.size() < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    s += (x[i] - mx) * (y[i] - my);
  }
  return s / static_cast<double>(x.size() - 1);
}

double pearson(std::span<const double> x, std::span<const double> y) {
  RESMON_REQUIRE(x.size() == y.size(), "pearson length mismatch");
  const double sx = sample_stddev(x);
  const double sy = sample_stddev(y);
  if (sx == 0.0 || sy == 0.0) return 0.0;
  return sample_covariance(x, y) / (sx * sy);
}

std::vector<double> acf(std::span<const double> x, std::size_t max_lag) {
  RESMON_REQUIRE(!x.empty(), "acf of empty series");
  const std::size_t n = x.size();
  const double m = mean(x);
  double denom = 0.0;
  for (double v : x) denom += (v - m) * (v - m);
  std::vector<double> out(max_lag + 1, 0.0);
  out[0] = 1.0;
  if (denom == 0.0) return out;
  for (std::size_t lag = 1; lag <= max_lag && lag < n; ++lag) {
    double s = 0.0;
    for (std::size_t t = lag; t < n; ++t) {
      s += (x[t] - m) * (x[t - lag] - m);
    }
    out[lag] = s / denom;
  }
  return out;
}

std::vector<double> pacf(std::span<const double> x, std::size_t max_lag) {
  // Durbin-Levinson recursion on the sample ACF.
  const std::vector<double> rho = acf(x, max_lag);
  std::vector<double> out(max_lag + 1, 0.0);
  out[0] = 1.0;
  if (max_lag == 0) return out;

  std::vector<double> phi_prev(max_lag + 1, 0.0);
  std::vector<double> phi(max_lag + 1, 0.0);
  double v = 1.0;
  for (std::size_t k = 1; k <= max_lag; ++k) {
    double num = rho[k];
    for (std::size_t j = 1; j < k; ++j) num -= phi_prev[j] * rho[k - j];
    const double a = v != 0.0 ? num / v : 0.0;
    phi[k] = a;
    for (std::size_t j = 1; j < k; ++j) {
      phi[j] = phi_prev[j] - a * phi_prev[k - j];
    }
    v *= (1.0 - a * a);
    out[k] = a;
    phi_prev = phi;
  }
  return out;
}

double quantile(std::vector<double> x, double q) {
  RESMON_REQUIRE(!x.empty(), "quantile of empty range");
  RESMON_REQUIRE(q >= 0.0 && q <= 1.0, "quantile level must be in [0,1]");
  std::sort(x.begin(), x.end());
  const double pos = q * static_cast<double>(x.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, x.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return x[lo] * (1.0 - frac) + x[hi] * frac;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  RESMON_REQUIRE(!sorted_.empty(), "EmpiricalCdf needs at least one sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::operator()(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double normal_quantile(double p) {
  RESMON_REQUIRE(p > 0.0 && p < 1.0,
                 "normal_quantile requires p in (0,1)");
  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;

  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
         c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
         a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step using erfc for the CDF.
  const double e = 0.5 * std::erfc(-x / std::sqrt(2.0)) - p;
  const double u = e * std::sqrt(2.0 * std::numbers::pi) *
                   std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

namespace {

/// Regularized lower incomplete gamma P(a, x), via the series expansion for
/// x < a + 1 and the Lentz continued fraction otherwise (Numerical Recipes
/// style).
double regularized_gamma_p(double a, double x) {
  if (x <= 0.0) return 0.0;
  const double log_gamma_a = std::lgamma(a);
  if (x < a + 1.0) {
    // Series: P(a,x) = e^{-x} x^a / Gamma(a) * sum x^n / (a)_{n+1}.
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int n = 0; n < 500; ++n) {
      ap += 1.0;
      term *= x / ap;
      sum += term;
      if (std::fabs(term) < std::fabs(sum) * 1e-14) break;
    }
    return sum * std::exp(-x + a * std::log(x) - log_gamma_a);
  }
  // Continued fraction for Q(a,x); P = 1 - Q.
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-14) break;
  }
  const double q = std::exp(-x + a * std::log(x) - log_gamma_a) * h;
  return 1.0 - q;
}

}  // namespace

double chi_square_cdf(double x, double k) {
  RESMON_REQUIRE(k > 0.0, "chi_square_cdf: dof must be positive");
  if (x <= 0.0) return 0.0;
  return regularized_gamma_p(k / 2.0, x / 2.0);
}

LjungBoxResult ljung_box(std::span<const double> residuals,
                         std::size_t lags, std::size_t fitted_parameters) {
  RESMON_REQUIRE(lags >= 1, "ljung_box: need at least one lag");
  RESMON_REQUIRE(residuals.size() > lags + 1,
                 "ljung_box: series too short for the requested lags");
  const double n = static_cast<double>(residuals.size());
  const std::vector<double> rho = acf(residuals, lags);

  LjungBoxResult out;
  for (std::size_t k = 1; k <= lags; ++k) {
    out.statistic += rho[k] * rho[k] / (n - static_cast<double>(k));
  }
  out.statistic *= n * (n + 2.0);

  const double dof = lags > fitted_parameters
                         ? static_cast<double>(lags - fitted_parameters)
                         : 1.0;
  out.p_value = 1.0 - chi_square_cdf(out.statistic, dof);
  return out;
}

double rmse(std::span<const double> truth, std::span<const double> estimate) {
  RESMON_REQUIRE(truth.size() == estimate.size(), "rmse length mismatch");
  RESMON_REQUIRE(!truth.empty(), "rmse of empty range");
  double s = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - estimate[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(truth.size()));
}

}  // namespace resmon::stats
