// Clang Thread Safety Analysis macros + annotated lock primitives.
//
// The RESMON_* macros expand to Clang's `capability` attribute family when
// compiling under clang and to nothing elsewhere, so the GCC build (and any
// toolchain without -Wthread-safety) is unaffected. The dedicated CI job
// compiles the whole tree with clang and `-Wthread-safety
// -Wthread-safety-beta -Werror`, turning lock-discipline violations into
// compile errors instead of TSan-schedule-dependent findings.
//
// Raw std::mutex is invisible to the analysis (libstdc++ carries no
// annotations), so guarded state must hang off the annotated wrappers
// below: `Mutex`, the scoped `MutexLock`, and `CondVar`. The resmon_lint
// `mutex-annotation` rule enforces exactly that — any bare
// std::mutex/std::condition_variable member in src/ is a lint error unless
// it carries a RESMON_CAPABILITY-family annotation or a reasoned inline
// allow. See DESIGN.md "Static analysis & invariants" for the recipe.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define RESMON_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define RESMON_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op outside clang
#endif

#define RESMON_CAPABILITY(x) \
  RESMON_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define RESMON_SCOPED_CAPABILITY \
  RESMON_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define RESMON_GUARDED_BY(x) \
  RESMON_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define RESMON_PT_GUARDED_BY(x) \
  RESMON_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define RESMON_ACQUIRED_BEFORE(...) \
  RESMON_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define RESMON_ACQUIRED_AFTER(...) \
  RESMON_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define RESMON_REQUIRES(...) \
  RESMON_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define RESMON_ACQUIRE(...) \
  RESMON_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define RESMON_RELEASE(...) \
  RESMON_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define RESMON_TRY_ACQUIRE(...) \
  RESMON_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define RESMON_EXCLUDES(...) \
  RESMON_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define RESMON_ASSERT_CAPABILITY(x) \
  RESMON_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define RESMON_RETURN_CAPABILITY(x) \
  RESMON_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define RESMON_NO_THREAD_SAFETY_ANALYSIS \
  RESMON_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace resmon {

/// std::mutex wearing the `capability` attribute so the analysis can track
/// it. Same cost as the raw mutex — the wrapper adds no state and every
/// method is a forwarding inline.
class RESMON_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RESMON_ACQUIRE() { m_.lock(); }
  void unlock() RESMON_RELEASE() { m_.unlock(); }
  bool try_lock() RESMON_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// For interop with std:: wait primitives (see CondVar). Holding the
  /// native handle does not transfer the capability — callers stay inside
  /// a RESMON_REQUIRES(this) context.
  std::mutex& native() { return m_; }

 private:
  // resmon-lint-allow(mutex-annotation): the annotated wrapper itself
  std::mutex m_;
};

/// RAII lock for Mutex, annotated as a scoped capability: constructing it
/// acquires, destruction releases, and clang tracks the critical section.
class RESMON_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RESMON_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RESMON_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. wait() demands the capability, so
/// the analysis proves every wait happens under the lock; predicates live
/// in explicit `while (!pred) cv.wait(mu);` loops at the call site (lambda
/// predicates are analyzed as separate functions and would lose the
/// capability context).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) RESMON_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's MutexLock still owns the mutex
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  // resmon-lint-allow(mutex-annotation): wrapped by CondVar::wait(Mutex&)
  std::condition_variable cv_;
};

}  // namespace resmon
