// Hot-path kernels with a runtime scalar/SIMD dispatch.
//
// Every kernel here exists in two compiled instances (see kernels.cpp): a
// plain scalar build and a SIMD build (`#pragma omp simd` loops compiled
// with AVX2 enabled). Both instances perform the *same* floating-point
// operations on each element in the *same* order — vectorization only runs
// independent per-point lanes side by side — so the two paths are bitwise
// identical and both match the golden determinism traces. The
// bit-compatibility contract is spelled out in DESIGN.md ("Memory layout &
// SIMD kernels") and enforced by tests/test_kernels.cpp.
//
// Dispatch: kAuto resolves once per process to the SIMD instance when the
// CPU supports AVX2, the scalar instance otherwise. Tests pin the path with
// set_path() to compare both instances on identical inputs.
#pragma once

#include <cstddef>
#include <cstdint>

namespace resmon::kern {

enum class Path : std::uint8_t {
  kAuto = 0,    ///< runtime CPU detection (default)
  kScalar = 1,  ///< force the scalar instance
  kSimd = 2,    ///< force the SIMD instance (requires AVX2)
};

/// True when this CPU can run the SIMD instance (AVX2).
bool simd_supported();

/// Pin the dispatch (tests/benches only; not thread-safe vs in-flight
/// kernels — set it before spinning up worker pools).
void set_path(Path path);

/// The instance kernels currently dispatch to (never kAuto).
Path active_path();

/// Nearest centroid of each point i in [begin, end), for d-dimensional
/// points stored dimension-major (SoA): xcols[dim][i] is coordinate `dim`
/// of point i. `centroids` is row-major k x d. Writes best_j[i] and the
/// squared distance best_d2[i]. Per point, distances accumulate in
/// dimension order and candidates are scanned in centroid order with a
/// strict `<`, exactly like the scalar argmin loop it replaces.
void nearest_centroids(const double* const* xcols, std::size_t d,
                       const double* centroids, std::size_t k,
                       std::size_t begin, std::size_t end,
                       std::uint32_t* best_j, double* best_d2);

/// k-means++ seeding distance pass over one new centroid `c` (length d):
/// dist2[i] = min(dist2[i], ||x_i - c||^2) for i in [begin, end).
void min_distance_update(const double* const* xcols, std::size_t d,
                         const double* c, std::size_t begin, std::size_t end,
                         double* dist2);

/// dst[i] = src[i] - mean for i in [0, n) (ARIMA centering).
void subtract_mean(const double* src, double mean, std::size_t n,
                   double* dst);

/// e[t] -= a * w[t - lag] for t in [lag, n). One pass of the AR-only CSS
/// residual recursion; applying passes in lag order reproduces the scalar
/// per-t accumulation order bit for bit. `e` and `w` must not alias.
void axpy_lagged(double a, const double* w, std::size_t lag, std::size_t n,
                 double* e);

/// Hungarian re-indexing history pass: clear mask[i*k + j] (i in
/// [begin, end), j in [0, k)) wherever past[i] != j. Starting from an
/// all-ones mask and applying one pass per retained clustering leaves
/// mask[i*k + j] == 1 exactly for the nodes that stayed in cluster j
/// throughout — the intersection term of eq. (10).
void history_mask(const std::size_t* past, std::size_t k, std::size_t begin,
                  std::size_t end, std::uint8_t* mask);

/// Intersection-weight accumulation of the re-indexing pass:
/// w[fresh[i]*k + j] += mask[i*k + j] (as 0.0 / 1.0) for i in [begin, end).
/// Unconditionally adding 0.0 where the mask is clear is bitwise identical
/// to the branchy scalar accumulation it replaces: w entries are
/// nonnegative counts, and x + 0.0 == x for every such x.
void similarity_accumulate(const std::size_t* fresh, const std::uint8_t* mask,
                           std::size_t k, std::size_t begin, std::size_t end,
                           double* w);

}  // namespace resmon::kern
