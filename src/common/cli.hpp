// Minimal command-line flag parsing for bench and example binaries.
//
// Supports `--name value`, `--name=value` and boolean `--name` forms. All
// binaries must also run with no arguments (laptop-scale defaults), so every
// flag has a default.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace resmon {

/// Parses argv into a flag map and serves typed lookups with defaults.
class Args {
 public:
  Args(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  /// A flag present with no value (or "true"/"1") reads as true.
  bool get_bool(const std::string& name, bool fallback = false) const;

  /// Worker-thread count from --threads: 0 = hardware concurrency, 1 =
  /// serial. The default fallback keeps binaries serial when the flag is
  /// absent. Results never depend on the value (see PipelineOptions).
  std::size_t get_threads(std::size_t fallback = 1) const;

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
};

}  // namespace resmon
