#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace resmon {

/// Shared state of one parallel_for: workers and the caller claim chunk
/// indices from `next`; the caller waits until `done` reaches `chunks`.
/// The mutex that guards `done` also publishes every chunk body's writes
/// to the waiting caller.
struct ThreadPool::ForLoop {
  std::size_t n = 0;
  std::size_t grain = 1;
  std::size_t chunks = 0;
  ChunkBody body;
  std::atomic<std::size_t> next{0};
  std::mutex mutex;
  std::condition_variable finished;
  std::size_t done = 0;                    // guarded by mutex
  std::exception_ptr error;                // guarded by mutex; first failure
};

ThreadPool::ThreadPool(std::size_t num_threads) {
  std::size_t count = num_threads;
  if (count == 0) {
    count = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  }
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this]() { worker_main(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::worker_main() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock,
                       [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::drive(const std::shared_ptr<ForLoop>& loop) {
  for (;;) {
    const std::size_t c = loop->next.fetch_add(1, std::memory_order_relaxed);
    if (c >= loop->chunks) return;
    const std::size_t begin = c * loop->grain;
    const std::size_t end = std::min(loop->n, begin + loop->grain);
    std::exception_ptr failure;
    try {
      loop->body(c, begin, end);
    } catch (...) {
      failure = std::current_exception();
    }
    bool all_done;
    {
      std::lock_guard<std::mutex> lock(loop->mutex);
      if (failure && !loop->error) loop->error = failure;
      all_done = ++loop->done == loop->chunks;
    }
    if (all_done) loop->finished.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain,
                              const ChunkBody& body) {
  if (n == 0) return;
  auto loop = std::make_shared<ForLoop>();
  loop->n = n;
  loop->grain = grain == 0 ? 1 : grain;
  loop->chunks = num_chunks(n, grain);
  loop->body = body;

  // Helpers beyond chunks - 1 would have nothing to claim: the caller
  // always takes at least one chunk itself.
  const std::size_t helpers =
      std::min(workers_.size(), loop->chunks - 1);
  for (std::size_t i = 0; i < helpers; ++i) {
    enqueue([loop]() { drive(loop); });
  }
  drive(loop);
  {
    std::unique_lock<std::mutex> lock(loop->mutex);
    loop->finished.wait(lock,
                        [&]() { return loop->done == loop->chunks; });
    if (loop->error) std::rethrow_exception(loop->error);
  }
}

void run_chunked(ThreadPool* pool, std::size_t n, std::size_t grain,
                 const ThreadPool::ChunkBody& body) {
  if (n == 0) return;
  if (pool != nullptr) {
    pool->parallel_for(n, grain, body);
    return;
  }
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t chunks = ThreadPool::num_chunks(n, g);
  for (std::size_t c = 0; c < chunks; ++c) {
    body(c, c * g, std::min(n, c * g + g));
  }
}

}  // namespace resmon
