#include "common/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace resmon {

/// Shared state of one parallel_for: workers and the caller claim chunk
/// indices from `next`; the caller waits until `done` reaches `chunks`.
/// The mutex that guards `done` also publishes every chunk body's writes
/// to the waiting caller.
struct ThreadPool::ForLoop {
  std::size_t n = 0;
  std::size_t grain = 1;
  std::size_t chunks = 0;
  ChunkRef body;
  std::atomic<std::size_t> next{0};
  Mutex mutex;
  CondVar finished;
  std::size_t done RESMON_GUARDED_BY(mutex) = 0;
  /// First failure a chunk body threw, rethrown by parallel_for_ref.
  std::exception_ptr error RESMON_GUARDED_BY(mutex);
};

ThreadPool::ThreadPool(std::size_t num_threads) {
  std::size_t count = num_threads;
  if (count == 0) {
    count = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  }
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this]() { worker_main(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

std::shared_ptr<ThreadPool::ForLoop> ThreadPool::runnable_loop_locked() {
  // Retire exhausted regions (their caller is responsible for completion
  // tracking; once every chunk is claimed there is nothing left to help
  // with). The deque stays tiny — its depth is the nesting depth of
  // parallel regions — so the scan is cheap.
  while (!loops_.empty() &&
         loops_.front()->next.load(std::memory_order_relaxed) >=
             loops_.front()->chunks) {
    loops_.pop_front();
  }
  for (const std::shared_ptr<ForLoop>& loop : loops_) {
    if (loop->next.load(std::memory_order_relaxed) < loop->chunks) {
      return loop;
    }
  }
  return nullptr;
}

void ThreadPool::worker_main() {
  for (;;) {
    std::shared_ptr<ForLoop> loop;
    std::function<void()> task;
    {
      // Explicit predicate loop (not a cv.wait lambda): thread-safety
      // analysis treats lambdas as separate functions, which would lose
      // the "mutex_ held" context the guarded reads below need.
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty() &&
             (loop = runnable_loop_locked()) == nullptr) {
        work_ready_.wait(mutex_);
      }
      if (loop == nullptr) {
        if (queue_.empty()) return;  // stopping and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
    }
    if (loop != nullptr) {
      drive(*loop);
      loop.reset();
    } else {
      task();
    }
  }
}

void ThreadPool::drive(ForLoop& loop) {
  for (;;) {
    const std::size_t c = loop.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= loop.chunks) return;
    const std::size_t begin = c * loop.grain;
    const std::size_t end = std::min(loop.n, begin + loop.grain);
    std::exception_ptr failure;
    try {
      loop.body.fn(loop.body.ctx, c, begin, end);
    } catch (...) {
      failure = std::current_exception();
    }
    bool all_done;
    {
      MutexLock lock(loop.mutex);
      if (failure && !loop.error) loop.error = failure;
      all_done = ++loop.done == loop.chunks;
    }
    if (all_done) loop.finished.notify_all();
  }
}

void ThreadPool::parallel_for_ref(std::size_t n, std::size_t grain,
                                  ChunkRef body) {
  if (n == 0) return;
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t chunks = num_chunks(n, g);

  // A single chunk (or no workers to share with) runs inline: no
  // descriptor, no locking, no wakeups. This is what makes a work-size
  // threshold in callers effective — regions too small to split cost
  // nothing beyond the body itself.
  if (chunks == 1 || workers_.empty()) {
    for (std::size_t c = 0; c < chunks; ++c) {
      body.fn(body.ctx, c, c * g, std::min(n, c * g + g));
    }
    return;
  }

  auto loop = std::make_shared<ForLoop>();
  loop->n = n;
  loop->grain = g;
  loop->chunks = chunks;
  loop->body = body;
  {
    MutexLock lock(mutex_);
    loops_.push_back(loop);
  }
  // chunks - 1 helpers at most can contribute; the caller always takes at
  // least one chunk itself.
  if (chunks > 2 && workers_.size() > 1) {
    work_ready_.notify_all();
  } else {
    work_ready_.notify_one();
  }
  drive(*loop);
  std::exception_ptr error;
  {
    MutexLock lock(loop->mutex);
    while (loop->done != loop->chunks) loop->finished.wait(loop->mutex);
    error = loop->error;
  }
  {
    MutexLock lock(mutex_);
    for (auto it = loops_.begin(); it != loops_.end(); ++it) {
      if (it->get() == loop.get()) {
        loops_.erase(it);
        break;
      }
    }
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace resmon
