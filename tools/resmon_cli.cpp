// resmon — command-line front end to the monitoring library.
//
// Subcommands:
//   generate  — write a synthetic cluster trace to CSV
//               resmon generate --profile alibaba --nodes 100 --steps 2000
//                      --seed 1 --out trace.csv
//   monitor   — run the full monitoring pipeline over a CSV trace and print
//               a bandwidth/accuracy report
//               resmon monitor --trace trace.csv --b 0.3 --k 3
//                      --model arima [--h 5] [--report report.csv]
//   choose-k  — recommend a cluster count for a CSV trace from the
//               silhouette score over a K sweep
//               resmon choose-k --trace trace.csv [--kmax 12]
//   scenario  — run a declarative scenario pack and grade its assertions,
//               or list the packs in a directory
//               resmon scenario run scenarios/paper_baseline.scn [--verbose]
//               resmon scenario list [scenarios/]
//   host-sample — print live host/process utilization samples from the
//               procfs backend (operator sanity check for --source procfs)
//               resmon host-sample --samples 5 --interval-ms 200
//                      [--pid P|self] [--procfs-root /proc] [--record FILE]
//
// The first positional token selects the subcommand; everything after it is
// ordinary --flag arguments (`scenario` takes positional operands).
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "cluster/quality.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "host/procfs.hpp"
#include "host/recording.hpp"
#include "host/sampler.hpp"
#include "host/source.hpp"
#include "obs/export.hpp"
#include "scenario/runner.hpp"
#include "trace/loader.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace resmon;

int usage() {
  std::cerr
      << "usage: resmon <generate|monitor|choose-k|scenario|host-sample>"
         " [--flags]\n"
         "  generate --profile alibaba|bitbrains|google|sensors\n"
         "           [--nodes N] [--steps T] [--seed S] --out FILE\n"
         "  monitor  --trace FILE [--b 0.3] [--k 3]\n"
         "           [--model hold|arima|auto-arima|lstm|holt-winters]\n"
         "           [--h 5] [--initial 400] [--retrain 288]\n"
         "           [--threads 1] [--report FILE]\n"
         "           [--metrics-out FILE.prom] [--trace-out FILE.jsonl]\n"
         "  choose-k --trace FILE [--kmax 12] [--sample-step 25]\n"
         "  scenario run FILE.scn [--verbose] [--metrics-out FILE.prom]\n"
         "  scenario list [DIR]\n"
         "  host-sample [--samples 5] [--interval-ms 200] [--pid P|self]\n"
         "           [--procfs-root /proc] [--record FILE]\n"
         "           [--metrics-out FILE.prom]\n";
  return 2;
}

// Operator sanity check for the procfs backend: take a few live samples and
// print them as one line per slot — the same numbers resmon_agent
// --source procfs would put on the wire.
int cmd_host_sample(const Args& args) {
  const std::uint64_t interval_ms =
      static_cast<std::uint64_t>(args.get_int("interval-ms", 200));
  const std::size_t samples =
      static_cast<std::size_t>(args.get_int("samples", 5));
  host::DirProcfs procfs(args.get("procfs-root", "/proc"));
  obs::MetricsRegistry registry;
  host::HostSamplerOptions hopts;
  if (args.has("pid")) {
    const std::string pid = args.get("pid", "");
    hopts.watch_pids = {pid == "self"
                            ? static_cast<std::uint64_t>(::getpid())
                            : static_cast<std::uint64_t>(
                                  args.get_int("pid", 0))};
  }
  hopts.page_size = static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
  hopts.metrics = &registry;
  host::HostSampler sampler(procfs, hopts);

  std::ofstream record_out;
  std::unique_ptr<host::RecordingWriter> recorder;
  if (args.has("record")) {
    record_out.open(args.get("record", ""));
    if (!record_out) {
      std::cerr << "host-sample: cannot open " << args.get("record", "")
                << "\n";
      return 1;
    }
    recorder = std::make_unique<host::RecordingWriter>(
        record_out, interval_ms, host::HostSampler::kNumResources);
  }
  host::ProcfsSamplerSource::Options sopts;
  sopts.interval_ms = interval_ms;
  sopts.recorder = recorder.get();
  host::ProcfsSamplerSource source(sampler, sopts);

  for (std::size_t t = 0; t < samples; ++t) {
    const std::vector<double> m = source.measurement(t);
    std::cout << "t=" << t;
    for (std::size_t r = 0; r < m.size(); ++r) {
      std::cout << ' ' << host::HostSampler::resource_name(r) << '='
                << m[r];
    }
    std::cout << '\n';
  }
  if (recorder != nullptr) {
    recorder->finish();
    std::cout << "recording written to " << args.get("record", "") << "\n";
  }
  if (args.has("metrics-out")) {
    obs::write_metrics_file(args.get("metrics-out", ""), registry);
  }
  return 0;
}

int cmd_scenario(int argc, char** argv) {
  // Positional operands, parsed by hand: Args rejects positionals.
  if (argc < 3) return usage();
  const std::string action = argv[2];
  if (action == "list") {
    const std::string dir = argc > 3 ? argv[3] : "scenarios";
    std::vector<std::filesystem::path> packs;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      if (entry.path().extension() == ".scn") packs.push_back(entry.path());
    }
    if (ec) {
      std::cerr << "scenario list: cannot read " << dir << ": "
                << ec.message() << "\n";
      return 1;
    }
    std::sort(packs.begin(), packs.end());
    for (const auto& path : packs) {
      const auto spec = scenario::ScenarioSpec::parse_file(path.string());
      std::cout << path.string() << ": " << spec.name;
      if (!spec.description.empty()) std::cout << " — " << spec.description;
      std::cout << " (" << spec.assertions.size() << " assertions"
                << (spec.socket_mode ? ", socket mode" : "") << ")\n";
    }
    if (packs.empty()) std::cout << "no .scn files in " << dir << "\n";
    return 0;
  }
  if (action != "run") return usage();

  std::string file;
  bool verbose = false;
  std::string metrics_out;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (!arg.empty() && arg[0] != '-' && file.empty()) {
      file = arg;
    } else {
      return usage();
    }
  }
  if (file.empty()) return usage();

  const scenario::ScenarioSpec spec = scenario::ScenarioSpec::parse_file(file);
  obs::MetricsRegistry registry;
  const scenario::ScenarioResult result = scenario::run(spec, registry);
  if (!metrics_out.empty()) {
    obs::write_metrics_file(metrics_out, registry);
  }
  return scenario::print_report(result, std::cout, verbose) ? 0 : 1;
}

int cmd_generate(const Args& args) {
  trace::SyntheticProfile profile =
      trace::profile_by_name(args.get("profile", "alibaba"));
  if (args.has("nodes")) {
    profile.num_nodes = static_cast<std::size_t>(args.get_int("nodes", 0));
  }
  if (args.has("steps")) {
    profile.num_steps = static_cast<std::size_t>(args.get_int("steps", 0));
  }
  if (args.get_bool("full")) profile = trace::scale_to_paper(profile);
  const std::string out_path = args.get("out", "");
  if (out_path.empty()) {
    std::cerr << "generate: --out FILE is required\n";
    return 2;
  }

  const trace::InMemoryTrace t =
      trace::generate(profile, args.get_int("seed", 1));
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "generate: cannot open " << out_path << "\n";
    return 1;
  }
  trace::save_csv(t, out);
  std::cout << "wrote " << t.num_nodes() << " nodes x " << t.num_steps()
            << " steps (" << profile.name << " profile) to " << out_path
            << "\n";
  return 0;
}

int cmd_monitor(const Args& args) {
  const std::string trace_path = args.get("trace", "");
  if (trace_path.empty()) {
    std::cerr << "monitor: --trace FILE is required\n";
    return 2;
  }
  const trace::InMemoryTrace t = trace::load_csv_file(trace_path);

  core::PipelineOptions options;
  options.max_frequency = args.get_double("b", 0.3);
  options.num_clusters = static_cast<std::size_t>(args.get_int("k", 3));
  options.forecaster =
      forecast::forecaster_kind_from_string(args.get("model", "arima"));
  options.schedule = {
      .initial_steps = static_cast<std::size_t>(args.get_int("initial", 400)),
      .retrain_interval =
          static_cast<std::size_t>(args.get_int("retrain", 288))};
  options.seed = args.get_int("seed", 1);
  options.num_threads = args.get_threads();

  const std::size_t h = static_cast<std::size_t>(args.get_int("h", 5));
  obs::TraceBuffer trace_events;
  if (args.has("trace-out")) options.trace_events = &trace_events;
  core::MonitoringPipeline pipeline(t, options);

  Table report({"step", "RMSE h=0", std::string("RMSE h=") +
                                        std::to_string(h)});
  core::RmseAccumulator now, ahead;
  const std::size_t report_stride = std::max<std::size_t>(
      1, t.num_steps() / 50);
  while (!pipeline.done()) {
    pipeline.step();
    const std::size_t step = pipeline.current_step() - 1;
    const double r0 = pipeline.rmse_at(0);
    now.add(r0);
    double rh = 0.0;
    if (step + h < t.num_steps()) {
      rh = pipeline.rmse_at(h);
      ahead.add(rh);
    }
    if (step % report_stride == 0) {
      report.add_row({static_cast<double>(step), r0, rh});
    }
  }

  std::cout << "trace: " << t.num_nodes() << " nodes x " << t.num_steps()
            << " steps, " << t.num_resources() << " resources\n"
            << "budget B = " << options.max_frequency << ", actual "
            << pipeline.collector().average_actual_frequency() << "\n"
            << "bytes on the wire: "
            << pipeline.collector().link().bytes_sent() << "\n"
            << "time-averaged RMSE h=0: " << now.value() << "\n"
            << "time-averaged RMSE h=" << h << ": " << ahead.value()
            << "\n";
  if (args.has("report")) {
    report.save_csv(args.get("report", ""));
    std::cout << "per-step report written to " << args.get("report", "")
              << "\n";
  }
  if (args.has("metrics-out")) {
    obs::write_metrics_file(args.get("metrics-out", ""), pipeline.metrics());
    std::cout << "metrics written to " << args.get("metrics-out", "") << "\n";
  }
  if (args.has("trace-out")) {
    obs::write_trace_file(args.get("trace-out", ""), trace_events);
    std::cout << "trace events written to " << args.get("trace-out", "")
              << "\n";
  }
  return 0;
}

int cmd_choose_k(const Args& args) {
  const std::string trace_path = args.get("trace", "");
  if (trace_path.empty()) {
    std::cerr << "choose-k: --trace FILE is required\n";
    return 2;
  }
  const trace::InMemoryTrace t = trace::load_csv_file(trace_path);
  const std::size_t kmax = std::min<std::size_t>(
      static_cast<std::size_t>(args.get_int("kmax", 12)), t.num_nodes());
  // Sample snapshots across the trace and score K on each node's sampled
  // series of the first resource.
  const std::size_t stride = std::max<std::size_t>(
      1, static_cast<std::size_t>(args.get_int("sample-step", 25)));
  const std::size_t samples = t.num_steps() / stride;
  Matrix points(t.num_nodes(), samples);
  for (std::size_t i = 0; i < t.num_nodes(); ++i) {
    for (std::size_t s = 0; s < samples; ++s) {
      points(i, s) = t.value(i, s * stride, 0);
    }
  }
  Rng rng(args.get_int("seed", 1));
  const cluster::KSelection sel = cluster::choose_k(points, 2, kmax, rng);

  Table table({"K", "inertia", "silhouette"});
  for (std::size_t i = 0; i < sel.ks.size(); ++i) {
    table.add_row({static_cast<double>(sel.ks[i]), sel.inertias[i],
                   sel.silhouettes[i]});
  }
  table.print(std::cout);
  std::cout << "\nrecommended K = " << sel.best_k
            << " (max silhouette)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "scenario") return cmd_scenario(argc, argv);
    const Args args(argc - 1, argv + 1);
    if (command == "generate") return cmd_generate(args);
    if (command == "monitor") return cmd_monitor(args);
    if (command == "choose-k") return cmd_choose_k(args);
    if (command == "host-sample") return cmd_host_sample(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "resmon " << command << ": " << e.what() << "\n";
    return 1;
  }
}
