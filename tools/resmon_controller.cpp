// resmon_controller — the central node, serving agents over TCP.
//
// Listens for N resmon_agent connections, then runs the paper's slot loop:
// each slot it drains the agents' measurement frames into the monitoring
// pipeline (external-collection mode) and advances clustering + forecasting.
// Exits 0 iff the central store became complete and the forecast RMSE is
// finite — the localhost smoke test in CI keys off that.
//
//   resmon_controller --port 0 --nodes 8 --steps 200 --dataset alibaba
//       --seed 1 [--b 0.3] [--k 3] [--model hold] [--threads 1]
//       [--resources N] [--stale-after-ms MS] [--dead-after-ms MS]
//       [--fault-spec SPEC]
//       [--shards M] [--metrics-port 0] [--metrics-linger-ms 2000]
//       [--metrics-out file.prom] [--trace-out file.jsonl] [--version]
//
// --stale-after-ms/--dead-after-ms enable graceful degradation: a node
// silent that long is marked STALE (the slot barrier stops waiting for it;
// its last stored sample feeds clustering and forecasting) respectively
// DEAD (evicted; a reconnect rejoins it). --fault-spec applies the spec's
// partition windows on the inbound side, discarding frames from the listed
// nodes during those slots.
//
// With --port 0 the kernel picks a free port; the chosen one is printed as
//   resmon_controller listening on 127.0.0.1:PORT
// so wrapper scripts can pass it to the agents. --resources N sizes the
// wire dimension for agents that sample live hosts instead of the shared
// trace (resmon_agent --source procfs is d = 4); accuracy is then scored
// against a zero trace, so only RMSE finiteness is meaningful.
// --metrics-port opens a
// second listener serving the live Prometheus exposition (printed as
//   resmon_controller metrics endpoint on 127.0.0.1:PORT
// — a distinct phrasing so port-parsing scripts cannot confuse the two);
// --metrics-linger-ms keeps the endpoint answering scrapes after the slot
// loop, returning early once one scrape lands. --shards M runs the
// two-tier root: M resmon_aggregator processes front the agents and the
// controller consumes their compacted slot summaries instead of direct
// agent frames (README "Networked quickstart", DESIGN.md "Hierarchical
// collection").
#include <cmath>
#include <iostream>

#include "common/cli.hpp"
#include "core/pipeline.hpp"
#include "faultnet/agent_hook.hpp"
#include "net/controller.hpp"
#include "net/socket.hpp"
#include "net_common.hpp"
#include "obs/export.hpp"

using namespace resmon;

int main(int argc, char** argv) {
  try {
    const Args args(argc, argv);
    if (tools::handle_version(args, "resmon_controller")) return 0;
    std::cout << tools::version_line("resmon_controller") << '\n'
              << std::flush;
    const std::size_t slots = tools::run_slots(args);
    const std::string host = args.get("host", "127.0.0.1");
    // --resources N overrides the wire dimension for agents that do not
    // read the shared synthetic trace (resmon_agent --source procfs is
    // d = 4). Forecast accuracy is then measured against an all-zeros
    // ground truth — RMSE stays finite, which is all the RESULT line
    // asserts — because the controller has no oracle for live hosts.
    const trace::InMemoryTrace trace =
        args.has("resources")
            ? trace::InMemoryTrace(
                  static_cast<std::size_t>(args.get_int("nodes", 1)),
                  slots + tools::kForecastLookahead,
                  static_cast<std::size_t>(args.get_int("resources", 4)))
            : tools::build_trace(args);

    obs::MetricsRegistry registry;
    obs::TraceBuffer trace_events;

    net::ControllerOptions copts;
    copts.num_nodes = trace.num_nodes();
    copts.num_resources = trace.num_resources();
    copts.metrics = &registry;
    copts.stale_after_ms =
        static_cast<int>(args.get_int("stale-after-ms", 0));
    copts.dead_after_ms = static_cast<int>(args.get_int("dead-after-ms", 0));
    // --shards M enables the two-tier root: M resmon_aggregator processes
    // connect with shard hellos and forward compacted slot summaries.
    copts.num_shards = static_cast<std::size_t>(args.get_int("shards", 0));
    copts.log_sink = [](const std::string& line) {
      std::cerr << "resmon_controller: " << line << "\n";
    };
    if (args.has("fault-spec")) {
      copts.block_hook = faultnet::make_controller_block_hook(
          faultnet::FaultSpec::parse(args.get("fault-spec", "")), &registry);
    }
    net::Controller controller(
        net::Socket::listen_tcp(
            host, static_cast<std::uint16_t>(args.get_int("port", 0))),
        copts);
    std::cout << "resmon_controller listening on " << host << ":"
              << controller.port() << '\n'
              << std::flush;  // flush: scripts parse this

    if (args.has("metrics-port")) {
      controller.serve_metrics(net::Socket::listen_tcp(
          host, static_cast<std::uint16_t>(args.get_int("metrics-port", 0))));
      std::cout << "resmon_controller metrics endpoint on " << host << ":"
                << controller.metrics_port() << '\n'
                << std::flush;
    }

    const int wait_ms = static_cast<int>(args.get_int("wait-ms", 30000));
    if (copts.num_shards > 0 &&
        !controller.wait_for_shards(copts.num_shards, wait_ms)) {
      std::cerr << "resmon_controller: only " << controller.shards_seen()
                << "/" << copts.num_shards << " shards connected within "
                << wait_ms << " ms\n";
      return 1;
    }
    if (!controller.wait_for_agents(trace.num_nodes(), wait_ms)) {
      std::cerr << "resmon_controller: only " << controller.nodes_seen()
                << "/" << trace.num_nodes() << " agents connected within "
                << wait_ms << " ms\n";
      return 1;
    }
    if (copts.num_shards > 0) {
      std::cout << "all " << copts.num_shards << " shards connected ("
                << trace.num_nodes() << " nodes fronted)\n"
                << std::flush;
    } else {
      std::cout << "all " << trace.num_nodes() << " agents connected\n"
                << std::flush;
    }

    core::PipelineOptions popts;
    popts.max_frequency = args.get_double("b", 0.3);
    popts.num_clusters = static_cast<std::size_t>(args.get_int("k", 3));
    popts.forecaster =
        forecast::forecaster_kind_from_string(args.get("model", "hold"));
    popts.schedule = {
        .initial_steps =
            static_cast<std::size_t>(args.get_int("initial", 50)),
        .retrain_interval =
            static_cast<std::size_t>(args.get_int("retrain", 288))};
    popts.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    popts.num_threads = args.get_threads();
    popts.metrics = &registry;
    popts.trace_events = &trace_events;
    core::MonitoringPipeline pipeline(trace, popts,
                                      core::ExternalCollection{});

    const int slot_timeout_ms =
        static_cast<int>(args.get_int("slot-timeout-ms", 10000));
    for (std::size_t t = 0; t < slots; ++t) {
      auto messages = controller.collect_slot(t, slot_timeout_ms);
      if (!messages.has_value()) {
        std::cerr << "resmon_controller: slot " << t << " timed out ("
                  << controller.connected_agents() << " agents connected)\n";
        return 1;
      }
      pipeline.step_external(*messages);
    }

    // Keep the metrics endpoint live after the run so scrapers see the
    // final counter values; one completed scrape ends the linger early.
    const int linger_ms =
        static_cast<int>(args.get_int("metrics-linger-ms", 0));
    if (linger_ms > 0) {
      controller.pump_idle(linger_ms, controller.metrics_scrapes() + 1);
    }

    if (args.has("metrics-out")) {
      obs::write_metrics_file(args.get("metrics-out", ""), registry);
    }
    if (args.has("trace-out")) {
      obs::write_trace_file(args.get("trace-out", ""), trace_events);
    }

    const bool complete = pipeline.central_store().complete();
    const double rmse = pipeline.rmse_at(1);
    const double freq =
        static_cast<double>(controller.frames_received()) /
        (static_cast<double>(slots) * static_cast<double>(trace.num_nodes()));
    std::cout << "slots processed:   " << slots << "\n"
              << "frames received:   " << controller.frames_received()
              << " (" << controller.bytes_received() << " bytes, "
              << freq << " frames/node/slot)\n"
              << "store complete:    " << (complete ? "yes" : "no") << "\n"
              << "forecast RMSE h=1: " << rmse << "\n";
    if (copts.num_shards > 0) {
      std::cout << "shard summaries:   " << controller.summaries_received()
                << " (" << controller.summary_measurements()
                << " measurements)\n";
    }
    if (copts.stale_after_ms > 0 || copts.block_hook) {
      std::cout << "degradation:       " << controller.stale_transitions()
                << " stale, " << controller.dead_transitions() << " dead, "
                << controller.rejoins() << " rejoins, "
                << controller.degraded_slots() << " degraded slots, "
                << controller.blocked_frames() << " blocked frames\n"
                << "node states:      ";
      for (std::size_t n = 0; n < trace.num_nodes(); ++n) {
        std::cout << " " << n << "="
                  << net::node_state_name(controller.node_state(n));
      }
      std::cout << "\n";
    }
    std::cout << "RESULT complete=" << (complete ? 1 : 0)
              << " rmse_finite=" << (std::isfinite(rmse) ? 1 : 0) << '\n'
              << std::flush;
    return complete && std::isfinite(rmse) ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "resmon_controller: " << e.what() << "\n";
    return 1;
  }
}
