// resmon_lint: project-invariant static checker (DESIGN.md "Static analysis
// & invariants").
//
// Walks the source tree, lexes every .cpp/.hpp, and enforces the resmon rule
// catalogue (determinism, header hygiene, safety). Violations print as
//
//   path:line: error: [rule] message
//
// and make the tool exit 1, so CI and scripts/check_lint.sh can gate on it.
// Sanctioned exceptions live in tools/lint_allowlist.txt — every entry needs
// a '# reason' comment — or inline as '// resmon-lint-allow(rule): reason'.
// The module dependency DAG for the layering rule lives in
// tools/lint_layers.txt; a malformed or cyclic DAG is exit 2, like a
// malformed allowlist.
//
// Usage:
//   resmon_lint [--root DIR] [--allowlist FILE] [--layers FILE]
//               [--list-rules] [--summary] [paths...]
//
// With no paths, scans src/ tools/ bench/ examples/ tests/ under --root
// (default: the current directory). --summary appends a per-rule finding
// count table after the diagnostics.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint/checker.hpp"

namespace fs = std::filesystem;

namespace {

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

// Repo-relative path with forward slashes (rule scoping matches on these).
std::string rel_path(const fs::path& p, const fs::path& root) {
  return fs::relative(p, root).generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  fs::path allowlist_path;
  fs::path layers_path;
  bool summary = false;
  std::vector<std::string> explicit_paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--allowlist" && i + 1 < argc) {
      allowlist_path = argv[++i];
    } else if (arg == "--layers" && i + 1 < argc) {
      layers_path = argv[++i];
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--list-rules") {
      for (const auto& name : resmon::lint::rule_names()) {
        std::cout << name << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: resmon_lint [--root DIR] [--allowlist FILE] "
                   "[--layers FILE] [--list-rules] [--summary] [paths...]\n";
      return 0;
    } else {
      explicit_paths.push_back(arg);
    }
  }
  root = fs::absolute(root).lexically_normal();
  if (allowlist_path.empty()) {
    allowlist_path = root / "tools" / "lint_allowlist.txt";
  }
  if (layers_path.empty()) {
    layers_path = root / "tools" / "lint_layers.txt";
  }

  resmon::lint::Allowlist allow;
  if (fs::exists(allowlist_path)) {
    allow = resmon::lint::parse_allowlist(read_file(allowlist_path));
  }
  if (!allow.errors.empty()) {
    for (const auto& e : allow.errors) {
      std::cerr << allowlist_path.string() << ": error: " << e << "\n";
    }
    return 2;
  }

  resmon::lint::LayerGraph layers;
  bool have_layers = false;
  if (fs::exists(layers_path)) {
    layers = resmon::lint::parse_layers(read_file(layers_path));
    have_layers = true;
  }
  if (!layers.errors.empty()) {
    for (const auto& e : layers.errors) {
      std::cerr << layers_path.string() << ": error: " << e << "\n";
    }
    return 2;
  }

  // Collect files: explicit paths, or the default roots.
  std::vector<fs::path> files;
  auto add_tree = [&](const fs::path& dir) {
    if (!fs::exists(dir)) return;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (entry.is_regular_file() && lintable(entry.path())) {
        files.push_back(entry.path());
      }
    }
  };
  if (explicit_paths.empty()) {
    for (const char* d : {"src", "tools", "bench", "examples", "tests"}) {
      add_tree(root / d);
    }
  } else {
    for (const auto& p : explicit_paths) {
      const fs::path abs = fs::absolute(p);
      if (fs::is_directory(abs)) {
        add_tree(abs);
      } else {
        files.push_back(abs);
      }
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<bool> entry_used(allow.entries.size(), false);
  std::map<std::string, std::size_t> per_rule;
  std::size_t findings = 0;
  auto report = [&](const resmon::lint::Finding& f) {
    std::cout << f.path << ":" << f.line << ": error: [" << f.rule << "] "
              << f.message << "\n";
    ++per_rule[f.rule];
    ++findings;
  };
  // (path, content) pairs of the src/ files in this run feed the
  // include-cycle pass below.
  std::vector<std::pair<std::string, std::string>> src_sources;
  for (const auto& file : files) {
    const std::string rel = rel_path(file, root);
    const std::string content = read_file(file);
    if (rel.rfind("src/", 0) == 0) src_sources.emplace_back(rel, content);
    std::vector<bool> used;
    const auto result = resmon::lint::check_source(
        rel, content, allow, &used, have_layers ? &layers : nullptr);
    for (std::size_t i = 0; i < used.size(); ++i) {
      if (used[i]) entry_used[i] = true;
    }
    for (const auto& f : result) report(f);
  }
  for (const auto& f : resmon::lint::check_include_cycles(src_sources)) {
    report(f);
  }

  // Stale allowlist entries are a warning, not an error: some entries (e.g.
  // common/rng.hpp) document policy even while the file is currently clean.
  for (std::size_t i = 0; i < allow.entries.size(); ++i) {
    if (!entry_used[i]) {
      std::cerr << "warning: allowlist entry '" << allow.entries[i].rule << " "
                << allow.entries[i].path << "' suppressed nothing\n";
    }
  }

  // --summary: one line per rule in catalogue order, zeros included, so CI
  // logs show at a glance which walls fired (and that all of them ran).
  if (summary) {
    std::cout << "rule summary:\n";
    for (const auto& name : resmon::lint::rule_names()) {
      const auto it = per_rule.find(name);
      std::cout << "  " << name << ": "
                << (it == per_rule.end() ? 0 : it->second) << "\n";
    }
  }

  if (findings != 0) {
    std::cerr << "resmon_lint: " << findings << " violation(s) in "
              << files.size() << " file(s)\n";
    return 1;
  }
  std::cout << "resmon_lint: " << files.size() << " files clean\n";
  return 0;
}
