// Shared flag handling for resmon_agent / resmon_controller.
//
// Both binaries must construct the *identical* synthetic trace from the
// shared --dataset/--nodes/--steps/--seed flags: agents read their own
// node's measurements from it, the controller uses it as ground truth for
// RMSE. Any asymmetry here would silently break the bit-identical
// equivalence between the TCP path and the in-process LoopbackLink path,
// so the construction lives in exactly one place.
#pragma once

#include <iostream>
#include <string>

#include "collect/fleet_collector.hpp"
#include "common/cli.hpp"
#include "net/wire.hpp"
#include "trace/synthetic.hpp"

#ifndef RESMON_VERSION
#define RESMON_VERSION "unknown"
#endif

namespace resmon::tools {

/// The "NAME VERSION (wire protocol vP)" line: printed alone for
/// --version, and as a startup banner so mismatched binaries are easy to
/// spot in mixed-version deployments.
inline std::string version_line(const std::string& name) {
  return name + " " + RESMON_VERSION + " (wire protocol v" +
         std::to_string(static_cast<int>(net::wire::kProtocolVersion)) + ")";
}

/// Handle --version: print the version line and return true (caller exits 0).
inline bool handle_version(const Args& args, const std::string& name) {
  if (!args.has("version")) return false;
  std::cout << version_line(name) << '\n' << std::flush;
  return true;
}

/// Slots the run processes (the trace is longer; see build_trace).
inline std::size_t run_slots(const Args& args) {
  return static_cast<std::size_t>(args.get_int("steps", 200));
}

/// Extra trace steps beyond the processed slots so h-step-ahead forecasts
/// always have ground truth.
inline constexpr std::size_t kForecastLookahead = 8;

/// The deterministic trace both sides of the wire share.
inline trace::InMemoryTrace build_trace(const Args& args) {
  trace::SyntheticProfile profile =
      trace::profile_by_name(args.get("dataset", "alibaba"));
  profile.num_nodes = static_cast<std::size_t>(args.get_int("nodes", 8));
  profile.num_steps = run_slots(args) + kForecastLookahead;
  return trace::generate(profile,
                         static_cast<std::uint64_t>(args.get_int("seed", 1)));
}

inline collect::PolicyKind policy_kind(const Args& args) {
  const std::string name = args.get("policy", "adaptive");
  if (name == "adaptive") return collect::PolicyKind::kAdaptive;
  if (name == "uniform") return collect::PolicyKind::kUniform;
  if (name == "always") return collect::PolicyKind::kAlways;
  if (name == "deadband") return collect::PolicyKind::kDeadband;
  throw InvalidArgument("unknown --policy: " + name);
}

/// One policy instance configured from the shared flags.
inline std::unique_ptr<collect::TransmitPolicy> make_policy(const Args& args) {
  return collect::make_policy_factory(
      policy_kind(args), args.get_double("b", 0.3),
      args.get_double("v0", 1e-12), args.get_double("gamma", 0.65),
      args.get_bool("clamp-queue"))();
}

}  // namespace resmon::tools
