// resmon_agent — one local node of the star topology, over TCP.
//
// Where the slot measurements come from is selected by --source:
//
//   trace   (default) rebuild the shared synthetic trace and read this
//           node's series from it — both ends must pass identical
//           --dataset/--nodes/--steps/--seed flags;
//   procfs  sample the live host (or one process tree) through the
//           src/host backend: d = 4 measurements [cpu, memory, io, net]
//           per --interval-ms, optionally persisted with --record FILE so
//           the run is replayable;
//   replay  re-run a --record file bit-identically: zero clock or procfs
//           reads, slot count taken from the recording.
//
// Each slot the §V-A transmit policy decides whether to push the
// measurement to the controller; silent slots carry a heartbeat so the
// controller's slot barrier advances. Connection losses reconnect with
// bounded exponential backoff.
//
//   resmon_agent --port PORT --node 3 --nodes 8 --steps 200
//       --dataset alibaba --seed 1 [--policy adaptive] [--b 0.3]
//       [--source trace|procfs|replay] [--pid P|self] [--interval-ms N]
//       [--procfs-root DIR] [--record FILE] [--replay FILE]
//       [--fault-spec "drop=0.05;corrupt=0.01"] [--start-step S]
//       [--slot-delay-ms MS] [--metrics-out file.prom] [--list-sources]
//       [--version]
//
// The controller must be started with matching dimensions: the trace flags
// for --source trace, or --resources 4 (and the same --nodes/--steps) for
// procfs/replay agents. --fault-spec injects chaos into this agent's own
// uplink (grammar in faultnet/fault_spec.hpp); --start-step resumes a
// restarted agent mid-run (slots before S are skipped, as if the process
// was down for them); --slot-delay-ms paces the slot loop so wall-clock
// staleness policies have time to observe silence (procfs sources already
// pace themselves to --interval-ms).
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <thread>

#include "common/cli.hpp"
#include "faultnet/agent_hook.hpp"
#include "host/procfs.hpp"
#include "host/recording.hpp"
#include "host/sampler.hpp"
#include "host/source.hpp"
#include "net/agent.hpp"
#include "net_common.hpp"
#include "obs/export.hpp"

using namespace resmon;

namespace {

void list_sources() {
  std::cout
      << "resmon_agent measurement sources (--source NAME):\n"
         "  trace   shared synthetic trace; needs matching "
         "--dataset/--nodes/--steps/--seed on the controller (default)\n"
         "  procfs  live host sampling via --procfs-root (default /proc): "
         "d = 4 [cpu, memory, io, net], one sample per --interval-ms; "
         "--pid P|self watches a process tree instead of the whole host; "
         "--record FILE persists a replayable recording\n"
         "  replay  bit-identical re-run of a --record file "
         "(--replay FILE); no clock or procfs reads\n";
}

/// The watched-pid set from --pid ("self" = this process).
std::vector<std::uint64_t> watch_pids(const Args& args) {
  if (!args.has("pid")) return {};
  const std::string pid = args.get("pid", "");
  if (pid == "self") {
    return {static_cast<std::uint64_t>(::getpid())};
  }
  return {static_cast<std::uint64_t>(args.get_int("pid", 0))};
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args(argc, argv);
    if (tools::handle_version(args, "resmon_agent")) return 0;
    if (args.has("list-sources")) {
      list_sources();
      return 0;
    }
    std::cout << tools::version_line("resmon_agent") << '\n' << std::flush;
    const std::string source_name = args.get("source", "trace");
    const std::size_t node =
        static_cast<std::size_t>(args.get_int("node", 0));

    obs::MetricsRegistry registry;

    // Build the measurement source. `slots` and the wire dimension depend
    // on it: recordings carry their own length and d.
    std::size_t slots = tools::run_slots(args);
    std::size_t num_resources = 0;
    std::optional<trace::InMemoryTrace> trace;
    std::unique_ptr<host::DirProcfs> procfs;
    std::unique_ptr<host::HostSampler> sampler;
    std::ofstream record_out;
    std::unique_ptr<host::RecordingWriter> recorder;
    std::unique_ptr<collect::MeasurementSource> source;

    if (source_name == "trace") {
      trace.emplace(tools::build_trace(args));
      if (node >= trace->num_nodes()) {
        std::cerr << "resmon_agent: --node " << node
                  << " out of range (N = " << trace->num_nodes() << ")\n";
        return 2;
      }
      num_resources = trace->num_resources();
      source = std::make_unique<collect::TraceSource>(*trace, node);
    } else if (source_name == "procfs") {
      const std::uint64_t interval_ms =
          static_cast<std::uint64_t>(args.get_int("interval-ms", 100));
      procfs = std::make_unique<host::DirProcfs>(
          args.get("procfs-root", "/proc"));
      host::HostSamplerOptions hopts;
      hopts.watch_pids = watch_pids(args);
      hopts.page_size =
          static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
      hopts.metrics = &registry;
      sampler = std::make_unique<host::HostSampler>(*procfs, hopts);
      num_resources = host::HostSampler::kNumResources;
      host::ProcfsSamplerSource::Options sopts;
      sopts.interval_ms = interval_ms;
      if (args.has("record")) {
        record_out.open(args.get("record", ""));
        if (!record_out) {
          std::cerr << "resmon_agent: --record: cannot open "
                    << args.get("record", "") << "\n";
          return 2;
        }
        recorder = std::make_unique<host::RecordingWriter>(
            record_out, interval_ms, num_resources);
        sopts.recorder = recorder.get();
      }
      source =
          std::make_unique<host::ProcfsSamplerSource>(*sampler, sopts);
    } else if (source_name == "replay") {
      if (!args.has("replay")) {
        std::cerr << "resmon_agent: --source replay needs --replay FILE\n";
        return 2;
      }
      host::Recording recording =
          host::read_recording_file(args.get("replay", ""));
      slots = recording.rows.size();
      num_resources = recording.num_resources();
      source = std::make_unique<host::ReplaySource>(std::move(recording));
    } else {
      std::cerr << "resmon_agent: unknown --source '" << source_name
                << "' (try --list-sources)\n";
      return 2;
    }

    if (!args.has("port")) {
      std::cerr << "resmon_agent: --port is required\n";
      return 2;
    }

    net::AgentOptions opts;
    opts.host = args.get("host", "127.0.0.1");
    opts.port = static_cast<std::uint16_t>(args.get_int("port", 0));
    opts.node = static_cast<std::uint32_t>(node);
    opts.num_resources = static_cast<std::uint32_t>(num_resources);
    opts.max_reconnect_attempts =
        static_cast<std::size_t>(args.get_int("reconnect-attempts", 8));
    opts.metrics = &registry;
    if (args.has("fault-spec")) {
      opts.frame_hook = faultnet::make_agent_fault_hook(
          faultnet::FaultSpec::parse(args.get("fault-spec", "")),
          opts.node, &registry);
    }
    net::Agent agent(opts, tools::make_policy(args));
    agent.connect();

    const std::size_t start =
        static_cast<std::size_t>(args.get_int("start-step", 0));
    const int slot_delay_ms =
        static_cast<int>(args.get_int("slot-delay-ms", 0));
    for (std::size_t t = start; t < slots; ++t) {
      agent.observe(t, source->measurement(t));
      if (slot_delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(slot_delay_ms));
      }
    }
    if (recorder != nullptr) recorder->finish();

    if (args.has("metrics-out")) {
      obs::write_metrics_file(args.get("metrics-out", ""), registry);
    }

    std::cout << "resmon_agent " << node << ": "
              << agent.measurements_sent() << "/" << slots
              << " measurements ("
              << agent.policy().actual_frequency() << " actual vs B = "
              << agent.policy().frequency_constraint() << "), "
              << agent.bytes_sent() << " bytes, " << agent.reconnects()
              << " reconnects";
    if (sampler != nullptr) {
      std::cout << ", " << sampler->samples_taken() << " host samples";
    }
    std::cout << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "resmon_agent: " << e.what() << "\n";
    return 1;
  }
}
