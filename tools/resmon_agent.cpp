// resmon_agent — one local node of the star topology, over TCP.
//
// Rebuilds the shared synthetic trace, reads its own node's measurements
// from it, and lets the §V-A transmit policy decide each slot whether to
// push the measurement to the controller; silent slots carry a heartbeat so
// the controller's slot barrier advances. Connection losses reconnect with
// bounded exponential backoff.
//
//   resmon_agent --port PORT --node 3 --nodes 8 --steps 200
//       --dataset alibaba --seed 1 [--policy adaptive] [--b 0.3]
//       [--fault-spec "drop=0.05;corrupt=0.01"] [--start-step S]
//       [--slot-delay-ms MS] [--metrics-out file.prom] [--version]
//
// The trace flags (--dataset/--nodes/--steps/--seed) must match the
// controller's exactly. --fault-spec injects chaos into this agent's own
// uplink (grammar in faultnet/fault_spec.hpp); --start-step resumes a
// restarted agent mid-run (slots before S are skipped, as if the process
// was down for them); --slot-delay-ms paces the slot loop so wall-clock
// staleness policies have time to observe silence.
#include <chrono>
#include <iostream>
#include <thread>

#include "common/cli.hpp"
#include "faultnet/agent_hook.hpp"
#include "net/agent.hpp"
#include "net_common.hpp"
#include "obs/export.hpp"

using namespace resmon;

int main(int argc, char** argv) {
  try {
    const Args args(argc, argv);
    if (tools::handle_version(args, "resmon_agent")) return 0;
    std::cout << tools::version_line("resmon_agent") << '\n' << std::flush;
    const trace::InMemoryTrace trace = tools::build_trace(args);
    const std::size_t slots = tools::run_slots(args);
    const std::size_t node =
        static_cast<std::size_t>(args.get_int("node", 0));
    if (node >= trace.num_nodes()) {
      std::cerr << "resmon_agent: --node " << node << " out of range (N = "
                << trace.num_nodes() << ")\n";
      return 2;
    }
    if (!args.has("port")) {
      std::cerr << "resmon_agent: --port is required\n";
      return 2;
    }

    obs::MetricsRegistry registry;

    net::AgentOptions opts;
    opts.host = args.get("host", "127.0.0.1");
    opts.port = static_cast<std::uint16_t>(args.get_int("port", 0));
    opts.node = static_cast<std::uint32_t>(node);
    opts.num_resources = static_cast<std::uint32_t>(trace.num_resources());
    opts.max_reconnect_attempts =
        static_cast<std::size_t>(args.get_int("reconnect-attempts", 8));
    opts.metrics = &registry;
    if (args.has("fault-spec")) {
      opts.frame_hook = faultnet::make_agent_fault_hook(
          faultnet::FaultSpec::parse(args.get("fault-spec", "")),
          opts.node, &registry);
    }
    net::Agent agent(opts, tools::make_policy(args));
    agent.connect();

    const std::size_t start =
        static_cast<std::size_t>(args.get_int("start-step", 0));
    const int slot_delay_ms =
        static_cast<int>(args.get_int("slot-delay-ms", 0));
    for (std::size_t t = start; t < slots; ++t) {
      agent.observe(t, trace.measurement(node, t));
      if (slot_delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(slot_delay_ms));
      }
    }

    if (args.has("metrics-out")) {
      obs::write_metrics_file(args.get("metrics-out", ""), registry);
    }

    std::cout << "resmon_agent " << node << ": "
              << agent.measurements_sent() << "/" << slots
              << " measurements ("
              << agent.policy().actual_frequency() << " actual vs B = "
              << agent.policy().frequency_constraint() << "), "
              << agent.bytes_sent() << " bytes, " << agent.reconnects()
              << " reconnects\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "resmon_agent: " << e.what() << "\n";
    return 1;
  }
}
