// resmon_aggregator — the intermediate tier of a two-tier fleet, over TCP.
//
// Fronts one contiguous shard of resmon_agent processes: accepts their
// connections with the unchanged wire protocol, runs the LIVE/STALE/DEAD
// staleness machine locally, completes the shard's slot barrier each slot,
// and forwards a compacted kSlotSummary upstream to the root
// resmon_controller (which must run with --shards M). Heartbeats never
// leave the shard — the summary itself is the progress signal — so the
// root's connection count and frame rate stay flat as shards grow.
//
//   resmon_aggregator --shard 0 --shards 2 --upstream-port PORT
//       --port 0 --nodes 6 --steps 200 --dataset alibaba --seed 1
//       [--host 127.0.0.1] [--stale-after-ms MS] [--dead-after-ms MS]
//       [--status-every 8] [--metrics-port 0] [--metrics-linger-ms MS]
//       [--metrics-out file.prom] [--version]
//
// The trace flags (--dataset/--nodes/--steps/--seed) must match the rest
// of the fleet: they determine the fleet size and dimensionality the shard
// announces upstream. The shard's node range is derived from
// --shard/--shards over --nodes (contiguous partition, same formula the
// scenario runner uses). Port announcements mirror resmon_controller:
//   resmon_aggregator listening on HOST:PORT
//   resmon_aggregator metrics endpoint on HOST:PORT
#include <iostream>

#include "agg/aggregator.hpp"
#include "common/cli.hpp"
#include "net/socket.hpp"
#include "net_common.hpp"
#include "obs/export.hpp"

using namespace resmon;

int main(int argc, char** argv) {
  try {
    const Args args(argc, argv);
    if (tools::handle_version(args, "resmon_aggregator")) return 0;
    std::cout << tools::version_line("resmon_aggregator") << '\n'
              << std::flush;
    const trace::InMemoryTrace trace = tools::build_trace(args);
    const std::size_t slots = tools::run_slots(args);
    const std::string host = args.get("host", "127.0.0.1");
    const std::size_t shard =
        static_cast<std::size_t>(args.get_int("shard", 0));
    const std::size_t num_shards =
        static_cast<std::size_t>(args.get_int("shards", 1));
    if (shard >= num_shards) {
      std::cerr << "resmon_aggregator: --shard " << shard
                << " out of range (--shards " << num_shards << ")\n";
      return 2;
    }
    if (!args.has("upstream-port")) {
      std::cerr << "resmon_aggregator: --upstream-port is required\n";
      return 2;
    }
    const agg::ShardRange range =
        agg::shard_range(trace.num_nodes(), num_shards, shard);

    obs::MetricsRegistry registry;

    agg::AggregatorOptions opts;
    opts.shard = shard;
    opts.first_node = range.first_node;
    opts.num_nodes = range.num_nodes;
    opts.num_resources = trace.num_resources();
    opts.upstream_host = args.get("upstream-host", host);
    opts.upstream_port =
        static_cast<std::uint16_t>(args.get_int("upstream-port", 0));
    opts.stale_after_ms =
        static_cast<int>(args.get_int("stale-after-ms", 0));
    opts.dead_after_ms = static_cast<int>(args.get_int("dead-after-ms", 0));
    opts.status_every_slots =
        static_cast<std::size_t>(args.get_int("status-every", 8));
    // One registry for both the resmon_agg_* families and the internal
    // controller's resmon_net_* families, so a single /metrics scrape sees
    // the whole shard.
    opts.metrics = &registry;
    opts.net_metrics = &registry;
    opts.log_sink = [](const std::string& line) {
      std::cerr << "resmon_aggregator: " << line << "\n";
    };

    agg::Aggregator aggregator(
        net::Socket::listen_tcp(
            host, static_cast<std::uint16_t>(args.get_int("port", 0))),
        opts);
    std::cout << "resmon_aggregator listening on " << host << ":"
              << aggregator.port() << '\n'
              << std::flush;  // flush: scripts parse this

    if (args.has("metrics-port")) {
      aggregator.serve_metrics(net::Socket::listen_tcp(
          host, static_cast<std::uint16_t>(args.get_int("metrics-port", 0))));
      std::cout << "resmon_aggregator metrics endpoint on " << host << ":"
                << aggregator.metrics_port() << '\n'
                << std::flush;
    }

    aggregator.connect_upstream();

    const int wait_ms = static_cast<int>(args.get_int("wait-ms", 30000));
    if (!aggregator.wait_for_agents(range.num_nodes, wait_ms)) {
      std::cerr << "resmon_aggregator: only "
                << aggregator.downstream().nodes_seen() << "/"
                << range.num_nodes << " shard agents connected within "
                << wait_ms << " ms\n";
      return 1;
    }
    std::cout << "all " << range.num_nodes << " shard agents connected\n"
              << std::flush;

    const int slot_timeout_ms =
        static_cast<int>(args.get_int("slot-timeout-ms", 10000));
    for (std::size_t t = 0; t < slots; ++t) {
      if (!aggregator.forward_slot(t, slot_timeout_ms)) {
        std::cerr << "resmon_aggregator: slot " << t << " timed out ("
                  << aggregator.downstream().connected_agents()
                  << " agents connected)\n";
        return 1;
      }
    }
    aggregator.send_status();  // final census, so the root's gauges settle

    const int linger_ms =
        static_cast<int>(args.get_int("metrics-linger-ms", 0));
    if (linger_ms > 0) {
      aggregator.pump_idle(linger_ms,
                           aggregator.downstream().metrics_scrapes() + 1);
    }
    if (args.has("metrics-out")) {
      obs::write_metrics_file(args.get("metrics-out", ""), registry);
    }

    const double compaction =
        aggregator.forwarded_slots() + aggregator.status_frames() > 0
            ? static_cast<double>(aggregator.downstream().frames_received()) /
                  static_cast<double>(aggregator.forwarded_slots() +
                                      aggregator.status_frames())
            : 0.0;
    std::cout << "shard " << shard << " nodes [" << range.first_node << ", "
              << range.first_node + range.num_nodes << ")\n"
              << "slots forwarded:   " << aggregator.forwarded_slots() << "/"
              << slots << " (" << aggregator.forwarded_measurements()
              << " measurements, " << aggregator.forwarded_bytes()
              << " bytes upstream)\n"
              << "frames received:   "
              << aggregator.downstream().frames_received() << " ("
              << aggregator.downstream().bytes_received() << " bytes, "
              << compaction << "x compaction)\n"
              << "degradation:       "
              << aggregator.downstream().stale_transitions() << " stale, "
              << aggregator.downstream().dead_transitions() << " dead, "
              << aggregator.degraded_slots_forwarded()
              << " degraded slots forwarded\n";
    const bool ok = aggregator.forwarded_slots() == slots;
    std::cout << "RESULT forwarded=" << (ok ? 1 : 0) << '\n' << std::flush;
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "resmon_aggregator: " << e.what() << "\n";
    return 1;
  }
}
