#!/usr/bin/env bash
# The lint wall, runnable locally with one command (DESIGN.md "Static
# analysis & invariants"):
#
#   1. resmon_lint        — project-invariant checker (determinism, header
#                           hygiene, safety, mutex annotations, module
#                           layering) over src/ tools/ bench/ examples/
#                           tests/, gated by the commented allowlist in
#                           tools/lint_allowlist.txt and the module DAG in
#                           tools/lint_layers.txt; prints a per-rule
#                           finding summary;
#   2. header_selfcontain — every src/**/*.hpp compiles as its own TU;
#   3. clang-tidy         — the curated .clang-tidy over
#                           compile_commands.json (skipped with a warning
#                           when clang-tidy is not installed, so the
#                           C++-only steps still gate local pushes;
#                           --require-tools turns the skip into a failure,
#                           which is what CI passes).
#
# Usage: scripts/check_lint.sh [BUILD_DIR] [--require-tools]
#   BUILD_DIR defaults to build.
set -euo pipefail

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD=build
REQUIRE_TOOLS=0
for arg in "$@"; do
  case "$arg" in
    --require-tools) REQUIRE_TOOLS=1 ;;
    *) BUILD="$arg" ;;
  esac
done
case "$BUILD" in /*) ;; *) BUILD="$ROOT/$BUILD" ;; esac

if [ ! -f "$BUILD/CMakeCache.txt" ]; then
  cmake -B "$BUILD" -S "$ROOT"
fi

echo "== [1/3] resmon_lint =="
cmake --build "$BUILD" --target resmon_lint -j "$(nproc)" >/dev/null
"$BUILD/tools/resmon_lint" --root "$ROOT" --summary

echo "== [2/3] header self-containment =="
cmake --build "$BUILD" --target header_selfcontain -j "$(nproc)" >/dev/null
echo "all src/**/*.hpp compile as standalone TUs"

echo "== [3/3] clang-tidy =="
if ! command -v clang-tidy >/dev/null 2>&1; then
  if [ "$REQUIRE_TOOLS" -eq 1 ]; then
    echo "ERROR: clang-tidy not installed but --require-tools was given" >&2
    exit 1
  fi
  echo "WARNING: clang-tidy not installed; skipping (CI runs it)" >&2
else
  # The compilation database includes the generated selfcontain TUs and the
  # test binaries; lint the real sources only.
  cd "$ROOT"
  mapfile -t tidy_files < <(git ls-files \
    'src/**/*.cpp' 'tools/*.cpp' 'bench/*.cpp' 'examples/*.cpp' \
    'tests/*.cpp')
  printf '%s\n' "${tidy_files[@]}" |
    xargs -P "$(nproc)" -n 4 clang-tidy -p "$BUILD" --quiet
fi

echo "lint wall OK"
