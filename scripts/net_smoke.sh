#!/usr/bin/env bash
# Localhost smoke test for the resmon::net socket runtime.
#
# Single tier (default): starts one resmon_controller on an ephemeral
# port, launches N resmon_agent processes against it, and checks that the
# controller exits 0 after printing "RESULT complete=1 rmse_finite=1" —
# i.e. the central store saw every node and the forecasting stage produced
# a finite RMSE over real TCP.
#
# Two tiers (--tiers 2): the same fleet behind the aggregator tier — one
# root (--shards 2), two resmon_aggregator processes forwarding compacted
# slot summaries, and the agents split between them by the contiguous
# shard partition. The root must additionally report every shard summary,
# and the first aggregator's own metrics endpoint must serve nonzero
# resmon_agg_forwarded_slots_total.
#
# Also scrapes the controller's live metrics endpoint (second listener,
# --metrics-port) and fails unless the Prometheus exposition reports
# nonzero resmon_net_frames_total and resmon_net_slots_total — proving the
# observability path works end to end, not just that the run completed.
#
# Real-host leg (--source procfs): one agent samples its own process tree
# from the live kernel while recording, then the recording is replayed
# through a fresh controller; the leg asserts nonzero
# resmon_host_samples_total, zero parse errors, and a bit-identical h=1
# RMSE between the live and replayed runs.
#
# Usage: scripts/net_smoke.sh BUILD_DIR [NODES] [STEPS] [SEED]
#        [--tiers 1|2] [--source trace|procfs]
set -euo pipefail

TIERS=1
SOURCE=trace
POSITIONAL=()
while [ $# -gt 0 ]; do
  case "$1" in
    --tiers) TIERS=${2:?--tiers needs a value}; shift 2 ;;
    --source) SOURCE=${2:?--source needs a value}; shift 2 ;;
    *) POSITIONAL+=("$1"); shift ;;
  esac
done
set -- "${POSITIONAL[@]}"

BUILD_DIR=${1:?usage: net_smoke.sh BUILD_DIR [NODES] [STEPS] [SEED] [--tiers 1|2] [--source trace|procfs]}
if [ "$TIERS" = 2 ]; then DEFAULT_NODES=6; else DEFAULT_NODES=8; fi
NODES=${2:-$DEFAULT_NODES}
STEPS=${3:-200}
SEED=${4:-1}
SHARDS=2

CONTROLLER="$BUILD_DIR/tools/resmon_controller"
AGENT="$BUILD_DIR/tools/resmon_agent"
AGGREGATOR="$BUILD_DIR/tools/resmon_aggregator"
[ -x "$CONTROLLER" ] || { echo "missing $CONTROLLER" >&2; exit 2; }
[ -x "$AGENT" ] || { echo "missing $AGENT" >&2; exit 2; }
if [ "$TIERS" = 2 ]; then
  [ -x "$AGGREGATOR" ] || { echo "missing $AGGREGATOR" >&2; exit 2; }
fi

WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

# Wait for "<name> listening on HOST:PORT" (or the "metrics endpoint on"
# variant — a distinct phrasing so neither grep can pick up the other's
# port) in a log file and print the resolved port.
wait_for_port() {
  local log=$1 pattern=$2 pid=$3 port=
  for _ in $(seq 1 100); do
    port=$(grep -oE "^$pattern [0-9.]+:[0-9]+" "$log" 2>/dev/null \
             | grep -oE '[0-9]+$' || true)
    [ -n "$port" ] && { echo "$port"; return 0; }
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
  done
  return 1
}

# --source procfs: the real-host collection leg (DESIGN.md "Host
# collection"). One agent samples its own process tree from the live
# kernel while recording the series; the controller runs with
# --resources 4 because there is no ground-truth trace for real
# measurements (only rmse_finite matters). The recording is then
# replayed through a fresh controller, and both runs must print the
# same h=1 forecast RMSE — record/replay determinism over real TCP.
if [ "$SOURCE" = procfs ]; then
  STEPS=${3:-40}
  run_leg() {
    local tag=$1; shift
    "$CONTROLLER" --port 0 --nodes 1 --resources 4 --k 1 --steps "$STEPS" \
      > "$WORK/ctrl_$tag.log" 2>&1 &
    local ctrl_pid=$!
    local port
    port=$(wait_for_port "$WORK/ctrl_$tag.log" \
      'resmon_controller listening on' "$ctrl_pid") || {
      echo "$tag controller never announced its port:" >&2
      cat "$WORK/ctrl_$tag.log" >&2
      return 1
    }
    "$AGENT" --port "$port" --node 0 --steps "$STEPS" "$@" \
      --metrics-out "$WORK/agent_$tag.prom" > "$WORK/agent_$tag.log" 2>&1 || {
      echo "$tag agent failed:" >&2
      cat "$WORK/agent_$tag.log" >&2
      return 1
    }
    wait "$ctrl_pid" || { cat "$WORK/ctrl_$tag.log" >&2; return 1; }
    grep -q 'RESULT complete=1 rmse_finite=1' "$WORK/ctrl_$tag.log" || {
      echo "$tag controller result line missing or not clean" >&2
      cat "$WORK/ctrl_$tag.log" >&2
      return 1
    }
  }

  run_leg live --source procfs --pid self --interval-ms 20 \
    --record "$WORK/host.rec" || exit 1
  grep -qE '^resmon_host_samples_total [1-9]' "$WORK/agent_live.prom" || {
    echo "agent never produced live host samples" >&2
    cat "$WORK/agent_live.prom" >&2
    exit 1
  }
  grep -qE '^resmon_host_parse_errors_total 0$' "$WORK/agent_live.prom" || {
    echo "live sampling hit procfs parse errors" >&2
    exit 1
  }
  [ -s "$WORK/host.rec" ] || { echo "recording missing or empty" >&2; exit 1; }

  run_leg replay --source replay --replay "$WORK/host.rec" || exit 1
  LIVE_RMSE=$(grep 'forecast RMSE h=1:' "$WORK/ctrl_live.log")
  REPLAY_RMSE=$(grep 'forecast RMSE h=1:' "$WORK/ctrl_replay.log")
  [ -n "$LIVE_RMSE" ] && [ "$LIVE_RMSE" = "$REPLAY_RMSE" ] || {
    echo "replay diverged from the live run:" >&2
    echo "  live:   $LIVE_RMSE" >&2
    echo "  replay: $REPLAY_RMSE" >&2
    exit 1
  }
  SAMPLES=$(grep -E '^resmon_host_samples_total' "$WORK/agent_live.prom" \
              | awk '{print $2}')
  echo "--- live controller ---"
  cat "$WORK/ctrl_live.log"
  echo "replay reproduced the live run ($LIVE_RMSE)"
  echo "net smoke test OK (procfs source, $SAMPLES host samples," \
       "$STEPS slots, record/replay RMSE identical)"
  exit 0
fi

SHARD_FLAGS=()
if [ "$TIERS" = 2 ]; then SHARD_FLAGS=(--shards "$SHARDS"); fi
"$CONTROLLER" --port 0 --nodes "$NODES" --steps "$STEPS" --seed "$SEED" \
  --metrics-port 0 --metrics-linger-ms 8000 "${SHARD_FLAGS[@]}" \
  > "$WORK/controller.log" 2>&1 &
CONTROLLER_PID=$!

PORT=$(wait_for_port "$WORK/controller.log" \
  'resmon_controller listening on' "$CONTROLLER_PID") &&
MPORT=$(wait_for_port "$WORK/controller.log" \
  'resmon_controller metrics endpoint on' "$CONTROLLER_PID") || {
  echo "controller never announced its ports:" >&2
  cat "$WORK/controller.log" >&2
  exit 1
}

# Two-tier mode: the aggregators sit between the root and the agents.
AGG_PIDS=()
AGG_PORTS=()
AGG_MPORT=
if [ "$TIERS" = 2 ]; then
  for ((shard = 0; shard < SHARDS; ++shard)); do
    EXTRA=()
    if [ "$shard" -eq 0 ]; then
      EXTRA=(--metrics-port 0 --metrics-linger-ms 8000)
    fi
    "$AGGREGATOR" --shard "$shard" --shards "$SHARDS" \
      --upstream-port "$PORT" --port 0 --nodes "$NODES" --steps "$STEPS" \
      --seed "$SEED" "${EXTRA[@]}" > "$WORK/agg$shard.log" 2>&1 &
    AGG_PIDS+=($!)
  done
  for ((shard = 0; shard < SHARDS; ++shard)); do
    APORT=$(wait_for_port "$WORK/agg$shard.log" \
      'resmon_aggregator listening on' "${AGG_PIDS[$shard]}") || {
      echo "aggregator $shard never announced its port:" >&2
      cat "$WORK/agg$shard.log" >&2
      exit 1
    }
    AGG_PORTS+=("$APORT")
  done
  AGG_MPORT=$(wait_for_port "$WORK/agg0.log" \
    'resmon_aggregator metrics endpoint on' "${AGG_PIDS[0]}") || {
    echo "aggregator 0 never announced its metrics port:" >&2
    cat "$WORK/agg0.log" >&2
    exit 1
  }
fi

# The shard owning a node, by the contiguous partition agg::shard_range
# uses: the first NODES % SHARDS shards get one extra node.
owner_of() {
  local node=$1 shard=0 first=0 base=$((NODES / SHARDS)) count
  while :; do
    count=$base
    [ "$shard" -lt $((NODES % SHARDS)) ] && count=$((base + 1))
    if [ "$node" -lt $((first + count)) ]; then echo "$shard"; return; fi
    first=$((first + count))
    shard=$((shard + 1))
  done
}

AGENT_PIDS=()
for ((node = 0; node < NODES; ++node)); do
  TARGET_PORT=$PORT
  if [ "$TIERS" = 2 ]; then
    TARGET_PORT=${AGG_PORTS[$(owner_of "$node")]}
  fi
  "$AGENT" --port "$TARGET_PORT" --node "$node" --nodes "$NODES" \
    --steps "$STEPS" --seed "$SEED" > "$WORK/agent$node.log" 2>&1 &
  AGENT_PIDS+=($!)
done

STATUS=0
for pid in "${AGENT_PIDS[@]}"; do
  wait "$pid" || STATUS=1
done

# One HTTP/1.0 scrape of a live metrics endpoint over bash's /dev/tcp.
scrape_metrics() {
  local port=$1 out=$2
  exec 3<>"/dev/tcp/127.0.0.1/$port" || return 1
  printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
  cat <&3 > "$out"
  exec 3<&- 3>&-
}

# Retry until a scrape shows the wanted counter nonzero (the processes
# linger --metrics-linger-ms for exactly this window).
scrape_until() {
  local port=$1 out=$2 pattern=$3 pid=$4
  for _ in $(seq 1 80); do
    if scrape_metrics "$port" "$out" 2>/dev/null &&
       grep -qE "$pattern" "$out"; then
      return 0
    fi
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
  done
  return 1
}

SCRAPED=0
if scrape_until "$MPORT" "$WORK/scrape.txt" \
     '^resmon_net_slots_total [1-9]' "$CONTROLLER_PID"; then
  SCRAPED=1
fi
AGG_SCRAPED=1
if [ "$TIERS" = 2 ]; then
  AGG_SCRAPED=0
  if scrape_until "$AGG_MPORT" "$WORK/agg_scrape.txt" \
       '^resmon_agg_forwarded_slots_total\{[^}]*\} [1-9]' \
       "${AGG_PIDS[0]}"; then
    AGG_SCRAPED=1
  fi
fi

for pid in "${AGG_PIDS[@]}"; do
  wait "$pid" || STATUS=1
done
wait "$CONTROLLER_PID" || STATUS=1

echo "--- controller ---"
cat "$WORK/controller.log"
for ((shard = 0; shard < ${#AGG_PIDS[@]}; ++shard)); do
  sed "s/^/aggregator $shard: /" "$WORK/agg$shard.log" | tail -3
done
for ((node = 0; node < NODES; ++node)); do
  sed "s/^/agent $node: /" "$WORK/agent$node.log" | tail -1
done

if [ "$STATUS" -ne 0 ]; then
  echo "net smoke test FAILED" >&2
  exit 1
fi
grep -q 'RESULT complete=1 rmse_finite=1' "$WORK/controller.log" || {
  echo "controller result line missing or not clean" >&2
  exit 1
}
if [ "$SCRAPED" -ne 1 ]; then
  echo "metrics endpoint never served a scrape with nonzero slots" >&2
  [ -f "$WORK/scrape.txt" ] && tail -20 "$WORK/scrape.txt" >&2
  exit 1
fi
grep -qE '^resmon_net_frames_total [1-9]' "$WORK/scrape.txt" || {
  echo "resmon_net_frames_total missing or zero in the scrape" >&2
  exit 1
}
if [ "$TIERS" = 2 ]; then
  grep -q "all $SHARDS shards connected" "$WORK/controller.log" || {
    echo "root never reported all shards connected" >&2
    exit 1
  }
  for ((shard = 0; shard < SHARDS; ++shard)); do
    grep -q 'RESULT forwarded=1' "$WORK/agg$shard.log" || {
      echo "aggregator $shard result line missing or not clean" >&2
      exit 1
    }
  done
  grep -qE '^resmon_net_summaries_total [1-9]' "$WORK/scrape.txt" || {
    echo "resmon_net_summaries_total missing or zero in the root scrape" >&2
    exit 1
  }
  if [ "$AGG_SCRAPED" -ne 1 ]; then
    echo "aggregator metrics endpoint never served forwarded slots" >&2
    [ -f "$WORK/agg_scrape.txt" ] && tail -20 "$WORK/agg_scrape.txt" >&2
    exit 1
  fi
  SUMMARIES=$(grep -E '^resmon_net_summaries_total' "$WORK/scrape.txt" | awk '{print $2}')
  echo "aggregator scrape OK (summaries_total=$SUMMARIES)"
fi
FRAMES=$(grep -E '^resmon_net_frames_total' "$WORK/scrape.txt" | awk '{print $2}')
SLOTS=$(grep -E '^resmon_net_slots_total' "$WORK/scrape.txt" | awk '{print $2}')
echo "metrics scrape OK (frames_total=$FRAMES slots_total=$SLOTS)"
echo "net smoke test OK ($NODES agents, $STEPS slots, $TIERS tier(s))"
