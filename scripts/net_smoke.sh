#!/usr/bin/env bash
# Localhost smoke test for the resmon::net socket runtime.
#
# Starts one resmon_controller on an ephemeral port, launches N resmon_agent
# processes against it, and checks that the controller exits 0 after printing
# "RESULT complete=1 rmse_finite=1" — i.e. the central store saw every node
# and the forecasting stage produced a finite RMSE over real TCP.
#
# Also scrapes the controller's live metrics endpoint (second listener,
# --metrics-port) and fails unless the Prometheus exposition reports
# nonzero resmon_net_frames_total and resmon_net_slots_total — proving the
# observability path works end to end, not just that the run completed.
#
# Usage: scripts/net_smoke.sh BUILD_DIR [NODES] [STEPS] [SEED]
set -euo pipefail

BUILD_DIR=${1:?usage: net_smoke.sh BUILD_DIR [NODES] [STEPS] [SEED]}
NODES=${2:-8}
STEPS=${3:-200}
SEED=${4:-1}

CONTROLLER="$BUILD_DIR/tools/resmon_controller"
AGENT="$BUILD_DIR/tools/resmon_agent"
[ -x "$CONTROLLER" ] || { echo "missing $CONTROLLER" >&2; exit 2; }
[ -x "$AGENT" ] || { echo "missing $AGENT" >&2; exit 2; }

WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

"$CONTROLLER" --port 0 --nodes "$NODES" --steps "$STEPS" --seed "$SEED" \
  --metrics-port 0 --metrics-linger-ms 8000 \
  > "$WORK/controller.log" 2>&1 &
CONTROLLER_PID=$!

# The controller announces both resolved ephemeral ports; the greps are
# anchored to the distinct phrasings ("listening on" vs "metrics endpoint
# on") so neither can pick up the other's port.
PORT=
MPORT=
for _ in $(seq 1 100); do
  PORT=$(grep -oE '^resmon_controller listening on [0-9.]+:[0-9]+' \
           "$WORK/controller.log" 2>/dev/null | grep -oE '[0-9]+$' || true)
  MPORT=$(grep -oE '^resmon_controller metrics endpoint on [0-9.]+:[0-9]+' \
           "$WORK/controller.log" 2>/dev/null | grep -oE '[0-9]+$' || true)
  [ -n "$PORT" ] && [ -n "$MPORT" ] && break
  kill -0 "$CONTROLLER_PID" 2>/dev/null || break
  sleep 0.1
done
if [ -z "$PORT" ] || [ -z "$MPORT" ]; then
  echo "controller never announced its ports:" >&2
  cat "$WORK/controller.log" >&2
  exit 1
fi

AGENT_PIDS=()
for ((node = 0; node < NODES; ++node)); do
  "$AGENT" --port "$PORT" --node "$node" --nodes "$NODES" \
    --steps "$STEPS" --seed "$SEED" > "$WORK/agent$node.log" 2>&1 &
  AGENT_PIDS+=($!)
done

STATUS=0
for pid in "${AGENT_PIDS[@]}"; do
  wait "$pid" || STATUS=1
done

# One HTTP/1.0 scrape of the live metrics endpoint over bash's /dev/tcp.
scrape_metrics() {
  exec 3<>"/dev/tcp/127.0.0.1/$MPORT" || return 1
  printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
  cat <&3 > "$WORK/scrape.txt"
  exec 3<&- 3>&-
}

# The controller may still be draining the last slots when the agents exit;
# retry until a scrape shows the slot counter at its final nonzero value
# (the controller lingers --metrics-linger-ms for exactly this window).
SCRAPED=0
for _ in $(seq 1 80); do
  if scrape_metrics 2>/dev/null &&
     grep -qE '^resmon_net_slots_total [1-9]' "$WORK/scrape.txt"; then
    SCRAPED=1
    break
  fi
  kill -0 "$CONTROLLER_PID" 2>/dev/null || break
  sleep 0.1
done

wait "$CONTROLLER_PID" || STATUS=1

echo "--- controller ---"
cat "$WORK/controller.log"
for ((node = 0; node < NODES; ++node)); do
  sed "s/^/agent $node: /" "$WORK/agent$node.log" | tail -1
done

if [ "$STATUS" -ne 0 ]; then
  echo "net smoke test FAILED" >&2
  exit 1
fi
grep -q 'RESULT complete=1 rmse_finite=1' "$WORK/controller.log" || {
  echo "controller result line missing or not clean" >&2
  exit 1
}
if [ "$SCRAPED" -ne 1 ]; then
  echo "metrics endpoint never served a scrape with nonzero slots" >&2
  [ -f "$WORK/scrape.txt" ] && tail -20 "$WORK/scrape.txt" >&2
  exit 1
fi
grep -qE '^resmon_net_frames_total [1-9]' "$WORK/scrape.txt" || {
  echo "resmon_net_frames_total missing or zero in the scrape" >&2
  exit 1
}
FRAMES=$(grep -E '^resmon_net_frames_total' "$WORK/scrape.txt" | awk '{print $2}')
SLOTS=$(grep -E '^resmon_net_slots_total' "$WORK/scrape.txt" | awk '{print $2}')
echo "metrics scrape OK (frames_total=$FRAMES slots_total=$SLOTS)"
echo "net smoke test OK ($NODES agents, $STEPS slots)"
