#!/usr/bin/env bash
# Localhost smoke test for the resmon::net socket runtime.
#
# Starts one resmon_controller on an ephemeral port, launches N resmon_agent
# processes against it, and checks that the controller exits 0 after printing
# "RESULT complete=1 rmse_finite=1" — i.e. the central store saw every node
# and the forecasting stage produced a finite RMSE over real TCP.
#
# Usage: scripts/net_smoke.sh BUILD_DIR [NODES] [STEPS] [SEED]
set -euo pipefail

BUILD_DIR=${1:?usage: net_smoke.sh BUILD_DIR [NODES] [STEPS] [SEED]}
NODES=${2:-8}
STEPS=${3:-200}
SEED=${4:-1}

CONTROLLER="$BUILD_DIR/tools/resmon_controller"
AGENT="$BUILD_DIR/tools/resmon_agent"
[ -x "$CONTROLLER" ] || { echo "missing $CONTROLLER" >&2; exit 2; }
[ -x "$AGENT" ] || { echo "missing $AGENT" >&2; exit 2; }

WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

"$CONTROLLER" --port 0 --nodes "$NODES" --steps "$STEPS" --seed "$SEED" \
  > "$WORK/controller.log" 2>&1 &
CONTROLLER_PID=$!

# The controller prints its resolved ephemeral port on the first line.
PORT=
for _ in $(seq 1 100); do
  PORT=$(grep -oE 'listening on [0-9.]+:[0-9]+' "$WORK/controller.log" \
           2>/dev/null | grep -oE '[0-9]+$' || true)
  [ -n "$PORT" ] && break
  kill -0 "$CONTROLLER_PID" 2>/dev/null || break
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "controller never announced its port:" >&2
  cat "$WORK/controller.log" >&2
  exit 1
fi

AGENT_PIDS=()
for ((node = 0; node < NODES; ++node)); do
  "$AGENT" --port "$PORT" --node "$node" --nodes "$NODES" \
    --steps "$STEPS" --seed "$SEED" > "$WORK/agent$node.log" 2>&1 &
  AGENT_PIDS+=($!)
done

STATUS=0
for pid in "${AGENT_PIDS[@]}"; do
  wait "$pid" || STATUS=1
done
wait "$CONTROLLER_PID" || STATUS=1

echo "--- controller ---"
cat "$WORK/controller.log"
for ((node = 0; node < NODES; ++node)); do
  sed "s/^/agent $node: /" "$WORK/agent$node.log" | tail -1
done

if [ "$STATUS" -ne 0 ]; then
  echo "net smoke test FAILED" >&2
  exit 1
fi
grep -q 'RESULT complete=1 rmse_finite=1' "$WORK/controller.log" || {
  echo "controller result line missing or not clean" >&2
  exit 1
}
echo "net smoke test OK ($NODES agents, $STEPS slots)"
