#!/usr/bin/env bash
# Format gate: clang-format --dry-run -Werror over every tracked C++ file,
# against the repo's .clang-format. Prints file:line diagnostics and exits
# nonzero on drift; run `clang-format -i` on the offending files to fix.
#
# Usage: scripts/check_format.sh [--require-tools]
#   Without clang-format installed the check is skipped with a warning so
#   local pushes aren't blocked by a missing tool; --require-tools turns
#   that skip into a failure (what CI passes, so a broken tool install
#   can't silently disable the gate).
set -euo pipefail

ROOT=$(cd "$(dirname "$0")/.." && pwd)
cd "$ROOT"

REQUIRE_TOOLS=0
for arg in "$@"; do
  case "$arg" in
    --require-tools) REQUIRE_TOOLS=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

FMT=${CLANG_FORMAT:-clang-format}
if ! command -v "$FMT" >/dev/null 2>&1; then
  if [ "$REQUIRE_TOOLS" -eq 1 ]; then
    echo "ERROR: $FMT not installed but --require-tools was given" >&2
    exit 1
  fi
  echo "WARNING: $FMT not installed; skipping format check (CI runs it)" >&2
  exit 0
fi

mapfile -t files < <(git ls-files '*.cpp' '*.hpp' '*.h')
"$FMT" --dry-run -Werror "${files[@]}"
echo "format check OK (${#files[@]} files)"
