#!/usr/bin/env bash
# Format gate: clang-format --dry-run -Werror over every tracked C++ file,
# against the repo's .clang-format. Prints file:line diagnostics and exits
# nonzero on drift; run `clang-format -i` on the offending files to fix.
#
# Usage: scripts/check_format.sh
set -euo pipefail

ROOT=$(cd "$(dirname "$0")/.." && pwd)
cd "$ROOT"

FMT=${CLANG_FORMAT:-clang-format}
if ! command -v "$FMT" >/dev/null 2>&1; then
  echo "WARNING: $FMT not installed; skipping format check (CI runs it)" >&2
  exit 0
fi

mapfile -t files < <(git ls-files '*.cpp' '*.hpp' '*.h')
"$FMT" --dry-run -Werror "${files[@]}"
echo "format check OK (${#files[@]} files)"
