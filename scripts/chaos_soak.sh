#!/usr/bin/env bash
# Chaos soak for the resmon::net socket runtime + faultnet chaos harness.
#
# Two localhost phases over the same seeded trace:
#
#   baseline  controller + 6 clean agents, paced at SLOT_DELAY_MS, with the
#             staleness policy armed but never triggered mid-run.
#   chaos     same run with the full fault menu:
#               node 0  clean control
#               node 1  wire chaos on its own uplink (--fault-spec:
#                       seeded drop + duplicate + corrupt; corruptions are
#                       CRC-rejected by the controller's decoder)
#               node 2  controller-side partition window (frames discarded
#                       on arrival for slots 30-50, then the node rejoins)
#               node 3  process killed ~45% in, restarted later with
#                       --start-step (crash + rejoin)
#               node 4  exits early and never comes back (-> DEAD)
#               node 5  SIGKILLed mid-run, never restarted (-> DEAD)
#
# The soak passes iff the chaos controller still prints
# "RESULT complete=1 rmse_finite=1" (the pipeline degraded instead of
# stalling), the degradation counters on the live metrics scrape show the
# expected transitions (stale/dead/rejoin/degraded-slot/blocked-frame all
# nonzero, nodes 4 and 5 DEAD, at least one CRC reject), and the chaos
# run's forecast RMSE stays within a bounded inflation of the baseline:
# rmse_chaos <= max(RMSE_FACTOR * rmse_base, rmse_base + RMSE_SLACK).
# All fault schedules are pure functions of (seed, node, step), so the
# injected faults are identical on every run with the same SEED.
#
# Usage: scripts/chaos_soak.sh BUILD_DIR [STEPS] [SEED]
set -euo pipefail

BUILD_DIR=${1:?usage: chaos_soak.sh BUILD_DIR [STEPS] [SEED]}
STEPS=${2:-120}
SEED=${3:-1}
NODES=6
SLOT_DELAY_MS=30          # paces agents so wall-clock staleness can fire
STALE_AFTER_MS=500
DEAD_AFTER_MS=1500
RMSE_FACTOR=2.5
RMSE_SLACK=0.10

CONTROLLER="$BUILD_DIR/tools/resmon_controller"
AGENT="$BUILD_DIR/tools/resmon_agent"
[ -x "$CONTROLLER" ] || { echo "missing $CONTROLLER" >&2; exit 2; }
[ -x "$AGENT" ] || { echo "missing $AGENT" >&2; exit 2; }

WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

# Block until $1/controller.log announces both ephemeral ports; sets
# PORT/MPORT. The greps are anchored to the two distinct phrasings so
# neither can pick up the other's port.
wait_for_ports() {
  local log="$1/controller.log" pid="$2"
  PORT=
  MPORT=
  for _ in $(seq 1 100); do
    PORT=$(grep -oE '^resmon_controller listening on [0-9.]+:[0-9]+' \
             "$log" 2>/dev/null | grep -oE '[0-9]+$' || true)
    MPORT=$(grep -oE '^resmon_controller metrics endpoint on [0-9.]+:[0-9]+' \
             "$log" 2>/dev/null | grep -oE '[0-9]+$' || true)
    [ -n "$PORT" ] && [ -n "$MPORT" ] && return 0
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
  done
  echo "controller never announced its ports:" >&2
  cat "$log" >&2
  return 1
}

# One HTTP/1.0 scrape of the metrics endpoint on port $1 into file $2.
scrape_metrics() {
  exec 3<>"/dev/tcp/127.0.0.1/$1" || return 1
  printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
  cat <&3 > "$2"
  exec 3<&- 3>&-
}

# Retry scrapes of port $1 into $2 until one shows the final nonzero slot
# counter (the controller lingers for exactly this window); $3 = controller
# pid to detect early exit.
scrape_until_final() {
  for _ in $(seq 1 80); do
    if scrape_metrics "$1" "$2" 2>/dev/null &&
       grep -qE '^resmon_net_slots_total [1-9]' "$2"; then
      return 0
    fi
    kill -0 "$3" 2>/dev/null || break
    sleep 0.1
  done
  return 1
}

# Counter value $2 (exact exposition line prefix, label block included)
# from scrape file $1; prints 0 when the series is absent.
metric() {
  awk -v name="$2" '$1 == name { print $2; found = 1 }
                    END { if (!found) print 0 }' "$1"
}

# Assert metric $2 in scrape $1 is >= $3.
assert_metric_ge() {
  local v
  v=$(metric "$1" "$2")
  awk -v v="$v" -v want="$3" 'BEGIN { exit !(v + 0 >= want + 0) }' || {
    echo "FAIL: $2 = $v, expected >= $3" >&2
    exit 1
  }
}

rmse_of() {
  grep -oE 'forecast RMSE h=1: [0-9.eE+-]+' "$1" | awk '{print $4}'
}

common_controller_flags=(--port 0 --nodes "$NODES" --steps "$STEPS"
  --seed "$SEED" --stale-after-ms "$STALE_AFTER_MS"
  --dead-after-ms "$DEAD_AFTER_MS" --metrics-port 0 --metrics-linger-ms 8000)
common_agent_flags=(--nodes "$NODES" --steps "$STEPS" --seed "$SEED"
  --slot-delay-ms "$SLOT_DELAY_MS")

# ---- phase 1: baseline ------------------------------------------------------

mkdir -p "$WORK/base"
"$CONTROLLER" "${common_controller_flags[@]}" \
  > "$WORK/base/controller.log" 2>&1 &
BASE_PID=$!
wait_for_ports "$WORK/base" "$BASE_PID"

BASE_AGENTS=()
for ((node = 0; node < NODES; ++node)); do
  "$AGENT" --port "$PORT" --node "$node" "${common_agent_flags[@]}" \
    > "$WORK/base/agent$node.log" 2>&1 &
  BASE_AGENTS+=($!)
done
STATUS=0
for pid in "${BASE_AGENTS[@]}"; do wait "$pid" || STATUS=1; done
scrape_until_final "$MPORT" "$WORK/base/scrape.txt" "$BASE_PID" || true
wait "$BASE_PID" || STATUS=1
echo "--- baseline controller ---"
cat "$WORK/base/controller.log"
if [ "$STATUS" -ne 0 ]; then
  echo "baseline phase FAILED" >&2
  exit 1
fi
grep -q 'RESULT complete=1 rmse_finite=1' "$WORK/base/controller.log" || {
  echo "baseline result line missing or not clean" >&2
  exit 1
}
RMSE_BASE=$(rmse_of "$WORK/base/controller.log")

# ---- phase 2: chaos ---------------------------------------------------------

mkdir -p "$WORK/chaos"
"$CONTROLLER" "${common_controller_flags[@]}" \
  --fault-spec "partition=30-50;nodes=2;seed=$SEED" \
  > "$WORK/chaos/controller.log" 2>&1 &
CHAOS_PID=$!
wait_for_ports "$WORK/chaos" "$CHAOS_PID"

# Slots where the crash-and-restart (node 3) and early-exit (node 4)
# lifecycles end, and where the restarted node 3 resumes. Scaled off STEPS
# so shorter soaks keep the same shape.
N3_QUIT=$((STEPS * 45 / 100))
N3_RESUME=$((STEPS * 65 / 100))
N4_QUIT=$((STEPS * 38 / 100))

"$AGENT" --port "$PORT" --node 0 "${common_agent_flags[@]}" \
  > "$WORK/chaos/agent0.log" 2>&1 &
A0=$!
"$AGENT" --port "$PORT" --node 1 "${common_agent_flags[@]}" \
  --fault-spec "drop=0.08;dup=0.08;corrupt=0.04;seed=5" \
  > "$WORK/chaos/agent1.log" 2>&1 &
A1=$!
"$AGENT" --port "$PORT" --node 2 "${common_agent_flags[@]}" \
  > "$WORK/chaos/agent2.log" 2>&1 &
A2=$!
# Node 3 dies at N3_QUIT, then a fresh process rejoins at N3_RESUME.
"$AGENT" --port "$PORT" --node 3 --nodes "$NODES" --steps "$N3_QUIT" \
  --seed "$SEED" --slot-delay-ms "$SLOT_DELAY_MS" \
  > "$WORK/chaos/agent3a.log" 2>&1 &
A3A=$!
(
  sleep 2.5
  exec "$AGENT" --port "$PORT" --node 3 "${common_agent_flags[@]}" \
    --start-step "$N3_RESUME" > "$WORK/chaos/agent3b.log" 2>&1
) &
A3B=$!
# Node 4 exits early and stays gone: the clean path to DEAD.
"$AGENT" --port "$PORT" --node 4 --nodes "$NODES" --steps "$N4_QUIT" \
  --seed "$SEED" --slot-delay-ms "$SLOT_DELAY_MS" \
  > "$WORK/chaos/agent4.log" 2>&1 &
A4=$!
# Node 5 is SIGKILLed mid-run: the crash path to DEAD (half-open socket).
"$AGENT" --port "$PORT" --node 5 "${common_agent_flags[@]}" \
  > "$WORK/chaos/agent5.log" 2>&1 &
A5=$!
(sleep 1.2; kill -9 "$A5" 2>/dev/null || true) &

STATUS=0
for pid in "$A0" "$A1" "$A2" "$A3A" "$A3B" "$A4"; do
  wait "$pid" || STATUS=1
done
wait "$A5" 2>/dev/null || true  # SIGKILL by design
SCRAPE="$WORK/chaos/scrape.txt"
SCRAPED=0
scrape_until_final "$MPORT" "$SCRAPE" "$CHAOS_PID" && SCRAPED=1
wait "$CHAOS_PID" || STATUS=1

echo "--- chaos controller ---"
cat "$WORK/chaos/controller.log"
for log in "$WORK"/chaos/agent*.log; do
  sed "s|^|$(basename "$log" .log): |" "$log" | tail -1
done

if [ "$STATUS" -ne 0 ]; then
  echo "chaos phase FAILED (an agent or the controller exited nonzero)" >&2
  exit 1
fi
grep -q 'RESULT complete=1 rmse_finite=1' "$WORK/chaos/controller.log" || {
  echo "chaos result line missing or not clean" >&2
  exit 1
}
if [ "$SCRAPED" -ne 1 ]; then
  echo "chaos metrics endpoint never served a final scrape" >&2
  exit 1
fi

# ---- degradation + fault-injection assertions -------------------------------

assert_metric_ge "$SCRAPE" resmon_net_stale_transitions_total 1
assert_metric_ge "$SCRAPE" resmon_net_dead_transitions_total 2
assert_metric_ge "$SCRAPE" resmon_net_rejoins_total 1
assert_metric_ge "$SCRAPE" resmon_net_degraded_slots_total 1
assert_metric_ge "$SCRAPE" resmon_net_blocked_frames_total 1
grep -qE '^resmon_net_wire_errors_total\{error="crc mismatch"\} [1-9]' \
  "$SCRAPE" || {
  echo "FAIL: no CRC rejects counted despite corrupt= in the fault spec" >&2
  exit 1
}
for dead_node in 4 5; do
  grep -qE "^resmon_net_node_state\{node=\"$dead_node\"\} 2" "$SCRAPE" || {
    echo "FAIL: node $dead_node not DEAD in the final scrape" >&2
    grep '^resmon_net_node_state' "$SCRAPE" >&2 || true
    exit 1
  }
done

# ---- bounded RMSE inflation -------------------------------------------------

RMSE_CHAOS=$(rmse_of "$WORK/chaos/controller.log")
awk -v base="$RMSE_BASE" -v chaos="$RMSE_CHAOS" \
    -v factor="$RMSE_FACTOR" -v slack="$RMSE_SLACK" 'BEGIN {
  bound = base * factor
  if (base + slack > bound) bound = base + slack
  exit !(chaos <= bound)
}' || {
  echo "FAIL: chaos RMSE $RMSE_CHAOS exceeds bound" \
       "max($RMSE_FACTOR x $RMSE_BASE, $RMSE_BASE + $RMSE_SLACK)" >&2
  exit 1
}

echo "chaos soak OK (rmse base=$RMSE_BASE chaos=$RMSE_CHAOS," \
     "stale=$(metric "$SCRAPE" resmon_net_stale_transitions_total)" \
     "dead=$(metric "$SCRAPE" resmon_net_dead_transitions_total)" \
     "rejoins=$(metric "$SCRAPE" resmon_net_rejoins_total)" \
     "degraded=$(metric "$SCRAPE" resmon_net_degraded_slots_total)" \
     "blocked=$(metric "$SCRAPE" resmon_net_blocked_frames_total))"
