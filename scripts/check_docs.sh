#!/usr/bin/env bash
# Markdown link check: every relative link target in the repo's docs must
# exist on disk. External (http/https/mailto) links and pure in-page
# anchors are skipped; anchors on relative links are stripped before the
# existence check. Run from anywhere: paths resolve against each file's
# own directory.
#
# Usage: scripts/check_docs.sh [REPO_ROOT]
set -euo pipefail

ROOT=${1:-$(cd "$(dirname "$0")/.." && pwd)}
STATUS=0

# All tracked markdown (top level + docs/), skipping build trees.
while IFS= read -r -d '' file; do
  dir=$(dirname "$file")
  # Inline links with their line numbers: LINE:](target) — tolerate titles
  # after a space. Failures print file:line like resmon_lint output so the
  # diagnostic is clickable.
  while IFS=: read -r lineno target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path=${target%%#*}            # strip in-file anchor
    path=${path%% *}              # strip optional "title"
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "$file:$lineno: error: broken link -> $target" >&2
      STATUS=1
    fi
  done < <(grep -onE '\]\([^)]+\)' "$file" | sed 's/:](/:/; s/)$//')
done < <(find "$ROOT" -maxdepth 2 -name '*.md' \
           -not -path '*/build*' -not -path '*/.git/*' \
           -not -name 'SNIPPETS.md' -print0)
           # SNIPPETS.md quotes third-party READMEs verbatim; their links
           # point into repos that are not vendored here.

if [ "$STATUS" -eq 0 ]; then
  echo "docs link check OK"
fi
exit "$STATUS"
