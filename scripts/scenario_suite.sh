#!/usr/bin/env bash
# Run every shipped scenario pack through the CLI runner.
#
# Each scenarios/*.scn file executes via `resmon scenario run` and must
# pass its [assert] section; the first failure stops the suite with the
# runner's own report (metric name, expected, actual). This is the CI
# `scenarios` job; the same packs also run inside ctest (test_scenarios),
# so a pack regression fails both the CLI path and the unit suite.
#
# Usage: scripts/scenario_suite.sh BUILD_DIR [SCENARIO_DIR]
set -euo pipefail

BUILD_DIR=${1:?usage: scenario_suite.sh BUILD_DIR [SCENARIO_DIR]}
SCENARIO_DIR=${2:-"$(dirname "$0")/../scenarios"}

RESMON="$BUILD_DIR/tools/resmon"
[ -x "$RESMON" ] || { echo "missing $RESMON" >&2; exit 2; }

shopt -s nullglob
PACKS=("$SCENARIO_DIR"/*.scn)
if [ "${#PACKS[@]}" -lt 5 ]; then
  echo "expected at least 5 scenario packs in $SCENARIO_DIR, found ${#PACKS[@]}" >&2
  exit 2
fi

"$RESMON" scenario list "$SCENARIO_DIR"
for pack in "${PACKS[@]}"; do
  "$RESMON" scenario run "$pack"
done
echo "OK: ${#PACKS[@]} scenario packs passed"
