#include "common/matrix.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace resmon {
namespace {

TEST(Matrix, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 0.0);
  }
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), InvalidArgument);
}

TEST(Matrix, IdentityTimesAnythingIsIdentityOp) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix i = Matrix::identity(2);
  const Matrix prod = i * a;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_DOUBLE_EQ(prod(r, c), a(r, c));
    }
  }
}

TEST(Matrix, ProductKnownValues) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, ProductShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a * b, InvalidArgument);
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  const Matrix tt = t.transposed();
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(tt(r, c), a(r, c));
  }
}

TEST(Matrix, PlusMinusScale) {
  Matrix a{{1.0, 2.0}};
  Matrix b{{3.0, 5.0}};
  a += b;
  EXPECT_DOUBLE_EQ(a(0, 0), 4.0);
  a -= b;
  EXPECT_DOUBLE_EQ(a(0, 1), 2.0);
  a *= 3.0;
  EXPECT_DOUBLE_EQ(a(0, 0), 3.0);
}

TEST(Matrix, ApplyMatchesManualMatVec) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<double> v{1.0, 1.0};
  const std::vector<double> out = a.apply(v);
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], 7.0);
}

TEST(Cholesky, FactorizesKnownSpdMatrix) {
  Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  const Matrix l = cholesky(a);
  EXPECT_NEAR(l(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(l(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(l(1, 1), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(l(0, 1), 0.0);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3 and -1
  EXPECT_THROW(cholesky(a), NumericalError);
}

TEST(Cholesky, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_THROW(cholesky(a), InvalidArgument);
}

TEST(SolveSpd, RecoversKnownSolution) {
  Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  const std::vector<double> x_true{1.0, -2.0};
  const std::vector<double> b = a.apply(x_true);
  const std::vector<double> x = solve_spd(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], -2.0, 1e-10);
}

TEST(SolveSpd, MultipleRightHandSides) {
  Matrix a{{2.0, 0.0}, {0.0, 5.0}};
  Matrix b{{2.0, 4.0}, {5.0, 10.0}};
  const Matrix x = solve_spd(a, b);
  EXPECT_NEAR(x(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(x(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(1, 1), 2.0, 1e-12);
}

TEST(SolveLu, HandlesNonSymmetricSystems) {
  Matrix a{{0.0, 1.0}, {2.0, 1.0}};  // needs pivoting
  const std::vector<double> b{3.0, 7.0};
  const std::vector<double> x = solve_lu(a, b);
  EXPECT_NEAR(x[0], 2.0, 1e-10);
  EXPECT_NEAR(x[1], 3.0, 1e-10);
}

TEST(SolveLu, SingularMatrixThrows) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(solve_lu(a, {1.0, 2.0}), NumericalError);
}

TEST(VectorOps, DotNormDistance) {
  const std::vector<double> a{3.0, 4.0};
  const std::vector<double> b{1.0, 0.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 3.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 4.0 + 16.0);
}

TEST(VectorOps, AxpyAccumulates) {
  const std::vector<double> x{1.0, 2.0};
  std::vector<double> y{10.0, 20.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

// Property: solve_spd(A, A x) == x for random SPD A = B B^T + n I.
class SolveSpdPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SolveSpdPropertyTest, RoundTripsRandomSystems) {
  const std::size_t n = GetParam();
  Rng rng(n);
  Matrix b(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) b(r, c) = rng.normal();
  }
  Matrix a = b * b.transposed();
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  std::vector<double> x_true(n);
  for (double& v : x_true) v = rng.normal();
  const std::vector<double> rhs = a.apply(x_true);
  const std::vector<double> x = solve_spd(a, rhs);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], x_true[i], 1e-8) << "dim " << n << " index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolveSpdPropertyTest,
                         ::testing::Values(1, 2, 5, 10, 25, 60));

}  // namespace
}  // namespace resmon
