// resmon::obs — metrics registry, exposition format, and trace buffer.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_log.hpp"

namespace {

using namespace resmon;
using obs::Labels;
using obs::MetricsRegistry;

TEST(Counter, StartsAtZeroAndAccumulates) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  obs::Gauge g;
  g.set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
}

TEST(Registry, RegistrationIsIdempotent) {
  MetricsRegistry reg;
  obs::Counter& a = reg.counter("x_total", "help");
  obs::Counter& b = reg.counter("x_total", "help");
  EXPECT_EQ(&a, &b);
  // Same name, different labels = a different series in the same family.
  obs::Counter& c = reg.counter("x_total", "help", {{"view", "0"}});
  EXPECT_NE(&a, &c);
  a.inc(3);
  c.inc(5);
  EXPECT_EQ(reg.value("x_total"), 3.0);
  EXPECT_EQ(reg.value("x_total", {{"view", "0"}}), 5.0);
}

TEST(Registry, TypeMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("x_total", "help");
  EXPECT_THROW(reg.gauge("x_total", "help"), InvalidArgument);
  EXPECT_THROW(reg.histogram("x_total", "help", {1.0}), InvalidArgument);
}

TEST(Registry, InvalidMetricNameThrows) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.counter("9starts_with_digit", "h"), InvalidArgument);
  EXPECT_THROW(reg.counter("has space", "h"), InvalidArgument);
  EXPECT_NO_THROW(reg.counter("ok_name:subsystem_total", "h"));
}

TEST(Registry, ValueOfUnregisteredSeriesIsEmpty) {
  MetricsRegistry reg;
  EXPECT_FALSE(reg.value("nope").has_value());
  reg.counter("x_total", "h");
  EXPECT_FALSE(reg.value("x_total", {{"view", "0"}}).has_value());
}

TEST(Registry, ConcurrentUpdatesFromThreadPool) {
  MetricsRegistry reg;
  obs::Counter& c = reg.counter("hits_total", "h");
  obs::Gauge& g = reg.gauge("level", "h");
  obs::Histogram& h = reg.histogram("dist", "h", {0.5});
  constexpr std::size_t kItems = 10000;
  ThreadPool pool(4);
  run_chunked(&pool, kItems, 64,
              [&](std::size_t, std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) {
                  c.inc();
                  g.add(1.0);
                  h.observe(i % 2 == 0 ? 0.25 : 0.75);
                }
              });
  EXPECT_EQ(c.value(), kItems);
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kItems));
  EXPECT_EQ(h.count(), kItems);
  EXPECT_EQ(h.bucket_count(0), kItems / 2);  // <= 0.5
  EXPECT_EQ(h.bucket_count(1), kItems / 2);  // +Inf overflow
}

TEST(Histogram, BucketsAreCumulativeInExposition) {
  MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("lat_seconds", "h", {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(0.5);
  h.observe(10.0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 11.05);

  const std::string text = reg.render_text();
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"0.1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"1\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum 11.05\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 4\n"), std::string::npos);
}

TEST(Histogram, NonIncreasingBoundsThrow) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("bad", "h", {1.0, 1.0}), InvalidArgument);
  EXPECT_THROW(reg.histogram("bad2", "h", {2.0, 1.0}), InvalidArgument);
  EXPECT_THROW(reg.histogram("bad3", "h", {}), InvalidArgument);
}

TEST(Exposition, HelpTypeAndDeterministicOrder) {
  // Register in non-alphabetical order with shuffled label sets; the
  // exposition must come out sorted by name, then label string.
  MetricsRegistry reg;
  reg.gauge("zeta", "last metric").set(1.0);
  reg.counter("alpha_total", "first metric", {{"view", "1"}}).inc(2);
  reg.counter("alpha_total", "first metric", {{"view", "0"}}).inc(1);

  const std::string text = reg.render_text();
  const std::string expected =
      "# HELP alpha_total first metric\n"
      "# TYPE alpha_total counter\n"
      "alpha_total{view=\"0\"} 1\n"
      "alpha_total{view=\"1\"} 2\n"
      "# HELP zeta last metric\n"
      "# TYPE zeta gauge\n"
      "zeta 1\n";
  EXPECT_EQ(text, expected);

  // Re-rendering is byte-identical.
  EXPECT_EQ(reg.render_text(), expected);
}

TEST(Exposition, RegistrationOrderNeverLeaksIntoTheExposition) {
  // The header's determinism contract: two registries holding the same
  // series — registered in opposite orders, histogram included — render
  // byte-identical expositions. This is what makes diffing two runs'
  // --metrics-out files (and the docs drift test) meaningful.
  const auto populate = [](MetricsRegistry& reg, bool reversed) {
    const auto series = [&](int i) {
      switch (reversed ? 2 - i : i) {
        case 0:
          reg.counter("mid_total", "counts", {{"node", "0"}}).inc(3);
          break;
        case 1:
          reg.histogram("a_hist", "timings", {1.0, 5.0}).observe(2.5);
          break;
        default:
          reg.counter("mid_total", "counts", {{"node", "1"}}).inc(9);
          reg.gauge("z_gauge", "level").set(4.5);
          break;
      }
    };
    for (int i = 0; i < 3; ++i) series(i);
  };
  MetricsRegistry forward;
  MetricsRegistry backward;
  populate(forward, false);
  populate(backward, true);
  EXPECT_EQ(forward.render_text(), backward.render_text());
  EXPECT_FALSE(forward.render_text().empty());
}

TEST(Exposition, LabelValuesAreEscaped) {
  MetricsRegistry reg;
  reg.counter("x_total", "h", {{"path", "a\"b\\c\nd"}}).inc();
  const std::string text = reg.render_text();
  EXPECT_NE(text.find("x_total{path=\"a\\\"b\\\\c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(Exposition, SnapshotMatchesScalars) {
  MetricsRegistry reg;
  reg.counter("a_total", "h").inc(7);
  reg.gauge("b", "h").set(2.5);
  reg.histogram("c", "h", {1.0}).observe(0.5);
  const std::vector<obs::Sample> samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 4u);  // a_total, b, c_sum, c_count
  EXPECT_EQ(samples[0].name, "a_total");
  EXPECT_DOUBLE_EQ(samples[0].value, 7.0);
  EXPECT_EQ(samples[1].name, "b");
  EXPECT_DOUBLE_EQ(samples[1].value, 2.5);
  EXPECT_EQ(samples[2].name, "c_sum");
  EXPECT_EQ(samples[3].name, "c_count");
  EXPECT_DOUBLE_EQ(samples[3].value, 1.0);
}

TEST(TraceBuffer, RecordsAndDumpsJsonl) {
  obs::TraceBuffer buf(8);
  const auto t0 = std::chrono::steady_clock::now();
  buf.record("stage.a", t0, t0 + std::chrono::microseconds(150));
  buf.record("stage.b", t0, t0 + std::chrono::microseconds(5));
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.recorded(), 2u);
  EXPECT_EQ(buf.dropped(), 0u);

  const std::vector<obs::TraceEvent> events = buf.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "stage.a");
  EXPECT_EQ(events[0].dur_us, 150u);
  EXPECT_EQ(events[0].tid, events[1].tid);  // same recording thread

  std::ostringstream out;
  buf.dump_jsonl(out);
  const std::string line1 = out.str().substr(0, out.str().find('\n'));
  EXPECT_NE(line1.find("\"name\":\"stage.a\""), std::string::npos);
  EXPECT_NE(line1.find("\"dur_us\":150"), std::string::npos);
}

TEST(TraceBuffer, RingOverwritesOldestAndCountsDrops) {
  obs::TraceBuffer buf(4);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i) {
    buf.record("e" + std::to_string(i), t0,
               t0 + std::chrono::microseconds(i));
  }
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.recorded(), 10u);
  EXPECT_EQ(buf.dropped(), 6u);
  const std::vector<obs::TraceEvent> events = buf.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first snapshot of the last four events.
  EXPECT_EQ(events.front().name, "e6");
  EXPECT_EQ(events.back().name, "e9");
}

TEST(TraceBuffer, AssignsDenseThreadIds) {
  obs::TraceBuffer buf(16);
  const auto t0 = std::chrono::steady_clock::now();
  buf.record("main", t0, t0);
  std::thread other(
      [&] { buf.record("worker", t0, t0); });
  other.join();
  const std::vector<obs::TraceEvent> events = buf.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].tid, 0u);
  EXPECT_EQ(events[1].tid, 1u);
}

TEST(ScopedSpan, RecordsIntoBufferAndGauge) {
  obs::TraceBuffer buf(4);
  obs::Gauge seconds;
  {
    obs::ScopedSpan span(&buf, "work", &seconds);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf.snapshot()[0].name, "work");
  EXPECT_GE(buf.snapshot()[0].dur_us, 1000u);
  EXPECT_GT(seconds.value(), 0.0);

  // Accumulation: a second span adds to the same gauge.
  const double first = seconds.value();
  {
    obs::ScopedSpan span(&buf, "work", &seconds);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(seconds.value(), first);
}

TEST(ScopedSpan, StopIsIdempotentAndNullSinksAreFine) {
  obs::TraceBuffer buf(4);
  obs::ScopedSpan span(&buf, "once");
  const double elapsed = span.stop();
  EXPECT_GE(elapsed, 0.0);
  EXPECT_DOUBLE_EQ(span.stop(), elapsed);  // second stop: no new event
  EXPECT_EQ(buf.size(), 1u);

  // Both sinks null: pure timer, must not crash.
  obs::ScopedSpan timer(nullptr, "untracked", nullptr);
  EXPECT_GE(timer.stop(), 0.0);
}

}  // namespace
