#include "completion/matrix_completion.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "trace/synthetic.hpp"

namespace resmon::completion {
namespace {

/// Exact rank-2 matrix plus a mask hiding `hidden_fraction` of entries.
struct LowRankCase {
  Matrix truth;
  Matrix observed;
  std::vector<bool> mask;
};

LowRankCase make_low_rank(std::size_t rows, std::size_t cols,
                          double hidden_fraction, std::uint64_t seed) {
  Rng rng(seed);
  Matrix u(rows, 2);
  Matrix v(cols, 2);
  for (std::size_t i = 0; i < rows; ++i) {
    u(i, 0) = rng.uniform(0.2, 1.0);
    u(i, 1) = rng.uniform(-0.5, 0.5);
  }
  for (std::size_t j = 0; j < cols; ++j) {
    v(j, 0) = rng.uniform(0.2, 1.0);
    v(j, 1) = rng.uniform(-0.5, 0.5);
  }
  LowRankCase c;
  c.truth = u * v.transposed();
  c.observed = Matrix(rows, cols);
  c.mask.assign(rows * cols, false);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      if (!rng.bernoulli(hidden_fraction)) {
        c.mask[i * cols + j] = true;
        c.observed(i, j) = c.truth(i, j);
      }
    }
  }
  return c;
}

double full_rmse(const Matrix& a, const Matrix& b) {
  double se = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const double e = a(i, j) - b(i, j);
      se += e * e;
    }
  }
  return std::sqrt(se / static_cast<double>(a.rows() * a.cols()));
}

TEST(Completion, RecoversLowRankMatrixFromHalfTheEntries) {
  const LowRankCase c = make_low_rank(30, 40, 0.5, 1);
  const Matrix rec = complete_matrix(
      c.observed, c.mask, {.rank = 2, .iterations = 30, .ridge = 1e-4});
  EXPECT_LT(full_rmse(c.truth, rec), 0.02);
}

TEST(Completion, HigherRankStillFitsObservedEntries) {
  const LowRankCase c = make_low_rank(20, 25, 0.3, 2);
  const Matrix rec = complete_matrix(
      c.observed, c.mask, {.rank = 5, .iterations = 30, .ridge = 1e-3});
  EXPECT_LT(masked_rmse(c.truth, rec, c.mask), 0.02);
}

TEST(Completion, SparserObservationsDegradeReconstruction) {
  const LowRankCase dense = make_low_rank(25, 30, 0.3, 3);
  const LowRankCase sparse = make_low_rank(25, 30, 0.9, 3);
  const CompletionOptions o{.rank = 2, .iterations = 25, .ridge = 1e-3};
  const double e_dense =
      full_rmse(dense.truth, complete_matrix(dense.observed, dense.mask, o));
  const double e_sparse = full_rmse(
      sparse.truth, complete_matrix(sparse.observed, sparse.mask, o));
  EXPECT_LT(e_dense, e_sparse);
}

TEST(Completion, ValidatesArguments) {
  Matrix m(4, 4);
  std::vector<bool> mask(16, true);
  EXPECT_THROW(complete_matrix(m, std::vector<bool>(3, true)),
               InvalidArgument);
  EXPECT_THROW(complete_matrix(m, mask, {.rank = 0}), InvalidArgument);
  EXPECT_THROW(complete_matrix(m, mask, {.rank = 9}), InvalidArgument);
  EXPECT_THROW(complete_matrix(m, mask, {.iterations = 0}),
               InvalidArgument);
  EXPECT_THROW(complete_matrix(m, mask, {.ridge = 0.0}), InvalidArgument);
  EXPECT_THROW(complete_matrix(Matrix(), {}), InvalidArgument);
}

TEST(Completion, MaskedRmseIgnoresHiddenEntries) {
  Matrix truth{{1.0, 2.0}, {3.0, 4.0}};
  Matrix est{{1.0, 99.0}, {3.5, 4.0}};
  const std::vector<bool> mask{true, false, true, true};
  // Errors on observed entries: 0, 0.5, 0 -> rmse = sqrt(0.25/3).
  EXPECT_NEAR(masked_rmse(truth, est, mask), std::sqrt(0.25 / 3.0), 1e-12);
  EXPECT_THROW(masked_rmse(truth, est, std::vector<bool>(4, false)),
               InvalidArgument);
}

TEST(CompletionExperiment, RunsAndBeatsNothing) {
  trace::SyntheticProfile p = trace::google_profile();
  p.num_nodes = 30;
  p.num_steps = 400;
  const trace::InMemoryTrace t = trace::generate(p, 4);
  const CompletionExperimentResult r = run_completion_experiment(
      t, 0, 0.3, 48, {.rank = 4, .iterations = 8});
  EXPECT_TRUE(std::isfinite(r.rmse));
  EXPECT_GT(r.rmse, 0.0);
  EXPECT_LT(r.rmse, 0.6);
  EXPECT_NEAR(r.actual_sample_rate, 0.3, 0.03);
  EXPECT_GT(r.hold_rmse, 0.0);
}

TEST(CompletionExperiment, Validates) {
  trace::SyntheticProfile p = trace::google_profile();
  p.num_nodes = 5;
  p.num_steps = 50;
  const trace::InMemoryTrace t = trace::generate(p, 5);
  EXPECT_THROW(run_completion_experiment(t, 9, 0.3, 10), InvalidArgument);
  EXPECT_THROW(run_completion_experiment(t, 0, 0.0, 10), InvalidArgument);
  EXPECT_THROW(run_completion_experiment(t, 0, 0.3, 1), InvalidArgument);
  EXPECT_THROW(run_completion_experiment(t, 0, 0.3, 99), InvalidArgument);
}

}  // namespace
}  // namespace resmon::completion
